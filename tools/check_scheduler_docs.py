#!/usr/bin/env python3
"""Checks that docs/SCHEDULERS.md enumerates exactly the scheduler registry.

Usage:
  check_scheduler_docs.py --catalog FILE [--docs docs/SCHEDULERS.md]

--catalog is the `ge_list_schedulers --json` dump (schema ge-schedulers-v1).
The script parses the "## Catalog" table of docs/SCHEDULERS.md -- one row
per plugin, canonical name backticked in the first column, aliases
backticked in the second ("--" when none) -- and fails if:

  * a registered scheduler has no catalog row (new plugin, stale doc);
  * a catalog row names a scheduler the registry does not know (removed or
    renamed plugin, stale doc);
  * a row's aliases disagree with the registry.

This closes the loop for the handbook the way check_metrics_catalog.py does
for the metric docs: code is the source of truth, CI keeps prose honest.
"""
import argparse
import json
import re
import sys


def parse_doc_catalog(path):
    """Returns {name: set(aliases)} from the ## Catalog table of the doc."""
    rows = {}
    in_catalog = False
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            if line.startswith("## "):
                in_catalog = line.strip().lower() == "## catalog"
                continue
            if not in_catalog or not line.startswith("|"):
                continue
            cells = [c.strip() for c in line.strip().strip("|").split("|")]
            if len(cells) < 2 or set(cells[0]) <= {"-", ":", " "}:
                continue
            name = re.match(r"`([^`]+)`", cells[0])
            if not name:
                continue  # header row
            aliases = set(re.findall(r"`([^`]+)`", cells[1]))
            rows[name.group(1)] = aliases
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--catalog", required=True,
                    help="ge_list_schedulers --json output")
    ap.add_argument("--docs", default="docs/SCHEDULERS.md")
    args = ap.parse_args()

    with open(args.catalog, encoding="utf-8") as fh:
        dump = json.load(fh)
    if dump.get("schema") != "ge-schedulers-v1":
        sys.exit(f"unexpected catalog schema: {dump.get('schema')!r}")
    registry = {s["name"]: set(s["aliases"]) for s in dump["schedulers"]}

    doc = parse_doc_catalog(args.docs)
    if not doc:
        sys.exit(f"{args.docs}: found no '## Catalog' table rows")

    errors = []
    for name in sorted(registry.keys() - doc.keys()):
        errors.append(f"registered scheduler `{name}` missing from {args.docs}")
    for name in sorted(doc.keys() - registry.keys()):
        errors.append(f"{args.docs} lists `{name}`, not in the registry")
    for name in sorted(registry.keys() & doc.keys()):
        if registry[name] != doc[name]:
            errors.append(
                f"alias mismatch for `{name}`: registry {sorted(registry[name])}"
                f" vs doc {sorted(doc[name])}")

    if errors:
        print(f"{args.docs} out of sync with the scheduler registry:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"ok: {args.docs} catalog matches the registry "
          f"({len(registry)} schedulers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
