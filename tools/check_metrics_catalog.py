#!/usr/bin/env python3
"""Checks that every metric a run emits is documented in the catalog.

Usage:
  check_metrics_catalog.py --metrics FILE [--docs docs/OBSERVABILITY.md]

Parses the "Metric catalog" tables of docs/OBSERVABILITY.md into name
patterns and verifies that every metric name in the --metrics JSON file (a
goodenough-metrics-v1 dump from a smoke run) matches one of them.  A metric
added to the code without a catalog row fails CI here, closing the loop the
schema checker cannot: check_telemetry.py validates structure, this script
validates that names and meanings stay documented.

Catalog conventions understood:
  * names are backticked in the first table column;
  * one cell may hold alternatives: `a.x` / `a.y` (a leading "." continues
    the previous name's prefix, as in `core.<id>.energy_j` / `.busy_s`);
  * `<id>` / `<K>` match an integer; a trailing `.*` matches any suffix.

Exits non-zero listing every undocumented metric; also prints (without
failing) documented exact names the smoke run never emitted, so stale rows
are visible in the CI log.
"""
import argparse
import json
import re
import sys


def row_name_cell(line):
    """First column of a Markdown table row, or None."""
    if not line.startswith("|"):
        return None
    cells = [c.strip() for c in line.strip().strip("|").split("|")]
    if not cells or set(cells[0]) <= {"-", ":", " "}:
        return None
    return cells[0]


def cell_names(cell):
    """Expands one name cell into full metric-name tokens."""
    tokens = [t for t in re.findall(r"`([^`]+)`", cell)]
    names = []
    for token in tokens:
        if token.startswith(".") and names:
            base = names[-1]
            names.append(base[: base.rfind(".")] + token)
        else:
            names.append(token)
    return names


def pattern_for(name):
    """Compiles a catalog name (with <id>/<K>/.* holes) to a regex."""
    regex = ""
    for part in re.split(r"(<[^>]+>|\.\*$)", name):
        if re.fullmatch(r"<[^>]+>", part):
            regex += r"\d+"
        elif part == ".*":
            regex += r"\..+"
        else:
            regex += re.escape(part)
    return re.compile(regex + r"\Z")


def parse_catalog(docs_path):
    """All (name, regex) patterns from the "Metric catalog" section."""
    patterns = []
    in_catalog = False
    with open(docs_path) as f:
        for line in f:
            if line.startswith("## "):
                in_catalog = line.strip() == "## Metric catalog"
                continue
            if not in_catalog:
                continue
            cell = row_name_cell(line)
            if cell is None or cell == "Name":
                continue
            for name in cell_names(cell):
                if re.fullmatch(r"[\w.<>*]+", name):
                    patterns.append((name, pattern_for(name)))
    return patterns


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", required=True)
    parser.add_argument("--docs", default="docs/OBSERVABILITY.md")
    args = parser.parse_args()

    patterns = parse_catalog(args.docs)
    if not patterns:
        print(f"check_metrics_catalog: no catalog rows found in {args.docs}",
              file=sys.stderr)
        sys.exit(1)

    with open(args.metrics) as f:
        data = json.load(f)
    emitted = [m["name"] for m in data.get("metrics", [])]
    if not emitted:
        print(f"check_metrics_catalog: {args.metrics} holds no metrics",
              file=sys.stderr)
        sys.exit(1)

    undocumented = []
    matched = set()
    for name in emitted:
        hit = next((doc for doc, rx in patterns if rx.match(name)), None)
        if hit is None:
            undocumented.append(name)
        else:
            matched.add(hit)
    if undocumented:
        print("check_metrics_catalog: metrics missing from the "
              f"{args.docs} catalog:", file=sys.stderr)
        for name in undocumented:
            print(f"  {name}", file=sys.stderr)
        sys.exit(1)

    unexercised = sorted(
        doc for doc, _ in patterns
        if doc not in matched and re.fullmatch(r"[\w.]+", doc))
    if unexercised:
        print("note: documented metrics not emitted by this smoke run "
              "(fine if they need other flags): " + ", ".join(unexercised))
    print(f"{args.metrics}: OK ({len(emitted)} metrics, "
          f"all documented in {args.docs})")


if __name__ == "__main__":
    main()
