#!/usr/bin/env python3
"""Benchmark regression gate for the BENCH_*.json trajectory.

Compares two google-benchmark JSON files (--benchmark_format=json) and fails
when any benchmark's time regresses beyond a threshold.  Median aggregates
(from --benchmark_repetitions) are preferred; single-shot entries are used
as-is.  See docs/BENCHMARKS.md for the file schema and workflow.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]
  bench_compare.py --check FILE.json [FILE.json ...]

Exit status: 0 = ok, 1 = regression past threshold (or malformed file in
--check mode).
"""

import argparse
import json
import sys


def load_times(path):
    """Returns {benchmark name: real_time in ns} for one result file.

    Prefers `<name>_median` aggregate rows; falls back to the plain row.
    Repetition rows (`<name>/repeats:N`-style duplicates) are collapsed by
    keeping the aggregate or the first plain occurrence.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if "benchmarks" not in data or not isinstance(data["benchmarks"], list):
        raise ValueError(f"{path}: missing 'benchmarks' array")
    if "context" not in data:
        raise ValueError(f"{path}: missing 'context' object")
    # Debug-built numbers must never become (or be compared against)
    # baselines.  `ge_build_type` is stamped by the bench binaries from their
    # own NDEBUG setting; `library_build_type` is only a fallback, since it
    # describes the installed google-benchmark library rather than this
    # project's flags.
    context = data["context"]
    build = context.get("ge_build_type", context.get("library_build_type"))
    if str(build).lower() != "release":
        raise ValueError(
            f"{path}: recorded from a non-release build "
            f"(ge_build_type={build!r}); rebuild with -DCMAKE_BUILD_TYPE=Release")

    unit_scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    medians = {}
    singles = {}
    for entry in data["benchmarks"]:
        name = entry.get("name")
        if not name or "real_time" not in entry:
            raise ValueError(f"{path}: benchmark entry without name/real_time")
        scale = unit_scale.get(entry.get("time_unit", "ns"))
        if scale is None:
            raise ValueError(f"{path}: unknown time_unit in {name}")
        time_ns = float(entry["real_time"]) * scale
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[entry.get("run_name", name.rsplit("_median", 1)[0])] = time_ns
        else:
            singles.setdefault(name, time_ns)
    out = dict(singles)
    out.update(medians)  # aggregates win over raw repetition rows
    if not out:
        raise ValueError(f"{path}: no usable benchmark rows")
    return out


def check_files(paths):
    ok = True
    for path in paths:
        try:
            times = load_times(path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"FAIL {path}: {err}")
            ok = False
            continue
        print(f"ok   {path}: {len(times)} benchmarks")
    return ok


def compare(baseline_path, current_path, threshold):
    baseline = load_times(baseline_path)
    current = load_times(current_path)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: no common benchmarks between the two files")
        return False

    regressions = []
    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in shared:
        base = baseline[name]
        cur = current[name]
        ratio = cur / base if base > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + threshold:
            flag = "  << REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1.0 / 1.3:
            flag = "  (speedup)"
        print(f"{name:<{width}}  {base:>10.0f}ns  {cur:>10.0f}ns  {ratio:5.2f}x{flag}")

    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))
    for name in only_base:
        print(f"note: {name} only in baseline")
    for name in only_cur:
        print(f"note: {name} only in current")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{threshold:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return False
    print(f"\nok: no benchmark regressed more than {threshold:.0%} "
          f"({len(shared)} compared)")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+",
                        help="BASELINE.json CURRENT.json, or files for --check")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fail when current/baseline - 1 exceeds this "
                             "(default 0.10)")
    parser.add_argument("--check", action="store_true",
                        help="only validate that each file parses as "
                             "google-benchmark JSON output")
    args = parser.parse_args()

    if args.check:
        return 0 if check_files(args.files) else 1
    if len(args.files) != 2:
        parser.error("compare mode takes exactly BASELINE.json CURRENT.json")
    return 0 if compare(args.files[0], args.files[1], args.threshold) else 1


if __name__ == "__main__":
    sys.exit(main())
