// ge_sweep: the generic experiment driver.
//
// Runs any set of schedulers over any arrival-rate sweep with every
// configuration knob exposed as a flag, printing aligned tables, CSV, or
// one JSON record per run.  The fixed figNN binaries reproduce the paper;
// this tool is for exploring beyond it.
//
//   ge_sweep --schedulers GE,BE,FCFS --rates 100,150,200 --seconds 30
//            [--metric quality|energy|p99|aes|power] [--csv | --json]
//            [--jobs N] [--trace F [--trace-format jsonl|chrome]]
//            [--metrics F] [--report DIR] [--watchdog] [--profile]
//            [--servers N --dispatch random|rr|jsq|least-energy]
//            [any ExperimentConfig flag, see exp/flags_config.h]
//
// Full flag reference: docs/CLI.md; telemetry schema: docs/OBSERVABILITY.md.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/flags_config.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "exp/sweep.h"
#include "util/flags.h"

namespace {

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    out.push_back(text.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

double metric_value(const ge::exp::RunResult& r, const std::string& metric) {
  if (metric == "energy") {
    return r.energy;
  }
  if (metric == "p99") {
    return r.p99_response_ms;
  }
  if (metric == "aes") {
    return r.aes_fraction;
  }
  if (metric == "power") {
    return r.avg_power;
  }
  return r.quality;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);
  const exp::ExperimentConfig base =
      exp::apply_flags(exp::ExperimentConfig::paper_defaults(), flags);

  std::vector<exp::SchedulerSpec> specs;
  for (const std::string& name :
       split_list(flags.get_string("schedulers", "GE,BE"))) {
    specs.push_back(exp::SchedulerSpec::parse(name));
  }
  const std::vector<double> rates =
      flags.get_double_list("rates", {base.arrival_rate});

  const exp::ExecutionOptions exec = exp::parse_execution_options(flags);
  const auto points = exp::sweep_arrival_rates(base, specs, rates, exec);

  if (flags.get_bool("json", false)) {
    // One JSON record per (rate, scheduler) run; schedulers share traces.
    for (const auto& point : points) {
      for (const auto& result : point.results) {
        std::printf("%s\n", exp::to_json(result).c_str());
      }
    }
    return 0;
  }

  const std::string metric = flags.get_string("metric", "quality");
  const util::Table table = exp::series_table(
      points, "arrival_rate",
      [&metric](const exp::RunResult& r) { return metric_value(r, metric); },
      metric == "energy" ? 1 : 4);
  std::printf("metric: %s  (m=%zu, H=%.0fW, Q_GE=%.2f, %gs/point, seed %llu)\n",
              metric.c_str(), base.cores, base.power_budget, base.q_ge,
              base.duration, static_cast<unsigned long long>(base.seed));
  if (flags.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
