// ge_report: offline trace analytics.
//
// Re-derives the analysis layer's timelines, per-job spans, speed-residency
// histograms and the residency-vs-reported energy cross-check from a --trace
// JSONL file, without re-running the simulation:
//
//   ge_report --trace FILE [--out DIR] [--metrics FILE]
//             [--speed-bin GHZ] [--bins N] [--energy-tol REL]
//
//   --trace FILE     JSONL trace written by any figNN binary or ge_sweep
//                    (required)
//   --out DIR        report directory to write (default: report)
//   --metrics FILE   merged metrics JSON from the same run; its
//                    energy.total_j supplies the reported total the
//                    residency integration is checked against
//   --speed-bin GHZ  residency histogram bin width (default 0.2)
//   --bins N         timeline bin count per task (default 60)
//   --energy-tol REL energy identity verdict threshold (default 1e-6: every
//                    accrual term round-trips the writer's %.12g formatting,
//                    so the in-process 1e-9 does not hold from files)
//
// Output is deterministic: report bytes are a pure function of the input
// files and flags (schema ge-report-v1, docs/OBSERVABILITY.md).  CI runs
// this tool on the telemetry smoke trace and diffs serial-vs-parallel
// report directories byte-for-byte.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/analysis/report.h"
#include "obs/analysis/trace_reader.h"
#include "util/check.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);

  const std::string trace_path = flags.get_string("trace", "");
  GE_CHECK(!trace_path.empty(),
           "usage: ge_report --trace FILE [--out DIR] [--metrics FILE]");
  const std::string out_dir = flags.get_string("out", "report");

  std::ifstream trace_in(trace_path);
  GE_CHECK(trace_in.good(), "cannot open --trace input file: " + trace_path);
  const std::vector<obs::analysis::ParsedTask> parsed =
      obs::analysis::read_trace_jsonl(trace_in);
  GE_CHECK(!parsed.empty(), "trace file contains no tasks: " + trace_path);

  // The merged metrics file sums energy over every task, so it pins down a
  // single task's reported energy only when the trace holds a single task;
  // for multi-task traces the summed cross-check is printed below instead.
  double metrics_energy_j = -1.0;
  const std::string metrics_path = flags.get_string("metrics", "");
  if (!metrics_path.empty()) {
    std::ifstream metrics_in(metrics_path);
    GE_CHECK(metrics_in.good(),
             "cannot open --metrics input file: " + metrics_path);
    const obs::analysis::MetricsValues metrics =
        obs::analysis::read_metrics_json(metrics_in);
    metrics_energy_j = metrics.get("energy.total_j", -1.0);
  }

  obs::analysis::ReportOptions options;
  options.speed_bin_ghz = flags.get_double("speed-bin", options.speed_bin_ghz);
  options.timeline_bins = static_cast<std::size_t>(
      flags.get_int("bins", static_cast<std::int64_t>(options.timeline_bins)));
  options.energy_rel_tol = flags.get_double("energy-tol", 1e-6);

  obs::analysis::ReportWriter writer(options);
  for (const obs::analysis::ParsedTask& task : parsed) {
    obs::analysis::TaskInput input;
    input.info = task.info;
    input.buffer = &task.buffer;
    input.fallback_model = task.model;  // per-core models are not in the file
    if (parsed.size() == 1 && metrics_energy_j >= 0.0) {
      input.reported_energy_j = metrics_energy_j;
    }
    writer.add_task(input);
  }
  writer.write_directory(out_dir);

  double integrated_j = 0.0;
  std::size_t violations = 0;
  for (const obs::analysis::TaskAnalysis& task : writer.tasks()) {
    integrated_j += task.integrated_energy_j;
    violations += task.violations.size();
  }
  std::printf("ge_report: %zu task(s) -> %s (%zu recorded violation(s))\n",
              parsed.size(), out_dir.c_str(), violations);
  std::printf("ge_report: integrated energy %.12g J\n", integrated_j);
  if (metrics_energy_j >= 0.0) {
    const double diff = integrated_j - metrics_energy_j;
    const double rel =
        metrics_energy_j != 0.0 ? std::abs(diff / metrics_energy_j)
                                : std::abs(diff);
    const bool ok = rel <= options.energy_rel_tol;
    std::printf("ge_report: metrics energy.total_j %.12g J (rel err %.12g) %s\n",
                metrics_energy_j, rel, ok ? "OK" : "MISMATCH");
    return ok ? 0 : 1;
  }
  return 0;
}
