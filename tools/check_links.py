#!/usr/bin/env python3
"""Checks relative markdown links: every [text](target) pointing at a local
file must resolve from the linking file's directory.

Usage: check_links.py FILE.md [FILE.md ...]

External links (http/https/mailto) and pure in-page anchors (#...) are
skipped; a #fragment on a local target is stripped before the existence
check.  Exits non-zero listing every broken link.
"""
import os
import re
import sys

# Inline links only; reference-style links are not used in this repo.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_file(path):
    broken = []
    base = os.path.dirname(os.path.abspath(path))
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            for target in LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                local = target.split("#", 1)[0]
                if not local:
                    continue
                if not os.path.exists(os.path.join(base, local)):
                    broken.append(f"{path}:{lineno}: broken link -> {target}")
    return broken


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    broken = []
    for path in sys.argv[1:]:
        broken.extend(check_file(path))
    for msg in broken:
        print(msg, file=sys.stderr)
    if broken:
        print(f"check_links: {len(broken)} broken link(s)", file=sys.stderr)
        return 1
    print(f"check_links: OK ({len(sys.argv) - 1} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
