// Enumerates the scheduler plugin registry: every compiled-in scheduler
// with its aliases, parameter arity/help, and one-line summary.
//
//   ge_list_schedulers          aligned table for humans
//   ge_list_schedulers --json   machine-readable catalog (ge-schedulers-v1);
//                               CI and ctest feed this to
//                               tools/check_scheduler_docs.py so
//                               docs/SCHEDULERS.md cannot drift from the
//                               registry (see docs/SCHEDULERS.md)
//   ge_list_schedulers --json --out FILE   write to FILE instead of stdout
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "exp/scheduler_registry.h"
#include "util/table.h"

namespace {

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) {
      out += ", ";
    }
    out += p;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void print_json(std::ostream& os) {
  const auto plugins = ge::exp::SchedulerRegistry::instance().plugins();
  os << "{\n  \"schema\": \"ge-schedulers-v1\",\n  \"schedulers\": [\n";
  for (std::size_t i = 0; i < plugins.size(); ++i) {
    const ge::exp::SchedulerPlugin& p = *plugins[i];
    os << "    {\"name\": \"" << json_escape(p.name) << "\", \"aliases\": [";
    for (std::size_t a = 0; a < p.aliases.size(); ++a) {
      os << (a ? ", " : "") << '"' << json_escape(p.aliases[a]) << '"';
    }
    os << "], \"min_params\": " << p.min_params
       << ", \"max_params\": " << p.max_params << ", \"params_help\": \""
       << json_escape(p.params_help) << "\", \"summary\": \""
       << json_escape(p.summary) << "\"}" << (i + 1 < plugins.size() ? "," : "")
       << "\n";
  }
  os << "  ]\n}\n";
}

void print_table(std::ostream& os) {
  ge::util::Table table({"name", "aliases", "params", "summary"});
  for (const ge::exp::SchedulerPlugin* p :
       ge::exp::SchedulerRegistry::instance().plugins()) {
    table.begin_row();
    table.add(p->name);
    table.add(p->aliases.empty() ? "-" : join(p->aliases));
    if (p->max_params == 0) {
      table.add("-");
    } else {
      table.add(std::to_string(p->min_params) + ".." +
                std::to_string(p->max_params));
    }
    table.add(p->summary);
  }
  table.print(os);
  os << "\nspec grammar: NAME or NAME[p1,p2,...] (case-insensitive); see "
        "docs/SCHEDULERS.md\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: ge_list_schedulers [--json] [--out FILE]\n";
      return 2;
    }
  }
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "ge_list_schedulers: cannot open " << out_path << "\n";
      return 1;
    }
  }
  std::ostream& os = out_path.empty() ? std::cout : file;
  if (json) {
    print_json(os);
  } else {
    print_table(os);
  }
  return 0;
}
