#!/usr/bin/env python3
"""Validates telemetry output files against the documented schema.

Usage:
  check_telemetry.py [--trace FILE] [--chrome FILE] [--metrics FILE]
                     [--report DIR]

--trace    JSONL trace (docs/OBSERVABILITY.md, "Trace schema"): every line
           must be a JSON object whose fields match its "ev" kind exactly.
--chrome   Chrome trace_event JSON: must parse as one array of objects each
           carrying the required "ph"/"pid" keys.
--metrics  Metrics JSON ("goodenough-metrics-v1"): every metric entry must
           carry the fields of its type.
--report   ge-report-v1 directory (--report flag / ge_report output):
           report.md plus the four CSVs, each with its exact documented
           header, a constant field count, and parseable numeric cells.

Exits non-zero with a line-numbered message on the first violation; CI runs
this after the telemetry smoke run so schema drift fails the build.
"""
import argparse
import json
import os
import sys

# Required fields per JSONL event kind (beyond "ev" itself).  "number" means
# int or float; bool is excluded on purpose (json.dumps(True) is not a
# measurement).
EVENT_FIELDS = {
    "meta": {"task": int, "scheduler": str, "arrival_rate": (int, float),
             "cores": int, "power_budget_w": (int, float), "power_model": dict},
    "arrival": {"task": int, "t": (int, float), "job": int,
                "demand": (int, float), "deadline": (int, float)},
    "round": {"task": int, "t": (int, float), "round": (int, float),
              "mode": str, "waiting": (int, float), "rate": (int, float)},
    "mode": {"task": int, "t": (int, float), "mode": str,
             "quality": (int, float)},
    "cut": {"task": int, "t": (int, float), "core": int,
            "jobs": (int, float), "level": (int, float),
            "target_units": (int, float)},
    "cap": {"task": int, "t": (int, float), "core": int,
            "watts": (int, float)},
    "exec": {"task": int, "t": (int, float), "t_end": (int, float),
             "core": int, "job": int, "speed": (int, float)},
    "completion": {"task": int, "t": (int, float), "core": int, "job": int,
                   "executed": (int, float), "demand": (int, float),
                   "quality": (int, float)},
    "deadline_miss": {"task": int, "t": (int, float), "core": int, "job": int,
                      "executed": (int, float), "demand": (int, float),
                      "quality": (int, float)},
    "core_offline": {"task": int, "t": (int, float), "core": int},
    "dispatch": {"task": int, "t": (int, float), "job": int, "server": int,
                 "in_flight": (int, float)},
    "assign": {"task": int, "t": (int, float), "job": int, "core": int},
    "violation": {"task": int, "t": (int, float), "check": str,
                  "observed": (int, float), "expected": (int, float)},
}

# ge-report-v1 CSV schemas: header -> columns that hold strings (every other
# column must parse as a number).
REPORT_CSVS = {
    "summary.csv": (
        "task,scheduler,arrival_rate,servers,cores,released,completed,partial,"
        "dropped,missed,rounds,mode_switches,cuts,violations,"
        "integrated_energy_j,reported_energy_j,energy_rel_err,"
        "mean_response_ms,p99_response_ms",
        {"scheduler"},
    ),
    "jobs.csv": (
        "task,job,server,core,arrival_s,assigned_s,first_exec_s,settled_s,"
        "deadline_s,demand_units,executed_units,energy_j,wait_ms,service_ms,"
        "response_ms,slack_ms,outcome,missed",
        {"outcome"},
    ),
    "residency.csv": (
        "task,server,core,ghz_lo,ghz_hi,busy_s,energy_j",
        set(),
    ),
    "timeline.csv": (
        "task,server,t_s,waiting,in_flight,busy_cores,power_w",
        set(),
    ),
}

METRIC_FIELDS = {
    "counter": {"value"},
    "gauge": {"value", "merge"},
    "histogram": {"count", "sum", "min", "max", "buckets"},
}


def fail(msg):
    print(f"check_telemetry: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, fields, where):
    for name, types in fields.items():
        if name not in obj:
            fail(f"{where}: missing field {name!r}")
        value = obj[name]
        if isinstance(value, bool) or not isinstance(value, types):
            fail(f"{where}: field {name!r} has type {type(value).__name__}")
    extra = set(obj) - set(fields) - {"ev"}
    if extra:
        fail(f"{where}: unexpected fields {sorted(extra)}")


def check_trace(path):
    tasks_seen = set()
    events = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            where = f"{path}:{lineno}"
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"{where}: not valid JSON ({err})")
            if not isinstance(obj, dict):
                fail(f"{where}: line is not a JSON object")
            kind = obj.get("ev")
            if kind not in EVENT_FIELDS:
                fail(f"{where}: unknown event kind {kind!r}")
            check_fields(obj, EVENT_FIELDS[kind], where)
            if kind == "meta":
                tasks_seen.add(obj["task"])
            elif obj["task"] not in tasks_seen:
                fail(f"{where}: event for task {obj['task']} before its meta line")
            events += 1
    if not tasks_seen:
        fail(f"{path}: no meta lines (empty trace?)")
    print(f"{path}: OK ({events} lines, {len(tasks_seen)} tasks)")


def check_chrome(path):
    with open(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as err:
            fail(f"{path}: not valid JSON ({err})")
    if not isinstance(data, list) or not data:
        fail(f"{path}: expected a non-empty JSON array of trace events")
    for i, ev in enumerate(data):
        where = f"{path}: event {i}"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        for key in ("ph", "pid", "name"):
            if key not in ev:
                fail(f"{where}: missing {key!r}")
        if ev["ph"] in ("X", "i", "C") and "ts" not in ev:
            fail(f"{where}: {ev['ph']!r} event without 'ts'")
        if ev["ph"] == "X" and "dur" not in ev:
            fail(f"{where}: duration event without 'dur'")
    print(f"{path}: OK ({len(data)} events)")


def check_metrics(path):
    with open(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as err:
            fail(f"{path}: not valid JSON ({err})")
    if data.get("schema") != "goodenough-metrics-v1":
        fail(f"{path}: schema is {data.get('schema')!r}, "
             "expected 'goodenough-metrics-v1'")
    metrics = data.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        fail(f"{path}: 'metrics' must be a non-empty array")
    names = set()
    for m in metrics:
        where = f"{path}: metric {m.get('name')!r}"
        for key in ("name", "type", "unit"):
            if key not in m:
                fail(f"{where}: missing {key!r}")
        if m["name"] in names:
            fail(f"{where}: duplicate name")
        names.add(m["name"])
        kind = m["type"]
        if kind not in METRIC_FIELDS:
            fail(f"{where}: unknown type {kind!r}")
        missing = METRIC_FIELDS[kind] - set(m)
        if missing:
            fail(f"{where}: missing fields {sorted(missing)}")
        if kind == "histogram":
            buckets = m["buckets"]
            if not buckets or buckets[-1]["le"] != "inf":
                fail(f"{where}: last bucket must be the 'inf' overflow bucket")
            if sum(b["count"] for b in buckets) != m["count"]:
                fail(f"{where}: bucket counts do not sum to 'count'")
    print(f"{path}: OK ({len(metrics)} metrics)")


def check_report(report_dir):
    md = os.path.join(report_dir, "report.md")
    try:
        with open(md) as f:
            first = f.readline()
    except OSError as err:
        fail(f"{md}: cannot read ({err})")
    if not first.startswith("# "):
        fail(f"{md}: does not start with a Markdown title")
    for name, (header, string_cols) in REPORT_CSVS.items():
        path = os.path.join(report_dir, name)
        columns = header.split(",")
        numeric = [i for i, c in enumerate(columns) if c not in string_cols]
        try:
            f = open(path)
        except OSError as err:
            fail(f"{path}: cannot read ({err})")
        with f:
            got = f.readline().rstrip("\n")
            if got != header:
                fail(f"{path}: header mismatch\n  expected: {header}\n"
                     f"  got:      {got}")
            rows = 0
            for lineno, line in enumerate(f, 2):
                fields = line.rstrip("\n").split(",")
                where = f"{path}:{lineno}"
                if len(fields) != len(columns):
                    fail(f"{where}: {len(fields)} fields, "
                         f"expected {len(columns)}")
                for i in numeric:
                    try:
                        float(fields[i])
                    except ValueError:
                        fail(f"{where}: column {columns[i]!r} is not numeric "
                             f"({fields[i]!r})")
                rows += 1
        print(f"{path}: OK ({rows} rows)")
    print(f"{report_dir}: OK (ge-report-v1)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace")
    parser.add_argument("--chrome")
    parser.add_argument("--metrics")
    parser.add_argument("--report")
    args = parser.parse_args()
    if not (args.trace or args.chrome or args.metrics or args.report):
        parser.error(
            "nothing to check: pass --trace, --chrome, --metrics or --report")
    if args.trace:
        check_trace(args.trace)
    if args.chrome:
        check_chrome(args.chrome)
    if args.metrics:
        check_metrics(args.metrics)
    if args.report:
        check_report(args.report)


if __name__ == "__main__":
    main()
