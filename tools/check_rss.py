#!/usr/bin/env python3
"""Run a command and fail if its peak RSS exceeds a ceiling.

The bounded-memory contract of the streaming replay path (--stream) is a
resource claim, not just a results claim, so CI enforces it directly: a
10^6-job streaming run must fit under a ceiling that the materialised path
would blow through (docs/DESIGN.md, "Streaming core").

Peak RSS is read from resource.getrusage(RUSAGE_CHILDREN).ru_maxrss after
the child exits -- the kernel-maintained high-water mark, which needs no
polling and cannot miss a transient peak.

Usage:
  check_rss.py --limit-mb 512 -- ./tools/ge_sweep --stream true ...

Exit status: the child's, or 1 when the child succeeded but exceeded the
ceiling.
"""

import argparse
import resource
import subprocess
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--limit-mb", type=float, required=True,
                        help="peak-RSS ceiling for the child, in MiB")
    parser.add_argument("command", nargs=argparse.REMAINDER,
                        help="command to run (prefix with --)")
    args = parser.parse_args()

    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        parser.error("no command given")

    returncode = subprocess.call(command)
    # Linux reports ru_maxrss in KiB.  RUSAGE_CHILDREN covers every waited-for
    # descendant, so the measurement includes the whole child process tree.
    peak_kib = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    peak_mib = peak_kib / 1024.0
    print(f"check_rss: peak RSS {peak_mib:.1f} MiB "
          f"(ceiling {args.limit_mb:.1f} MiB)")

    if returncode != 0:
        print(f"check_rss: command failed with exit code {returncode}")
        return returncode
    if peak_mib > args.limit_mb:
        print(f"FAIL: peak RSS {peak_mib:.1f} MiB exceeds the "
              f"{args.limit_mb:.1f} MiB ceiling")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
