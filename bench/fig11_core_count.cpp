// Fig. 11: GE quality (a) and energy (b) versus the number of cores 2^x,
// x = 0..6, with the total power budget held fixed.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv, {150.0});
  bench::print_banner(ctx, "Fig. 11",
                      "effect of the core count (fixed 320 W total budget)");

  // One engine point per core count: the workload is identical everywhere,
  // but each row keeps its own trace slot exactly as the serial loop did.
  std::vector<double> log_cores;
  for (int x = 0; x <= 6; ++x) {
    log_cores.push_back(static_cast<double>(x));
  }
  const auto points = exp::sweep(
      ctx.base, {exp::SchedulerSpec::parse("GE")}, log_cores,
      [&ctx](exp::ExperimentConfig cfg, double x) {
        cfg.arrival_rate = ctx.rates.front();
        cfg.cores = static_cast<std::size_t>(1) << static_cast<int>(x);
        return cfg;
      },
      ctx.exec);

  util::Table table({"log2_cores", "cores", "quality", "energy_J", "avg_speed_GHz"});
  for (const auto& point : points) {
    const exp::RunResult& r = point.results.front();
    table.begin_row();
    table.add(static_cast<std::uint64_t>(point.x));
    table.add(static_cast<std::uint64_t>(1)
              << static_cast<int>(point.x));
    table.add(r.quality, 4);
    table.add(r.energy, 1);
    table.add(r.avg_speed_ghz, 3);
  }
  bench::print_panel(ctx, "GE quality and energy vs core count (150 req/s)", table,
                     "few cores: poor quality and high energy (convex power "
                     "makes fast cores expensive); quality rises and energy "
                     "falls with more cores until the system saturates and "
                     "extra cores stop mattering");
  return 0;
}
