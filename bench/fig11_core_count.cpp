// Fig. 11: GE quality (a) and energy (b) versus the number of cores 2^x,
// x = 0..6, with the total power budget held fixed.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv, {150.0});
  bench::print_banner(ctx, "Fig. 11",
                      "effect of the core count (fixed 320 W total budget)");

  util::Table table({"log2_cores", "cores", "quality", "energy_J", "avg_speed_GHz"});
  for (int x = 0; x <= 6; ++x) {
    exp::ExperimentConfig cfg = ctx.base;
    cfg.arrival_rate = ctx.rates.front();
    cfg.cores = static_cast<std::size_t>(1) << x;
    const exp::RunResult r = exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"));
    table.begin_row();
    table.add(static_cast<std::uint64_t>(x));
    table.add(static_cast<std::uint64_t>(cfg.cores));
    table.add(r.quality, 4);
    table.add(r.energy, 1);
    table.add(r.avg_speed_ghz, 3);
  }
  bench::print_panel(ctx, "GE quality and energy vs core count (150 req/s)", table,
                     "few cores: poor quality and high energy (convex power "
                     "makes fast cores expensive); quality rises and energy "
                     "falls with more cores until the system saturates and "
                     "extra cores stop mattering");
  return 0;
}
