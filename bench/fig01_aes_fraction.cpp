// Fig. 1: fraction of execution time the GE scheduler spends in the AES
// (Aggressive Energy Saving) mode as the arrival rate grows.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Fig. 1", "execution-time share of the AES mode (GE)");

  const auto points = exp::sweep_arrival_rates(
      ctx.base, {exp::SchedulerSpec::parse("GE")}, ctx.rates, ctx.exec);
  util::Table table({"arrival_rate", "aes_fraction", "quality", "wf_round_share"});
  for (const auto& point : points) {
    const exp::RunResult& r = point.results.front();
    table.begin_row();
    table.add(point.x, 1);
    table.add(r.aes_fraction, 4);
    table.add(r.quality, 4);
    const double rounds = static_cast<double>(r.rounds);
    table.add(rounds > 0.0 ? static_cast<double>(r.wf_rounds) / rounds : 0.0, 4);
  }
  bench::print_panel(ctx, "AES-mode time fraction vs arrival rate", table,
                     "high (~0.6-0.8) under light load, falling towards ~0 once "
                     "the system approaches overload (~200 req/s), because "
                     "compensation keeps the scheduler in BQ mode");
  return 0;
}
