// Ablation: seed sensitivity.  Re-runs the headline comparison over several
// independent workload seeds and reports mean +/- stddev, demonstrating the
// single-seed figures are not flukes.
#include <cstdio>

#include "exp/replicate.h"
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx =
      bench::parse_figure_args(argc, argv, {100.0, 150.0, 200.0});
  const util::Flags flags(argc, argv);
  const int replicas = static_cast<int>(flags.get_int("replicas", 5));
  bench::print_banner(ctx, "Ablation",
                      "seed replication (" + std::to_string(replicas) +
                          " seeds per point, mean +/- stddev)");

  util::Table table({"arrival_rate", "GE_quality", "GE_energy_J", "BE_quality",
                     "BE_energy_J", "GE_saving"});
  for (double rate : ctx.rates) {
    exp::ExperimentConfig cfg = ctx.base;
    cfg.arrival_rate = rate;
    const exp::ReplicationSummary ge =
        exp::replicate(cfg, exp::SchedulerSpec::parse("GE"), replicas, ctx.exec);
    const exp::ReplicationSummary be =
        exp::replicate(cfg, exp::SchedulerSpec::parse("BE"), replicas, ctx.exec);
    table.begin_row();
    table.add(rate, 1);
    table.add(util::format_double(ge.quality.mean(), 4) + "+/-" +
              util::format_double(ge.quality.stddev(), 4));
    table.add(util::format_double(ge.energy.mean(), 0) + "+/-" +
              util::format_double(ge.energy.stddev(), 0));
    table.add(util::format_double(be.quality.mean(), 4) + "+/-" +
              util::format_double(be.quality.stddev(), 4));
    table.add(util::format_double(be.energy.mean(), 0) + "+/-" +
              util::format_double(be.energy.stddev(), 0));
    table.add(1.0 - ge.energy.mean() / be.energy.mean(), 4);
  }
  bench::print_panel(ctx, "GE vs BE across seeds", table,
                     "standard deviations are tiny relative to the GE-vs-BE "
                     "gaps: the figure-level conclusions are seed-robust");
  return 0;
}
