// Microbenchmarks of the algorithmic kernels (google-benchmark): LF job
// cutting, water-filling, the Energy-OPT planner, the Quality-OPT
// allocator, YDS, the power model, the quality functions, plan
// rectification, the event queue, and a full GE scheduling round.
//
// Emitting the machine-readable trajectory (see docs/BENCHMARKS.md):
//
//   bench_kernels --benchmark_repetitions=7 \
//     --benchmark_report_aggregates_only=true \
//     --benchmark_format=json --benchmark_out=BENCH_kernels.json
//
// tools/bench_compare.py gates regressions between two such files.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/good_enough.h"
#include "core/load_estimator.h"
#include "core/plan_rectifier.h"
#include "opt/energy_opt.h"
#include "opt/job_cutter.h"
#include "opt/quality_opt.h"
#include "opt/yds.h"
#include "power/discrete_speed.h"
#include "power/distribution.h"
#include "power/power_model.h"
#include "quality/quality_function.h"
#include "quality/quality_monitor.h"
#include "server/multicore_server.h"
#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/job.h"

namespace {

// Stamp the *project's* build type into the JSON context; see
// tools/bench_compare.py, which refuses debug-built baselines on this key
// (`library_build_type` only describes the installed benchmark library).
const bool ge_build_type_registered = [] {
#ifdef NDEBUG
  benchmark::AddCustomContext("ge_build_type", "release");
#else
  benchmark::AddCustomContext("ge_build_type", "debug");
#endif
  return true;
}();

using ge::quality::ExponentialQuality;

const ExponentialQuality& paper_f() {
  static const ExponentialQuality f(0.003, 1000.0);
  return f;
}

std::vector<double> random_demands(std::size_t n, std::uint64_t seed) {
  ge::util::Rng rng(seed);
  std::vector<double> demands(n);
  for (double& d : demands) {
    d = rng.uniform(130.0, 1000.0);
  }
  return demands;
}

// Random EDF-sorted plan jobs backed by `jobs` (all released at t = 0).
std::vector<ge::opt::PlanJob> random_plan_jobs(std::vector<ge::workload::Job>& jobs,
                                               std::size_t n, std::uint64_t seed) {
  ge::util::Rng rng(seed);
  jobs.assign(n, ge::workload::Job{});
  std::vector<ge::opt::PlanJob> plan_jobs;
  plan_jobs.reserve(n);
  double deadline = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    deadline += rng.uniform(0.005, 0.05);
    jobs[i].id = i + 1;
    jobs[i].deadline = deadline;
    jobs[i].demand = jobs[i].target = rng.uniform(50.0, 500.0);
    plan_jobs.push_back(ge::opt::PlanJob{&jobs[i], jobs[i].demand, deadline});
  }
  return plan_jobs;
}

// --- Job cutting -----------------------------------------------------------

void BM_JobCutterLongestFirst(benchmark::State& state) {
  const auto demands = random_demands(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::cut_longest_first(demands, paper_f(), 0.9));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JobCutterLongestFirst)->Range(4, 1024);

void BM_JobCutterScratchReuse(benchmark::State& state) {
  // The scheduler-facing path: one CutScratch reused across rounds.
  const auto demands = random_demands(static_cast<std::size_t>(state.range(0)), 1);
  ge::opt::CutScratch scratch;
  for (auto _ : state) {
    ge::opt::cut_longest_first(demands, paper_f(), 0.9, scratch);
    benchmark::DoNotOptimize(scratch.result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JobCutterScratchReuse)->Range(4, 1024);

void BM_CutLevelBisection(benchmark::State& state) {
  const auto demands = random_demands(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::cut_level_for_quality(demands, paper_f(), 0.9));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CutLevelBisection)->Range(4, 1024);

// --- Power distribution and the power model --------------------------------

void BM_WaterFilling(benchmark::State& state) {
  ge::util::Rng rng(3);
  std::vector<double> demands(static_cast<std::size_t>(state.range(0)));
  for (double& d : demands) {
    d = rng.uniform(0.0, 40.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::power::water_filling(160.0, demands));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WaterFilling)->Range(4, 1024);

void BM_PowerModelPower(benchmark::State& state) {
  // The paper's P = a s^2 curve: the hottest arithmetic in the stack
  // (energy accounting, water-filling demands, plan peak power).
  const ge::power::PowerModel pm(5.0, 2.0, 1000.0);
  ge::util::Rng rng(11);
  std::vector<double> speeds(1024);
  for (double& s : speeds) {
    s = rng.uniform(0.0, 3200.0);
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (double s : speeds) {
      acc += pm.power(s);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(speeds.size()));
}
BENCHMARK(BM_PowerModelPower);

void BM_PowerModelPowerCubic(benchmark::State& state) {
  // Non-specialised exponent (beta = 3): the generic std::pow path.
  const ge::power::PowerModel pm(5.0, 3.0, 1000.0);
  ge::util::Rng rng(12);
  std::vector<double> speeds(1024);
  for (double& s : speeds) {
    s = rng.uniform(0.0, 3200.0);
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (double s : speeds) {
      acc += pm.power(s);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(speeds.size()));
}
BENCHMARK(BM_PowerModelPowerCubic);

void BM_PowerModelSpeedForPower(benchmark::State& state) {
  const ge::power::PowerModel pm(5.0, 2.0, 1000.0);
  ge::util::Rng rng(13);
  std::vector<double> watts(1024);
  for (double& w : watts) {
    w = rng.uniform(0.0, 60.0);
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (double w : watts) {
      acc += pm.speed_for_power(w);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(watts.size()));
}
BENCHMARK(BM_PowerModelSpeedForPower);

// --- Quality functions ------------------------------------------------------

void BM_QualityFunctionValue(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    x += 1.0;
    if (x > 1000.0) {
      x = 0.0;
    }
    benchmark::DoNotOptimize(paper_f().value(x));
  }
}
BENCHMARK(BM_QualityFunctionValue);

void BM_QualityFunctionInverse(benchmark::State& state) {
  double q = 0.0;
  for (auto _ : state) {
    q += 0.001;
    if (q > 0.999) {
      q = 0.0;
    }
    benchmark::DoNotOptimize(paper_f().inverse(q));
  }
}
BENCHMARK(BM_QualityFunctionInverse);

void BM_PowerLawQualityValue(benchmark::State& state) {
  const ge::quality::PowerLawQuality f(0.5, 1000.0);
  double x = 0.0;
  for (auto _ : state) {
    x += 1.0;
    if (x > 1000.0) {
      x = 0.0;
    }
    benchmark::DoNotOptimize(f.value(x));
  }
}
BENCHMARK(BM_PowerLawQualityValue);

void BM_PowerLawQualityInverse(benchmark::State& state) {
  const ge::quality::PowerLawQuality f(0.5, 1000.0);
  double q = 0.0;
  for (auto _ : state) {
    q += 0.001;
    if (q > 0.999) {
      q = 0.0;
    }
    benchmark::DoNotOptimize(f.inverse(q));
  }
}
BENCHMARK(BM_PowerLawQualityInverse);

// --- Planners ---------------------------------------------------------------

void BM_RequiredSpeed(benchmark::State& state) {
  std::vector<ge::workload::Job> jobs;
  const auto plan_jobs =
      random_plan_jobs(jobs, static_cast<std::size_t>(state.range(0)), 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::required_speed(0.0, plan_jobs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RequiredSpeed)->Range(4, 256);

void BM_EnergyOptPlanner(benchmark::State& state) {
  std::vector<ge::workload::Job> jobs;
  const auto plan_jobs =
      random_plan_jobs(jobs, static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::plan_min_energy(0.0, plan_jobs, 1e9));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnergyOptPlanner)->Range(4, 256);

void BM_QualityOptAllocator(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ge::util::Rng rng(5);
  std::vector<ge::opt::AllocJob> jobs;
  double deadline = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    deadline += rng.uniform(0.005, 0.05);
    jobs.push_back(ge::opt::AllocJob{rng.uniform(0.0, 100.0),
                                     rng.uniform(50.0, 500.0), deadline});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::maximize_quality(0.0, jobs, 1500.0, paper_f()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QualityOptAllocator)->Range(4, 256);

void BM_FullYdsSchedule(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ge::util::Rng rng(7);
  std::vector<ge::opt::YdsJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double release = rng.uniform(0.0, static_cast<double>(n) / 150.0);
    jobs.push_back(ge::opt::YdsJob{release, release + rng.uniform(0.1, 0.4),
                                   rng.uniform(50.0, 500.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::yds_schedule(jobs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullYdsSchedule)->Range(16, 512);

void BM_PlanRectifier(benchmark::State& state) {
  std::vector<ge::workload::Job> jobs;
  const auto plan_jobs =
      random_plan_jobs(jobs, static_cast<std::size_t>(state.range(0)), 31);
  const ge::opt::ExecutionPlan plan = ge::opt::plan_min_energy(0.0, plan_jobs, 1e9);
  const ge::power::DiscreteSpeedTable table =
      ge::power::DiscreteSpeedTable::uniform_ghz(0.2, 3.2, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::sched::rectify_plan(plan, table, 3200.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PlanRectifier)->Range(4, 256);

// --- Event queue ------------------------------------------------------------

template <typename Queue>
void BM_EventQueuePushPop(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ge::util::Rng rng(6);
  std::vector<double> times(n);
  for (double& t : times) {
    t = rng.uniform(0.0, 1000.0);
  }
  for (auto _ : state) {
    Queue queue;
    for (double t : times) {
      queue.push(t, [] {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_TEMPLATE(BM_EventQueuePushPop, ge::sim::HeapEventQueue)
    ->Name("BM_EventQueuePushPop")
    ->Range(64, 16384);
BENCHMARK_TEMPLATE(BM_EventQueuePushPop, ge::sim::CalendarEventQueue)
    ->Name("BM_EventQueuePushPopCalendar")
    ->Range(64, 16384);

template <typename Queue>
void BM_EventQueueChurn(benchmark::State& state) {
  // The simulator's steady-state pattern: a rolling window of pending
  // events where every pop schedules a replacement and a third of the
  // events are cancelled before they fire (quantum re-arms, settled
  // deadlines).
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  const std::size_t ops = 4 * window;
  for (auto _ : state) {
    ge::util::Rng rng(8);
    Queue queue;
    std::vector<ge::sim::EventId> pending;
    pending.reserve(window);
    double now = 0.0;
    for (std::size_t i = 0; i < window; ++i) {
      pending.push_back(queue.push(rng.uniform(0.0, 1.0), [] {}));
    }
    for (std::size_t i = 0; i < ops; ++i) {
      if (i % 3 == 0 && !pending.empty()) {
        const std::size_t victim = rng.uniform_index(pending.size());
        queue.cancel(pending[victim]);
        pending[victim] = pending.back();
        pending.pop_back();
      }
      if (!queue.empty()) {
        const ge::sim::Event ev = queue.pop();
        now = ev.time;
      }
      pending.push_back(queue.push(now + rng.uniform(0.0, 1.0), [] {}));
    }
    benchmark::DoNotOptimize(queue.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(ops));
}
BENCHMARK_TEMPLATE(BM_EventQueueChurn, ge::sim::HeapEventQueue)
    ->Name("BM_EventQueueChurn")
    ->Range(64, 4096);
BENCHMARK_TEMPLATE(BM_EventQueueChurn, ge::sim::CalendarEventQueue)
    ->Name("BM_EventQueueChurnCalendar")
    ->Range(64, 4096);

// --- Load estimator ---------------------------------------------------------

void BM_LoadEstimatorRate(benchmark::State& state) {
  ge::util::Rng rng(9);
  for (auto _ : state) {
    ge::sched::LoadEstimator load(2.0);
    double t = 0.0;
    double acc = 0.0;
    for (int i = 0; i < 4096; ++i) {
      t += rng.exponential(150.0);
      load.record_arrival(t);
      if (i % 16 == 0) {
        acc += load.rate(t);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_LoadEstimatorRate);

// --- A full GE scheduling round ---------------------------------------------

// Drives real GoodEnoughScheduler rounds through a hand-built server: the
// measured loop covers EDF ordering, LF cutting, the hybrid power split,
// Quality-OPT trims and Energy-OPT planning exactly as a simulation does.
// items/s is scheduling rounds per second.
void BM_GESchedulingRound(benchmark::State& state) {
  const std::size_t cores = static_cast<std::size_t>(state.range(0));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    ge::sim::Simulator sim;
    ge::power::PowerModel pm(5.0, 2.0, 1000.0);
    ge::server::MulticoreServer server(cores, 20.0 * static_cast<double>(cores),
                                       pm, sim);
    ge::quality::ExponentialQuality f(0.003, 1000.0);
    ge::quality::QualityMonitor monitor(f);
    ge::sched::GoodEnoughOptions options;
    options.quantum = 0.05;
    ge::sched::SchedulerEnv env{&sim, &server, &f, &monitor};
    ge::sched::GoodEnoughScheduler scheduler(env, options);
    for (std::size_t i = 0; i < cores; ++i) {
      server.core(i).set_job_finished_callback(
          [&scheduler](ge::workload::Job* j) { scheduler.on_job_finished(j); });
      server.core(i).set_idle_callback(
          [&scheduler](int id) { scheduler.on_core_idle(id); });
    }
    scheduler.start();

    ge::util::Rng rng(10);
    std::vector<std::unique_ptr<ge::workload::Job>> jobs;
    double t = 0.0;
    const double rate = 15.0 * static_cast<double>(cores);
    while (t < 2.0) {
      t += rng.exponential(rate);
      auto job = std::make_unique<ge::workload::Job>();
      job->id = jobs.size() + 1;
      job->arrival = t;
      job->deadline = t + 0.15;
      job->demand = job->target = rng.uniform(130.0, 1000.0);
      ge::workload::Job* ptr = job.get();
      jobs.push_back(std::move(job));
      sim.schedule_at(t, [&scheduler, ptr] { scheduler.on_job_arrival(ptr); });
      sim.schedule_at(ptr->deadline,
                      [&scheduler, ptr] { scheduler.on_deadline(ptr); });
    }
    sim.run_until(2.2);
    scheduler.finish();
    rounds += scheduler.rounds();
    benchmark::DoNotOptimize(monitor.quality());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_GESchedulingRound)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
