// Microbenchmarks of the algorithmic kernels (google-benchmark): LF job
// cutting, water-filling, the Energy-OPT planner, the Quality-OPT
// allocator, and the event queue.
#include <benchmark/benchmark.h>

#include <vector>

#include "opt/energy_opt.h"
#include "opt/job_cutter.h"
#include "opt/quality_opt.h"
#include "opt/yds.h"
#include "power/distribution.h"
#include "quality/quality_function.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "workload/job.h"

namespace {

using ge::quality::ExponentialQuality;

const ExponentialQuality& paper_f() {
  static const ExponentialQuality f(0.003, 1000.0);
  return f;
}

std::vector<double> random_demands(std::size_t n, std::uint64_t seed) {
  ge::util::Rng rng(seed);
  std::vector<double> demands(n);
  for (double& d : demands) {
    d = rng.uniform(130.0, 1000.0);
  }
  return demands;
}

void BM_JobCutterLongestFirst(benchmark::State& state) {
  const auto demands = random_demands(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::cut_longest_first(demands, paper_f(), 0.9));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JobCutterLongestFirst)->Range(4, 1024);

void BM_CutLevelBisection(benchmark::State& state) {
  const auto demands = random_demands(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::cut_level_for_quality(demands, paper_f(), 0.9));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CutLevelBisection)->Range(4, 1024);

void BM_WaterFilling(benchmark::State& state) {
  ge::util::Rng rng(3);
  std::vector<double> demands(static_cast<std::size_t>(state.range(0)));
  for (double& d : demands) {
    d = rng.uniform(0.0, 40.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::power::water_filling(160.0, demands));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WaterFilling)->Range(4, 1024);

void BM_EnergyOptPlanner(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ge::util::Rng rng(4);
  std::vector<ge::workload::Job> jobs(n);
  std::vector<ge::opt::PlanJob> plan_jobs;
  double deadline = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    deadline += rng.uniform(0.005, 0.05);
    jobs[i].id = i + 1;
    jobs[i].deadline = deadline;
    jobs[i].demand = jobs[i].target = rng.uniform(50.0, 500.0);
    plan_jobs.push_back(ge::opt::PlanJob{&jobs[i], jobs[i].demand, deadline});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::plan_min_energy(0.0, plan_jobs, 1e9));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnergyOptPlanner)->Range(4, 256);

void BM_QualityOptAllocator(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ge::util::Rng rng(5);
  std::vector<ge::opt::AllocJob> jobs;
  double deadline = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    deadline += rng.uniform(0.005, 0.05);
    jobs.push_back(ge::opt::AllocJob{rng.uniform(0.0, 100.0),
                                     rng.uniform(50.0, 500.0), deadline});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::maximize_quality(0.0, jobs, 1500.0, paper_f()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QualityOptAllocator)->Range(4, 256);

void BM_FullYdsSchedule(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ge::util::Rng rng(7);
  std::vector<ge::opt::YdsJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double release = rng.uniform(0.0, static_cast<double>(n) / 150.0);
    jobs.push_back(ge::opt::YdsJob{release, release + rng.uniform(0.1, 0.4),
                                   rng.uniform(50.0, 500.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ge::opt::yds_schedule(jobs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullYdsSchedule)->Range(16, 512);

void BM_EventQueuePushPop(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ge::util::Rng rng(6);
  std::vector<double> times(n);
  for (double& t : times) {
    t = rng.uniform(0.0, 1000.0);
  }
  for (auto _ : state) {
    ge::sim::EventQueue queue;
    for (double t : times) {
      queue.push(t, [] {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueuePushPop)->Range(64, 16384);

void BM_QualityFunctionValue(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    x += 1.0;
    if (x > 1000.0) {
      x = 0.0;
    }
    benchmark::DoNotOptimize(paper_f().value(x));
  }
}
BENCHMARK(BM_QualityFunctionValue);

}  // namespace
