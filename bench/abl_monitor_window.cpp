// Ablation: the quality monitor's horizon.  The paper monitors quality
// cumulatively over the whole run; a sliding window bounds the memory of
// the compensation loop.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Ablation",
                      "quality-monitor horizon (cumulative vs sliding window)");

  const std::vector<std::size_t> windows{0, 200, 1000, 5000};
  auto label = [](std::size_t w) {
    return w == 0 ? std::string("cumulative") : "win=" + std::to_string(w);
  };
  std::vector<std::string> header{"arrival_rate"};
  for (std::size_t w : windows) {
    header.push_back(label(w));
  }
  util::Table quality_table(header);
  util::Table energy_table(header);
  for (double rate : ctx.rates) {
    quality_table.begin_row();
    energy_table.begin_row();
    quality_table.add(rate, 1);
    energy_table.add(rate, 1);
    exp::ExperimentConfig cfg = ctx.base;
    cfg.arrival_rate = rate;
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    for (std::size_t w : windows) {
      cfg.monitor_window = w;
      const exp::RunResult r =
          exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
      quality_table.add(r.quality, 4);
      energy_table.add(r.energy, 1);
    }
  }
  bench::print_panel(ctx, "(a) GE quality per monitor horizon", quality_table,
                     "all horizons hold ~Q_GE below overload; short windows "
                     "react faster after load spikes but flap more");
  bench::print_panel(ctx, "(b) GE energy (J) per monitor horizon", energy_table,
                     "shorter windows compensate more eagerly and spend "
                     "slightly more energy");
  return 0;
}
