// Ablation: the quality monitor's horizon.  The paper monitors quality
// cumulatively over the whole run; a sliding window bounds the memory of
// the compensation loop.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Ablation",
                      "quality-monitor horizon (cumulative vs sliding window)");

  const std::vector<std::size_t> windows{0, 200, 1000, 5000};
  auto label = [](std::size_t w) {
    return w == 0 ? std::string("cumulative") : "win=" + std::to_string(w);
  };
  std::vector<exp::RunVariant> variants;
  for (std::size_t w : windows) {
    variants.push_back({label(w), exp::SchedulerSpec::parse("GE"),
                        [w](exp::ExperimentConfig cfg) {
                          cfg.monitor_window = w;
                          return cfg;
                        }});
  }
  const auto points = exp::sweep_variants(
      ctx.base, variants, ctx.rates, exp::configure_arrival_rate, ctx.exec);
  bench::print_panel(ctx, "(a) GE quality per monitor horizon",
                     exp::series_table(points, "arrival_rate", bench::metric_quality),
                     "all horizons hold ~Q_GE below overload; short windows "
                     "react faster after load spikes but flap more");
  bench::print_panel(ctx, "(b) GE energy (J) per monitor horizon",
                     exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
                     "shorter windows compensate more eagerly and spend "
                     "slightly more energy");
  return 0;
}
