// Fig. 6: core-speed statistics under the two power-distribution policies --
// time-average busy speed (a) and speed variance (b) for Water-Filling vs
// Equal-Sharing.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Fig. 6",
                      "speed thrashing: WF vs ES core-speed statistics");

  const std::vector<exp::SchedulerSpec> specs{
      exp::SchedulerSpec::parse("GE-WF"), exp::SchedulerSpec::parse("GE-ES")};
  const auto points = exp::sweep_arrival_rates(ctx.base, specs, ctx.rates, ctx.exec);

  bench::print_panel(
      ctx, "(a) average busy-core speed (GHz) vs arrival rate",
      exp::series_table(points, "arrival_rate",
                        [](const exp::RunResult& r) { return r.avg_speed_ghz; }),
      "nearly identical under light load; WF runs somewhat faster than ES "
      "under heavy (not overloaded) load because it exploits unused budget");

  bench::print_panel(
      ctx, "(b) speed variance (GHz^2) vs arrival rate",
      exp::series_table(points, "arrival_rate",
                        [](const exp::RunResult& r) { return r.speed_variance; }),
      "WF variance well above ES everywhere (the thrashing the hybrid policy "
      "avoids); ES keeps core speeds tightly clustered");
  return 0;
}
