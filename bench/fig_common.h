// Shared plumbing for the figure-reproduction binaries.
//
// Every figNN binary accepts:
//   --seconds S    arrival horizon per point (default 60; paper uses 600)
//   --seed N       workload seed (default 1)
//   --rates a,b,c  arrival-rate sweep override
//   --csv          print strict CSV instead of aligned tables
//   --jobs N       worker threads for the experiment engine (default 0 =
//                  hardware_concurrency; results are bit-identical for any
//                  N, including 1)
//   --progress     force the engine's live progress line on stderr on/off
//                  (default: on when stderr is a terminal)
//   --trace F      write a simulation trace of every run to F
//   --trace-format jsonl|chrome   trace encoding (default jsonl; chrome
//                  loads in Perfetto / about:tracing)
//   --metrics F    write the merged metrics registry (JSON) to F
//   --report DIR   write the derived-analysis report (report.md + CSVs,
//                  schema ge-report-v1) to DIR
//   --watchdog     online invariant watchdog (default: on when --report is)
//   --profile      wall-clock self-profiling spans (prof.* metrics; off by
//                  default because wall clocks are nondeterministic)
//   --servers N    cluster size (default 1 = the paper's single server)
//   --dispatch P   dispatch policy for N > 1: random | rr | jsq |
//                  least-energy (default rr; see docs/CLUSTER.md)
//   --server-cores a,b,...        per-server core counts (default: all
//                  servers get --cores)
//   --server-power-scale a,b,...  per-server power_a multipliers
//   --server-max-ghz a,b,...      per-server DVFS ceilings (with --discrete)
// (flag reference: docs/CLI.md; telemetry schema: docs/OBSERVABILITY.md)
// and prints one table per panel of the figure plus a note stating the
// qualitative shape the paper reports, so EXPERIMENTS.md can record
// paper-vs-measured directly from the output.
#pragma once

#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/experiment_engine.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "exp/sweep.h"
#include "util/flags.h"
#include "util/table.h"

namespace ge::bench {

struct FigureContext {
  exp::ExperimentConfig base;
  std::vector<double> rates;
  bool csv = false;
  // Engine execution options (--jobs / --progress); pass to the sweeps.
  exp::ExecutionOptions exec;
};

// Parses the common flags and applies them to the paper-default config.
FigureContext parse_figure_args(int argc, const char* const* argv,
                                std::vector<double> default_rates =
                                    exp::paper_arrival_rates());

// Banner: figure id, title, key config values.
void print_banner(const FigureContext& ctx, const std::string& figure,
                  const std::string& title);

// Prints one panel: caption, table, and the paper's expected shape.
void print_panel(const FigureContext& ctx, const std::string& caption,
                 const util::Table& table, const std::string& paper_shape);

// Convenience metric lambdas.
double metric_quality(const exp::RunResult& r);
double metric_energy(const exp::RunResult& r);

}  // namespace ge::bench
