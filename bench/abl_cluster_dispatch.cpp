// Ablation: cluster dispatch policy x server count x load (beyond the
// paper, which studies one server; Sec. VII points at server farms).  N
// identical servers -- each with its own GE scheduler compensating against
// its own quality feedback -- sit behind one dispatch tier; the arrival
// rate scales with N so every panel compares policies at the same
// per-server load.  Load CoV is the coefficient of variation of per-server
// dispatched-job counts (0 = perfectly balanced dispatch).
#include <cstddef>

#include "cluster/dispatcher.h"
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx =
      bench::parse_figure_args(argc, argv, {100.0, 150.0, 200.0});
  bench::print_banner(ctx, "Ablation",
                      "cluster dispatch policy x server count x load");

  const char* policies[] = {"random", "rr", "jsq", "least-energy"};
  for (std::size_t servers : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    std::vector<exp::RunVariant> variants;
    for (const char* policy : policies) {
      exp::RunVariant variant;
      variant.label = policy;
      variant.spec = exp::SchedulerSpec::parse("GE");
      variant.tweak = [servers, policy](exp::ExperimentConfig cfg) {
        cfg.num_servers = servers;
        cfg.dispatch = cluster::parse_dispatch_policy(policy);
        return cfg;
      };
      variants.push_back(std::move(variant));
    }

    const auto points = exp::sweep_variants(
        ctx.base, variants, ctx.rates,
        [servers](exp::ExperimentConfig cfg, double rate_per_server) {
          cfg.arrival_rate = rate_per_server * static_cast<double>(servers);
          return cfg;
        },
        ctx.exec);

    util::Table table({"rate/server", "rand_q", "rr_q", "jsq_q", "le_q",
                       "rand_J", "rr_J", "jsq_J", "le_J", "rand_cov", "rr_cov",
                       "jsq_cov", "le_cov"});
    for (const auto& point : points) {
      table.begin_row();
      table.add(point.x, 1);
      for (const auto& r : point.results) {
        table.add(r.quality, 4);
      }
      for (const auto& r : point.results) {
        table.add(r.energy, 1);
      }
      for (const auto& r : point.results) {
        table.add(r.server_load_cov, 4);
      }
    }
    bench::print_panel(
        ctx, std::to_string(servers) + " servers: quality / energy / load CoV",
        table,
        "rr and jsq balance load (CoV near 0) and track the single-server "
        "quality curve at the same per-server rate; random's imbalance costs "
        "quality as load grows; least-energy herds arrivals onto whichever "
        "server has spent least so far, trading balance for an energy-"
        "levelling effect across the fleet");
  }
  return 0;
}
