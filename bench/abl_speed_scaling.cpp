// Ablation: the online speed-scaling zoo (OA / qOA / AVR / BKP) on the
// repo's workload, reproducing the shape of Abousamra-Bunde-Pruhs, "An
// Experimental Comparison of Speed Scaling Algorithms with Deadline
// Feasibility Constraints" (Green Computing 2012 / SUSCOM 2013).  The power
// budget is slack so every scheduler meets every deadline and the contest is
// pure energy; BE rides along as the repo-native reference point.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  // Deadline feasibility, not the power cap, is the binding constraint in
  // the ABP experiments; keep Equal-Sharing slack unless the user overrides.
  ctx.base.power_budget = std::max(ctx.base.power_budget, 1e6);
  bench::print_banner(ctx, "Ablation", "speed-scaling zoo (ABP comparison)");

  const std::vector<exp::RunVariant> variants = {
      {"OA", exp::SchedulerSpec::parse("OA"), {}},
      {"qOA[0.5]", exp::SchedulerSpec::parse("QOA[0.5]"), {}},
      {"qOA[0.75]", exp::SchedulerSpec::parse("QOA[0.75]"), {}},
      {"qOA[1.5]", exp::SchedulerSpec::parse("QOA[1.5]"), {}},
      {"AVR", exp::SchedulerSpec::parse("AVR"), {}},
      {"BKP", exp::SchedulerSpec::parse("BKP"), {}},
      {"BE", exp::SchedulerSpec::parse("BE"), {}},
  };
  const auto points = exp::sweep_variants(
      ctx.base, variants, ctx.rates, exp::configure_arrival_rate, ctx.exec);
  bench::print_panel(
      ctx, "(a) dynamic energy (J) per algorithm",
      exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
      "ABP Fig. 2-4: OA <= AVR <= BKP at low/moderate load (BKP's "
      "e-competitive estimator over-provisions, AVR double-counts "
      "overlapping densities); among the qOA variants the tuned q tracks "
      "OA most closely while q = 1.5 races ahead and pays for it");
  bench::print_panel(
      ctx, "(b) completed jobs (deadline feasibility)",
      exp::series_table(
          points, "arrival_rate",
          [](const exp::RunResult& r) { return double(r.completed); }, 0),
      "all algorithms are deadline-feasible under a slack power cap: "
      "completed == released at every point");
  bench::print_panel(
      ctx, "(c) mean response (ms)",
      exp::series_table(
          points, "arrival_rate",
          [](const exp::RunResult& r) { return r.mean_response_ms; }, 3),
      "faster-than-OA policies (qOA[1.5], BKP) buy latency with energy; "
      "q < 1 stretches jobs toward their deadlines");
  return 0;
}
