// Fig. 9: effect of the quality-function concavity c -- (a) GE service
// quality near/over the overload point for c in {0.0005..0.009}; (b) the
// quality functions themselves.
#include "fig_common.h"
#include "quality/quality_function.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(
      argc, argv, {180.0, 200.0, 220.0, 240.0});
  bench::print_banner(ctx, "Fig. 9", "effect of the quality-function concavity c");

  const std::vector<double> cs{0.0005, 0.001, 0.002, 0.003, 0.005, 0.009};

  // Panel (a): GE quality vs arrival rate, one series (variant) per c.
  std::vector<exp::RunVariant> variants;
  for (double c : cs) {
    variants.push_back({"c=" + util::format_double(c, 4),
                        exp::SchedulerSpec::parse("GE"),
                        [c](exp::ExperimentConfig cfg) {
                          cfg.quality_c = c;
                          return cfg;
                        }});
  }
  const auto points = exp::sweep_variants(
      ctx.base, variants, ctx.rates, exp::configure_arrival_rate, ctx.exec);
  bench::print_panel(ctx, "(a) GE service quality vs arrival rate, per c",
                     exp::series_table(points, "arrival_rate", bench::metric_quality),
                     "larger c (more concave) keeps quality higher under "
                     "overload: partial evaluation buys more quality per unit "
                     "of work");

  // Panel (b): the quality functions themselves.
  std::vector<std::string> fn_header{"x"};
  for (double c : cs) {
    fn_header.push_back("c=" + util::format_double(c, 4));
  }
  util::Table fn_table(std::move(fn_header));
  for (double x = 0.0; x <= 3000.0; x += 250.0) {
    fn_table.begin_row();
    fn_table.add(x, 0);
    for (double c : cs) {
      const quality::ExponentialQuality f(c, ctx.base.demand_max);
      fn_table.add(f.value(x), 4);
    }
  }
  bench::print_panel(ctx, "(b) quality function f(x) per c (xmax=1000)", fn_table,
                     "larger c saturates faster (stronger diminishing returns)");
  return 0;
}
