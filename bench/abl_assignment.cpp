// Ablation: Cumulative Round-Robin vs plain Round-Robin job assignment
// (Sec. III-E argues C-RR balances ragged batches over the long run).
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Ablation", "C-RR vs plain RR job assignment");

  const std::vector<exp::SchedulerSpec> specs{exp::SchedulerSpec::parse("GE"),
                                              exp::SchedulerSpec::parse("GE-RR")};
  const auto points = exp::sweep_arrival_rates(ctx.base, specs, ctx.rates, ctx.exec);

  bench::print_panel(
      ctx, "(a) service quality",
      exp::series_table(points, "arrival_rate", bench::metric_quality),
      "C-RR dominates decisively: plain RR restarts every distribution cycle "
      "at core 0, and because idle-core triggering produces many single-job "
      "batches, RR piles the whole stream onto the first cores while the "
      "rest idle -- exactly the imbalance C-RR's cumulative cursor removes");
  bench::print_panel(
      ctx, "(c) per-core energy imbalance (coefficient of variation)",
      exp::series_table(points, "arrival_rate",
                        [](const exp::RunResult& r) { return r.energy_cov; }),
      "C-RR keeps per-core energies nearly identical (CoV ~0); plain RR's "
      "CoV explodes, confirming the imbalance mechanism");
  bench::print_panel(
      ctx, "(b) energy (J)",
      exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
      "the RR-overloaded cores burn power at the convex top of the P = a*s^2 "
      "curve while idle cores contribute nothing, so RR also loses on energy "
      "per unit of quality");
  return 0;
}
