// Ablation: sensitivity to the critical-load threshold of the hybrid power
// distribution policy.  Sec. III-D warns that "the performance of the
// algorithm can be sensitive to the threshold"; this bench quantifies it.
// threshold = 0 degenerates to always-WF, threshold = +inf to always-ES.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Ablation", "critical-load threshold sensitivity");

  const std::vector<double> thresholds{0.0, 100.0, 154.0, 200.0, 1e12};
  auto label = [](double t) {
    if (t <= 0.0) {
      return std::string("always-WF");
    }
    if (t >= 1e9) {
      return std::string("always-ES");
    }
    return "crit=" + util::format_double(t, 0);
  };

  std::vector<std::string> header{"arrival_rate"};
  for (double t : thresholds) {
    header.push_back(label(t));
  }
  util::Table quality_table(header);
  util::Table energy_table(header);
  for (double rate : ctx.rates) {
    quality_table.begin_row();
    energy_table.begin_row();
    quality_table.add(rate, 1);
    energy_table.add(rate, 1);
    exp::ExperimentConfig cfg = ctx.base;
    cfg.arrival_rate = rate;
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    for (double t : thresholds) {
      cfg.critical_load = t;
      const exp::RunResult r =
          exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
      quality_table.add(r.quality, 4);
      energy_table.add(r.energy, 1);
    }
  }
  bench::print_panel(ctx, "(a) GE service quality per threshold", quality_table,
                     "thresholds at/above the saturation rate behave like "
                     "always-ES and lose quality under heavy load; low "
                     "thresholds behave like always-WF");
  bench::print_panel(ctx, "(b) GE energy (J) per threshold", energy_table,
                     "low thresholds pay the WF thrashing cost under light "
                     "load; the paper's 154 req/s sits at the elbow: ES energy "
                     "below it, WF quality above it");
  return 0;
}
