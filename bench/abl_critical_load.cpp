// Ablation: sensitivity to the critical-load threshold of the hybrid power
// distribution policy.  Sec. III-D warns that "the performance of the
// algorithm can be sensitive to the threshold"; this bench quantifies it.
// threshold = 0 degenerates to always-WF, threshold = +inf to always-ES.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Ablation", "critical-load threshold sensitivity");

  const std::vector<double> thresholds{0.0, 100.0, 154.0, 200.0, 1e12};
  auto label = [](double t) {
    if (t <= 0.0) {
      return std::string("always-WF");
    }
    if (t >= 1e9) {
      return std::string("always-ES");
    }
    return "crit=" + util::format_double(t, 0);
  };

  std::vector<exp::RunVariant> variants;
  for (double t : thresholds) {
    variants.push_back({label(t), exp::SchedulerSpec::parse("GE"),
                        [t](exp::ExperimentConfig cfg) {
                          cfg.critical_load = t;
                          return cfg;
                        }});
  }
  const auto points = exp::sweep_variants(
      ctx.base, variants, ctx.rates, exp::configure_arrival_rate, ctx.exec);
  bench::print_panel(ctx, "(a) GE service quality per threshold",
                     exp::series_table(points, "arrival_rate", bench::metric_quality),
                     "thresholds at/above the saturation rate behave like "
                     "always-ES and lose quality under heavy load; low "
                     "thresholds behave like always-WF");
  bench::print_panel(ctx, "(b) GE energy (J) per threshold",
                     exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
                     "low thresholds pay the WF thrashing cost under light "
                     "load; the paper's 154 req/s sits at the elbow: ES energy "
                     "below it, WF quality above it");
  return 0;
}
