// Ablation: bursty arrivals.  The paper evaluates homogeneous Poisson
// traffic; here an on-off modulated process raises the instantaneous rate
// above the critical load while the mean stays fixed, stressing the
// compensation policy and the hybrid ES/WF switch.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv, {130.0});
  bench::print_banner(ctx, "Ablation",
                      "burstiness (on-off arrivals, fixed 130 req/s mean)");

  util::Table table({"peak_to_mean", "GE_quality", "GE_energy_J", "GE_aes_frac",
                     "BE_quality", "BE_energy_J", "GE_saving"});
  for (double ratio : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    exp::ExperimentConfig cfg = ctx.base;
    cfg.arrival_rate = ctx.rates.front();
    cfg.burst_peak_to_mean = ratio;
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    const exp::RunResult ge =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
    const exp::RunResult be =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse("BE"), trace);
    table.begin_row();
    table.add(ratio, 1);
    table.add(ge.quality, 4);
    table.add(ge.energy, 1);
    table.add(ge.aes_fraction, 4);
    table.add(be.quality, 4);
    table.add(be.energy, 1);
    table.add(1.0 - ge.energy / be.energy, 4);
  }
  bench::print_panel(ctx, "GE vs BE under increasing burstiness", table,
                     "bursts erode quality for both schedulers, but GE's "
                     "compensation policy keeps it near Q_GE far longer than "
                     "its AES-mode share would suggest; energy savings persist");
  return 0;
}
