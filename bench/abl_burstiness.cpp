// Ablation: bursty arrivals.  The paper evaluates homogeneous Poisson
// traffic; here an on-off modulated process raises the instantaneous rate
// above the critical load while the mean stays fixed, stressing the
// compensation policy and the hybrid ES/WF switch.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv, {130.0});
  bench::print_banner(ctx, "Ablation",
                      "burstiness (on-off arrivals, fixed 130 req/s mean)");

  // Each burst ratio shapes the workload, so each is its own engine point;
  // GE and BE pair up on the point's shared trace.
  const auto points = exp::sweep(
      ctx.base,
      {exp::SchedulerSpec::parse("GE"), exp::SchedulerSpec::parse("BE")},
      {1.0, 1.5, 2.0, 3.0, 4.0},
      [&ctx](exp::ExperimentConfig cfg, double ratio) {
        cfg.arrival_rate = ctx.rates.front();
        cfg.burst_peak_to_mean = ratio;
        return cfg;
      },
      ctx.exec);

  util::Table table({"peak_to_mean", "GE_quality", "GE_energy_J", "GE_aes_frac",
                     "BE_quality", "BE_energy_J", "GE_saving"});
  for (const auto& point : points) {
    const exp::RunResult& ge = point.results[0];
    const exp::RunResult& be = point.results[1];
    table.begin_row();
    table.add(point.x, 1);
    table.add(ge.quality, 4);
    table.add(ge.energy, 1);
    table.add(ge.aes_fraction, 4);
    table.add(be.quality, 4);
    table.add(be.energy, 1);
    table.add(1.0 - ge.energy / be.energy, 4);
  }
  bench::print_panel(ctx, "GE vs BE under increasing burstiness", table,
                     "bursts erode quality for both schedulers, but GE's "
                     "compensation policy keeps it near Q_GE far longer than "
                     "its AES-mode share would suggest; energy savings persist");
  return 0;
}
