// Ablation: the quality-energy frontier.  Sec. II-C notes "more energy can
// be saved with less Q_GE"; this bench sweeps the promised quality level and
// reports the energy GE needs to honour it (BE = the Q_GE -> 1.0 limit).
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv, {150.0});
  bench::print_banner(ctx, "Ablation", "energy as a function of the promised Q_GE");

  const std::vector<double> targets{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99};
  exp::ExperimentConfig cfg = ctx.base;
  cfg.arrival_rate = ctx.rates.front();

  // One engine point: the BE reference plus one GE run per quality target,
  // all on the same trace.  Task 0 is BE; task 1+i is targets[i].
  exp::ExperimentPlan plan;
  plan.add(cfg, exp::SchedulerSpec::parse("BE"), 0);
  for (double target : targets) {
    exp::ExperimentConfig ge_cfg = cfg;
    ge_cfg.q_ge = target;
    plan.add(ge_cfg, exp::SchedulerSpec::parse("GE"), 0);
  }
  const std::vector<exp::RunResult> results = exp::run_plan(plan, ctx.exec);
  const exp::RunResult& be = results.front();

  util::Table table(
      {"q_ge", "quality", "energy_J", "saving_vs_BE", "aes_fraction"});
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const exp::RunResult& r = results[i + 1];
    table.begin_row();
    table.add(targets[i], 2);
    table.add(r.quality, 4);
    table.add(r.energy, 1);
    table.add(1.0 - r.energy / be.energy, 4);
    table.add(r.aes_fraction, 4);
  }
  bench::print_panel(
      ctx, "GE energy vs promised quality (150 req/s; BE reference energy " +
               util::format_double(be.energy, 1) + " J)",
      table,
      "energy decreases monotonically as the quality promise is relaxed; the "
      "achieved quality tracks the promise (the constraint binds)");
  return 0;
}
