// Ablation: the quality-energy frontier.  Sec. II-C notes "more energy can
// be saved with less Q_GE"; this bench sweeps the promised quality level and
// reports the energy GE needs to honour it (BE = the Q_GE -> 1.0 limit).
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv, {150.0});
  bench::print_banner(ctx, "Ablation", "energy as a function of the promised Q_GE");

  const std::vector<double> targets{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99};
  util::Table table(
      {"q_ge", "quality", "energy_J", "saving_vs_BE", "aes_fraction"});
  exp::ExperimentConfig cfg = ctx.base;
  cfg.arrival_rate = ctx.rates.front();
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const exp::RunResult be =
      exp::run_simulation(cfg, exp::SchedulerSpec::parse("BE"), trace);
  for (double target : targets) {
    cfg.q_ge = target;
    const exp::RunResult r =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
    table.begin_row();
    table.add(target, 2);
    table.add(r.quality, 4);
    table.add(r.energy, 1);
    table.add(1.0 - r.energy / be.energy, 4);
    table.add(r.aes_fraction, 4);
  }
  bench::print_panel(
      ctx, "GE energy vs promised quality (150 req/s; BE reference energy " +
               util::format_double(be.energy, 1) + " J)",
      table,
      "energy decreases monotonically as the quality promise is relaxed; the "
      "achieved quality tracks the promise (the constraint binds)");
  return 0;
}
