// Fig. 4: quality (a) and energy (b) with random deadline windows drawn from
// U[150 ms, 500 ms]; deadlines are no longer agreeable, so FDFS joins.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  ctx.base.deadline_interval_max = 0.500;  // random windows (Sec. IV-C)
  bench::print_banner(ctx, "Fig. 4",
                      "seven algorithms with random deadline windows [150,500] ms");

  const std::vector<exp::SchedulerSpec> specs{
      exp::SchedulerSpec::parse("GE"),   exp::SchedulerSpec::parse("OQ"),
      exp::SchedulerSpec::parse("BE"),   exp::SchedulerSpec::parse("FCFS"),
      exp::SchedulerSpec::parse("FDFS"), exp::SchedulerSpec::parse("LJF"),
      exp::SchedulerSpec::parse("SJF")};
  const auto points = exp::sweep_arrival_rates(ctx.base, specs, ctx.rates, ctx.exec);

  bench::print_panel(
      ctx, "(a) service quality vs arrival rate",
      exp::series_table(points, "arrival_rate", bench::metric_quality),
      "GE still pinned at ~0.90 with least energy; FCFS degrades badly "
      "(early arrivals can have late deadlines); FDFS beats the other "
      "single-job policies because it respects deadline order");

  bench::print_panel(
      ctx, "(b) energy consumption (J) vs arrival rate",
      exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
      "same ordering as Fig. 3b: GE cheapest among quality-satisfying "
      "algorithms, BE most expensive");
  return 0;
}
