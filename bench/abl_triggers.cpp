// Ablation: triggering-event parameters (Sec. III-E / IV-B) -- the quantum
// period and the waiting-queue counter threshold.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv, {175.0});
  bench::print_banner(ctx, "Ablation",
                      "quantum / counter trigger sensitivity (175 req/s)");

  exp::ExperimentConfig base = ctx.base;
  base.arrival_rate = ctx.rates.front();

  // All nine (quantum, counter) combinations share the single point's trace
  // and run concurrently on the engine.
  struct Combo {
    double quantum;
    int counter;
  };
  std::vector<Combo> combos;
  exp::ExperimentPlan plan;
  for (double quantum : {0.1, 0.5, 2.0}) {
    for (int counter : {1, 8, 32}) {
      exp::ExperimentConfig cfg = base;
      cfg.quantum = quantum;
      cfg.counter_threshold = counter;
      plan.add(cfg, exp::SchedulerSpec::parse("GE"), 0);
      combos.push_back({quantum, counter});
    }
  }
  const std::vector<exp::RunResult> results = exp::run_plan(plan, ctx.exec);

  util::Table table({"quantum_s", "counter", "quality", "energy_J", "p99_ms",
                     "rounds"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::RunResult& r = results[i];
    table.begin_row();
    table.add(combos[i].quantum, 2);
    table.add(static_cast<std::uint64_t>(combos[i].counter));
    table.add(r.quality, 4);
    table.add(r.energy, 1);
    table.add(r.p99_response_ms, 1);
    table.add(r.rounds);
  }
  bench::print_panel(ctx, "GE sensitivity to the triggering parameters", table,
                     "the paper's (0.5 s, 8) sits in a flat region: idle-core "
                     "triggering dominates, so quality and energy barely move "
                     "unless the counter gets so large that batching delays "
                     "dispatch near the 150 ms deadline");
  return 0;
}
