// Fig. 3: service quality (a) and energy consumption (b) of GE, OQ, BE,
// FCFS, LJF and SJF across arrival rates, fixed 150 ms deadline windows.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Fig. 3",
                      "quality and energy of six scheduling algorithms");

  const std::vector<exp::SchedulerSpec> specs{
      exp::SchedulerSpec::parse("GE"),   exp::SchedulerSpec::parse("OQ"),
      exp::SchedulerSpec::parse("BE"),   exp::SchedulerSpec::parse("FCFS"),
      exp::SchedulerSpec::parse("LJF"),  exp::SchedulerSpec::parse("SJF")};
  const auto points = exp::sweep_arrival_rates(ctx.base, specs, ctx.rates, ctx.exec);

  bench::print_panel(
      ctx, "(a) service quality vs arrival rate",
      exp::series_table(points, "arrival_rate", bench::metric_quality),
      "GE stable at ~0.90 until overload; BE highest (1.0 then decaying); OQ "
      "slightly above GE then sagging under load; FCFS below; LJF/SJF worst");

  bench::print_panel(
      ctx, "(b) energy consumption (J) vs arrival rate",
      exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
      "GE cheapest among the quality-satisfying algorithms (paper: up to "
      "23.9% below BE); BE most expensive, flattening at the power budget; "
      "SJF energy falls at heavy load because it drops long jobs");

  // Headline number: best-case energy saving of GE vs BE.
  double best = 0.0;
  for (const auto& point : points) {
    const double ge_e = point.results[0].energy;
    const double be_e = point.results[2].energy;
    if (be_e > 0.0) {
      best = std::max(best, 1.0 - ge_e / be_e);
    }
  }
  std::printf("GE vs BE best-case energy saving over the sweep: %.1f%% (paper: 23.9%%)\n",
              best * 100.0);
  return 0;
}
