// Ablation: demand-distribution sensitivity.  Sec. IV-B claims the setup
// "works with different parameter values" of the bounded-Pareto demand
// distribution and only presents alpha=3, xmin=130, xmax=1000.  This bench
// sweeps the distribution while holding the *offered load* fixed (the
// arrival rate is rescaled by the mean demand), checking that GE still pins
// the quality promise and saves energy.
#include "fig_common.h"
#include "workload/distributions.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv, {150.0});
  bench::print_banner(ctx, "Ablation",
                      "bounded-Pareto demand parameters (fixed offered load)");

  struct Params {
    double alpha, xmin, xmax;
  };
  const Params sweep[] = {{1.5, 130.0, 1000.0}, {2.0, 130.0, 1000.0},
                          {3.0, 130.0, 1000.0}, {4.0, 130.0, 1000.0},
                          {3.0, 60.0, 2000.0},  {3.0, 250.0, 500.0}};
  const exp::ExperimentConfig base = ctx.base;
  const double reference_load =
      ctx.rates.front() * workload::BoundedParetoDistribution(
                              base.demand_alpha, base.demand_min, base.demand_max)
                              .mean();

  // Each parameter set reshapes the workload, so each is an engine point
  // (x = index into `sweep`); GE and BE pair up on the shared trace.
  std::vector<double> indices;
  for (std::size_t i = 0; i < sizeof(sweep) / sizeof(sweep[0]); ++i) {
    indices.push_back(static_cast<double>(i));
  }
  const auto points = exp::sweep(
      base, {exp::SchedulerSpec::parse("GE"), exp::SchedulerSpec::parse("BE")},
      indices,
      [&](exp::ExperimentConfig cfg, double index) {
        const Params& p = sweep[static_cast<std::size_t>(index)];
        cfg.demand_alpha = p.alpha;
        cfg.demand_min = p.xmin;
        cfg.demand_max = p.xmax;
        const double mean =
            workload::BoundedParetoDistribution(p.alpha, p.xmin, p.xmax).mean();
        cfg.arrival_rate = reference_load / mean;
        return cfg;
      },
      ctx.exec);

  util::Table table({"alpha", "xmin", "xmax", "mean_demand", "rate", "GE_quality",
                     "GE_energy_J", "BE_quality", "BE_energy_J", "saving"});
  for (const auto& point : points) {
    const Params& p = sweep[static_cast<std::size_t>(point.x)];
    const double mean =
        workload::BoundedParetoDistribution(p.alpha, p.xmin, p.xmax).mean();
    const exp::RunResult& ge = point.results[0];
    const exp::RunResult& be = point.results[1];
    table.begin_row();
    table.add(p.alpha, 1);
    table.add(p.xmin, 0);
    table.add(p.xmax, 0);
    table.add(mean, 1);
    table.add(reference_load / mean, 1);
    table.add(ge.quality, 4);
    table.add(ge.energy, 1);
    table.add(be.quality, 4);
    table.add(be.energy, 1);
    table.add(1.0 - ge.energy / be.energy, 4);
  }
  bench::print_panel(
      ctx, "GE vs BE across demand distributions (offered load held fixed)",
      table,
      "the Sec. IV-B claim holds: GE pins the quality at ~0.90 and saves "
      "double-digit energy for every tail index and bound combination; "
      "heavier tails (small alpha, wide bounds) give LF cutting more tail "
      "to shave and larger savings");
  return 0;
}
