// Fig. 8: the quality control policy (GE) versus the power control (BE-P)
// and speed control (BE-S) policies.  BE-P and BE-S are calibrated offline
// at the lightest sweep rate: the least budget / speed cap that still
// achieves Q_GE there (Sec. IV-F).
#include <cstdio>

#include "exp/calibrate.h"
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Fig. 8", "quality vs power vs speed control policies");

  // Calibrate at the server's design point (the critical load): the least
  // budget / speed cap whose BE run still delivers Q_GE there.
  exp::ExperimentConfig cal_cfg = ctx.base;
  cal_cfg.arrival_rate = ctx.base.critical_load;
  // Shorter calibration runs keep the bisection cheap; the knob transfers.
  cal_cfg.duration = std::min(cal_cfg.duration, 20.0);
  const exp::CalibrationResult budget_cal = exp::calibrate_budget_scale(cal_cfg);
  const exp::CalibrationResult speed_cal = exp::calibrate_speed_cap(cal_cfg);
  std::printf(
      "calibration at %.0f req/s: BE-P budget scale %.3f (%.0f W, quality %.3f, "
      "%d runs); BE-S speed cap %.3f GHz (quality %.3f, %d runs)\n\n",
      cal_cfg.arrival_rate, budget_cal.value, budget_cal.value * ctx.base.power_budget,
      budget_cal.quality, budget_cal.evaluations, speed_cal.value, speed_cal.quality,
      speed_cal.evaluations);

  exp::SchedulerSpec bep = exp::SchedulerSpec::parse("BE-P");
  bep.budget_scale = budget_cal.value;
  exp::SchedulerSpec bes = exp::SchedulerSpec::parse("BE-S");
  bes.speed_cap_ghz = speed_cal.value;
  const std::vector<exp::SchedulerSpec> specs{exp::SchedulerSpec::parse("GE"), bep,
                                              bes};
  const auto points = exp::sweep_arrival_rates(ctx.base, specs, ctx.rates, ctx.exec);

  bench::print_panel(
      ctx, "(a) service quality vs arrival rate",
      exp::series_table(points, "arrival_rate", bench::metric_quality),
      "GE holds ~0.90 across the sweep; BE-P and BE-S sag below the target "
      "once the load exceeds the calibration point (the critical load), "
      "converging with GE deep in overload.  (The paper additionally ranks "
      "BE-P above BE-S; with our calibration the two are close, see "
      "EXPERIMENTS.md)");

  bench::print_panel(
      ctx, "(b) energy consumption (J) vs arrival rate",
      exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
      "GE spends a little more energy than the two static control policies "
      "to keep the quality promise");
  return 0;
}
