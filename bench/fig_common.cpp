#include "fig_common.h"

#include <cstdio>
#include <iostream>

#include "exp/flags_config.h"

namespace ge::bench {

FigureContext parse_figure_args(int argc, const char* const* argv,
                                std::vector<double> default_rates) {
  util::Flags flags(argc, argv);
  FigureContext ctx;
  ctx.base = exp::ExperimentConfig::paper_defaults();
  ctx.base.duration = flags.get_double("seconds", 60.0);
  ctx.base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  ctx.base.num_servers = static_cast<std::size_t>(flags.get_int("servers", 1));
  const std::string dispatch = flags.get_string("dispatch", "");
  if (!dispatch.empty()) {
    ctx.base.dispatch = cluster::parse_dispatch_policy(dispatch);
  }
  for (double n : flags.get_double_list("server-cores", {})) {
    ctx.base.server_cores.push_back(static_cast<std::size_t>(n));
  }
  ctx.base.server_power_scale = flags.get_double_list("server-power-scale", {});
  ctx.base.server_max_ghz = flags.get_double_list("server-max-ghz", {});
  ctx.rates = flags.get_double_list("rates", std::move(default_rates));
  ctx.csv = flags.get_bool("csv", false);
  ctx.exec = exp::parse_execution_options(flags);
  return ctx;
}

void print_banner(const FigureContext& ctx, const std::string& figure,
                  const std::string& title) {
  std::printf("== %s: %s ==\n", figure.c_str(), title.c_str());
  std::printf(
      "config: m=%zu cores, H=%.0f W, P=%g*s^%g, c=%g, Q_GE=%.2f, "
      "deadline=%.0f ms, duration=%.0f s/point, seed=%llu\n",
      ctx.base.cores, ctx.base.power_budget, ctx.base.power_a, ctx.base.power_beta,
      ctx.base.quality_c, ctx.base.q_ge, ctx.base.deadline_interval * 1000.0,
      ctx.base.duration, static_cast<unsigned long long>(ctx.base.seed));
  std::printf("note: critical load %.0f req/s, overload point ~%.0f req/s\n\n",
              ctx.base.critical_load, ctx.base.overload_rate);
}

void print_panel(const FigureContext& ctx, const std::string& caption,
                 const util::Table& table, const std::string& paper_shape) {
  std::printf("-- %s --\n", caption.c_str());
  if (ctx.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::printf("paper shape: %s\n\n", paper_shape.c_str());
}

double metric_quality(const exp::RunResult& r) { return r.quality; }
double metric_energy(const exp::RunResult& r) { return r.energy; }

}  // namespace ge::bench
