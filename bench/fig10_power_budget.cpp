// Fig. 10: GE quality (a) and energy (b) under different total power
// budgets H in {80, 160, 320, 480} W.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Fig. 10", "effect of the total power budget");

  const std::vector<double> budgets{80.0, 160.0, 320.0, 480.0};
  std::vector<std::string> header{"arrival_rate"};
  for (double b : budgets) {
    header.push_back("H=" + util::format_double(b, 0) + "W");
  }
  util::Table quality_table(header);
  util::Table energy_table(header);
  for (double rate : ctx.rates) {
    quality_table.begin_row();
    energy_table.begin_row();
    quality_table.add(rate, 1);
    energy_table.add(rate, 1);
    for (double budget : budgets) {
      exp::ExperimentConfig cfg = ctx.base;
      cfg.arrival_rate = rate;
      cfg.power_budget = budget;
      const exp::RunResult r = exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"));
      quality_table.add(r.quality, 4);
      energy_table.add(r.energy, 1);
    }
  }
  bench::print_panel(ctx, "(a) GE service quality vs arrival rate per budget",
                     quality_table,
                     "large budgets are unnecessary under light load; under "
                     "heavy load more budget keeps quality stable (80 W "
                     "collapses first)");
  bench::print_panel(ctx, "(b) GE energy (J) vs arrival rate per budget",
                     energy_table,
                     "energy grows with load until the budget saturates, then "
                     "flattens -- the knee appears earlier for small budgets");
  return 0;
}
