// Fig. 10: GE quality (a) and energy (b) under different total power
// budgets H in {80, 160, 320, 480} W.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Fig. 10", "effect of the total power budget");

  const std::vector<double> budgets{80.0, 160.0, 320.0, 480.0};
  std::vector<exp::RunVariant> variants;
  for (double budget : budgets) {
    variants.push_back({"H=" + util::format_double(budget, 0) + "W",
                        exp::SchedulerSpec::parse("GE"),
                        [budget](exp::ExperimentConfig cfg) {
                          cfg.power_budget = budget;
                          return cfg;
                        }});
  }
  const auto points = exp::sweep_variants(
      ctx.base, variants, ctx.rates, exp::configure_arrival_rate, ctx.exec);
  bench::print_panel(ctx, "(a) GE service quality vs arrival rate per budget",
                     exp::series_table(points, "arrival_rate", bench::metric_quality),
                     "large budgets are unnecessary under light load; under "
                     "heavy load more budget keeps quality stable (80 W "
                     "collapses first)");
  bench::print_panel(ctx, "(b) GE energy (J) vs arrival rate per budget",
                     exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
                     "energy grows with load until the budget saturates, then "
                     "flattens -- the knee appears earlier for small budgets");
  return 0;
}
