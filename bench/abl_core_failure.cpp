// Ablation: fault injection.  k of the 16 cores fail halfway through the
// run; jobs pinned to them are stranded (no migration, Sec. II-B) and the
// survivors inherit the whole power budget.  Measures how gracefully GE's
// compensation absorbs a capacity loss the paper never models.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv, {150.0});
  bench::print_banner(ctx, "Ablation",
                      "core failures at t = duration/2 (150 req/s)");

  const auto points = exp::sweep(
      ctx.base,
      {exp::SchedulerSpec::parse("GE"), exp::SchedulerSpec::parse("BE")},
      {0.0, 2.0, 4.0, 8.0, 12.0},
      [&ctx](exp::ExperimentConfig cfg, double failed) {
        cfg.arrival_rate = ctx.rates.front();
        cfg.failure_cores = static_cast<std::size_t>(failed);
        cfg.failure_time = failed > 0.0 ? cfg.duration / 2.0 : -1.0;
        return cfg;
      },
      ctx.exec);

  util::Table table({"failed_cores", "GE_quality", "GE_energy_J", "GE_aes_frac",
                     "BE_quality", "BE_energy_J"});
  for (const auto& point : points) {
    const exp::RunResult& ge = point.results[0];
    const exp::RunResult& be = point.results[1];
    table.begin_row();
    table.add(static_cast<std::uint64_t>(point.x));
    table.add(ge.quality, 4);
    table.add(ge.energy, 1);
    table.add(ge.aes_fraction, 4);
    table.add(be.quality, 4);
    table.add(be.energy, 1);
  }
  bench::print_panel(
      ctx, "GE and BE under partial core failure", table,
      "losing a few cores barely dents quality (survivors inherit the budget "
      "and the convex power curve lets them run faster); GE drops its AES "
      "share to compensate; beyond ~half the cores the capacity loss wins");
  return 0;
}
