// Ablation: heterogeneous core efficiency (the paper's future-work pointer
// at "different hardware platforms").  The power scale factor a_i rises
// linearly across the cores, so the same speed costs up to `spread` times
// more power on the worst core; total budget and workload stay fixed.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv, {150.0});
  bench::print_banner(ctx, "Ablation",
                      "core-efficiency heterogeneity (a_i spread, 150 req/s)");

  const auto points = exp::sweep(
      ctx.base,
      {exp::SchedulerSpec::parse("GE"), exp::SchedulerSpec::parse("BE")},
      {1.0, 1.5, 2.0, 3.0, 4.0},
      [&ctx](exp::ExperimentConfig cfg, double spread) {
        cfg.arrival_rate = ctx.rates.front();
        cfg.hetero_spread = spread;
        return cfg;
      },
      ctx.exec);

  util::Table table({"spread", "GE_quality", "GE_energy_J", "GE_energy_cov",
                     "BE_quality", "BE_energy_J", "GE_saving"});
  for (const auto& point : points) {
    const exp::RunResult& ge = point.results[0];
    const exp::RunResult& be = point.results[1];
    table.begin_row();
    table.add(point.x, 1);
    table.add(ge.quality, 4);
    table.add(ge.energy, 1);
    table.add(ge.energy_cov, 4);
    table.add(be.quality, 4);
    table.add(be.energy, 1);
    table.add(1.0 - ge.energy / be.energy, 4);
  }
  bench::print_panel(
      ctx, "GE vs BE as the efficiency spread grows", table,
      "inefficient silicon raises energy for both schedulers while GE's "
      "relative saving persists; per-core energy imbalance (CoV) grows with "
      "the spread because equal speeds now draw unequal power.  An "
      "efficiency-aware distribution policy is an open extension -- ES/WF "
      "split watts, not work, so they do not exploit the efficient cores");
  return 0;
}
