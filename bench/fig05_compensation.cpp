// Fig. 5: the quality-compensation policy -- GE with vs without the
// AES->BQ switch.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Fig. 5", "impact of the quality compensation policy");

  const std::vector<exp::SchedulerSpec> specs{
      exp::SchedulerSpec::parse("GE"), exp::SchedulerSpec::parse("GE-NoComp")};
  const auto points = exp::sweep_arrival_rates(ctx.base, specs, ctx.rates, ctx.exec);

  bench::print_panel(
      ctx, "(a) service quality vs arrival rate",
      exp::series_table(points, "arrival_rate", bench::metric_quality),
      "with compensation the quality holds at ~0.90; without it the LF "
      "cutting overshoots and quality drifts below the target as load grows");

  bench::print_panel(
      ctx, "(b) energy consumption (J) vs arrival rate",
      exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
      "compensation costs slightly more energy (the BQ episodes) in exchange "
      "for the quality guarantee");
  return 0;
}
