// Ablation: optimality gap.  Compares GE's online, non-preemptive,
// partitioned schedule against the clairvoyant fluid YDS reference
// (offline_reference.h) on identical traces.  Short horizons keep the
// O(n^2)-per-round YDS affordable.
#include <cstdio>

#include "exp/offline_reference.h"
#include "fig_common.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ge;
  bench::FigureContext ctx =
      bench::parse_figure_args(argc, argv, {100.0, 150.0, 200.0});
  const util::Flags flags(argc, argv);
  // Figure-default 60 s is too long for the quadratic reference; use a few
  // seconds unless the caller insists.
  ctx.base.duration = flags.get_double("seconds", 4.0);
  bench::print_banner(ctx, "Ablation",
                      "GE vs clairvoyant fluid-YDS reference (offline, "
                      "preemptive, unpartitioned, no budget)");

  // The offline YDS reference is not a run_simulation task, so this bench
  // fans out over the engine's substrate directly: one ThreadPool iteration
  // per rate computes the shared trace, the GE run and the reference, and
  // the rows are rendered in rate order afterwards.
  struct Row {
    exp::RunResult ge;
    exp::OfflineReference ref;
  };
  std::vector<Row> rows(ctx.rates.size());
  util::ThreadPool pool(ctx.exec.jobs == 0 ? util::ThreadPool::default_concurrency()
                                           : ctx.exec.jobs);
  pool.parallel_for(ctx.rates.size(), [&](std::size_t i) {
    exp::ExperimentConfig cfg = ctx.base;
    cfg.arrival_rate = ctx.rates[i];
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    rows[i].ge = exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
    rows[i].ref = exp::offline_reference(trace, cfg.q_ge, cfg);
  });

  util::Table table({"arrival_rate", "GE_quality", "GE_energy_J", "ref_quality",
                     "ref_energy_J", "gap_ratio", "ref_peak_W", "ref_feasible"});
  for (std::size_t i = 0; i < ctx.rates.size(); ++i) {
    const Row& row = rows[i];
    table.begin_row();
    table.add(ctx.rates[i], 1);
    table.add(row.ge.quality, 4);
    table.add(row.ge.energy, 1);
    table.add(row.ref.quality, 4);
    table.add(row.ref.energy, 1);
    table.add(row.ref.energy > 0.0 ? row.ge.energy / row.ref.energy : 0.0, 3);
    table.add(row.ref.peak_power, 1);
    table.add(std::string(row.ref.within_budget ? "yes" : "no"));
  }
  bench::print_panel(
      ctx, "GE energy vs the idealised offline reference", table,
      "the reference relaxes onlineness, partitioning, preemption and the "
      "power budget at once, so a gap well under ~2x means the GE heuristic "
      "captures most of the savings available at the same quality level; the "
      "gap narrows as load grows (less timing slack to exploit)");
  return 0;
}
