// Ablation: optimality gap.  Compares GE's online, non-preemptive,
// partitioned schedule against the clairvoyant fluid YDS reference
// (offline_reference.h) on identical traces.  Short horizons keep the
// O(n^2)-per-round YDS affordable.
#include <cstdio>

#include "exp/offline_reference.h"
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  bench::FigureContext ctx =
      bench::parse_figure_args(argc, argv, {100.0, 150.0, 200.0});
  const util::Flags flags(argc, argv);
  // Figure-default 60 s is too long for the quadratic reference; use a few
  // seconds unless the caller insists.
  ctx.base.duration = flags.get_double("seconds", 4.0);
  bench::print_banner(ctx, "Ablation",
                      "GE vs clairvoyant fluid-YDS reference (offline, "
                      "preemptive, unpartitioned, no budget)");

  util::Table table({"arrival_rate", "GE_quality", "GE_energy_J", "ref_quality",
                     "ref_energy_J", "gap_ratio", "ref_peak_W", "ref_feasible"});
  for (double rate : ctx.rates) {
    exp::ExperimentConfig cfg = ctx.base;
    cfg.arrival_rate = rate;
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    const exp::RunResult ge =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
    const exp::OfflineReference ref = exp::offline_reference(trace, cfg.q_ge, cfg);
    table.begin_row();
    table.add(rate, 1);
    table.add(ge.quality, 4);
    table.add(ge.energy, 1);
    table.add(ref.quality, 4);
    table.add(ref.energy, 1);
    table.add(ref.energy > 0.0 ? ge.energy / ref.energy : 0.0, 3);
    table.add(ref.peak_power, 1);
    table.add(std::string(ref.within_budget ? "yes" : "no"));
  }
  bench::print_panel(
      ctx, "GE energy vs the idealised offline reference", table,
      "the reference relaxes onlineness, partitioning, preemption and the "
      "power budget at once, so a gap well under ~2x means the GE heuristic "
      "captures most of the savings available at the same quality level; the "
      "gap narrows as load grows (less timing slack to exploit)");
  return 0;
}
