// Fig. 7: quality (a) and energy (b) of the Water-Filling vs Equal-Sharing
// power-distribution policies inside the GE scheduler.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(
      argc, argv, {125.0, 150.0, 175.0, 200.0, 225.0, 250.0});
  bench::print_banner(ctx, "Fig. 7", "quality and energy: WF vs ES");

  const std::vector<exp::SchedulerSpec> specs{
      exp::SchedulerSpec::parse("GE-WF"), exp::SchedulerSpec::parse("GE-ES")};
  const auto points = exp::sweep_arrival_rates(ctx.base, specs, ctx.rates, ctx.exec);

  bench::print_panel(
      ctx, "(a) service quality vs arrival rate",
      exp::series_table(points, "arrival_rate", bench::metric_quality),
      "equal under light load; WF achieves higher quality under heavy load "
      "(it funnels unused budget to the loaded cores)");

  bench::print_panel(
      ctx, "(b) energy consumption (J) vs arrival rate",
      exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
      "ES consumes less energy under light load (no speed thrashing); the "
      "gap closes as the load approaches saturation -- hence the hybrid "
      "policy: ES below the critical load, WF above");
  return 0;
}
