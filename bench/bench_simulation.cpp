// End-to-end simulator throughput (google-benchmark): how many simulated
// seconds / scheduled jobs per wall-clock second the stack sustains for the
// main schedulers.
//
// Emitting the machine-readable trajectory (see docs/BENCHMARKS.md):
//
//   bench_simulation --benchmark_repetitions=5 \
//     --benchmark_report_aggregates_only=true \
//     --benchmark_format=json --benchmark_out=BENCH_simulation.json
#include <benchmark/benchmark.h>

#include "exp/config.h"
#include "exp/experiment_engine.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "obs/telemetry.h"

namespace {

// Stamp the *project's* build type into the JSON context.  The
// `library_build_type` field describes how the installed google-benchmark
// library was compiled, not this binary, so tools/bench_compare.py gates on
// this key instead (debug-built numbers must never become baselines).
const bool ge_build_type_registered = [] {
#ifdef NDEBUG
  benchmark::AddCustomContext("ge_build_type", "release");
#else
  benchmark::AddCustomContext("ge_build_type", "debug");
#endif
  return true;
}();

ge::exp::ExperimentConfig bench_config(double rate) {
  ge::exp::ExperimentConfig cfg = ge::exp::ExperimentConfig::paper_defaults();
  cfg.arrival_rate = rate;
  cfg.duration = 5.0;
  cfg.seed = 99;
  return cfg;
}

void run_scheduler(benchmark::State& state, const char* name, double rate) {
  const ge::exp::ExperimentConfig cfg = bench_config(rate);
  const ge::workload::Trace trace =
      ge::workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    const ge::exp::RunResult r =
        ge::exp::run_simulation(cfg, ge::exp::SchedulerSpec::parse(name), trace);
    jobs += r.released;
    benchmark::DoNotOptimize(r.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["sim_seconds_per_iter"] = cfg.duration;
}

void BM_SimulateGE_Light(benchmark::State& state) { run_scheduler(state, "GE", 100.0); }
void BM_SimulateGE_Heavy(benchmark::State& state) { run_scheduler(state, "GE", 220.0); }
void BM_SimulateBE_Heavy(benchmark::State& state) { run_scheduler(state, "BE", 220.0); }
void BM_SimulateFCFS_Heavy(benchmark::State& state) {
  run_scheduler(state, "FCFS", 220.0);
}
// Speed-scaling zoo at heavy load: OA re-solves the YDS staircase on every
// arrival, AVR only maintains density suffix sums, BKP adds the estimator
// re-sampled on the refresh grid -- the spread is the planner cost.
void BM_SimulateOA_Heavy(benchmark::State& state) {
  run_scheduler(state, "OA", 220.0);
}
void BM_SimulateAVR_Heavy(benchmark::State& state) {
  run_scheduler(state, "AVR", 220.0);
}
void BM_SimulateBKP_Heavy(benchmark::State& state) {
  run_scheduler(state, "BKP", 220.0);
}
void BM_SimulateGE_Discrete(benchmark::State& state) {
  ge::exp::ExperimentConfig cfg = bench_config(180.0);
  cfg.discrete_speeds = true;
  const ge::workload::Trace trace =
      ge::workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ge::exp::run_simulation(cfg, ge::exp::SchedulerSpec::parse("GE"), trace));
  }
}

// Telemetry hooks armed (metrics + trace buffer): the overhead the
// observability layer adds to a heavy GE run.
void BM_SimulateGE_Telemetry(benchmark::State& state) {
  const ge::exp::ExperimentConfig cfg = bench_config(220.0);
  const ge::workload::Trace trace =
      ge::workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  for (auto _ : state) {
    ge::obs::RunTelemetry telemetry;
    benchmark::DoNotOptimize(ge::exp::run_simulation(
        cfg, ge::exp::SchedulerSpec::parse("GE"), trace, nullptr, &telemetry));
  }
  state.counters["sim_seconds_per_iter"] = cfg.duration;
}

// Cluster run: 4 servers behind JSQ dispatch at the same per-server load as
// the heavy single-server case -- the dispatch tier plus the 4x event
// volume is the cost over BM_SimulateGE_Heavy.
void BM_SimulateGE_Cluster4(benchmark::State& state) {
  ge::exp::ExperimentConfig cfg = bench_config(4.0 * 220.0);
  cfg.num_servers = 4;
  cfg.dispatch = ge::cluster::DispatchPolicy::kJsq;
  const ge::workload::Trace trace =
      ge::workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    const ge::exp::RunResult r =
        ge::exp::run_simulation(cfg, ge::exp::SchedulerSpec::parse("GE"), trace);
    jobs += r.released;
    benchmark::DoNotOptimize(r.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["sim_seconds_per_iter"] = cfg.duration;
}

// Streaming replay of the heavy GE case: generation, release, retirement
// and accounting all happen inside the run (no materialised trace), which
// is the 10^6+-job path.  Compare against BM_SimulateGE_Heavy for the cost
// (or saving) of the arena pipeline; results are bit-identical.
void BM_SimulateGE_Stream(benchmark::State& state) {
  ge::exp::ExperimentConfig cfg = bench_config(220.0);
  cfg.stream = true;
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    const ge::exp::RunResult r =
        ge::exp::run_simulation(cfg, ge::exp::SchedulerSpec::parse("GE"));
    jobs += r.released;
    benchmark::DoNotOptimize(r.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["sim_seconds_per_iter"] = cfg.duration;
}

// Heavy GE case on the calendar event queue (--event-queue calendar).
void BM_SimulateGE_CalendarQueue(benchmark::State& state) {
  ge::exp::ExperimentConfig cfg = bench_config(220.0);
  cfg.event_queue = ge::sim::EventQueueKind::kCalendar;
  const ge::workload::Trace trace =
      ge::workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    const ge::exp::RunResult r =
        ge::exp::run_simulation(cfg, ge::exp::SchedulerSpec::parse("GE"), trace);
    jobs += r.released;
    benchmark::DoNotOptimize(r.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["sim_seconds_per_iter"] = cfg.duration;
}

// Fig. 3-style comparison: GE/BE/FCFS across three load points through the
// experiment engine, the shape every figure binary runs.
void BM_SimulateFig03Sweep(benchmark::State& state) {
  const double rates[] = {100.0, 180.0, 220.0};
  const char* schedulers[] = {"GE", "BE", "FCFS"};
  ge::exp::ExperimentPlan plan;
  std::size_t point = 0;
  for (double rate : rates) {
    ge::exp::ExperimentConfig cfg = bench_config(rate);
    cfg.duration = 2.0;
    for (const char* name : schedulers) {
      plan.add(cfg, ge::exp::SchedulerSpec::parse(name), point);
    }
    ++point;
  }
  const ge::exp::ExperimentEngine engine(ge::exp::ExecutionOptions{1, false, {}});
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    const std::vector<ge::exp::RunResult> results = engine.run(plan);
    for (const ge::exp::RunResult& r : results) {
      jobs += r.released;
    }
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
}

BENCHMARK(BM_SimulateGE_Light)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateGE_Heavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateBE_Heavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateFCFS_Heavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateOA_Heavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateAVR_Heavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateBKP_Heavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateGE_Discrete)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateGE_Telemetry)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateGE_Cluster4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateGE_Stream)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateGE_CalendarQueue)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateFig03Sweep)->Unit(benchmark::kMillisecond);

}  // namespace
