// Fig. 12: GE with continuous versus discrete speed scaling (0.2 GHz
// operating-point ladder, rectification rule of Sec. IV-A-5).
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Fig. 12", "continuous vs discrete speed scaling");

  const std::vector<exp::RunVariant> variants{
      {"continuous", exp::SchedulerSpec::parse("GE"), nullptr},
      {"discrete", exp::SchedulerSpec::parse("GE"),
       [](exp::ExperimentConfig cfg) {
         cfg.discrete_speeds = true;
         return cfg;
       }}};
  const auto points = exp::sweep_variants(
      ctx.base, variants, ctx.rates, exp::configure_arrival_rate, ctx.exec);
  bench::print_panel(ctx, "(a) service quality vs arrival rate",
                     exp::series_table(points, "arrival_rate", bench::metric_quality),
                     "discrete scaling loses a little quality under load "
                     "(cores cannot hit the ideal speed)");
  bench::print_panel(ctx, "(b) energy (J) vs arrival rate",
                     exp::series_table(points, "arrival_rate", bench::metric_energy, 1),
                     "discrete scaling consumes marginally different energy "
                     "for the same reason (paper: marginally less)");
  return 0;
}
