// Fig. 12: GE with continuous versus discrete speed scaling (0.2 GHz
// operating-point ladder, rectification rule of Sec. IV-A-5).
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Fig. 12", "continuous vs discrete speed scaling");

  util::Table quality_table({"arrival_rate", "continuous", "discrete"});
  util::Table energy_table({"arrival_rate", "continuous", "discrete"});
  for (double rate : ctx.rates) {
    exp::ExperimentConfig cfg = ctx.base;
    cfg.arrival_rate = rate;
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    const exp::RunResult cont =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
    cfg.discrete_speeds = true;
    const exp::RunResult disc =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
    quality_table.begin_row();
    quality_table.add(rate, 1);
    quality_table.add(cont.quality, 4);
    quality_table.add(disc.quality, 4);
    energy_table.begin_row();
    energy_table.add(rate, 1);
    energy_table.add(cont.energy, 1);
    energy_table.add(disc.energy, 1);
  }
  bench::print_panel(ctx, "(a) service quality vs arrival rate", quality_table,
                     "discrete scaling loses a little quality under load "
                     "(cores cannot hit the ideal speed)");
  bench::print_panel(ctx, "(b) energy (J) vs arrival rate", energy_table,
                     "discrete scaling consumes marginally different energy "
                     "for the same reason (paper: marginally less)");
  return 0;
}
