// Ablation: response-time percentiles.  The paper optimises energy under a
// quality constraint; this bench shows what that costs (or doesn't) in tail
// latency, the metric the related tail-latency work (AccuracyTrader, CLAP)
// optimises directly.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace ge;
  const bench::FigureContext ctx = bench::parse_figure_args(argc, argv);
  bench::print_banner(ctx, "Ablation", "response-time percentiles per scheduler");

  const std::vector<exp::SchedulerSpec> specs{
      exp::SchedulerSpec::parse("GE"), exp::SchedulerSpec::parse("BE"),
      exp::SchedulerSpec::parse("FCFS"), exp::SchedulerSpec::parse("SJF")};
  const auto points = exp::sweep_arrival_rates(ctx.base, specs, ctx.rates, ctx.exec);

  bench::print_panel(
      ctx, "(a) mean response time (ms)",
      exp::series_table(points, "arrival_rate",
                        [](const exp::RunResult& r) { return r.mean_response_ms; },
                        2),
      "GE answers *earlier* than BE on average: cut jobs complete before "
      "their deadline instead of running to full demand");

  bench::print_panel(
      ctx, "(b) p99 response time (ms)",
      exp::series_table(points, "arrival_rate",
                        [](const exp::RunResult& r) { return r.p99_response_ms; },
                        2),
      "all batch schedulers ride close to the 150 ms deadline at p99 (the "
      "energy-optimal speed finishes work just in time); queueing policies "
      "hit the deadline exactly for jobs that expire in the queue");
  return 0;
}
