// The cluster layer: N multicore servers, each with its own scheduler
// instance, behind a pluggable dispatch tier.
//
// A Cluster owns one ClusterNode per server -- the MulticoreServer, its
// per-server QualityMonitor (schedulers compensate against their *own*
// quality feedback, not the fleet's), an optional per-server discrete DVFS
// ladder, and the Scheduler built by a caller-supplied factory.  All nodes
// share one sim::Simulator, so a cluster run is a single deterministic
// event sequence; the dispatcher routes each arrival to a node, and
// deadline events follow the job to wherever it was dispatched.
//
// The single-server experiment is the one-node cluster with the passthrough
// dispatcher: every hook below degenerates to exactly the pre-cluster code
// path (the aggregation loops start from the identity element and add one
// term, which is bit-exact), so `num_servers == 1` reproduces the
// single-server results bit-identically -- the golden test in
// tests/test_cluster.cpp pins that contract.
//
// Layering: cluster sits between server/core and exp.  It deliberately does
// not know about ExperimentConfig or SchedulerSpec; exp::run_simulation
// translates its config into NodeSpecs and a scheduler factory, which keeps
// the dependency graph acyclic and lets tests assemble clusters directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/dispatcher.h"
#include "core/scheduler.h"
#include "power/discrete_speed.h"
#include "quality/quality_monitor.h"
#include "server/multicore_server.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace ge::obs {
class MetricsRegistry;
}

namespace ge::cluster {

// Everything needed to build one server of the cluster.  Core counts, power
// models and DVFS ladders may differ per node (heterogeneous fleets).
struct NodeSpec {
  std::vector<power::PowerModel> core_models;  // size = node core count
  double power_budget = 0.0;                   // W, per server
  std::size_t monitor_window = 0;              // 0 = cumulative monitor
  // Discrete DVFS ladder; ignored when discrete_speeds is false.
  bool discrete_speeds = false;
  double discrete_step_ghz = 0.2;
  double discrete_max_ghz = 3.2;
  double units_per_ghz = 1000.0;
};

// One server plus its private scheduler stack.
class ClusterNode {
 public:
  server::MulticoreServer& server() noexcept { return *server_; }
  const server::MulticoreServer& server() const noexcept { return *server_; }
  sched::Scheduler& scheduler() noexcept { return *scheduler_; }
  const sched::Scheduler& scheduler() const noexcept { return *scheduler_; }
  quality::QualityMonitor& monitor() noexcept { return *monitor_; }
  const quality::QualityMonitor& monitor() const noexcept { return *monitor_; }
  const power::DiscreteSpeedTable* speed_table() const noexcept {
    return table_.get();
  }
  // Jobs dispatched to this node so far.
  std::uint64_t dispatched() const noexcept { return dispatched_; }

 private:
  friend class Cluster;
  std::unique_ptr<power::DiscreteSpeedTable> table_;
  std::unique_ptr<server::MulticoreServer> server_;
  std::unique_ptr<quality::QualityMonitor> monitor_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::uint64_t dispatched_ = 0;
};

class Cluster final : public DispatchView {
 public:
  // Builds one scheduler for a node; called once per node, in node order
  // (relevant when telemetry is on: metric handles are created in node
  // order, which keeps registry output deterministic).
  using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>(
      const sched::SchedulerEnv& env, const power::DiscreteSpeedTable* table)>;

  // `quality_function` must outlive the cluster.  `dispatch_seed` feeds the
  // random policy's private stream.  A one-node cluster always uses the
  // passthrough policy regardless of `policy` (there is nothing to decide,
  // and forcing it keeps single-server runs free of dispatcher state).
  Cluster(const std::vector<NodeSpec>& nodes,
          const quality::QualityFunction& quality_function,
          const SchedulerFactory& factory, DispatchPolicy policy,
          std::uint64_t dispatch_seed, sim::Simulator& sim);

  std::size_t size() const noexcept { return nodes_.size(); }
  ClusterNode& node(std::size_t i);
  const ClusterNode& node(std::size_t i) const;
  Dispatcher& dispatcher() noexcept { return *dispatcher_; }

  // -- event-facing entry points (the runner schedules these) --------------
  void start();                             // scheduler->start(), node order
  void on_job_arrival(workload::Job* job);  // dispatch, then forward
  void on_deadline(workload::Job* job);     // forward to the job's node
  void finish();                            // scheduler->finish(), node order

  // Node the job was dispatched to; checked error if it never arrived.
  std::size_t server_of(const workload::Job& job) const;

  // -- DispatchView ---------------------------------------------------------
  std::size_t num_servers() const override { return nodes_.size(); }
  std::size_t in_flight(std::size_t server) const override;
  double consumed_energy(std::size_t server) const override;
  std::size_t online_cores(std::size_t server) const override;

  // -- cluster-wide aggregates (sum over nodes, node order) -----------------
  std::size_t total_cores() const noexcept { return total_cores_; }
  double total_energy() const;
  double total_busy_time() const;
  double total_power(double t) const;
  std::size_t total_backlog() const;
  int busy_cores(double t) const;
  util::TimeWeightedStats aggregate_speed_stats() const;
  // Monitored quality: node 0's monitor for a one-node cluster (bit-exact
  // with the pre-cluster runner, windowed or not); the pooled cumulative
  // ratio sum(achieved) / sum(potential) otherwise.
  double monitored_quality() const;

  // End-of-run telemetry for a multi-node cluster: cluster.servers, then
  // per node (in node order) the "sK."-prefixed dispatch count and server
  // metrics.  The one-node cluster must NOT use this -- the runner exports
  // the node's server metrics unprefixed, preserving the single-server
  // metric schema byte-for-byte.
  void export_metrics(obs::MetricsRegistry& registry, double elapsed) const;

 private:
  sim::Simulator* sim_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::size_t total_cores_ = 0;
};

}  // namespace ge::cluster
