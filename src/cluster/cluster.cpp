#include "cluster/cluster.h"

#include <string>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/check.h"
#include "workload/job.h"

namespace ge::cluster {

Cluster::Cluster(const std::vector<NodeSpec>& nodes,
                 const quality::QualityFunction& quality_function,
                 const SchedulerFactory& factory, DispatchPolicy policy,
                 std::uint64_t dispatch_seed, sim::Simulator& sim)
    : sim_(&sim) {
  GE_CHECK(!nodes.empty(), "cluster needs at least one server");
  GE_CHECK(factory != nullptr, "cluster needs a scheduler factory");
  nodes_.reserve(nodes.size());
  for (const NodeSpec& spec : nodes) {
    auto node = std::make_unique<ClusterNode>();
    node->server_ = std::make_unique<server::MulticoreServer>(
        spec.core_models, spec.power_budget, sim);
    node->monitor_ = std::make_unique<quality::QualityMonitor>(
        quality_function, spec.monitor_window);
    if (spec.discrete_speeds) {
      node->table_ = std::make_unique<power::DiscreteSpeedTable>(
          power::DiscreteSpeedTable::uniform_ghz(
              spec.discrete_step_ghz, spec.discrete_max_ghz, spec.units_per_ghz));
    }
    sched::SchedulerEnv env;
    env.sim = sim_;
    env.server = node->server_.get();
    env.quality_function = &quality_function;
    env.monitor = node->monitor_.get();
    node->scheduler_ = factory(env, node->table_.get());
    GE_CHECK(node->scheduler_ != nullptr, "scheduler factory returned null");

    sched::Scheduler* scheduler = node->scheduler_.get();
    for (std::size_t i = 0; i < node->server_->core_count(); ++i) {
      node->server_->core(i).set_job_finished_callback(
          [scheduler](workload::Job* job) { scheduler->on_job_finished(job); });
      node->server_->core(i).set_idle_callback(
          [scheduler](int core_id) { scheduler->on_core_idle(core_id); });
    }
    total_cores_ += node->server_->core_count();
    nodes_.push_back(std::move(node));
  }
  // A one-node cluster never consults its dispatcher state, so force the
  // passthrough: single-server runs stay independent of --dispatch.
  const DispatchPolicy effective =
      nodes_.size() == 1 ? DispatchPolicy::kSingle : policy;
  dispatcher_ = make_dispatcher(effective, *this, dispatch_seed);
}

ClusterNode& Cluster::node(std::size_t i) {
  GE_CHECK(i < nodes_.size(), "cluster node index out of range");
  return *nodes_[i];
}

const ClusterNode& Cluster::node(std::size_t i) const {
  GE_CHECK(i < nodes_.size(), "cluster node index out of range");
  return *nodes_[i];
}

void Cluster::start() {
  for (auto& node : nodes_) {
    node->scheduler_->start();
  }
}

void Cluster::on_job_arrival(workload::Job* job) {
  const std::size_t s = dispatcher_->pick(*job);
  GE_CHECK(s < nodes_.size(), "dispatcher picked a server that does not exist");
  job->server = static_cast<std::int32_t>(s);
  ++nodes_[s]->dispatched_;
  if (nodes_.size() > 1) {
    if (obs::Telemetry* tel = sim_->telemetry(); tel != nullptr && tel->trace) {
      obs::TraceEvent ev;
      ev.type = obs::TraceEventType::kDispatch;
      ev.t = job->arrival;
      ev.job = static_cast<std::int64_t>(job->id);
      ev.core = static_cast<std::int32_t>(s);  // server index, not a core
      ev.a = static_cast<double>(in_flight(s) - 1);  // queue seen at dispatch
      tel->trace->push(ev);
    }
  }
  nodes_[s]->scheduler_->on_job_arrival(job);
}

void Cluster::on_deadline(workload::Job* job) {
  nodes_[server_of(*job)]->scheduler_->on_deadline(job);
}

void Cluster::finish() {
  for (auto& node : nodes_) {
    node->scheduler_->finish();
  }
}

std::size_t Cluster::server_of(const workload::Job& job) const {
  GE_CHECK(job.server >= 0 && static_cast<std::size_t>(job.server) < nodes_.size(),
           "job was never dispatched to a server");
  return static_cast<std::size_t>(job.server);
}

std::size_t Cluster::in_flight(std::size_t server) const {
  const ClusterNode& node = *nodes_[server];
  return static_cast<std::size_t>(node.dispatched_ -
                                  node.monitor_->settled_jobs());
}

double Cluster::consumed_energy(std::size_t server) const {
  return nodes_[server]->server_->total_energy();
}

std::size_t Cluster::online_cores(std::size_t server) const {
  return nodes_[server]->server_->online_cores();
}

double Cluster::total_energy() const {
  double total = 0.0;
  for (const auto& node : nodes_) {
    total += node->server_->total_energy();
  }
  return total;
}

double Cluster::total_busy_time() const {
  double total = 0.0;
  for (const auto& node : nodes_) {
    total += node->server_->total_busy_time();
  }
  return total;
}

double Cluster::total_power(double t) const {
  double total = 0.0;
  for (const auto& node : nodes_) {
    total += node->server_->total_power(t);
  }
  return total;
}

std::size_t Cluster::total_backlog() const {
  std::size_t total = 0;
  for (const auto& node : nodes_) {
    total += node->scheduler_->backlog();
  }
  return total;
}

int Cluster::busy_cores(double t) const {
  int busy = 0;
  for (const auto& node : nodes_) {
    for (std::size_t i = 0; i < node->server_->core_count(); ++i) {
      busy += node->server_->core(i).busy(t) ? 1 : 0;
    }
  }
  return busy;
}

util::TimeWeightedStats Cluster::aggregate_speed_stats() const {
  util::TimeWeightedStats stats;
  for (const auto& node : nodes_) {
    stats.merge(node->server_->aggregate_speed_stats());
  }
  return stats;
}

double Cluster::monitored_quality() const {
  if (nodes_.size() == 1) {
    return nodes_.front()->monitor_->quality();
  }
  double achieved = 0.0;
  double potential = 0.0;
  for (const auto& node : nodes_) {
    achieved += node->monitor_->achieved_sum();
    potential += node->monitor_->potential_sum();
  }
  return potential > 0.0 ? achieved / potential : 1.0;
}

void Cluster::export_metrics(obs::MetricsRegistry& registry,
                             double elapsed) const {
  registry.gauge("cluster.servers", "servers", obs::Gauge::Merge::kMax)
      .set(static_cast<double>(nodes_.size()));
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    const std::string prefix = "s" + std::to_string(s) + ".";
    registry.counter(prefix + "dispatched_jobs", "jobs")
        .add(static_cast<double>(nodes_[s]->dispatched_));
    nodes_[s]->server_->export_metrics(registry, elapsed, prefix);
  }
}

}  // namespace ge::cluster
