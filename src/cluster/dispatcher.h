// Dispatch tier of the cluster layer: who decides which server a request
// lands on.
//
// Once there is more than one server, the dispatch decision dominates the
// energy/quality outcome (Kling & Pietrzyk, "Profitable Scheduling on
// Multiple Speed-Scalable Processors"): a scheduler can only cut or speed-
// scale the work it was given.  The Dispatcher interface isolates that
// decision so policies are plug-ins -- the simulation runner calls pick()
// exactly once per arrival, in arrival order, which keeps every policy
// deterministic for a fixed seed (the random policy carries its own
// ge::util::Rng stream, derived from the run seed and independent of the
// workload's).
//
// Policies observe the cluster through DispatchView, a read-only snapshot
// interface: in-flight job counts (dispatched minus settled), accumulated
// dynamic energy, and online-core capacity.  They never mutate server state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.h"

namespace ge::workload {
struct Job;
}

namespace ge::cluster {

enum class DispatchPolicy {
  kSingle,       // passthrough: every job to server 0 (the single-server path)
  kRandom,       // uniformly random server, from a dedicated seeded stream
  kRoundRobin,   // arrival order modulo server count
  kJsq,          // join-shortest-queue: fewest in-flight jobs per online core
  kLeastEnergy,  // power-aware: least accumulated dynamic energy so far
};

// "single", "random", "rr", "jsq", "least-energy".
const char* to_string(DispatchPolicy policy) noexcept;

// Parses the names above (aliases: "round-robin" for rr, "power" for
// least-energy); case-insensitive, checked error on anything else.
DispatchPolicy parse_dispatch_policy(const std::string& name);

// Read-only view of the live cluster a policy may consult.  Implemented by
// cluster::Cluster; a test can implement it directly to unit-test policies.
class DispatchView {
 public:
  virtual ~DispatchView() = default;
  virtual std::size_t num_servers() const = 0;
  // Jobs dispatched to `server` and not yet settled.
  virtual std::size_t in_flight(std::size_t server) const = 0;
  // Dynamic energy (J) the server consumed so far.
  virtual double consumed_energy(std::size_t server) const = 0;
  // Cores still online on the server (capacity weight for JSQ).
  virtual std::size_t online_cores(std::size_t server) const = 0;
};

class Dispatcher {
 public:
  Dispatcher(const DispatchView& view, DispatchPolicy policy)
      : view_(view), policy_(policy) {}
  virtual ~Dispatcher() = default;

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // The server `job` is sent to; called once per arrival, in arrival order.
  virtual std::size_t pick(const workload::Job& job) = 0;

  DispatchPolicy policy() const noexcept { return policy_; }
  const char* name() const noexcept { return to_string(policy_); }

 protected:
  const DispatchView& view_;

 private:
  DispatchPolicy policy_;
};

// Builds the policy.  `view` must outlive the dispatcher; `seed` feeds the
// random policy's private stream (ignored by the deterministic policies).
std::unique_ptr<Dispatcher> make_dispatcher(DispatchPolicy policy,
                                            const DispatchView& view,
                                            std::uint64_t seed);

}  // namespace ge::cluster
