#include "cluster/dispatcher.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"
#include "workload/job.h"

namespace ge::cluster {
namespace {

// Decorrelates the dispatch stream from the workload generator's streams,
// which are split() children of the raw run seed.
constexpr std::uint64_t kDispatchSeedSalt = 0xd15ba7c4ULL;

class SingleDispatcher final : public Dispatcher {
 public:
  explicit SingleDispatcher(const DispatchView& view)
      : Dispatcher(view, DispatchPolicy::kSingle) {}
  std::size_t pick(const workload::Job&) override { return 0; }
};

class RandomDispatcher final : public Dispatcher {
 public:
  RandomDispatcher(const DispatchView& view, std::uint64_t seed)
      : Dispatcher(view, DispatchPolicy::kRandom), rng_(seed ^ kDispatchSeedSalt) {}
  std::size_t pick(const workload::Job&) override {
    return static_cast<std::size_t>(rng_.uniform_index(view_.num_servers()));
  }

 private:
  util::Rng rng_;
};

class RoundRobinDispatcher final : public Dispatcher {
 public:
  explicit RoundRobinDispatcher(const DispatchView& view)
      : Dispatcher(view, DispatchPolicy::kRoundRobin) {}
  std::size_t pick(const workload::Job&) override {
    const std::size_t s = next_ % view_.num_servers();
    ++next_;
    return s;
  }

 private:
  std::size_t next_ = 0;
};

// Join-shortest-queue, weighted by online capacity: minimises in-flight
// jobs per online core so a half-failed or small server is not loaded like
// a full one.  Ties break to the lowest index; the comparison is done in
// cross-multiplied integers, so there is no floating-point ratio to drift.
class JsqDispatcher final : public Dispatcher {
 public:
  explicit JsqDispatcher(const DispatchView& view)
      : Dispatcher(view, DispatchPolicy::kJsq) {}
  std::size_t pick(const workload::Job&) override {
    const std::size_t n = view_.num_servers();
    std::size_t best = 0;
    for (std::size_t s = 1; s < n; ++s) {
      const std::uint64_t lhs = static_cast<std::uint64_t>(view_.in_flight(s)) *
                                std::max<std::size_t>(view_.online_cores(best), 1);
      const std::uint64_t rhs =
          static_cast<std::uint64_t>(view_.in_flight(best)) *
          std::max<std::size_t>(view_.online_cores(s), 1);
      if (lhs < rhs) {
        best = s;
      }
    }
    return best;
  }
};

// Power-aware ("least recent energy"): sends the job to the server that has
// consumed the least dynamic energy so far.  Over time this equalises
// energy across the fleet, which also equalises thermal load; ties break to
// the lowest index.
class LeastEnergyDispatcher final : public Dispatcher {
 public:
  explicit LeastEnergyDispatcher(const DispatchView& view)
      : Dispatcher(view, DispatchPolicy::kLeastEnergy) {}
  std::size_t pick(const workload::Job&) override {
    const std::size_t n = view_.num_servers();
    std::size_t best = 0;
    double best_energy = view_.consumed_energy(0);
    for (std::size_t s = 1; s < n; ++s) {
      const double e = view_.consumed_energy(s);
      if (e < best_energy) {
        best = s;
        best_energy = e;
      }
    }
    return best;
  }
};

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

const char* to_string(DispatchPolicy policy) noexcept {
  switch (policy) {
    case DispatchPolicy::kSingle:
      return "single";
    case DispatchPolicy::kRandom:
      return "random";
    case DispatchPolicy::kRoundRobin:
      return "rr";
    case DispatchPolicy::kJsq:
      return "jsq";
    case DispatchPolicy::kLeastEnergy:
      return "least-energy";
  }
  return "unknown";
}

DispatchPolicy parse_dispatch_policy(const std::string& name) {
  const std::string key = lower(name);
  if (key == "single") {
    return DispatchPolicy::kSingle;
  }
  if (key == "random") {
    return DispatchPolicy::kRandom;
  }
  if (key == "rr" || key == "round-robin") {
    return DispatchPolicy::kRoundRobin;
  }
  if (key == "jsq") {
    return DispatchPolicy::kJsq;
  }
  if (key == "least-energy" || key == "power") {
    return DispatchPolicy::kLeastEnergy;
  }
  GE_CHECK(false, "unknown dispatch policy: " + name);
}

std::unique_ptr<Dispatcher> make_dispatcher(DispatchPolicy policy,
                                            const DispatchView& view,
                                            std::uint64_t seed) {
  switch (policy) {
    case DispatchPolicy::kSingle:
      return std::make_unique<SingleDispatcher>(view);
    case DispatchPolicy::kRandom:
      return std::make_unique<RandomDispatcher>(view, seed);
    case DispatchPolicy::kRoundRobin:
      return std::make_unique<RoundRobinDispatcher>(view);
    case DispatchPolicy::kJsq:
      return std::make_unique<JsqDispatcher>(view);
    case DispatchPolicy::kLeastEnergy:
      return std::make_unique<LeastEnergyDispatcher>(view);
  }
  GE_CHECK(false, "unhandled dispatch policy");
}

}  // namespace ge::cluster
