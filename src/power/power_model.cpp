#include "power/power_model.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace ge::power {

PowerModel::PowerModel(double a, double beta, double units_per_ghz)
    : a_(a), beta_(beta), units_per_ghz_(units_per_ghz), beta_is_two_(beta == 2.0) {
  GE_CHECK(a > 0.0, "power scale factor a must be positive");
  GE_CHECK(beta > 1.0, "power exponent beta must exceed 1 (convexity)");
  GE_CHECK(units_per_ghz > 0.0, "units_per_ghz must be positive");
}

double PowerModel::power(double speed_units) const {
  GE_CHECK(speed_units >= -1e-9, "negative speed");
  if (speed_units <= 0.0) {
    return 0.0;
  }
  const double ghz = speed_units / units_per_ghz_;
  if (beta_is_two_) {
    return a_ * (ghz * ghz);
  }
  return a_ * std::pow(ghz, beta_);
}

double PowerModel::speed_for_power(double watts) const {
  GE_CHECK(watts >= -1e-9, "negative power");
  if (watts <= 0.0) {
    return 0.0;
  }
  return units_per_ghz_ * std::pow(watts / a_, 1.0 / beta_);
}

double PowerModel::energy(double speed_units, double duration) const {
  GE_CHECK(duration >= 0.0, "negative duration");
  return power(speed_units) * duration;
}

std::string PowerModel::describe_json() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"a\": %.12g, \"beta\": %.12g, \"units_per_ghz\": %.12g}", a_,
                beta_, units_per_ghz_);
  return buf;
}

}  // namespace ge::power
