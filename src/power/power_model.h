// Core-level DVFS power model (Sec. II-B).
//
// Dynamic power is the well-established convex function of core speed
//
//     P(s) = a * s^beta,   a > 0, beta > 1   (paper: a = 5, beta = 2)
//
// with s in GHz.  Internally the simulator measures work in "processing
// units" (a 1 GHz core completes 1000 units per second, Sec. IV-B), so this
// class converts both ways between unit-rates and power.  Static power is a
// constant offset common to every algorithm and is ignored, exactly as in
// the paper.
#pragma once

#include <string>

namespace ge::power {

class PowerModel {
 public:
  // units_per_ghz: processing units completed per second per GHz of speed.
  PowerModel(double a = 5.0, double beta = 2.0, double units_per_ghz = 1000.0);

  // Power (W) drawn at `speed_units` processing units per second.
  double power(double speed_units) const;

  // Speed (units/s) sustainable at `watts` of dynamic power.
  double speed_for_power(double watts) const;

  // Energy (J) of running at a constant speed for `duration` seconds.
  double energy(double speed_units, double duration) const;

  double ghz(double speed_units) const { return speed_units / units_per_ghz_; }
  double speed_units(double ghz) const { return ghz * units_per_ghz_; }

  double a() const noexcept { return a_; }
  double beta() const noexcept { return beta_; }
  double units_per_ghz() const noexcept { return units_per_ghz_; }

  // Compact JSON description of the model parameters, embedded in the trace
  // meta record so a trace file is self-describing (unit conversions need
  // units_per_ghz, energy cross-checks need a and beta).
  std::string describe_json() const;

 private:
  double a_;
  double beta_;
  double units_per_ghz_;
  // beta == 2.0 exactly (the paper's curve): power() squares with one
  // multiply instead of std::pow.  glibc's pow is correctly rounded for
  // y = 2, so both paths return bit-identical doubles -- guarded by the
  // exhaustive sweep in tests/test_kernel_equivalence.cpp.
  bool beta_is_two_;
};

}  // namespace ge::power
