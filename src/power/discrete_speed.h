// Discrete DVFS operating points (Sec. IV-A-5, Fig. 12).
//
// Real cores expose a finite ladder of frequency steps.  DiscreteSpeedTable
// holds the ladder (in processing units per second) and answers ceil/floor
// queries; the scheduler's rectification rule rounds each planned speed up
// to the next step when the power cap allows it and down otherwise.
#pragma once

#include <vector>

namespace ge::power {

class DiscreteSpeedTable {
 public:
  // Levels must be positive; they are sorted and deduplicated.  A speed of
  // zero (idle) is always permitted implicitly.
  explicit DiscreteSpeedTable(std::vector<double> levels_units);

  // Uniform ladder: step_ghz, 2*step_ghz, ..., max_ghz (inclusive).
  static DiscreteSpeedTable uniform_ghz(double step_ghz, double max_ghz,
                                        double units_per_ghz = 1000.0);

  // Smallest level >= speed; returns max level if speed exceeds the ladder.
  double ceil(double speed_units) const;

  // Largest level <= speed; returns 0.0 (idle) if speed is below the ladder.
  double floor(double speed_units) const;

  // Nearest level not exceeding... exact membership check with tolerance.
  bool is_level(double speed_units, double tol = 1e-6) const;

  double min_level() const { return levels_.front(); }
  double max_level() const { return levels_.back(); }
  const std::vector<double>& levels() const noexcept { return levels_; }

 private:
  std::vector<double> levels_;  // ascending, positive
};

}  // namespace ge::power
