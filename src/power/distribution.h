// Power-distribution policies (Sec. III-D).
//
// A distribution policy splits the server's total dynamic-power budget H
// into per-core *caps*.  Cores then plan speeds whose instantaneous power
// never exceeds their cap, so the server-wide constraint
// sum_i P_i(t) <= H holds by construction.
//
//  * Equal-Sharing (ES): every core gets H/m.  Used under light load to keep
//    core speeds close together and avoid speed thrashing.
//  * Water-Filling (WF): per-core power demands are satisfied lowest-first;
//    when the budget cannot cover all demands, every capped core gets the
//    same water level L with sum_i min(d_i, L) = H.  Used under heavy load
//    to funnel spare power to the loaded cores (from Du et al., IPDPS'13).
//  * Hybrid: ES below the critical load, WF above it -- the paper's GE
//    policy.
#pragma once

#include <span>
#include <vector>

namespace ge::power {

// Returns m equal caps summing to `budget`.
std::vector<double> equal_sharing(double budget, std::size_t cores);

// Water-filling allocation.  `demands[i]` is core i's requested power (W).
// Returns caps with caps[i] = min(demands[i], L); if sum(demands) <= budget
// every demand is met exactly (leftover budget stays unused, matching the
// policy's "satisfy the low demand first" description -- there is nothing
// useful to do with power no core asked for).
std::vector<double> water_filling(double budget, std::span<const double> demands);

// In-place variant for per-round callers: writes the caps into `caps`
// (resized to demands.size()), reusing its capacity across rounds.
void water_filling(double budget, std::span<const double> demands,
                   std::vector<double>& caps);

// The water level L used by water_filling when the budget binds; returns
// +infinity when sum(demands) <= budget (no level binds).
double water_level(double budget, std::span<const double> demands);

enum class DistributionPolicy {
  kEqualSharing,
  kWaterFilling,
  kHybrid,
};

const char* to_string(DistributionPolicy policy) noexcept;

// Resolves the hybrid policy: picks WF when `load` exceeds `critical_load`,
// otherwise ES.  For the non-hybrid policies the inputs are ignored.
DistributionPolicy resolve_hybrid(DistributionPolicy policy, double load,
                                  double critical_load) noexcept;

}  // namespace ge::power
