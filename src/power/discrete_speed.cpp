#include "power/discrete_speed.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ge::power {

DiscreteSpeedTable::DiscreteSpeedTable(std::vector<double> levels_units)
    : levels_(std::move(levels_units)) {
  GE_CHECK(!levels_.empty(), "speed table must have at least one level");
  std::sort(levels_.begin(), levels_.end());
  levels_.erase(std::unique(levels_.begin(), levels_.end()), levels_.end());
  GE_CHECK(levels_.front() > 0.0, "speed levels must be positive");
}

DiscreteSpeedTable DiscreteSpeedTable::uniform_ghz(double step_ghz, double max_ghz,
                                                   double units_per_ghz) {
  GE_CHECK(step_ghz > 0.0 && max_ghz >= step_ghz, "invalid speed ladder");
  std::vector<double> levels;
  const int steps = static_cast<int>(std::round(max_ghz / step_ghz));
  levels.reserve(static_cast<std::size_t>(steps));
  for (int i = 1; i <= steps; ++i) {
    levels.push_back(static_cast<double>(i) * step_ghz * units_per_ghz);
  }
  return DiscreteSpeedTable(std::move(levels));
}

double DiscreteSpeedTable::ceil(double speed_units) const {
  auto it = std::lower_bound(levels_.begin(), levels_.end(), speed_units - 1e-9);
  if (it == levels_.end()) {
    return levels_.back();
  }
  return *it;
}

double DiscreteSpeedTable::floor(double speed_units) const {
  auto it = std::upper_bound(levels_.begin(), levels_.end(), speed_units + 1e-9);
  if (it == levels_.begin()) {
    return 0.0;  // below the lowest operating point: idle
  }
  return *(it - 1);
}

bool DiscreteSpeedTable::is_level(double speed_units, double tol) const {
  auto it = std::lower_bound(levels_.begin(), levels_.end(), speed_units - tol);
  return it != levels_.end() && std::abs(*it - speed_units) <= tol;
}

}  // namespace ge::power
