#include "power/distribution.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace ge::power {

std::vector<double> equal_sharing(double budget, std::size_t cores) {
  GE_CHECK(budget >= 0.0, "budget must be non-negative");
  GE_CHECK(cores > 0, "need at least one core");
  return std::vector<double>(cores, budget / static_cast<double>(cores));
}

double water_level(double budget, std::span<const double> demands) {
  GE_CHECK(budget >= 0.0, "budget must be non-negative");
  double total = 0.0;
  for (double d : demands) {
    GE_CHECK(d >= 0.0, "power demand must be non-negative");
    total += d;
  }
  if (total <= budget) {
    return std::numeric_limits<double>::infinity();
  }
  // Sort demands ascending; find the level L with sum min(d_i, L) = budget.
  std::vector<double> sorted(demands.begin(), demands.end());
  std::sort(sorted.begin(), sorted.end());
  double satisfied = 0.0;  // sum of demands fully below the level so far
  const std::size_t n = sorted.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Candidate: the level lies in [sorted[i-1], sorted[i]); the (n - i)
    // remaining cores are capped at L.
    const double remaining = static_cast<double>(n - i);
    const double level = (budget - satisfied) / remaining;
    if (level <= sorted[i]) {
      return level;
    }
    satisfied += sorted[i];
  }
  // total > budget guarantees the loop returns; reaching here means a
  // floating-point edge -- cap at the largest demand.
  return sorted.back();
}

std::vector<double> water_filling(double budget, std::span<const double> demands) {
  std::vector<double> caps;
  water_filling(budget, demands, caps);
  return caps;
}

void water_filling(double budget, std::span<const double> demands,
                   std::vector<double>& caps) {
  const double level = water_level(budget, demands);
  caps.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    caps[i] = std::min(demands[i], level);
  }
}

const char* to_string(DistributionPolicy policy) noexcept {
  switch (policy) {
    case DistributionPolicy::kEqualSharing:
      return "equal-sharing";
    case DistributionPolicy::kWaterFilling:
      return "water-filling";
    case DistributionPolicy::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

DistributionPolicy resolve_hybrid(DistributionPolicy policy, double load,
                                  double critical_load) noexcept {
  if (policy != DistributionPolicy::kHybrid) {
    return policy;
  }
  return load > critical_load ? DistributionPolicy::kWaterFilling
                              : DistributionPolicy::kEqualSharing;
}

}  // namespace ge::power
