// Online service-quality monitor.
//
// Tracks the paper's average-quality metric
//
//     Q(J) = sum_j f(c_j) / sum_j f(p_j)
//
// over all *settled* jobs (completed, partially completed, or discarded).
// The GE compensation policy reads quality() at every scheduling round and
// switches to Best-Quality mode when it drops below Q_GE (Sec. III-C).
//
// By default the monitor is cumulative over the whole run, exactly as the
// paper describes ("online monitoring of the user experience").  A sliding
// window over the last N settled jobs is also supported; it makes the
// compensation loop react on a bounded horizon, which is useful for very
// long-running services (the paper's 10-minute runs do not need it).
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

namespace ge::quality {

class QualityFunction;

class QualityMonitor {
 public:
  // window == 0 selects the cumulative (paper) behaviour.
  explicit QualityMonitor(const QualityFunction& f, std::size_t window = 0);

  // Records the outcome of one job: `processed` units executed out of a
  // `demand`-unit request.  processed may exceed demand by rounding noise;
  // it is clamped.
  void settle(double processed, double demand);

  // Current Q(J); defined as 1.0 before the first settlement (no evidence of
  // quality loss yet, so GE starts in AES mode -- Sec. III-A).
  double quality() const noexcept;

  std::uint64_t settled_jobs() const noexcept { return settled_; }
  double achieved_sum() const noexcept { return achieved_; }
  double potential_sum() const noexcept { return potential_; }

 private:
  const QualityFunction& f_;
  std::size_t window_;
  std::uint64_t settled_ = 0;
  double achieved_ = 0.0;   // sum f(c_j)
  double potential_ = 0.0;  // sum f(p_j)
  std::deque<std::pair<double, double>> recent_;  // (f(c), f(p)) when windowed
};

}  // namespace ge::quality
