#include "quality/quality_function.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/table.h"

namespace ge::quality {
namespace {

double clamp01(double q) { return std::clamp(q, 0.0, 1.0); }

}  // namespace

double QualityFunction::inverse_derivative(double slope) const {
  // Generic bisection fallback; f' is non-increasing on [0, xmax].
  if (slope >= derivative(0.0)) {
    return 0.0;
  }
  if (slope <= derivative(xmax())) {
    return xmax();
  }
  double lo = 0.0;
  double hi = xmax();
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    // mid == lo or mid == hi is a fixed point: later iterations cannot move
    // either endpoint again (same mid, same branch every time), so breaking
    // here returns the same 0.5 * (lo + hi) the full loop would.
    const bool converged = mid == lo || mid == hi;
    if (derivative(mid) > slope) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (converged) {
      break;
    }
  }
  return 0.5 * (lo + hi);
}

ExponentialQuality::ExponentialQuality(double c, double xmax) : c_(c), xmax_(xmax) {
  GE_CHECK(c > 0.0, "concavity multiplier c must be positive");
  GE_CHECK(xmax > 0.0, "xmax must be positive");
  norm_ = 1.0 - std::exp(-c_ * xmax_);
}

double ExponentialQuality::value(double x) const {
  x = std::clamp(x, 0.0, xmax_);
  return (1.0 - std::exp(-c_ * x)) / norm_;
}

double ExponentialQuality::derivative(double x) const {
  x = std::clamp(x, 0.0, xmax_);
  return c_ * std::exp(-c_ * x) / norm_;
}

double ExponentialQuality::inverse(double q) const {
  q = clamp01(q);
  const double arg = 1.0 - q * norm_;
  GE_CHECK(arg > 0.0, "inverse() argument out of range");
  const double x = -std::log(arg) / c_;
  return std::clamp(x, 0.0, xmax_);
}

double ExponentialQuality::inverse_derivative(double slope) const {
  if (slope >= derivative(0.0)) {
    return 0.0;
  }
  if (slope <= derivative(xmax_)) {
    return xmax_;
  }
  // f'(x) = c e^{-cx} / norm  =>  x = -ln(slope * norm / c) / c.
  const double x = -std::log(slope * norm_ / c_) / c_;
  return std::clamp(x, 0.0, xmax_);
}

std::string ExponentialQuality::name() const {
  return "exp(c=" + ge::util::format_double(c_, 4) + ")";
}

LinearQuality::LinearQuality(double xmax) : xmax_(xmax) {
  GE_CHECK(xmax > 0.0, "xmax must be positive");
}

double LinearQuality::value(double x) const {
  return std::clamp(x, 0.0, xmax_) / xmax_;
}

double LinearQuality::derivative(double x) const {
  (void)x;
  return 1.0 / xmax_;
}

double LinearQuality::inverse(double q) const { return clamp01(q) * xmax_; }

PowerLawQuality::PowerLawQuality(double gamma, double xmax)
    : gamma_(gamma),
      xmax_(xmax),
      inv_gamma_(1.0 / gamma),
      gamma_minus_one_(gamma - 1.0),
      slope_scale_(gamma / xmax) {
  GE_CHECK(gamma > 0.0 && gamma < 1.0, "power-law exponent must be in (0,1)");
  GE_CHECK(xmax > 0.0, "xmax must be positive");
}

double PowerLawQuality::value(double x) const {
  x = std::clamp(x, 0.0, xmax_);
  return std::pow(x / xmax_, gamma_);
}

double PowerLawQuality::derivative(double x) const {
  x = std::clamp(x, 0.0, xmax_);
  if (x <= 0.0) {
    // f'(0+) diverges; return a large finite slope so water-filling always
    // prefers giving the first unit of work to an untouched job.
    return 1e18;
  }
  return slope_scale_ * std::pow(x / xmax_, gamma_minus_one_);
}

double PowerLawQuality::inverse(double q) const {
  return std::pow(clamp01(q), inv_gamma_) * xmax_;
}

std::string PowerLawQuality::name() const {
  return "powerlaw(gamma=" + ge::util::format_double(gamma_, 3) + ")";
}

std::unique_ptr<QualityFunction> make_paper_quality_function(double c, double xmax) {
  return std::make_unique<ExponentialQuality>(c, xmax);
}

}  // namespace ge::quality
