// Concave quality functions for "good enough" services.
//
// A quality function f maps the processed volume of a job (in processing
// units) to a perceived quality in [0, 1].  The paper's Eq. (1) uses the
// saturating exponential
//
//     f(x) = (1 - e^{-c x}) / (1 - e^{-c x_max}),
//
// whose concavity captures the law of diminishing returns: the head of a job
// contributes more quality per unit of work than its tail.  The interface
// also exposes the derivative and inverse, which the LF job cutter and the
// Quality-OPT allocator rely on.  Two additional concave families
// (linear and power-law) support the sensitivity study around Fig. 9.
#pragma once

#include <memory>
#include <string>

namespace ge::quality {

class QualityFunction {
 public:
  virtual ~QualityFunction() = default;

  // f(x); x is clamped to [0, xmax].  Monotone non-decreasing, f(0) = 0,
  // f(xmax) = 1.
  virtual double value(double x) const = 0;

  // f'(x) for x in [0, xmax); non-increasing because f is concave.
  virtual double derivative(double x) const = 0;

  // Smallest x with f(x) >= q, for q in [0, 1].
  virtual double inverse(double q) const = 0;

  // Smallest x with f'(x) <= slope (the "marginal demand" at a given
  // marginal-quality threshold).  Returns 0 when slope >= f'(0) and xmax
  // when slope <= f'(xmax).  Used by the Quality-OPT water-filling step.
  virtual double inverse_derivative(double slope) const;

  // Upper bound on processing demand; f saturates at 1 there.
  virtual double xmax() const = 0;

  virtual std::string name() const = 0;
};

// Eq. (1) of the paper: f(x) = (1 - e^{-cx}) / (1 - e^{-c xmax}).
class ExponentialQuality final : public QualityFunction {
 public:
  ExponentialQuality(double c, double xmax);

  double value(double x) const override;
  double derivative(double x) const override;
  double inverse(double q) const override;
  double inverse_derivative(double slope) const override;
  double xmax() const override { return xmax_; }
  std::string name() const override;

  double concavity() const noexcept { return c_; }

 private:
  double c_;
  double xmax_;
  double norm_;  // 1 - e^{-c xmax}
};

// f(x) = x / xmax.  Degenerate (not strictly concave) boundary case: with a
// linear quality function, partial processing carries no diminishing-returns
// advantage, so GE's cutting gains vanish -- useful as a control in tests.
class LinearQuality final : public QualityFunction {
 public:
  explicit LinearQuality(double xmax);

  double value(double x) const override;
  double derivative(double x) const override;
  double inverse(double q) const override;
  double xmax() const override { return xmax_; }
  std::string name() const override { return "linear"; }

 private:
  double xmax_;
};

// f(x) = (x / xmax)^gamma with gamma in (0, 1); strictly concave.
class PowerLawQuality final : public QualityFunction {
 public:
  PowerLawQuality(double gamma, double xmax);

  double value(double x) const override;
  double derivative(double x) const override;
  double inverse(double q) const override;
  double xmax() const override { return xmax_; }
  std::string name() const override;

 private:
  double gamma_;
  double xmax_;
  // gamma is fixed per run, so the derived exponents and scale factors are
  // hoisted to construction: the same expressions the per-call code used to
  // evaluate, computed once (bit-identical results, fewer divisions on the
  // pow-heavy paths).
  double inv_gamma_;        // 1 / gamma
  double gamma_minus_one_;  // gamma - 1 (derivative exponent)
  double slope_scale_;      // gamma / xmax (derivative prefactor)
};

std::unique_ptr<QualityFunction> make_paper_quality_function(double c = 0.003,
                                                             double xmax = 1000.0);

}  // namespace ge::quality
