#include "quality/quality_monitor.h"

#include <algorithm>

#include "quality/quality_function.h"
#include "util/check.h"

namespace ge::quality {

QualityMonitor::QualityMonitor(const QualityFunction& f, std::size_t window)
    : f_(f), window_(window) {}

void QualityMonitor::settle(double processed, double demand) {
  GE_CHECK(demand > 0.0, "job demand must be positive");
  processed = std::clamp(processed, 0.0, demand);
  const double achieved = f_.value(processed);
  const double potential = f_.value(demand);
  ++settled_;
  achieved_ += achieved;
  potential_ += potential;
  if (window_ > 0) {
    recent_.emplace_back(achieved, potential);
    if (recent_.size() > window_) {
      achieved_ -= recent_.front().first;
      potential_ -= recent_.front().second;
      recent_.pop_front();
    }
  }
}

double QualityMonitor::quality() const noexcept {
  if (potential_ <= 0.0) {
    return 1.0;
  }
  return achieved_ / potential_;
}

}  // namespace ge::quality
