#include "obs/trace.h"

#include <cstdio>

#include "util/check.h"

namespace ge::obs {
namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

const char* mode_name(int mode) {
  switch (mode) {
    case kModeAes: return "AES";
    case kModeBq: return "BQ";
    default: return "?";
  }
}

// Minimal JSON string escaping; scheduler names and model descriptions are
// plain ASCII, so quotes and backslashes are the only risk.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
    }
    out.push_back(ch);
  }
  return out;
}

}  // namespace

const char* violation_check_name(std::int32_t check) noexcept {
  switch (static_cast<ViolationCheck>(check)) {
    case ViolationCheck::kMonotoneClock: return "monotone_clock";
    case ViolationCheck::kExecSpan: return "exec_span";
    case ViolationCheck::kJobOverrun: return "job_overrun";
    case ViolationCheck::kCapBudget: return "cap_budget";
    case ViolationCheck::kSettlementConservation: return "settlement_conservation";
    case ViolationCheck::kDispatchConservation: return "dispatch_conservation";
    case ViolationCheck::kEnergyIdentity: return "energy_identity";
  }
  return "?";
}

TraceFormat parse_trace_format(const std::string& name) {
  if (name == "jsonl") {
    return TraceFormat::kJsonl;
  }
  GE_CHECK(name == "chrome", "trace format must be 'jsonl' or 'chrome'");
  return TraceFormat::kChrome;
}

TraceWriter::TraceWriter(std::ostream& out, TraceFormat format)
    : out_(out), format_(format) {
  if (format_ == TraceFormat::kChrome) {
    out_ << "[";
  }
}

void TraceWriter::append_task(const TraceTaskInfo& info, const TraceBuffer& buffer) {
  GE_CHECK(!closed_, "append_task after close");
  if (format_ == TraceFormat::kJsonl) {
    append_jsonl(info, buffer);
  } else {
    append_chrome(info, buffer);
  }
}

void TraceWriter::close() {
  GE_CHECK(!closed_, "trace writer closed twice");
  closed_ = true;
  if (format_ == TraceFormat::kChrome) {
    out_ << "\n]\n";
  }
}

void TraceWriter::append_jsonl(const TraceTaskInfo& info, const TraceBuffer& buffer) {
  const std::string task = std::to_string(info.task);
  out_ << "{\"ev\": \"meta\", \"task\": " << task << ", \"scheduler\": \""
       << escape(info.scheduler) << "\", \"arrival_rate\": " << fmt(info.arrival_rate)
       << ", \"cores\": " << info.cores
       << ", \"power_budget_w\": " << fmt(info.power_budget)
       << ", \"power_model\": " << info.power_model_json << "}\n";
  for (const TraceEvent& ev : buffer.events()) {
    switch (ev.type) {
      case TraceEventType::kArrival:
        out_ << "{\"ev\": \"arrival\", \"task\": " << task << ", \"t\": " << fmt(ev.t)
             << ", \"job\": " << ev.job << ", \"demand\": " << fmt(ev.a)
             << ", \"deadline\": " << fmt(ev.b) << "}\n";
        break;
      case TraceEventType::kRound:
        out_ << "{\"ev\": \"round\", \"task\": " << task << ", \"t\": " << fmt(ev.t)
             << ", \"round\": " << fmt(ev.c) << ", \"mode\": \"" << mode_name(ev.mode)
             << "\", \"waiting\": " << fmt(ev.a) << ", \"rate\": " << fmt(ev.b)
             << "}\n";
        break;
      case TraceEventType::kModeSwitch:
        out_ << "{\"ev\": \"mode\", \"task\": " << task << ", \"t\": " << fmt(ev.t)
             << ", \"mode\": \"" << mode_name(ev.mode)
             << "\", \"quality\": " << fmt(ev.a) << "}\n";
        break;
      case TraceEventType::kCut:
        out_ << "{\"ev\": \"cut\", \"task\": " << task << ", \"t\": " << fmt(ev.t)
             << ", \"core\": " << ev.core << ", \"jobs\": " << fmt(ev.a)
             << ", \"level\": " << fmt(ev.b) << ", \"target_units\": " << fmt(ev.c)
             << "}\n";
        break;
      case TraceEventType::kCap:
        out_ << "{\"ev\": \"cap\", \"task\": " << task << ", \"t\": " << fmt(ev.t)
             << ", \"core\": " << ev.core << ", \"watts\": " << fmt(ev.a) << "}\n";
        break;
      case TraceEventType::kExec:
        out_ << "{\"ev\": \"exec\", \"task\": " << task << ", \"t\": " << fmt(ev.t)
             << ", \"t_end\": " << fmt(ev.t2) << ", \"core\": " << ev.core
             << ", \"job\": " << ev.job << ", \"speed\": " << fmt(ev.a) << "}\n";
        break;
      case TraceEventType::kCompletion:
      case TraceEventType::kDeadlineMiss:
        out_ << "{\"ev\": \""
             << (ev.type == TraceEventType::kCompletion ? "completion"
                                                        : "deadline_miss")
             << "\", \"task\": " << task << ", \"t\": " << fmt(ev.t)
             << ", \"core\": " << ev.core << ", \"job\": " << ev.job
             << ", \"executed\": " << fmt(ev.a) << ", \"demand\": " << fmt(ev.b)
             << ", \"quality\": " << fmt(ev.c) << "}\n";
        break;
      case TraceEventType::kCoreOffline:
        out_ << "{\"ev\": \"core_offline\", \"task\": " << task
             << ", \"t\": " << fmt(ev.t) << ", \"core\": " << ev.core << "}\n";
        break;
      case TraceEventType::kDispatch:
        out_ << "{\"ev\": \"dispatch\", \"task\": " << task
             << ", \"t\": " << fmt(ev.t) << ", \"job\": " << ev.job
             << ", \"server\": " << ev.core << ", \"in_flight\": " << fmt(ev.a)
             << "}\n";
        break;
      case TraceEventType::kAssign:
        out_ << "{\"ev\": \"assign\", \"task\": " << task
             << ", \"t\": " << fmt(ev.t) << ", \"job\": " << ev.job
             << ", \"core\": " << ev.core << "}\n";
        break;
      case TraceEventType::kViolation:
        out_ << "{\"ev\": \"violation\", \"task\": " << task
             << ", \"t\": " << fmt(ev.t) << ", \"check\": \""
             << violation_check_name(ev.mode) << "\", \"observed\": " << fmt(ev.a)
             << ", \"expected\": " << fmt(ev.b) << "}\n";
        break;
    }
  }
}

void TraceWriter::append_chrome(const TraceTaskInfo& info, const TraceBuffer& buffer) {
  const std::string pid = std::to_string(info.task);
  auto record = [this](const std::string& body) {
    out_ << (first_record_ ? "\n" : ",\n") << body;
    first_record_ = false;
  };
  // Timestamps are microseconds in the trace_event format; the simulation
  // clock is seconds.
  auto us = [](double t) { return fmt(t * 1e6); };

  record("{\"ph\": \"M\", \"pid\": " + pid +
         ", \"name\": \"process_name\", \"args\": {\"name\": \"task " + pid + ": " +
         escape(info.scheduler) + " @ " + fmt(info.arrival_rate) + " req/s\"}}");
  record("{\"ph\": \"M\", \"pid\": " + pid +
         ", \"tid\": 0, \"name\": \"thread_name\", \"args\": {\"name\": "
         "\"scheduler\"}}");
  for (std::size_t i = 0; i < info.cores; ++i) {
    record("{\"ph\": \"M\", \"pid\": " + pid + ", \"tid\": " + std::to_string(i + 1) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"core " +
           std::to_string(i) + "\"}}");
  }

  for (const TraceEvent& ev : buffer.events()) {
    // Events with no core land on the scheduler track (tid 0).
    const std::string tid = std::to_string(ev.core + 1);
    switch (ev.type) {
      case TraceEventType::kArrival:
        record("{\"ph\": \"i\", \"pid\": " + pid + ", \"tid\": 0, \"ts\": " +
               us(ev.t) + ", \"s\": \"t\", \"name\": \"arrival\", \"cat\": "
               "\"job\", \"args\": {\"job\": " + std::to_string(ev.job) +
               ", \"demand\": " + fmt(ev.a) + "}}");
        break;
      case TraceEventType::kRound:
        record("{\"ph\": \"i\", \"pid\": " + pid + ", \"tid\": 0, \"ts\": " +
               us(ev.t) + ", \"s\": \"t\", \"name\": \"round " +
               std::string(mode_name(ev.mode)) + "\", \"cat\": \"sched\", "
               "\"args\": {\"waiting\": " + fmt(ev.a) + ", \"rate\": " + fmt(ev.b) +
               "}}");
        break;
      case TraceEventType::kModeSwitch:
        record("{\"ph\": \"i\", \"pid\": " + pid + ", \"tid\": 0, \"ts\": " +
               us(ev.t) + ", \"s\": \"p\", \"name\": \"mode -> " +
               std::string(mode_name(ev.mode)) + "\", \"cat\": \"sched\", "
               "\"args\": {\"quality\": " + fmt(ev.a) + "}}");
        break;
      case TraceEventType::kCut:
        record("{\"ph\": \"i\", \"pid\": " + pid + ", \"tid\": " + tid +
               ", \"ts\": " + us(ev.t) + ", \"s\": \"t\", \"name\": \"cut\", "
               "\"cat\": \"sched\", \"args\": {\"jobs\": " + fmt(ev.a) +
               ", \"level\": " + fmt(ev.b) + "}}");
        break;
      case TraceEventType::kCap:
        record("{\"ph\": \"C\", \"pid\": " + pid + ", \"tid\": 0, \"ts\": " +
               us(ev.t) + ", \"name\": \"cap core " + std::to_string(ev.core) +
               "\", \"args\": {\"W\": " + fmt(ev.a) + "}}");
        break;
      case TraceEventType::kExec:
        record("{\"ph\": \"X\", \"pid\": " + pid + ", \"tid\": " + tid +
               ", \"ts\": " + us(ev.t) + ", \"dur\": " + fmt((ev.t2 - ev.t) * 1e6) +
               ", \"name\": \"job " + std::to_string(ev.job) +
               "\", \"cat\": \"exec\", \"args\": {\"speed\": " + fmt(ev.a) + "}}");
        break;
      case TraceEventType::kCompletion:
      case TraceEventType::kDeadlineMiss: {
        const bool miss = ev.type == TraceEventType::kDeadlineMiss;
        record("{\"ph\": \"i\", \"pid\": " + pid + ", \"tid\": " + tid +
               ", \"ts\": " + us(ev.t) + ", \"s\": \"t\", \"name\": \"" +
               (miss ? "deadline miss" : "completion") + "\", \"cat\": \"job\", "
               "\"args\": {\"job\": " + std::to_string(ev.job) + ", \"executed\": " +
               fmt(ev.a) + ", \"demand\": " + fmt(ev.b) + "}}");
        record("{\"ph\": \"C\", \"pid\": " + pid + ", \"tid\": 0, \"ts\": " +
               us(ev.t) + ", \"name\": \"quality\", \"args\": {\"q\": " + fmt(ev.c) +
               "}}");
        break;
      }
      case TraceEventType::kCoreOffline:
        record("{\"ph\": \"i\", \"pid\": " + pid + ", \"tid\": " + tid +
               ", \"ts\": " + us(ev.t) + ", \"s\": \"p\", \"name\": \"core " +
               "offline\", \"cat\": \"fault\", \"args\": {}}");
        break;
      case TraceEventType::kDispatch:
        // Dispatch decisions land on the scheduler track; ev.core is the
        // server index here, not a core id.
        record("{\"ph\": \"i\", \"pid\": " + pid + ", \"tid\": 0, \"ts\": " +
               us(ev.t) + ", \"s\": \"t\", \"name\": \"dispatch -> s" +
               std::to_string(ev.core) + "\", \"cat\": \"cluster\", \"args\": "
               "{\"job\": " + std::to_string(ev.job) + ", \"in_flight\": " +
               fmt(ev.a) + "}}");
        break;
      case TraceEventType::kAssign:
        record("{\"ph\": \"i\", \"pid\": " + pid + ", \"tid\": " + tid +
               ", \"ts\": " + us(ev.t) + ", \"s\": \"t\", \"name\": \"assign job " +
               std::to_string(ev.job) + "\", \"cat\": \"sched\", \"args\": "
               "{\"job\": " + std::to_string(ev.job) + "}}");
        break;
      case TraceEventType::kViolation:
        // Violations are process-scoped: they indict the whole run, not one
        // core track.
        record("{\"ph\": \"i\", \"pid\": " + pid + ", \"tid\": 0, \"ts\": " +
               us(ev.t) + ", \"s\": \"p\", \"name\": \"violation: " +
               std::string(violation_check_name(ev.mode)) + "\", \"cat\": "
               "\"watchdog\", \"args\": {\"observed\": " + fmt(ev.a) +
               ", \"expected\": " + fmt(ev.b) + "}}");
        break;
    }
  }
}

}  // namespace ge::obs
