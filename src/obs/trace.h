// Structured simulation tracing.
//
// Instrumented components record TraceEvents -- small fixed-size records of
// what the scheduler and the cores decided at a simulated instant -- into a
// per-run TraceBuffer (an in-memory vector; the simulator is single-threaded
// and runs execute in parallel, so events are serialised to disk only after
// the whole plan finishes, in task order).  Two writers render a buffer:
//
//   * JSONL  -- one self-describing JSON object per line, the analysis
//     format (schema: docs/OBSERVABILITY.md; validated by
//     tools/check_telemetry.py).
//   * Chrome trace_event JSON -- loadable in Perfetto / about:tracing; each
//     run becomes a process, each core a thread, execution slices become
//     duration events and quality/speed become counter tracks.
//
// The numeric payload fields a/b/c are typed per event kind; the per-kind
// meaning is fixed here and documented field-by-field in
// docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ge::obs {

enum class TraceEventType : std::uint8_t {
  kArrival,       // job arrived: a=demand (units), b=deadline (s)
  kRound,         // scheduling round: mode, a=waiting jobs, b=estimated rate
                  // (req/s), c=round index
  kModeSwitch,    // AES<->BQ transition: mode = new mode, a=monitored quality
  kCut,           // per-core AES cut: core, a=open jobs, b=cut level (units),
                  // c=sum of targets (units)
  kCap,           // per-core power cap: core, a=cap (W)
  kExec,          // executed slice: core, job, t..t2, a=speed (units/s)
  kCompletion,    // job settled at/above target: core, job, a=executed,
                  // b=demand, c=monitored quality after settlement
  kDeadlineMiss,  // job settled below target by its deadline: core, job,
                  // a=executed, b=demand, c=monitored quality
  kCoreOffline,   // fault injection: core went offline
  kDispatch,      // cluster dispatch decision: job, core=server index,
                  // a=jobs already in flight on that server (multi-server
                  // runs only; see docs/CLUSTER.md)
  kAssign,        // scheduling round pinned a waiting job to a core: job,
                  // core (never migrates afterwards)
  kViolation,     // invariant watchdog: a conservation identity failed:
                  // mode=check id (ViolationCheck), a=observed, b=expected
};

// Invariant identities the online watchdog (obs/analysis/watchdog.h) checks;
// kViolation events carry the failed check in their `mode` field.
enum class ViolationCheck : std::int32_t {
  kMonotoneClock = 0,       // an instantaneous event moved backwards in time
  kExecSpan,                // an exec slice ended before it started, or named
                            // a core the server does not have
  kJobOverrun,              // a job settled with executed > demand
  kCapBudget,               // per-core caps of one round sum above the budget
  kSettlementConservation,  // settlements != released jobs at end of run
  kDispatchConservation,    // sum of dispatches != released jobs
  kEnergyIdentity,          // integrated exec-span energy != reported energy
};

// Stable lowercase name of a check ("monotone_clock", ...); "?" for values
// outside the enum.  Used by the JSONL writer and the report generator.
const char* violation_check_name(std::int32_t check) noexcept;

// Execution mode tags shared by kRound / kModeSwitch (mirrors
// GoodEnoughScheduler::Mode; -1 = not applicable).
inline constexpr int kModeAes = 0;
inline constexpr int kModeBq = 1;

struct TraceEvent {
  TraceEventType type = TraceEventType::kArrival;
  double t = 0.0;   // simulated seconds
  double t2 = 0.0;  // slice end for kExec, else unused
  std::int32_t core = -1;
  std::int64_t job = -1;
  std::int32_t mode = -1;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

// Live tap on a TraceBuffer: on_event fires synchronously inside push(),
// after the event is stored.  An observer may push follow-up events into the
// same buffer from inside on_event (the watchdog records violations that
// way); it must tolerate seeing those re-entrantly.
class TraceObserver {
 public:
  virtual ~TraceObserver() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

class TraceBuffer {
 public:
  void push(const TraceEvent& event) {
    events_.push_back(event);
    if (observer_ != nullptr) {
      observer_->on_event(event);
    }
  }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

  // At most one observer; nullptr detaches.  The observer must outlive every
  // push() (the runner detaches the watchdog before tearing it down).
  void set_observer(TraceObserver* observer) noexcept { observer_ = observer; }
  TraceObserver* observer() const noexcept { return observer_; }

 private:
  std::vector<TraceEvent> events_;
  TraceObserver* observer_ = nullptr;
};

enum class TraceFormat { kJsonl, kChrome };

// Parses "jsonl" / "chrome" (checked error otherwise).
TraceFormat parse_trace_format(const std::string& name);

// Static description of the run a buffer came from, rendered into the
// per-task "meta" line (JSONL) / process metadata (Chrome).
struct TraceTaskInfo {
  std::size_t task = 0;       // task index within the plan
  std::string scheduler;      // display name of the scheduler
  double arrival_rate = 0.0;  // req/s
  std::size_t cores = 0;
  double power_budget = 0.0;    // W
  std::string power_model_json;  // PowerModel::describe_json()
};

// Streaming trace writer: open(), then append_task() once per task in task
// order, then close().  Output is deterministic: bytes depend only on the
// (info, buffer) sequence.
class TraceWriter {
 public:
  TraceWriter(std::ostream& out, TraceFormat format);

  void append_task(const TraceTaskInfo& info, const TraceBuffer& buffer);

  // Terminates the stream (Chrome: closes the JSON array).  Must be called
  // exactly once, after the last task.
  void close();

 private:
  void append_jsonl(const TraceTaskInfo& info, const TraceBuffer& buffer);
  void append_chrome(const TraceTaskInfo& info, const TraceBuffer& buffer);

  std::ostream& out_;
  TraceFormat format_;
  bool first_record_ = true;
  bool closed_ = false;
};

}  // namespace ge::obs
