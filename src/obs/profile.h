// Wall-clock self-profiling for the simulator's hot kernels.
//
// A Profiler owns one Span per instrumented phase; a Span is a pair of
// counters in the run's MetricsRegistry (prof.<phase>_ns / prof.<phase>_calls)
// so the numbers travel through the existing merge/serialise machinery and
// land in the --metrics file next to everything else.  ScopedTimer charges
// the enclosing block to a span and is a no-op on a null span, so call sites
// pay one pointer test when profiling is off -- the same cost model as every
// other telemetry hook (see telemetry.h).
//
// The measured phases map onto the four optimised kernels of
// docs/BENCHMARKS.md: ge_round (one whole GE scheduling round), cut
// (Longest-First target setting), power_dist (cap distribution), plan
// (Quality-OPT + Energy-OPT core planning), plus sim_run (the entire event
// loop, the denominator for the others).
//
// Wall-clock readings are inherently nondeterministic, which is why
// profiling is opt-in (--profile): with it off, metrics files keep the
// byte-identical-for-any---jobs contract.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace ge::obs {

class Profiler {
 public:
  struct Span {
    Counter* wall_ns = nullptr;
    Counter* calls = nullptr;
  };

  // Creates the prof.* counters in `registry`; call before the run starts so
  // they hold a stable slot in the creation-order output.
  explicit Profiler(MetricsRegistry& registry)
      : ge_round(make(registry, "ge_round")),
        cut(make(registry, "cut")),
        power_dist(make(registry, "power_dist")),
        plan(make(registry, "plan")),
        sim_run(make(registry, "sim_run")) {}

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  Span ge_round;
  Span cut;
  Span power_dist;
  Span plan;
  Span sim_run;

 private:
  static Span make(MetricsRegistry& registry, const std::string& phase) {
    return Span{&registry.counter("prof." + phase + "_ns", "ns"),
                &registry.counter("prof." + phase + "_calls", "calls")};
  }
};

// Charges the time from construction to destruction to `span`; null = no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Profiler::Span* span) : span_(span) {
    if (span_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedTimer() {
    if (span_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      span_->wall_ns->add(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
      span_->calls->increment();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const Profiler::Span* span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ge::obs
