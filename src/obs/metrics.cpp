#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace ge::obs {
namespace {

enum class Kind { kCounter, kGauge, kHistogram };

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

const char* merge_name(Gauge::Merge merge) {
  switch (merge) {
    case Gauge::Merge::kSum: return "sum";
    case Gauge::Merge::kMin: return "min";
    case Gauge::Merge::kMax: return "max";
    case Gauge::Merge::kLast: return "last";
  }
  return "?";
}

// Fixed-format double: enough digits to round-trip the values we emit while
// keeping equal doubles byte-equal (merge determinism relies on this).
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

void Histogram::observe(double value) noexcept {
  // Lower-bound over the sorted upper bounds; the final bucket catches
  // everything above bounds_.back().
  std::size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  ++counts_[i];
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  ++count_;
  sum_ += value;
}

struct MetricsRegistry::Entry {
  std::string name;
  std::string unit;
  Kind kind;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;
MetricsRegistry::MetricsRegistry(MetricsRegistry&&) noexcept = default;
MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&&) noexcept = default;

std::size_t MetricsRegistry::size() const noexcept { return entries_.size(); }

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry->name == name) {
      return entry.get();
    }
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view unit) {
  if (const Entry* found = find(name)) {
    GE_CHECK(found->kind == Kind::kCounter, "metric re-registered as a different kind");
    GE_CHECK(found->unit == unit, "metric re-registered with a different unit");
    return const_cast<Entry*>(found)->counter;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->unit = std::string(unit);
  entry->kind = Kind::kCounter;
  entries_.push_back(std::move(entry));
  return entries_.back()->counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view unit,
                              Gauge::Merge merge) {
  if (const Entry* found = find(name)) {
    GE_CHECK(found->kind == Kind::kGauge, "metric re-registered as a different kind");
    GE_CHECK(found->unit == unit, "metric re-registered with a different unit");
    GE_CHECK(found->gauge.merge_mode() == merge,
             "gauge re-registered with a different merge mode");
    return const_cast<Entry*>(found)->gauge;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->unit = std::string(unit);
  entry->kind = Kind::kGauge;
  entry->gauge.merge_ = merge;
  entries_.push_back(std::move(entry));
  return entries_.back()->gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      std::string_view unit) {
  GE_CHECK(!bounds.empty(), "histogram needs at least one bucket bound");
  GE_CHECK(std::is_sorted(bounds.begin(), bounds.end()),
           "histogram bounds must be sorted");
  if (const Entry* found = find(name)) {
    GE_CHECK(found->kind == Kind::kHistogram,
             "metric re-registered as a different kind");
    GE_CHECK(found->unit == unit, "metric re-registered with a different unit");
    GE_CHECK(found->histogram.bounds_ == bounds,
             "histogram re-registered with different bounds");
    return const_cast<Entry*>(found)->histogram;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->unit = std::string(unit);
  entry->kind = Kind::kHistogram;
  entry->histogram.bounds_ = std::move(bounds);
  entry->histogram.counts_.assign(entry->histogram.bounds_.size() + 1, 0);
  entries_.push_back(std::move(entry));
  return entries_.back()->histogram;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& theirs : other.entries_) {
    switch (theirs->kind) {
      case Kind::kCounter: {
        counter(theirs->name, theirs->unit).add(theirs->counter.value());
        break;
      }
      case Kind::kGauge: {
        Gauge& mine = gauge(theirs->name, theirs->unit, theirs->gauge.merge_mode());
        if (!theirs->gauge.written()) {
          break;
        }
        if (!mine.written()) {
          mine.set(theirs->gauge.value());
          break;
        }
        switch (mine.merge_mode()) {
          case Gauge::Merge::kSum:
            mine.set(mine.value() + theirs->gauge.value());
            break;
          case Gauge::Merge::kMin:
            mine.set(std::min(mine.value(), theirs->gauge.value()));
            break;
          case Gauge::Merge::kMax:
            mine.set(std::max(mine.value(), theirs->gauge.value()));
            break;
          case Gauge::Merge::kLast:
            mine.set(theirs->gauge.value());
            break;
        }
        break;
      }
      case Kind::kHistogram: {
        Histogram& mine =
            histogram(theirs->name, theirs->histogram.bounds_, theirs->unit);
        const Histogram& h = theirs->histogram;
        if (h.count_ == 0) {
          break;
        }
        if (mine.count_ == 0 || h.min_ < mine.min_) {
          mine.min_ = h.min_;
        }
        if (mine.count_ == 0 || h.max_ > mine.max_) {
          mine.max_ = h.max_;
        }
        mine.count_ += h.count_;
        mine.sum_ += h.sum_;
        for (std::size_t i = 0; i < mine.counts_.size(); ++i) {
          mine.counts_[i] += h.counts_[i];
        }
        break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"schema\": \"goodenough-metrics-v1\",\n  \"metrics\": [";
  bool first = true;
  for (const auto& entry : entries_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << entry->name << "\", \"type\": \""
        << kind_name(entry->kind) << "\", \"unit\": \"" << entry->unit << "\"";
    switch (entry->kind) {
      case Kind::kCounter:
        out << ", \"value\": " << fmt(entry->counter.value());
        break;
      case Kind::kGauge:
        out << ", \"merge\": \"" << merge_name(entry->gauge.merge_mode())
            << "\", \"value\": " << fmt(entry->gauge.value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = entry->histogram;
        out << ", \"count\": " << h.count() << ", \"sum\": " << fmt(h.sum())
            << ", \"min\": " << fmt(h.min()) << ", \"max\": " << fmt(h.max())
            << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          out << (i == 0 ? "" : ", ") << "{\"le\": " << fmt(h.bounds()[i])
              << ", \"count\": " << h.bucket_counts()[i] << "}";
        }
        out << ", {\"le\": \"inf\", \"count\": " << h.bucket_counts().back()
            << "}]";
        break;
      }
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace ge::obs
