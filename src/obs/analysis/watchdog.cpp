#include "obs/analysis/watchdog.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ge::obs::analysis {
namespace {

// Instantaneous events are emitted at sim.now() and must be nondecreasing in
// buffer order; everything else is retrospective (see watchdog.h).
bool instantaneous(TraceEventType type) {
  switch (type) {
    case TraceEventType::kArrival:
    case TraceEventType::kRound:
    case TraceEventType::kModeSwitch:
    case TraceEventType::kCut:
    case TraceEventType::kCap:
    case TraceEventType::kCoreOffline:
    case TraceEventType::kDispatch:
    case TraceEventType::kAssign:
      return true;
    default:
      return false;
  }
}

constexpr double kTimeTol = 1e-12;

}  // namespace

Watchdog::Watchdog(TraceBuffer& buffer, WatchdogOptions options,
                   MetricsRegistry* metrics)
    : buffer_(buffer), options_(std::move(options)) {
  exec_energy_j_.resize(options_.models.size());
  for (std::size_t s = 0; s < options_.models.size(); ++s) {
    exec_energy_j_[s].assign(options_.models[s].size(), 0.0);
  }
  if (metrics != nullptr) {
    m_checks_ = &metrics->counter("watchdog.checks", "events");
    m_violations_ = &metrics->counter("watchdog.violations", "violations");
  }
}

void Watchdog::record(double t, ViolationCheck check, double observed,
                      double expected) {
  ++violations_;
  if (m_violations_ != nullptr) {
    m_violations_->increment();
  }
  TraceEvent ev;
  ev.type = TraceEventType::kViolation;
  ev.t = t;
  ev.mode = static_cast<std::int32_t>(check);
  ev.a = observed;
  ev.b = expected;
  // Re-enters on_event(), which returns immediately for kViolation.
  buffer_.push(ev);
}

std::int32_t Watchdog::server_of(std::int64_t job) const {
  const auto idx = static_cast<std::size_t>(job);
  if (job >= 0 && idx < job_server_.size() && job_server_[idx] >= 0) {
    return job_server_[idx];
  }
  return 0;  // single-server runs emit no dispatch events
}

void Watchdog::on_event(const TraceEvent& ev) {
  if (ev.type == TraceEventType::kViolation) {
    return;  // our own records (or a test's); never re-checked
  }
  ++events_checked_;
  if (m_checks_ != nullptr) {
    m_checks_->increment();
  }

  if (instantaneous(ev.type)) {
    if (ev.t < last_instant_t_ - kTimeTol) {
      record(ev.t, ViolationCheck::kMonotoneClock, ev.t, last_instant_t_);
    }
    last_instant_t_ = std::max(last_instant_t_, ev.t);
  }

  switch (ev.type) {
    case TraceEventType::kArrival:
      ++arrivals_;
      break;
    case TraceEventType::kDispatch: {
      ++dispatches_;
      const auto idx = static_cast<std::size_t>(ev.job);
      if (ev.job >= 0) {
        if (idx >= job_server_.size()) {
          job_server_.resize(idx + 1, -1);
        }
        job_server_[idx] = ev.core;
      }
      break;
    }
    case TraceEventType::kExec: {
      if (ev.t2 < ev.t - kTimeTol) {
        record(ev.t, ViolationCheck::kExecSpan, ev.t2, ev.t);
        break;
      }
      if (exec_energy_j_.empty()) {
        break;  // no models supplied: span order checked, energy skipped
      }
      const auto server = static_cast<std::size_t>(server_of(ev.job));
      if (server >= exec_energy_j_.size() || ev.core < 0 ||
          static_cast<std::size_t>(ev.core) >= exec_energy_j_[server].size()) {
        record(ev.t, ViolationCheck::kExecSpan, static_cast<double>(ev.core),
               static_cast<double>(
                   server < exec_energy_j_.size() ? exec_energy_j_[server].size()
                                                  : 0));
        break;
      }
      const power::PowerModel& pm = options_.models[server][ev.core];
      exec_energy_j_[server][static_cast<std::size_t>(ev.core)] +=
          pm.power(ev.a) * (ev.t2 - ev.t);
      break;
    }
    case TraceEventType::kCompletion:
    case TraceEventType::kDeadlineMiss:
      ++settlements_;
      if (ev.b > 0.0 && ev.a > ev.b * (1.0 + 1e-9) + options_.units_tol) {
        record(ev.t, ViolationCheck::kJobOverrun, ev.a, ev.b);
      }
      break;
    case TraceEventType::kRound:
      // A round's caps follow its round event, so the running sum resets
      // here and is checked incrementally per cap.
      round_cap_sum_w_ = 0.0;
      in_round_ = true;
      break;
    case TraceEventType::kCap: {
      if (!in_round_ || options_.server_budgets_w.size() != 1) {
        break;  // cluster cap streams interleave; identity not checkable
      }
      round_cap_sum_w_ += ev.a;
      const double budget = options_.server_budgets_w[0];
      if (round_cap_sum_w_ > budget * (1.0 + 1e-9) + 1e-6) {
        record(ev.t, ViolationCheck::kCapBudget, round_cap_sum_w_, budget);
        in_round_ = false;  // one violation per round, not per further cap
      }
      break;
    }
    default:
      break;
  }
}

void Watchdog::finish(double now, const Totals& totals) {
  if (settlements_ != totals.released) {
    record(now, ViolationCheck::kSettlementConservation,
           static_cast<double>(settlements_),
           static_cast<double>(totals.released));
  }
  if (dispatches_ > 0 && dispatches_ != totals.released) {
    record(now, ViolationCheck::kDispatchConservation,
           static_cast<double>(dispatches_),
           static_cast<double>(totals.released));
  }
  const std::size_t servers =
      std::min(exec_energy_j_.size(), totals.server_energy_j.size());
  for (std::size_t s = 0; s < servers; ++s) {
    // Core order matches the server's own accumulation order, so this sum
    // is bit-identical to MulticoreServer::total_energy() for a clean run.
    double integrated = 0.0;
    for (const double e : exec_energy_j_[s]) {
      integrated += e;
    }
    const double reported = totals.server_energy_j[s];
    const double diff = std::abs(integrated - reported);
    const double tol =
        options_.energy_rel_tol * std::max(std::abs(reported), 1.0);
    if (diff > tol) {
      record(now, ViolationCheck::kEnergyIdentity, integrated, reported);
    }
  }
}

}  // namespace ge::obs::analysis
