#include "obs/analysis/analysis.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/quantiles.h"

namespace ge::obs::analysis {
namespace {

// Same completion tolerance as exp::run_simulation, so the outcome split in
// a report matches the RunResult counts.
constexpr double kCompleteTol = 1e-6;

// Residency bin of a speed in GHz; the epsilon keeps exact bin boundaries
// (common with discrete DVFS ladders: 0.2 GHz steps on 0.2 GHz bins) from
// flapping down a bin on floating-point noise.
std::int32_t speed_bin(double ghz, double width) {
  return static_cast<std::int32_t>(std::floor(ghz / width + 1e-9));
}

PhaseStats phase_stats(const util::QuantileCollector& samples) {
  PhaseStats stats;
  stats.count = samples.count();
  if (stats.count > 0) {
    stats.mean_ms = samples.mean();
    stats.p50_ms = samples.quantile(0.50);
    stats.p95_ms = samples.quantile(0.95);
    stats.p99_ms = samples.quantile(0.99);
  }
  return stats;
}

// Per-core accumulator.  busy/energy are folded strictly in event order --
// the same addition sequence the simulated core used -- so the totals are
// bit-identical to Core::energy() (and their server-major sum to
// Cluster::total_energy()) when the models are exact.
struct CoreAcc {
  std::map<std::int32_t, ResidencyBin> bins;
  double busy_s = 0.0;
  double energy_j = 0.0;
};

}  // namespace

TaskAnalysis analyze_task(const TaskInput& input, const AnalysisOptions& options) {
  GE_CHECK(input.buffer != nullptr, "analyze_task: null trace buffer");
  GE_CHECK(options.speed_bin_ghz > 0.0, "speed_bin_ghz must be positive");
  GE_CHECK(options.timeline_bins > 0, "timeline_bins must be positive");

  TaskAnalysis out;
  out.info = input.info;
  out.reported_energy_j = input.reported_energy_j;

  const std::vector<TraceEvent>& events = input.buffer->events();
  const bool exact_models = !input.models.empty();

  // --- pass 1: job spans, residency, counters --------------------------------
  std::unordered_map<std::int64_t, std::size_t> job_index;
  auto job_of = [&](std::int64_t id) -> JobSpan& {
    auto [it, inserted] = job_index.try_emplace(id, out.jobs.size());
    if (inserted) {
      out.jobs.emplace_back();
      out.jobs.back().id = id;
    }
    return out.jobs[it->second];
  };

  std::map<std::pair<std::int32_t, std::int32_t>, CoreAcc> cores;
  double t_max = 0.0;
  std::size_t max_server = 0;

  for (const TraceEvent& ev : events) {
    t_max = std::max(t_max, std::max(ev.t, ev.t2));
    switch (ev.type) {
      case TraceEventType::kArrival: {
        JobSpan& job = job_of(ev.job);
        job.arrival = ev.t;
        job.demand = ev.a;
        job.deadline = ev.b;
        break;
      }
      case TraceEventType::kDispatch: {
        JobSpan& job = job_of(ev.job);
        job.server = ev.core;  // server index rides in the core field
        max_server = std::max(max_server, static_cast<std::size_t>(ev.core));
        break;
      }
      case TraceEventType::kAssign: {
        JobSpan& job = job_of(ev.job);
        if (job.assigned < 0.0) {
          job.assigned = ev.t;
          job.core = ev.core;
        }
        break;
      }
      case TraceEventType::kExec: {
        JobSpan& job = job_of(ev.job);
        if (job.first_exec < 0.0) {
          job.first_exec = ev.t;
        }
        const std::int32_t server = job.server;
        const power::PowerModel& pm =
            exact_models ? input.models.at(static_cast<std::size_t>(server))
                              .at(static_cast<std::size_t>(ev.core))
                         : input.fallback_model;
        const double dt = ev.t2 - ev.t;
        // The exact term Core::advance_to accumulated for this slice.
        const double energy = pm.power(ev.a) * dt;
        job.energy_j += energy;
        CoreAcc& acc = cores[{server, ev.core}];
        acc.busy_s += dt;
        acc.energy_j += energy;
        ResidencyBin& bin =
            acc.bins
                .try_emplace(speed_bin(pm.ghz(ev.a), options.speed_bin_ghz))
                .first->second;
        bin.busy_s += dt;
        bin.energy_j += energy;
        break;
      }
      case TraceEventType::kCompletion:
      case TraceEventType::kDeadlineMiss: {
        JobSpan& job = job_of(ev.job);
        job.settled = ev.t;
        job.executed = ev.a;
        if (ev.b > 0.0) {
          job.demand = ev.b;
        }
        job.missed = ev.type == TraceEventType::kDeadlineMiss;
        break;
      }
      case TraceEventType::kRound:
        ++out.rounds;
        break;
      case TraceEventType::kModeSwitch:
        ++out.mode_switches;
        break;
      case TraceEventType::kCut:
        ++out.cuts;
        break;
      case TraceEventType::kViolation:
        out.violations.push_back(ev);
        break;
      default:
        break;
    }
  }

  out.num_servers = exact_models ? input.models.size() : max_server + 1;

  // --- job tallies and phase stats -------------------------------------------
  util::QuantileCollector wait, service, response, slack;
  for (const JobSpan& job : out.jobs) {
    ++out.released;
    if (job.executed >= job.demand - kCompleteTol) {
      ++out.completed;
    } else if (job.executed > kCompleteTol) {
      ++out.partial;
    } else {
      ++out.dropped;
    }
    if (job.missed) {
      ++out.missed;
    }
    if (job.wait_ms() >= 0.0) wait.add(job.wait_ms());
    if (job.service_ms() >= 0.0) service.add(job.service_ms());
    if (job.response_ms() >= 0.0) response.add(job.response_ms());
    if (job.slack_ms() >= 0.0) slack.add(job.slack_ms());
  }
  out.wait = phase_stats(wait);
  out.service = phase_stats(service);
  out.response = phase_stats(response);
  out.slack = phase_stats(slack);

  // --- residency and the energy identity -------------------------------------
  out.server_energy_j.assign(out.num_servers, 0.0);
  for (const auto& [key, acc] : cores) {
    CoreResidency residency;
    residency.server = key.first;
    residency.core = key.second;
    residency.busy_s = acc.busy_s;
    residency.energy_j = acc.energy_j;
    residency.bins.reserve(acc.bins.size());
    for (const auto& [bin, data] : acc.bins) {
      ResidencyBin entry = data;
      entry.bin = bin;
      residency.bins.push_back(entry);
    }
    // cores is (server, core)-sorted, so each per-server sum visits cores in
    // exactly the order MulticoreServer::total_energy() does (idle cores
    // contribute +0.0, which is additively exact).
    if (static_cast<std::size_t>(key.first) < out.server_energy_j.size()) {
      out.server_energy_j[static_cast<std::size_t>(key.first)] += acc.energy_j;
    } else {
      out.integrated_energy_j += acc.energy_j;  // malformed server id
    }
    out.residency.push_back(std::move(residency));
  }
  // Sum per-server subtotals, matching Cluster::total_energy()'s grouping --
  // a flat core sum would differ in the last ulp on multi-server runs.
  for (const double server_energy : out.server_energy_j) {
    out.integrated_energy_j += server_energy;
  }
  if (out.reported_energy_j >= 0.0) {
    const double diff = std::abs(out.integrated_energy_j - out.reported_energy_j);
    out.energy_rel_err =
        out.reported_energy_j > 0.0 ? diff / out.reported_energy_j : diff;
  }

  // --- per-server dispatch tallies -------------------------------------------
  out.dispatched.assign(out.num_servers, 0);
  for (const TraceEvent& ev : events) {
    if (ev.type == TraceEventType::kDispatch) {
      const auto server = static_cast<std::size_t>(ev.core);
      GE_CHECK(server < out.num_servers, "dispatch event names an unknown server");
      ++out.dispatched[server];
    }
  }
  if (out.num_servers == 1) {
    // Single-server runs skip dispatch events; everything lands on server 0.
    out.dispatched[0] = out.released;
  }

  // --- timelines --------------------------------------------------------------
  const std::size_t bins = options.timeline_bins;
  out.bin_width = t_max > 0.0 ? t_max / static_cast<double>(bins) : 1.0;
  out.bin_end.resize(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    out.bin_end[i] = out.bin_width * static_cast<double>(i + 1);
  }
  out.timelines.resize(out.num_servers);
  for (std::size_t s = 0; s < out.num_servers; ++s) {
    ServerTimeline& tl = out.timelines[s];
    tl.server = static_cast<std::int32_t>(s);
    tl.waiting.assign(bins, 0.0);
    tl.in_flight.assign(bins, 0.0);
    tl.busy_cores.assign(bins, 0.0);
    tl.power_w.assign(bins, 0.0);
  }

  auto bin_of = [&](double t) {
    const auto i = static_cast<std::size_t>(std::max(t, 0.0) / out.bin_width);
    return std::min(i, bins - 1);
  };
  for (const TraceEvent& ev : events) {
    if (ev.type != TraceEventType::kExec || ev.t2 <= ev.t) {
      continue;
    }
    const JobSpan& job = out.jobs[job_index.at(ev.job)];
    ServerTimeline& tl = out.timelines[static_cast<std::size_t>(job.server)];
    const power::PowerModel& pm =
        exact_models ? input.models[static_cast<std::size_t>(job.server)]
                                   [static_cast<std::size_t>(ev.core)]
                     : input.fallback_model;
    const double watts = pm.power(ev.a);
    for (std::size_t i = bin_of(ev.t); i <= bin_of(ev.t2); ++i) {
      const double lo = std::max(ev.t, out.bin_end[i] - out.bin_width);
      const double hi = std::min(ev.t2, out.bin_end[i]);
      if (hi > lo) {
        tl.busy_cores[i] += hi - lo;
        tl.power_w[i] += watts * (hi - lo);
      }
    }
  }
  for (ServerTimeline& tl : out.timelines) {
    for (std::size_t i = 0; i < bins; ++i) {
      tl.busy_cores[i] /= out.bin_width;
      tl.power_w[i] /= out.bin_width;
    }
  }
  // Queue lengths are sampled at each bin-end instant: a job waits from
  // release until admission (or settlement, if never admitted) and is in
  // flight from release until settlement.
  for (const JobSpan& job : out.jobs) {
    if (job.arrival < 0.0) {
      continue;
    }
    ServerTimeline& tl = out.timelines[static_cast<std::size_t>(job.server)];
    const double wait_end = job.assigned >= 0.0
                                ? job.assigned
                                : (job.settled >= 0.0 ? job.settled : t_max + 1.0);
    const double flight_end = job.settled >= 0.0 ? job.settled : t_max + 1.0;
    for (std::size_t i = bin_of(job.arrival); i < bins; ++i) {
      const double te = out.bin_end[i];
      if (te >= flight_end) {
        break;
      }
      if (te >= job.arrival) {
        tl.in_flight[i] += 1.0;
        if (te < wait_end) {
          tl.waiting[i] += 1.0;
        }
      }
    }
  }

  return out;
}

}  // namespace ge::obs::analysis
