// Trace analytics: derived views over a run's TraceBuffer.
//
// The raw trace answers "what happened"; this module answers "where did the
// energy go" and "which phase of a job's lifecycle ate its slack".  From one
// task's event stream analyze_task() derives:
//
//   * per-job lifecycle spans -- release (arrival) -> GE-round admission
//     (assign) -> first executed slice -> settlement, with the wait /
//     service / response / slack breakdown in milliseconds;
//   * per-core speed residency histograms -- busy seconds and energy per
//     DVFS/speed bin, integrated from the exec slices.  Exec events carry
//     exactly the (speed, duration) terms the cores accumulated energy
//     from, and this module adds them per core in event order, so the
//     integrated total reproduces the run's reported dynamic energy
//     bit-for-bit when the analysis runs in-process (file round-trips
//     through %.12g cost ~1e-12 relative per term; see
//     docs/OBSERVABILITY.md "Analysis & reports");
//   * queue-length / in-flight / power timelines, per server, on a fixed
//     grid of bins;
//   * conservation tallies (dispatches per server, settlement outcomes,
//     recorded watchdog violations).
//
// Everything here is a pure function of the event sequence plus the power
// models, so analyses inherit the engine's determinism contract: the same
// trace yields byte-identical reports for any --jobs value.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "power/power_model.h"

namespace ge::obs::analysis {

struct AnalysisOptions {
  // Residency histogram bin width in GHz (bin k covers [k*w, (k+1)*w)).
  double speed_bin_ghz = 0.2;
  // Number of timeline bins the run is divided into.
  std::size_t timeline_bins = 60;
};

// One task's trace plus the context needed to price its exec slices.
struct TaskInput {
  TraceTaskInfo info;
  const TraceBuffer* buffer = nullptr;
  // Exact per-server, per-core power models (server-major), as built by
  // ExperimentConfig::cluster_node_specs().
  std::vector<std::vector<power::PowerModel>> models;
  // Used for every core when `models` is empty (the file-reader path, where
  // per-core heterogeneity is not recoverable from the trace); ge_report
  // fills it from the meta record's power_model parameters.
  power::PowerModel fallback_model;
  // The run's reported dynamic energy (RunResult::energy); < 0 = unknown
  // (file-reader path without a metrics file).
  double reported_energy_j = -1.0;
};

// Lifecycle of one job as seen through its trace events.  Times are absolute
// simulated seconds; -1 marks a phase that never happened (a dropped job has
// no first_exec, a job admitted mid-queue-policy run has no assign event).
struct JobSpan {
  std::int64_t id = -1;
  std::int32_t server = 0;
  std::int32_t core = -1;
  double arrival = -1.0;
  double assigned = -1.0;    // first GE-round admission (kAssign)
  double first_exec = -1.0;  // start of the first executed slice
  double settled = -1.0;     // completion or deadline-miss settlement
  double deadline = -1.0;
  double demand = 0.0;    // units
  double executed = 0.0;  // units, as reported at settlement
  double energy_j = 0.0;  // integrated over this job's exec slices
  bool missed = false;    // settled by a kDeadlineMiss event

  // Derived phases (ms); -1 when an endpoint is missing.
  double wait_ms() const noexcept {       // release -> admission
    return (arrival >= 0.0 && assigned >= 0.0) ? (assigned - arrival) * 1e3 : -1.0;
  }
  double service_ms() const noexcept {    // first slice -> settlement
    return (first_exec >= 0.0 && settled >= 0.0) ? (settled - first_exec) * 1e3
                                                 : -1.0;
  }
  double response_ms() const noexcept {   // release -> settlement
    return (arrival >= 0.0 && settled >= 0.0) ? (settled - arrival) * 1e3 : -1.0;
  }
  double slack_ms() const noexcept {      // settlement -> deadline
    return (settled >= 0.0 && deadline >= 0.0) ? (deadline - settled) * 1e3 : -1.0;
  }
};

// Busy time and energy inside one speed bin of one core.
struct ResidencyBin {
  std::int32_t bin = 0;  // covers [bin*w, (bin+1)*w) GHz
  double busy_s = 0.0;
  double energy_j = 0.0;
};

struct CoreResidency {
  std::int32_t server = 0;
  std::int32_t core = 0;
  std::vector<ResidencyBin> bins;  // ascending bin index, empty bins omitted
  double busy_s = 0.0;
  double energy_j = 0.0;  // accumulated in event order (bit-exact, see above)
};

// Summary statistics of one lifecycle phase over the jobs that had it.
struct PhaseStats {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

// Per-server time series on the shared bin grid (bin i covers
// (bin_end[i] - bin_width, bin_end[i]]).  waiting/in_flight are sampled at
// each bin's end instant; busy_cores/power_w are bin averages integrated
// from the exec slices.
struct ServerTimeline {
  std::int32_t server = 0;
  std::vector<double> waiting;     // released, not yet admitted or settled
  std::vector<double> in_flight;   // released, not yet settled
  std::vector<double> busy_cores;  // mean cores executing during the bin
  std::vector<double> power_w;     // mean dynamic power during the bin
};

struct TaskAnalysis {
  TraceTaskInfo info;
  std::size_t num_servers = 1;

  // Jobs in arrival order.
  std::vector<JobSpan> jobs;
  std::uint64_t released = 0;
  std::uint64_t completed = 0;  // executed >= demand (1e-6 units tolerance)
  std::uint64_t partial = 0;
  std::uint64_t dropped = 0;
  std::uint64_t missed = 0;  // settled by deadline-miss

  PhaseStats wait, service, response, slack;

  // Residency, (server, core) ascending; cores with no exec slices omitted.
  std::vector<CoreResidency> residency;
  double integrated_energy_j = 0.0;  // sum over residency entries, in order
  double reported_energy_j = -1.0;   // copied from the input; < 0 = unknown
  // |integrated - reported| / max(|reported|, tiny); -1 when unknown.
  double energy_rel_err = -1.0;

  std::uint64_t rounds = 0;
  std::uint64_t mode_switches = 0;
  std::uint64_t cuts = 0;
  std::vector<TraceEvent> violations;  // kViolation events, in order

  // Per-server tallies (size num_servers; single-server runs have one entry
  // with dispatched == released).
  std::vector<std::uint64_t> dispatched;
  std::vector<double> server_energy_j;

  double bin_width = 0.0;
  std::vector<double> bin_end;  // shared bin-end times, ascending
  std::vector<ServerTimeline> timelines;  // one per server
};

TaskAnalysis analyze_task(const TaskInput& input,
                          const AnalysisOptions& options = {});

}  // namespace ge::obs::analysis
