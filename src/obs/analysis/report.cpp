#include "obs/analysis/report.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "util/check.h"

namespace ge::obs::analysis {
namespace {

// Same formatting as the trace writer: enough digits to round-trip almost
// exactly, and identical bytes for identical doubles.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

// Fixed-precision rendering for the human-facing Markdown tables.
std::string fixed(double v, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

void phase_row(std::ostream& out, const char* name, const PhaseStats& stats) {
  out << "| " << name << " | " << stats.count << " | " << fixed(stats.mean_ms, 2)
      << " | " << fixed(stats.p50_ms, 2) << " | " << fixed(stats.p95_ms, 2)
      << " | " << fixed(stats.p99_ms, 2) << " |\n";
}

const char* outcome_name(const JobSpan& job) {
  constexpr double kCompleteTol = 1e-6;  // matches analysis.cpp / the runner
  if (job.executed >= job.demand - kCompleteTol) {
    return "completed";
  }
  return job.executed > kCompleteTol ? "partial" : "dropped";
}

}  // namespace

ReportWriter::ReportWriter(ReportOptions options) : options_(options) {}

void ReportWriter::add_task(const TaskInput& input) {
  tasks_.push_back(analyze_task(input, options_));
}

void ReportWriter::write_markdown(std::ostream& out) const {
  out << "# goodenough run report\n\n";
  out << "schema: ge-report-v1 | tasks: " << tasks_.size() << "\n";

  for (const TaskAnalysis& task : tasks_) {
    out << "\n## task " << task.info.task << " — " << task.info.scheduler
        << " @ " << fmt(task.info.arrival_rate) << " req/s\n\n";
    out << "- config: " << task.num_servers << " server(s), "
        << task.info.cores << " cores/server, budget "
        << fmt(task.info.power_budget) << " W, power model "
        << task.info.power_model_json << "\n";
    out << "- jobs: " << task.released << " released = " << task.completed
        << " completed + " << task.partial << " partial + " << task.dropped
        << " dropped (" << task.missed << " deadline misses)\n";
    out << "- scheduling: " << task.rounds << " rounds, " << task.mode_switches
        << " mode switches, " << task.cuts << " cuts\n";
    out << "- energy: integrated " << fmt(task.integrated_energy_j) << " J";
    if (task.reported_energy_j >= 0.0) {
      out << " vs reported " << fmt(task.reported_energy_j) << " J (rel err "
          << fmt(task.energy_rel_err) << ") — "
          << (task.energy_rel_err <= options_.energy_rel_tol ? "OK" : "MISMATCH")
          << "\n";
    } else {
      out << " (no reported total to cross-check)\n";
    }

    out << "\n### lifecycle (ms)\n\n";
    out << "| phase | jobs | mean | p50 | p95 | p99 |\n";
    out << "|---|---:|---:|---:|---:|---:|\n";
    phase_row(out, "wait (release -> admission)", task.wait);
    phase_row(out, "service (first slice -> settled)", task.service);
    phase_row(out, "response (release -> settled)", task.response);
    phase_row(out, "slack (settled -> deadline)", task.slack);

    // Aggregate the per-core residency over the fleet for the overview
    // table; per-core rows live in residency.csv.
    std::map<std::int32_t, ResidencyBin> fleet;
    double total_busy = 0.0;
    for (const CoreResidency& core : task.residency) {
      total_busy += core.busy_s;
      for (const ResidencyBin& bin : core.bins) {
        ResidencyBin& agg = fleet.try_emplace(bin.bin).first->second;
        agg.busy_s += bin.busy_s;
        agg.energy_j += bin.energy_j;
      }
    }
    out << "\n### speed residency (" << fmt(options_.speed_bin_ghz)
        << " GHz bins, all cores)\n\n";
    out << "| GHz | busy core-s | share | energy J |\n";
    out << "|---|---:|---:|---:|\n";
    for (const auto& [bin, agg] : fleet) {
      const double lo = static_cast<double>(bin) * options_.speed_bin_ghz;
      out << "| " << fixed(lo, 2) << "–"
          << fixed(lo + options_.speed_bin_ghz, 2) << " | "
          << fixed(agg.busy_s, 3) << " | "
          << fixed(total_busy > 0.0 ? 100.0 * agg.busy_s / total_busy : 0.0, 1)
          << "% | " << fixed(agg.energy_j, 3) << " |\n";
    }

    if (task.num_servers > 1) {
      out << "\n### servers\n\n";
      out << "| server | dispatched | energy J |\n";
      out << "|---:|---:|---:|\n";
      for (std::size_t s = 0; s < task.num_servers; ++s) {
        out << "| " << s << " | " << task.dispatched[s] << " | "
            << fixed(task.server_energy_j[s], 3) << " |\n";
      }
    }

    out << "\n### watchdog\n\n";
    if (task.violations.empty()) {
      out << "no violations recorded\n";
    } else {
      out << "| t | check | observed | expected |\n";
      out << "|---:|---|---:|---:|\n";
      for (const TraceEvent& ev : task.violations) {
        out << "| " << fmt(ev.t) << " | " << violation_check_name(ev.mode)
            << " | " << fmt(ev.a) << " | " << fmt(ev.b) << " |\n";
      }
    }
  }
}

void ReportWriter::write_summary_csv(std::ostream& out) const {
  out << "task,scheduler,arrival_rate,servers,cores,released,completed,partial,"
         "dropped,missed,rounds,mode_switches,cuts,violations,"
         "integrated_energy_j,reported_energy_j,energy_rel_err,"
         "mean_response_ms,p99_response_ms\n";
  for (const TaskAnalysis& task : tasks_) {
    out << task.info.task << "," << task.info.scheduler << ","
        << fmt(task.info.arrival_rate) << "," << task.num_servers << ","
        << task.info.cores << "," << task.released << "," << task.completed
        << "," << task.partial << "," << task.dropped << "," << task.missed
        << "," << task.rounds << "," << task.mode_switches << "," << task.cuts
        << "," << task.violations.size() << "," << fmt(task.integrated_energy_j)
        << "," << fmt(task.reported_energy_j) << "," << fmt(task.energy_rel_err)
        << "," << fmt(task.response.mean_ms) << "," << fmt(task.response.p99_ms)
        << "\n";
  }
}

void ReportWriter::write_jobs_csv(std::ostream& out) const {
  out << "task,job,server,core,arrival_s,assigned_s,first_exec_s,settled_s,"
         "deadline_s,demand_units,executed_units,energy_j,wait_ms,service_ms,"
         "response_ms,slack_ms,outcome,missed\n";
  for (const TaskAnalysis& task : tasks_) {
    for (const JobSpan& job : task.jobs) {
      out << task.info.task << "," << job.id << "," << job.server << ","
          << job.core << "," << fmt(job.arrival) << "," << fmt(job.assigned)
          << "," << fmt(job.first_exec) << "," << fmt(job.settled) << ","
          << fmt(job.deadline) << "," << fmt(job.demand) << ","
          << fmt(job.executed) << "," << fmt(job.energy_j) << ","
          << fmt(job.wait_ms()) << "," << fmt(job.service_ms()) << ","
          << fmt(job.response_ms()) << "," << fmt(job.slack_ms()) << ","
          << outcome_name(job) << "," << (job.missed ? 1 : 0) << "\n";
    }
  }
}

void ReportWriter::write_residency_csv(std::ostream& out) const {
  out << "task,server,core,ghz_lo,ghz_hi,busy_s,energy_j\n";
  for (const TaskAnalysis& task : tasks_) {
    for (const CoreResidency& core : task.residency) {
      for (const ResidencyBin& bin : core.bins) {
        const double lo = static_cast<double>(bin.bin) * options_.speed_bin_ghz;
        out << task.info.task << "," << core.server << "," << core.core << ","
            << fmt(lo) << "," << fmt(lo + options_.speed_bin_ghz) << ","
            << fmt(bin.busy_s) << "," << fmt(bin.energy_j) << "\n";
      }
    }
  }
}

void ReportWriter::write_timeline_csv(std::ostream& out) const {
  out << "task,server,t_s,waiting,in_flight,busy_cores,power_w\n";
  for (const TaskAnalysis& task : tasks_) {
    for (const ServerTimeline& tl : task.timelines) {
      for (std::size_t i = 0; i < task.bin_end.size(); ++i) {
        out << task.info.task << "," << tl.server << "," << fmt(task.bin_end[i])
            << "," << fmt(tl.waiting[i]) << "," << fmt(tl.in_flight[i]) << ","
            << fmt(tl.busy_cores[i]) << "," << fmt(tl.power_w[i]) << "\n";
      }
    }
  }
}

void ReportWriter::write_directory(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  const auto write = [&](const char* name, auto&& render) {
    std::ofstream out(std::filesystem::path(dir) / name);
    GE_CHECK(out.good(), "cannot open report output file");
    render(out);
  };
  write("report.md", [&](std::ostream& o) { write_markdown(o); });
  write("summary.csv", [&](std::ostream& o) { write_summary_csv(o); });
  write("jobs.csv", [&](std::ostream& o) { write_jobs_csv(o); });
  write("residency.csv", [&](std::ostream& o) { write_residency_csv(o); });
  write("timeline.csv", [&](std::ostream& o) { write_timeline_csv(o); });
}

}  // namespace ge::obs::analysis
