#include "obs/analysis/trace_reader.h"

#include <cctype>
#include <cstdlib>
#include <iterator>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace ge::obs::analysis {
namespace {

// ---- minimal JSON subset parser ---------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // file order

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  // Required typed accessors; checked errors keep schema drift loud.
  double num(std::string_view key) const {
    const JsonValue* v = find(key);
    GE_CHECK(v != nullptr && v->kind == Kind::kNumber,
             "trace/metrics JSON: missing numeric field");
    return v->number;
  }
  const std::string& str(std::string_view key) const {
    const JsonValue* v = find(key);
    GE_CHECK(v != nullptr && v->kind == Kind::kString,
             "trace/metrics JSON: missing string field");
    return v->string;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    GE_CHECK(pos_ == text_.size(), "JSON: trailing characters");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    GE_CHECK(pos_ < text_.size(), "JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    GE_CHECK(peek() == ch, "JSON: unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue value;
    switch (peek()) {
      case '{': {
        value.kind = JsonValue::Kind::kObject;
        expect('{');
        skip_ws();
        if (peek() == '}') {
          expect('}');
          return value;
        }
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          value.object.emplace_back(std::move(key), parse_value());
          skip_ws();
          if (peek() == ',') {
            expect(',');
            continue;
          }
          expect('}');
          return value;
        }
      }
      case '[': {
        value.kind = JsonValue::Kind::kArray;
        expect('[');
        skip_ws();
        if (peek() == ']') {
          expect(']');
          return value;
        }
        while (true) {
          value.array.push_back(parse_value());
          skip_ws();
          if (peek() == ',') {
            expect(',');
            continue;
          }
          expect(']');
          return value;
        }
      }
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.string = parse_string();
        return value;
      case 't':
        GE_CHECK(consume_literal("true"), "JSON: bad literal");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        GE_CHECK(consume_literal("false"), "JSON: bad literal");
        value.kind = JsonValue::Kind::kBool;
        return value;
      case 'n':
        GE_CHECK(consume_literal("null"), "JSON: bad literal");
        return value;
      default:
        value.kind = JsonValue::Kind::kNumber;
        value.number = parse_number();
        return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      GE_CHECK(pos_ < text_.size(), "JSON: unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') {
        return out;
      }
      if (ch == '\\') {
        GE_CHECK(pos_ < text_.size(), "JSON: unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default:
            GE_CHECK(false, "JSON: unsupported escape sequence");
        }
        continue;
      }
      out.push_back(ch);
    }
  }

  double parse_number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    GE_CHECK(end != begin, "JSON: expected a number");
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

int parse_mode(const std::string& name) {
  if (name == "AES") return kModeAes;
  if (name == "BQ") return kModeBq;
  return -1;
}

std::int32_t parse_check(const std::string& name) {
  for (std::int32_t check = 0;; ++check) {
    const char* known = violation_check_name(check);
    if (std::string_view(known) == "?") {
      GE_CHECK(false, "trace JSONL: unknown violation check name");
    }
    if (name == known) {
      return check;
    }
  }
}

}  // namespace

std::vector<ParsedTask> read_trace_jsonl(std::istream& in) {
  std::vector<ParsedTask> tasks;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    const JsonValue record = JsonParser(line).parse();
    GE_CHECK(record.kind == JsonValue::Kind::kObject,
             "trace JSONL: every line must be an object");
    const std::string& kind = record.str("ev");
    if (kind == "meta") {
      ParsedTask task;
      task.info.task = static_cast<std::size_t>(record.num("task"));
      task.info.scheduler = record.str("scheduler");
      task.info.arrival_rate = record.num("arrival_rate");
      task.info.cores = static_cast<std::size_t>(record.num("cores"));
      task.info.power_budget = record.num("power_budget_w");
      const JsonValue* pm = record.find("power_model");
      GE_CHECK(pm != nullptr && pm->kind == JsonValue::Kind::kObject,
               "trace JSONL: meta record lacks a power_model object");
      task.model = power::PowerModel(pm->num("a"), pm->num("beta"),
                                     pm->num("units_per_ghz"));
      task.info.power_model_json = task.model.describe_json();
      GE_CHECK(task.info.task == tasks.size(),
               "trace JSONL: meta records out of order");
      tasks.push_back(std::move(task));
      continue;
    }
    GE_CHECK(!tasks.empty(), "trace JSONL: event before the first meta record");
    GE_CHECK(static_cast<std::size_t>(record.num("task")) == tasks.size() - 1,
             "trace JSONL: event names a task other than the current one");
    TraceEvent ev;
    ev.t = record.num("t");
    if (kind == "arrival") {
      ev.type = TraceEventType::kArrival;
      ev.job = static_cast<std::int64_t>(record.num("job"));
      ev.a = record.num("demand");
      ev.b = record.num("deadline");
    } else if (kind == "round") {
      ev.type = TraceEventType::kRound;
      ev.mode = parse_mode(record.str("mode"));
      ev.a = record.num("waiting");
      ev.b = record.num("rate");
      ev.c = record.num("round");
    } else if (kind == "mode") {
      ev.type = TraceEventType::kModeSwitch;
      ev.mode = parse_mode(record.str("mode"));
      ev.a = record.num("quality");
    } else if (kind == "cut") {
      ev.type = TraceEventType::kCut;
      ev.core = static_cast<std::int32_t>(record.num("core"));
      ev.a = record.num("jobs");
      ev.b = record.num("level");
      ev.c = record.num("target_units");
    } else if (kind == "cap") {
      ev.type = TraceEventType::kCap;
      ev.core = static_cast<std::int32_t>(record.num("core"));
      ev.a = record.num("watts");
    } else if (kind == "exec") {
      ev.type = TraceEventType::kExec;
      ev.t2 = record.num("t_end");
      ev.core = static_cast<std::int32_t>(record.num("core"));
      ev.job = static_cast<std::int64_t>(record.num("job"));
      ev.a = record.num("speed");
    } else if (kind == "completion" || kind == "deadline_miss") {
      ev.type = kind == "completion" ? TraceEventType::kCompletion
                                     : TraceEventType::kDeadlineMiss;
      ev.core = static_cast<std::int32_t>(record.num("core"));
      ev.job = static_cast<std::int64_t>(record.num("job"));
      ev.a = record.num("executed");
      ev.b = record.num("demand");
      ev.c = record.num("quality");
    } else if (kind == "core_offline") {
      ev.type = TraceEventType::kCoreOffline;
      ev.core = static_cast<std::int32_t>(record.num("core"));
    } else if (kind == "dispatch") {
      ev.type = TraceEventType::kDispatch;
      ev.job = static_cast<std::int64_t>(record.num("job"));
      ev.core = static_cast<std::int32_t>(record.num("server"));
      ev.a = record.num("in_flight");
    } else if (kind == "assign") {
      ev.type = TraceEventType::kAssign;
      ev.job = static_cast<std::int64_t>(record.num("job"));
      ev.core = static_cast<std::int32_t>(record.num("core"));
    } else if (kind == "violation") {
      ev.type = TraceEventType::kViolation;
      ev.mode = parse_check(record.str("check"));
      ev.a = record.num("observed");
      ev.b = record.num("expected");
    } else {
      GE_CHECK(false, "trace JSONL: unknown event kind");
    }
    tasks.back().buffer.push(ev);
  }
  return tasks;
}

double MetricsValues::get(const std::string& name, double fallback) const {
  for (const auto& [key, value] : values) {
    if (key == name) {
      return value;
    }
  }
  return fallback;
}

bool MetricsValues::has(const std::string& name) const {
  for (const auto& [key, value] : values) {
    if (key == name) {
      return true;
    }
  }
  return false;
}

MetricsValues read_metrics_json(std::istream& in) {
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const JsonValue root = JsonParser(text).parse();
  GE_CHECK(root.kind == JsonValue::Kind::kObject &&
               root.str("schema") == "goodenough-metrics-v1",
           "metrics JSON: unexpected schema");
  const JsonValue* metrics = root.find("metrics");
  GE_CHECK(metrics != nullptr && metrics->kind == JsonValue::Kind::kArray,
           "metrics JSON: missing metrics array");
  MetricsValues out;
  for (const JsonValue& entry : metrics->array) {
    const std::string& name = entry.str("name");
    const std::string& type = entry.str("type");
    if (type == "histogram") {
      out.values.emplace_back(name + ".count", entry.num("count"));
      out.values.emplace_back(name + ".sum", entry.num("sum"));
    } else {
      out.values.emplace_back(name, entry.num("value"));
    }
  }
  return out;
}

}  // namespace ge::obs::analysis
