// Online invariant watchdog: a TraceObserver that checks conservation
// identities live, while the simulation runs, and records failures as
// kViolation trace events -- so a drifting invariant is pinned to the
// simulated instant it first broke instead of only failing post-hoc in
// tests.
//
// Streaming checks (per event):
//   * monotone_clock -- instantaneous events (arrival, round, mode, cut,
//     cap, core_offline, dispatch, assign) must not move backwards in time.
//     Retrospective events are exempt: exec slices are stamped with their
//     slice start when a core catches up, and settlements carry
//     finish_time = min(now, deadline), both legitimately in the past.
//   * exec_span -- a slice must have t_end >= t and name a core the server
//     has (when exact models are supplied).
//   * job_overrun -- a settlement must report executed <= demand (+tol).
//   * cap_budget -- the per-core caps of one scheduling round must sum to
//     at most the server budget (single-server runs only: cap events carry
//     no server id, so cluster cap streams interleave).
//
// End-of-run checks (finish()):
//   * settlement_conservation -- every released job settled exactly once.
//   * dispatch_conservation -- released == sum of per-server dispatches.
//   * energy_identity -- per server, the energy integrated from its exec
//     slices matches the server's reported dynamic energy within
//     `energy_rel_tol` (the slices carry the exact accrual terms, so 1e-9
//     relative holds in-process; see docs/OBSERVABILITY.md).
//
// Violations also bump the watchdog.checks / watchdog.violations counters
// when a registry is supplied, so a metrics file shows at a glance whether
// a run was clean.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "power/power_model.h"

namespace ge::obs::analysis {

struct WatchdogOptions {
  // Exact per-server, per-core power models (server-major); required for
  // the energy identity and the exec core-range check.
  std::vector<std::vector<power::PowerModel>> models;
  // Per-server power budgets (W); used by the cap_budget check, which is
  // active only for single-server runs (see above).
  std::vector<double> server_budgets_w;
  double energy_rel_tol = 1e-9;  // energy_identity tolerance (relative)
  double units_tol = 1e-6;       // job_overrun slack, processing units
};

class Watchdog final : public TraceObserver {
 public:
  // Observes `buffer`; the caller attaches it (buffer.set_observer(this))
  // and must detach before destroying the watchdog.  `metrics` may be null.
  Watchdog(TraceBuffer& buffer, WatchdogOptions options,
           MetricsRegistry* metrics);

  void on_event(const TraceEvent& event) override;

  // End-of-run ground truth, supplied by the runner.
  struct Totals {
    std::uint64_t released = 0;
    std::vector<double> server_energy_j;  // reported, per server in order
  };

  // Runs the conservation checks; violations are recorded at time `now`.
  void finish(double now, const Totals& totals);

  std::uint64_t events_checked() const noexcept { return events_checked_; }
  std::uint64_t violations() const noexcept { return violations_; }

 private:
  void record(double t, ViolationCheck check, double observed, double expected);
  std::int32_t server_of(std::int64_t job) const;

  TraceBuffer& buffer_;
  WatchdogOptions options_;
  std::uint64_t events_checked_ = 0;
  std::uint64_t violations_ = 0;

  double last_instant_t_ = 0.0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t settlements_ = 0;
  std::uint64_t dispatches_ = 0;
  std::vector<std::int32_t> job_server_;  // job id -> server; -1 unknown
  std::vector<std::vector<double>> exec_energy_j_;  // [server][core]
  double round_cap_sum_w_ = 0.0;
  bool in_round_ = false;

  Counter* m_checks_ = nullptr;
  Counter* m_violations_ = nullptr;
};

}  // namespace ge::obs::analysis
