// Deterministic run reports: Markdown for humans, CSV for tooling.
//
// A ReportWriter accumulates analyzed tasks (analysis.h) and renders them as
// a report directory:
//
//   report.md      -- per-task summary: outcome split, lifecycle phase
//                     table, aggregated speed-residency table, the
//                     residency-vs-reported energy identity verdict,
//                     per-server tallies and recorded watchdog violations
//   summary.csv    -- one row per task (the report.md numbers, raw)
//   jobs.csv       -- one row per job: full lifecycle span + energy
//   residency.csv  -- one row per (task, server, core, speed bin)
//   timeline.csv   -- one row per (task, server, time bin)
//
// Output bytes are a pure function of the added (input, options) sequence:
// no timestamps, no locale, %.12g number formatting (the trace writer's).
// Reports therefore inherit the engine's determinism contract -- the same
// plan produces byte-identical report directories for any --jobs value,
// which CI enforces with a directory diff.  Schema: ge-report-v1, described
// field-by-field in docs/OBSERVABILITY.md ("Analysis & reports").
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/analysis/analysis.h"

namespace ge::obs::analysis {

struct ReportOptions : AnalysisOptions {
  // Verdict threshold for the energy identity in report.md.  In-process
  // analyses see the exact accrual terms (1e-9 holds); file-based analyses
  // round-trip every term through %.12g, so ge_report relaxes this.
  double energy_rel_tol = 1e-9;
};

class ReportWriter {
 public:
  explicit ReportWriter(ReportOptions options = {});

  // Analyzes one task and appends it; tasks render in add order.
  void add_task(const TaskInput& input);

  const std::vector<TaskAnalysis>& tasks() const noexcept { return tasks_; }

  void write_markdown(std::ostream& out) const;
  void write_summary_csv(std::ostream& out) const;
  void write_jobs_csv(std::ostream& out) const;
  void write_residency_csv(std::ostream& out) const;
  void write_timeline_csv(std::ostream& out) const;

  // Creates `dir` (and parents) and writes report.md + the four CSVs.
  void write_directory(const std::string& dir) const;

 private:
  ReportOptions options_;
  std::vector<TaskAnalysis> tasks_;
};

}  // namespace ge::obs::analysis
