// Readers for the committed telemetry formats, so analyses can run offline
// from files as well as in-process from live buffers.
//
//   * read_trace_jsonl(): parses a --trace file back into per-task
//     (TraceTaskInfo, TraceBuffer) pairs -- the exact inverse of
//     TraceWriter's JSONL rendering (schema: docs/OBSERVABILITY.md).
//     Unknown "ev" kinds are a checked error, so schema drift between
//     writer and reader fails loudly instead of silently skewing reports.
//   * read_metrics_json(): parses a --metrics file into a flat name ->
//     scalar view (counters and gauges; histograms expose count and sum as
//     "<name>.count" / "<name>.sum").
//
// Numbers round-trip through the writer's %.12g formatting, which costs up
// to ~1e-12 relative per value: file-based energy cross-checks therefore use
// a looser tolerance than in-process ones (see docs/OBSERVABILITY.md).
//
// The parser is a ~hundred-line recursive-descent JSON subset (objects,
// arrays, strings, numbers, bools, null; no \uXXXX escapes -- the writers
// never emit them), kept here so the toolchain needs no JSON dependency.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "power/power_model.h"

namespace ge::obs::analysis {

// One task of a JSONL trace file.
struct ParsedTask {
  TraceTaskInfo info;
  power::PowerModel model;  // rebuilt from the meta record's power_model
  TraceBuffer buffer;
};

// Parses a whole JSONL trace stream (checked error on malformed input).
std::vector<ParsedTask> read_trace_jsonl(std::istream& in);

// Flat scalar view of a metrics JSON file.
struct MetricsValues {
  std::vector<std::pair<std::string, double>> values;  // file order

  // Value of `name`, or `fallback` if absent.
  double get(const std::string& name, double fallback) const;
  bool has(const std::string& name) const;
};

MetricsValues read_metrics_json(std::istream& in);

}  // namespace ge::obs::analysis
