// Telemetry façade: the single pointer instrumented components test.
//
// A RunTelemetry owns one simulation run's MetricsRegistry and TraceBuffer;
// run_simulation hangs a non-owning Telemetry view of it on the Simulator,
// and every component that already holds the simulator (cores, schedulers,
// the runner itself) reaches telemetry through sim->telemetry().
//
// Cost model: with telemetry off the pointer is null and every hook is one
// predictable branch (components cache the metric handles they use at
// construction time, so the off path never touches the registry).  Building
// with -DGE_TELEMETRY=OFF compiles the hooks out entirely:
// Simulator::telemetry() becomes a constexpr nullptr and the branches fold
// away -- that configuration is the baseline for the overhead numbers in
// docs/OBSERVABILITY.md.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ge::obs {

// Non-owning view handed to instrumented components.  Either pointer may be
// null independently (metrics-only runs skip trace recording and vice
// versa).
struct Telemetry {
  MetricsRegistry* metrics = nullptr;
  TraceBuffer* trace = nullptr;
};

// Per-run telemetry storage, created by the experiment engine (one per
// RunTask) or by a direct run_simulation caller.
struct RunTelemetry {
  MetricsRegistry metrics;
  TraceBuffer trace;
  bool want_trace = true;  // false: metrics-only, skip event recording

  Telemetry view() noexcept {
    return Telemetry{&metrics, want_trace ? &trace : nullptr};
  }
};

// What the --trace / --trace-format / --metrics flags request; carried in
// exp::ExecutionOptions and honoured by the experiment engine.
struct TelemetryOptions {
  std::string trace_path;    // empty = no trace file
  TraceFormat trace_format = TraceFormat::kJsonl;
  std::string metrics_path;  // empty = no metrics file

  bool enabled() const noexcept {
    return !trace_path.empty() || !metrics_path.empty();
  }
};

}  // namespace ge::obs
