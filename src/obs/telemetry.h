// Telemetry façade: the single pointer instrumented components test.
//
// A RunTelemetry owns one simulation run's MetricsRegistry and TraceBuffer;
// run_simulation hangs a non-owning Telemetry view of it on the Simulator,
// and every component that already holds the simulator (cores, schedulers,
// the runner itself) reaches telemetry through sim->telemetry().
//
// Cost model: with telemetry off the pointer is null and every hook is one
// predictable branch (components cache the metric handles they use at
// construction time, so the off path never touches the registry).  Building
// with -DGE_TELEMETRY=OFF compiles the hooks out entirely:
// Simulator::telemetry() becomes a constexpr nullptr and the branches fold
// away -- that configuration is the baseline for the overhead numbers in
// docs/OBSERVABILITY.md.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace ge::obs {

// Non-owning view handed to instrumented components.  Any pointer may be
// null independently (metrics-only runs skip trace recording, profiling is
// opt-in, and so on).
struct Telemetry {
  MetricsRegistry* metrics = nullptr;
  TraceBuffer* trace = nullptr;
  Profiler* profile = nullptr;
};

// Per-run telemetry storage, created by the experiment engine (one per
// RunTask) or by a direct run_simulation caller.
struct RunTelemetry {
  MetricsRegistry metrics;
  TraceBuffer trace;
  bool want_trace = true;      // false: metrics-only, skip event recording
  // true: run_simulation attaches an analysis::Watchdog to the trace buffer
  // for the run (requires want_trace; violations become kViolation events
  // and watchdog.* metrics).
  bool want_watchdog = false;
  std::unique_ptr<Profiler> profiler;  // non-null after enable_profiling()

  // Creates the profiler (and its prof.* counters); idempotent.  Must run
  // before the simulation so the counters keep a stable creation-order slot.
  void enable_profiling() {
    if (profiler == nullptr) {
      profiler = std::make_unique<Profiler>(metrics);
    }
  }

  Telemetry view() noexcept {
    return Telemetry{&metrics, want_trace ? &trace : nullptr, profiler.get()};
  }
};

// What the telemetry flags (--trace / --trace-format / --metrics / --report
// / --watchdog / --profile) request; carried in exp::ExecutionOptions and
// honoured by the experiment engine.
struct TelemetryOptions {
  std::string trace_path;    // empty = no trace file
  TraceFormat trace_format = TraceFormat::kJsonl;
  std::string metrics_path;  // empty = no metrics file
  std::string report_dir;    // empty = no derived-analysis report directory
  bool watchdog = false;     // online invariant watchdog during every run
  bool profile = false;      // wall-clock kernel spans (nondeterministic!)

  bool enabled() const noexcept {
    return !trace_path.empty() || !metrics_path.empty() ||
           !report_dir.empty() || watchdog || profile;
  }
};

}  // namespace ge::obs
