// Simulation metrics registry: counters, gauges and fixed-bucket histograms
// with deterministic aggregation.
//
// A MetricsRegistry is a flat, name-keyed set of metrics created lazily by
// the instrumented code (creation order is preserved and defines the output
// order).  One registry belongs to exactly one simulation run -- the
// simulator is single-threaded, so metrics need no atomics -- and the
// experiment engine aggregates per-run registries with merge(), always in
// task order, so a parallel sweep's merged metrics file is byte-identical
// to a serial run's (the same doubles are added in the same order).
//
// The full metric catalog (every name, unit and emitting site) lives in
// docs/OBSERVABILITY.md; keep the two in sync when adding metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ge::obs {

// Monotone sum.  Double-valued so energy/seconds accumulate directly
// (Prometheus-style); merge adds.
class Counter {
 public:
  void add(double delta) noexcept { value_ += delta; }
  void increment() noexcept { value_ += 1.0; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

// Last-written value plus an explicit cross-run combine rule, because "the
// gauge of two merged runs" is not well-defined without one (e.g. monitored
// quality merges as the worst run, energy totals as the sum).
class Gauge {
 public:
  enum class Merge { kSum, kMin, kMax, kLast };

  void set(double value) noexcept { value_ = value; written_ = true; }
  double value() const noexcept { return value_; }
  bool written() const noexcept { return written_; }
  Merge merge_mode() const noexcept { return merge_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
  bool written_ = false;
  Merge merge_ = Merge::kSum;
};

// Fixed-bucket histogram: counts per upper bound (plus one overflow bucket)
// and running count/sum/min/max.  Bounds are fixed at creation; merging
// registries requires identical bounds.
class Histogram {
 public:
  void observe(double value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  // bucket_counts()[i] counts values <= bounds()[i]; the final entry is the
  // overflow bucket (> bounds().back()).
  const std::vector<std::uint64_t>& bucket_counts() const noexcept { return counts_; }

 private:
  friend class MetricsRegistry;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(MetricsRegistry&&) noexcept;
  MetricsRegistry& operator=(MetricsRegistry&&) noexcept;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Lazy get-or-create; returned references are stable for the registry's
  // lifetime.  Re-requesting a name with a different kind, unit or (for
  // histograms) bucket bounds is a checked error.
  Counter& counter(std::string_view name, std::string_view unit = "");
  Gauge& gauge(std::string_view name, std::string_view unit = "",
               Gauge::Merge merge = Gauge::Merge::kSum);
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view unit = "");

  std::size_t size() const noexcept;

  // Folds `other` into this registry: counters and histograms add, gauges
  // combine per their merge mode, metrics missing here are appended in
  // `other`'s creation order.  Deterministic: merging the same registries
  // in the same order always yields the same bytes from write_json().
  void merge(const MetricsRegistry& other);

  // The documented metrics-file schema (docs/OBSERVABILITY.md): one JSON
  // object, metrics in creation order.  Stable formatting so equal
  // registries serialise to equal bytes.
  void write_json(std::ostream& out) const;

 private:
  struct Entry;
  const Entry* find(std::string_view name) const;

  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace ge::obs
