#include "sim/calendar_queue.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ge::sim {

std::uint64_t CalendarEventQueue::bucket_of(double time) const {
  if (time <= 0.0) {
    return 0;
  }
  const double idx = time / width_;
  GE_CHECK(idx < 9.2e18, "event time too large for calendar bucket index");
  return static_cast<std::uint64_t>(idx);
}

void CalendarEventQueue::insert(Entry entry) {
  const std::uint64_t abs = bucket_of(entry.time);
  if (abs < cur_) {
    cur_ = abs;  // raw-API insert behind the cursor: rewind
  }
  std::vector<Entry>& bucket = buckets_[abs % buckets_.size()];
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), entry,
      [](const Entry& a, const Entry& b) { return entry_before(b, a); });
  bucket.insert(pos, std::move(entry));
  ++stored_;
  maybe_resize();
}

void CalendarEventQueue::skim_back(std::vector<Entry>& bucket) const {
  while (!bucket.empty() && slot_dead(bucket.back().slot)) {
    release_slot(bucket.back().slot);
    bucket.pop_back();
    --stored_;
  }
}

std::size_t CalendarEventQueue::locate_min() const {
  const std::size_t nb = buckets_.size();
  for (std::size_t lap = 0; lap < nb; ++lap) {
    std::vector<Entry>& bucket = buckets_[cur_ % nb];
    skim_back(bucket);
    if (!bucket.empty() &&
        bucket.back().time < static_cast<double>(cur_ + 1) * width_) {
      return cur_ % nb;
    }
    ++cur_;
  }
  // A whole year of empty days: direct-search the earliest entry and jump.
  const Entry* min_entry = nullptr;
  std::size_t min_idx = 0;
  for (std::size_t i = 0; i < nb; ++i) {
    skim_back(buckets_[i]);
    if (buckets_[i].empty()) {
      continue;
    }
    const Entry& back = buckets_[i].back();
    if (min_entry == nullptr || entry_before(back, *min_entry)) {
      min_entry = &back;
      min_idx = i;
    }
  }
  GE_CHECK(min_entry != nullptr, "locate_min() with no live entries");
  cur_ = bucket_of(min_entry->time);
  return min_idx;
}

double CalendarEventQueue::peek_time() const {
  return buckets_[locate_min()].back().time;
}

EventQueue::Entry CalendarEventQueue::remove_min() {
  std::vector<Entry>& bucket = buckets_[locate_min()];
  Entry entry = std::move(bucket.back());
  bucket.pop_back();
  --stored_;
  maybe_resize();
  return entry;
}

void CalendarEventQueue::maybe_resize() {
  const std::size_t nb = buckets_.size();
  if (stored_ > 2 * nb) {
    rebuild(2 * nb);
  } else if (nb > kMinBuckets && stored_ < nb / 2) {
    rebuild(nb / 2);
  }
}

void CalendarEventQueue::rebuild(std::size_t nbuckets) {
  std::vector<Entry> live;
  live.reserve(stored_);
  for (std::vector<Entry>& bucket : buckets_) {
    for (Entry& entry : bucket) {
      if (slot_dead(entry.slot)) {
        release_slot(entry.slot);
      } else {
        live.push_back(std::move(entry));
      }
    }
    bucket.clear();
  }

  // Re-estimate the bucket width as twice the mean gap between a sample of
  // pending-event times (Brown's rule): buckets then hold ~0.5 entries on
  // average near the cursor.  Degenerate samples (all-equal times) keep the
  // previous width.
  if (live.size() >= 2) {
    std::vector<double> times;
    const std::size_t sample = std::min<std::size_t>(live.size(), 64);
    const std::size_t stride = live.size() / sample;
    times.reserve(sample);
    for (std::size_t i = 0; i < sample; ++i) {
      times.push_back(live[i * stride].time);
    }
    std::sort(times.begin(), times.end());
    const double span = times.back() - times.front();
    if (span > 0.0) {
      const double width =
          2.0 * span / static_cast<double>(times.size() - 1);
      width_ = std::max(width, 1e-9);
    }
  }

  buckets_.assign(nbuckets, {});
  stored_ = 0;
  double min_time = 0.0;
  bool first = true;
  for (Entry& entry : live) {
    if (first || entry.time < min_time) {
      min_time = entry.time;
      first = false;
    }
    std::vector<Entry>& bucket = buckets_[bucket_of(entry.time) % nbuckets];
    const auto pos = std::upper_bound(
        bucket.begin(), bucket.end(), entry,
        [](const Entry& a, const Entry& b) { return entry_before(b, a); });
    bucket.insert(pos, std::move(entry));
    ++stored_;
  }
  cur_ = first ? 0 : bucket_of(min_time);
}

}  // namespace ge::sim
