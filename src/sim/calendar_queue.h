// Calendar queue: O(1)-amortized pending-event set (Brown, CACM 1988).
//
// Events are hashed by time into an array of buckets ("days"), each holding
// a small list kept sorted in descending (time, seq) order so the earliest
// entry sits at the back.  A cursor walks the buckets in time order; one
// "year" spans nbuckets * width seconds.  Dequeue inspects the back of the
// cursor's bucket and takes it when it falls inside the current year,
// otherwise advances; after a fruitless full lap (a sparse region of the
// time axis) it falls back to a direct search and jumps the cursor to the
// earliest entry.  The bucket count doubles/halves as the population crosses
// 2N / N/2, with the width re-estimated from the average gap between
// pending-event times, keeping O(1) amortized push/pop while the event-time
// distribution stays roughly stationary -- which a DES event loop's does.
//
// All of this machinery is performance-only: dequeue order is the same
// (time, seq) total order the binary heap uses, so simulations are
// bit-identical under either implementation (tests/test_sim.cpp pins this
// differentially).
//
// Unlike the simulator (which never schedules into the past), the raw queue
// API allows pushes at arbitrary times; an insert behind the cursor simply
// moves the cursor back.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace ge::sim {

class CalendarEventQueue final : public EventQueue {
 public:
  // Bucket-array size; exposed so tests can watch resizing behaviour.
  std::size_t bucket_count() const noexcept { return buckets_.size(); }

 protected:
  void insert(Entry entry) override;
  double peek_time() const override;
  Entry remove_min() override;

 private:
  static constexpr std::size_t kMinBuckets = 16;

  std::uint64_t bucket_of(double time) const;
  // Drops lazily-cancelled entries off the back of a bucket.
  void skim_back(std::vector<Entry>& bucket) const;
  // Index (into buckets_) of the bucket holding the earliest live entry;
  // advances or rewinds cur_ to that bucket's year.  Requires a live entry.
  std::size_t locate_min() const;
  void maybe_resize();
  void rebuild(std::size_t nbuckets);

  // Descending (time, seq): the earliest entry is at the back.
  mutable std::vector<std::vector<Entry>> buckets_ =
      std::vector<std::vector<Entry>>(kMinBuckets);
  double width_ = 0.05;            // seconds per bucket
  mutable std::uint64_t cur_ = 0;  // absolute (un-wrapped) bucket index
  mutable std::size_t stored_ = 0; // physical entries, incl. lazily-dead
};

}  // namespace ge::sim
