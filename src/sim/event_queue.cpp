#include "sim/event_queue.h"

#include <algorithm>

#include "sim/calendar_queue.h"
#include "util/check.h"

namespace ge::sim {

std::string to_string(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kHeap:
      return "heap";
    case EventQueueKind::kCalendar:
      return "calendar";
  }
  GE_CHECK(false, "unknown EventQueueKind");
  return {};
}

EventQueueKind parse_event_queue_kind(const std::string& name) {
  if (name == "heap") {
    return EventQueueKind::kHeap;
  }
  if (name == "calendar") {
    return EventQueueKind::kCalendar;
  }
  GE_CHECK(false, "unknown event queue kind (want heap|calendar)");
  return EventQueueKind::kHeap;
}

std::unique_ptr<EventQueue> EventQueue::create(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kHeap:
      return std::make_unique<HeapEventQueue>();
    case EventQueueKind::kCalendar:
      return std::make_unique<CalendarEventQueue>();
  }
  GE_CHECK(false, "unknown EventQueueKind");
  return nullptr;
}

EventId EventQueue::push(double time, std::function<void()> action) {
  GE_CHECK(action != nullptr, "event action must be callable");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    GE_CHECK(slots_.size() < (std::size_t{1} << 32),
             "event slot table overflow");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].state = SlotState::kLive;
  const std::uint64_t seq = next_seq_++;
  ++live_count_;
  if (live_count_ > peak_live_) {
    peak_live_ = live_count_;
  }
  insert(Entry{time, seq, slot, std::move(action)});
  return encode(slot, slots_[slot].gen);
}

bool EventQueue::cancel(EventId id) {
  if (!is_pending(id)) {
    return false;
  }
  const std::uint64_t v = id - 1;
  slots_[static_cast<std::uint32_t>(v)].state = SlotState::kCancelled;
  --live_count_;
  return true;
}

bool EventQueue::is_pending(EventId id) const {
  if (id == kInvalidEventId) {
    return false;
  }
  const std::uint64_t v = id - 1;
  const std::uint32_t slot = static_cast<std::uint32_t>(v);
  const std::uint32_t gen = static_cast<std::uint32_t>(v >> 32);
  return slot < slots_.size() && slots_[slot].gen == gen &&
         slots_[slot].state == SlotState::kLive;
}

void EventQueue::release_slot(std::uint32_t slot) const {
  ++slots_[slot].gen;  // invalidate outstanding handles
  slots_[slot].state = SlotState::kFree;
  free_slots_.push_back(slot);
}

double EventQueue::next_time() const {
  GE_CHECK(!empty(), "next_time() on empty queue");
  return peek_time();
}

Event EventQueue::pop() {
  GE_CHECK(!empty(), "pop() on empty queue");
  Entry entry = remove_min();
  const EventId id = encode(entry.slot, slots_[entry.slot].gen);
  release_slot(entry.slot);
  --live_count_;
  return Event{entry.time, id, std::move(entry.action)};
}

// --- HeapEventQueue ---

void HeapEventQueue::insert(Entry entry) {
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void HeapEventQueue::skim() const {
  while (!heap_.empty() && slot_dead(heap_.front().slot)) {
    release_slot(heap_.front().slot);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

double HeapEventQueue::peek_time() const {
  skim();
  return heap_.front().time;
}

EventQueue::Entry HeapEventQueue::remove_min() {
  skim();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return entry;
}

}  // namespace ge::sim
