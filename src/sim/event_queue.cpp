#include "sim/event_queue.h"

#include <algorithm>

#include "util/check.h"

namespace ge::sim {

EventId EventQueue::push(double time, std::function<void()> action) {
  GE_CHECK(action != nullptr, "event action must be callable");
  const EventId id = next_id_++;
  heap_.push_back(HeapEntry{time, id, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  state_.push_back(State::kLive);
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id < 1 || id >= next_id_ || state_[id - 1] != State::kLive) {
    return false;
  }
  state_[id - 1] = State::kCancelled;
  --live_count_;
  return true;
}

void EventQueue::skim() const {
  while (!heap_.empty() && state_[heap_.front().id - 1] != State::kLive) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  skim();
  return heap_.empty();
}

double EventQueue::next_time() const {
  skim();
  GE_CHECK(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().time;
}

Event EventQueue::pop() {
  skim();
  GE_CHECK(!heap_.empty(), "pop() on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev{heap_.back().time, heap_.back().id, std::move(heap_.back().action)};
  heap_.pop_back();
  state_[ev.id - 1] = State::kDone;
  --live_count_;
  return ev;
}

}  // namespace ge::sim
