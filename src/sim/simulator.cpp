#include "sim/simulator.h"

#include "util/check.h"

namespace ge::sim {

EventId Simulator::schedule_at(double time, std::function<void()> action) {
  GE_CHECK(time >= now_ - 1e-9, "cannot schedule an event in the past");
  return queue_->push(time < now_ ? now_ : time, std::move(action));
}

EventId Simulator::schedule_in(double delay, std::function<void()> action) {
  GE_CHECK(delay >= -1e-9, "negative delay");
  return schedule_at(now_ + (delay > 0.0 ? delay : 0.0), std::move(action));
}

bool Simulator::cancel(EventId id) { return queue_->cancel(id); }

bool Simulator::step() {
  if (queue_->empty()) {
    return false;
  }
  Event ev = queue_->pop();
  GE_CHECK(ev.time >= now_ - 1e-9, "event time went backwards");
  if (ev.time > now_) {
    now_ = ev.time;
  }
  ++executed_;
  ev.action();
  return true;
}

void Simulator::run_until(double horizon) {
  GE_CHECK(horizon >= now_, "run_until horizon is in the past");
  while (!queue_->empty() && queue_->next_time() <= horizon) {
    step();
  }
  now_ = horizon;
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

}  // namespace ge::sim
