// Pending-event set for the discrete-event simulator.
//
// A binary min-heap keyed by (time, sequence number).  The sequence number
// makes event ordering deterministic when several events share a timestamp:
// ties break in scheduling order, which is what makes simulation runs
// bit-reproducible for a fixed seed.  Cancellation is lazy: a cancelled id is
// marked in the state table and its heap entry is dropped when it surfaces
// at the top of the heap.
//
// Because ids are handed out sequentially, liveness is tracked in a flat
// byte-per-id state table instead of a hash set: push/cancel/pop cost one
// indexed byte access and the per-event hash-node allocations of the former
// std::unordered_set are pooled away into a single growing vector (one byte
// per event ever scheduled, reclaimed when the queue dies with its run).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ge::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

struct Event {
  double time = 0.0;
  EventId id = kInvalidEventId;  // also the tie-break sequence number
  std::function<void()> action;
};

class EventQueue {
 public:
  // Inserts an event and returns its id (ids start at 1 and increase in
  // scheduling order).
  EventId push(double time, std::function<void()> action);

  // Cancels a pending event.  Returns false (and does nothing) if the id is
  // unknown, already executed, or already cancelled.
  bool cancel(EventId id);

  bool is_pending(EventId id) const {
    return id >= 1 && id < next_id_ && state_[id - 1] == State::kLive;
  }

  bool empty() const;
  std::size_t size() const noexcept { return live_count_; }  // live events

  // Time of the earliest live event; requires !empty().
  double next_time() const;

  // Removes and returns the earliest live event; requires !empty().
  Event pop();

 private:
  enum class State : std::uint8_t { kLive, kCancelled, kDone };

  struct HeapEntry {
    double time;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  // Pops cancelled entries off the top of the heap.
  void skim() const;

  mutable std::vector<HeapEntry> heap_;
  std::vector<State> state_;  // state_[id - 1]; one byte per id ever issued
  std::size_t live_count_ = 0;
  EventId next_id_ = 1;
};

}  // namespace ge::sim
