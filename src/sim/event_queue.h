// Pending-event set for the discrete-event simulator.
//
// A binary min-heap keyed by (time, sequence number).  The sequence number
// makes event ordering deterministic when several events share a timestamp:
// ties break in scheduling order, which is what makes simulation runs
// bit-reproducible for a fixed seed.  Cancellation is lazy: a cancelled id is
// removed from the live-id set and its heap entry is dropped when it surfaces
// at the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace ge::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

struct Event {
  double time = 0.0;
  EventId id = kInvalidEventId;  // also the tie-break sequence number
  std::function<void()> action;
};

class EventQueue {
 public:
  // Inserts an event and returns its id (ids start at 1 and increase in
  // scheduling order).
  EventId push(double time, std::function<void()> action);

  // Cancels a pending event.  Returns false (and does nothing) if the id is
  // unknown, already executed, or already cancelled.
  bool cancel(EventId id);

  bool is_pending(EventId id) const { return live_.contains(id); }

  bool empty() const;
  std::size_t size() const noexcept { return live_.size(); }  // live events

  // Time of the earliest live event; requires !empty().
  double next_time() const;

  // Removes and returns the earliest live event; requires !empty().
  Event pop();

 private:
  struct HeapEntry {
    double time;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  // Pops cancelled entries off the top of the heap.
  void skim() const;

  mutable std::vector<HeapEntry> heap_;
  std::unordered_set<EventId> live_;
  EventId next_id_ = 1;
};

}  // namespace ge::sim
