// Pending-event set for the discrete-event simulator.
//
// `EventQueue` is the abstract interface; two implementations are provided
// and selectable per run (exp::ExperimentConfig::event_queue, --event-queue):
//
//   * HeapEventQueue (default): a binary min-heap keyed by
//     (time, sequence number) -- O(log n) push/pop.
//   * CalendarEventQueue: a calendar queue (Brown, CACM 1988) -- an array of
//     time-bucketed sorted lists with O(1) amortized push/pop under the
//     roughly uniform event-time distributions a DES produces.  See
//     calendar_queue.h.
//
// Ordering contract (shared by all implementations): events pop in
// non-decreasing time order, ties broken by scheduling order (a per-queue
// monotone sequence number).  Because (time, seq) is a total order, every
// conforming implementation pops the exact same event sequence -- simulation
// results are bit-identical across queue kinds, not merely equivalent.  The
// differential suite in tests/test_sim.cpp and the fuzz leg in
// tests/test_fuzz_e2e.cpp enforce this.
//
// Cancellation is lazy: a cancelled event is marked dead in the slot table
// and its entry is dropped when it surfaces at a structural boundary (heap
// top / bucket back).
//
// Slot recycling: event liveness used to live in a flat byte-per-id table
// that grew with every id ever issued -- O(total events) resident memory,
// which defeats bounded-memory streaming replay.  Ids are now generational
// handles: the low 32 bits name a slot in a recycled table, the high 32 bits
// carry the slot's generation, and +1 keeps 0 as kInvalidEventId.  A slot
// returns to the free list when its entry physically leaves the structure
// (pop or dead-entry skim), so the table size tracks *pending* events.
// Stale handles fail the generation check, preserving the old API promise
// that cancel()/is_pending() on an executed id are a safe no-op.  The
// tie-break sequence number is deliberately separate from the id so
// recycling cannot perturb event order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ge::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Which EventQueue implementation a Simulator uses.
enum class EventQueueKind : std::uint8_t { kHeap, kCalendar };

// "heap" / "calendar"; parse is case-sensitive and GE_CHECKs on junk.
std::string to_string(EventQueueKind kind);
EventQueueKind parse_event_queue_kind(const std::string& name);

struct Event {
  double time = 0.0;
  EventId id = kInvalidEventId;
  std::function<void()> action;
};

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  static std::unique_ptr<EventQueue> create(EventQueueKind kind);

  // Inserts an event and returns its id.  Ids are unique among *pending*
  // events; a fresh queue that never recycles hands out 1, 2, 3, ...
  EventId push(double time, std::function<void()> action);

  // Cancels a pending event.  Returns false (and does nothing) if the id is
  // unknown, stale, already executed, or already cancelled.
  bool cancel(EventId id);

  bool is_pending(EventId id) const;

  bool empty() const noexcept { return live_count_ == 0; }
  std::size_t size() const noexcept { return live_count_; }  // live events

  // Time of the earliest live event; requires !empty().
  double next_time() const;

  // Removes and returns the earliest live event; requires !empty().
  Event pop();

  // --- introspection (tests, gauges) ---
  // Allocated slot-table entries; with recycling this tracks the peak
  // *concurrently pending* events, not the total ever scheduled.
  std::size_t slot_count() const noexcept { return slots_.size(); }
  std::size_t peak_live() const noexcept { return peak_live_; }
  std::uint64_t total_pushed() const noexcept { return next_seq_ - 1; }

 protected:
  // One pending (or lazily-dead) event inside a concrete structure.  `seq`
  // is the tie-break; `slot` indexes the shared slot table.
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::function<void()> action;
  };

  // (time, seq) strict weak ordering helpers.
  static bool entry_before(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  }

  bool slot_dead(std::uint32_t slot) const noexcept {
    return slots_[slot].state != SlotState::kLive;
  }
  // Returns a physically-removed entry's slot to the free list.  Concrete
  // structures call this whenever they drop a dead entry; the base calls it
  // on pop.  `mutable` path: skimming happens inside const next_time().
  void release_slot(std::uint32_t slot) const;

  // --- implemented by the concrete structure ---
  virtual void insert(Entry entry) = 0;
  // Earliest live entry's time; never called on an empty queue.  May skim
  // dead entries (releasing their slots).
  virtual double peek_time() const = 0;
  // Removes and returns the earliest live entry; never called empty.
  virtual Entry remove_min() = 0;

 private:
  enum class SlotState : std::uint8_t { kFree, kLive, kCancelled };
  struct Slot {
    std::uint32_t gen = 0;
    SlotState state = SlotState::kFree;
  };

  static EventId encode(std::uint32_t slot, std::uint32_t gen) noexcept {
    return ((static_cast<EventId>(gen) << 32) | slot) + 1;
  }

  mutable std::vector<Slot> slots_;
  mutable std::vector<std::uint32_t> free_slots_;  // LIFO
  std::size_t live_count_ = 0;
  std::size_t peak_live_ = 0;
  std::uint64_t next_seq_ = 1;  // tie-break; equals the legacy event id
};

// The default implementation: binary min-heap on (time, seq).
class HeapEventQueue final : public EventQueue {
 protected:
  void insert(Entry entry) override;
  double peek_time() const override;
  Entry remove_min() override;

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return entry_before(b, a);
    }
  };

  // Pops dead entries off the top of the heap.
  void skim() const;

  mutable std::vector<Entry> heap_;
};

}  // namespace ge::sim
