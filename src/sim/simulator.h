// Discrete-event simulator: a virtual clock plus an event queue.
//
// Components schedule closures at absolute or relative virtual times; the
// simulator executes them in non-decreasing time order (FIFO among equal
// timestamps).  Time never goes backwards; scheduling in the past is a
// checked error.  This is the substrate every experiment in the paper runs
// on -- the paper's evaluation is entirely simulation-based.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.h"

namespace ge::obs {
struct Telemetry;
}

namespace ge::sim {

class Simulator {
 public:
  // The pending-event structure is pluggable (see event_queue.h); every
  // kind yields bit-identical runs, so this is a performance knob only.
  explicit Simulator(EventQueueKind queue_kind = EventQueueKind::kHeap)
      : queue_(EventQueue::create(queue_kind)) {}

  double now() const noexcept { return now_; }

  // Telemetry rides on the simulator because every instrumented component
  // (cores, schedulers, the runner) already holds a Simulator reference.
  // Null (the default) means telemetry is off; hooks test the pointer once
  // at construction or per event.  With GE_NO_TELEMETRY the accessor is a
  // constexpr nullptr, so the compiler deletes the hooks outright.
#ifdef GE_NO_TELEMETRY
  static constexpr obs::Telemetry* telemetry() noexcept { return nullptr; }
  void set_telemetry(obs::Telemetry*) noexcept {}
#else
  obs::Telemetry* telemetry() const noexcept { return telemetry_; }
  void set_telemetry(obs::Telemetry* telemetry) noexcept { telemetry_ = telemetry; }
#endif

  // Schedules `action` at absolute virtual time `time` (>= now).
  EventId schedule_at(double time, std::function<void()> action);

  // Schedules `action` `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, std::function<void()> action);

  // Cancels a pending event; returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  bool event_pending(EventId id) const { return queue_->is_pending(id); }

  // Executes the next event, if any.  Returns false when the queue is empty.
  bool step();

  // Runs events with time <= horizon, then advances the clock to exactly
  // `horizon` (even if no event lands there).
  void run_until(double horizon);

  // Runs until the event queue is empty.
  void run_to_completion();

  std::uint64_t executed_events() const noexcept { return executed_; }
  std::size_t pending_events() const noexcept { return queue_->size(); }

  // High-water mark of concurrently pending events (streaming gauge).
  std::size_t peak_pending_events() const noexcept { return queue_->peak_live(); }

 private:
  double now_ = 0.0;
  std::unique_ptr<EventQueue> queue_;
  std::uint64_t executed_ = 0;
#ifndef GE_NO_TELEMETRY
  obs::Telemetry* telemetry_ = nullptr;
#endif
};

}  // namespace ge::sim
