// Scheduler interface: the contract between the simulation runner and a
// scheduling algorithm.
//
// The runner feeds the scheduler three kinds of stimuli -- job arrivals,
// idle-core notifications, and per-job deadline expirations -- and the
// scheduler reacts by pinning jobs to cores and installing execution plans.
// Settlement (freezing a job's quality contribution once it completes or
// expires) lives in the base class so every algorithm accounts quality
// identically.
#pragma once

#include <string>

#include "quality/quality_function.h"
#include "quality/quality_monitor.h"
#include "server/multicore_server.h"
#include "sim/simulator.h"
#include "workload/job.h"

namespace ge::obs {
class Counter;
class Histogram;
class TraceBuffer;
}

namespace ge::sched {

struct SchedulerEnv {
  sim::Simulator* sim = nullptr;
  server::MulticoreServer* server = nullptr;
  const quality::QualityFunction* quality_function = nullptr;
  quality::QualityMonitor* monitor = nullptr;

  bool valid() const noexcept {
    return sim && server && quality_function && monitor;
  }
};

class Scheduler {
 public:
  Scheduler(SchedulerEnv env, std::string name);
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Called once before the first arrival (arm periodic triggers here).
  virtual void start() {}

  // A new request entered the system.
  virtual void on_job_arrival(workload::Job* job) = 0;

  // A core drained its plan.
  virtual void on_core_idle(int core_id) { (void)core_id; }

  // A core finished a plan segment: the job received all the work the
  // current plan intended for it.  Default: settle it.
  virtual void on_job_finished(workload::Job* job);

  // The job's deadline passed.  Default: settle it as-is (partial or zero
  // quality) if still open.
  virtual void on_deadline(workload::Job* job);

  // End of run: settle anything still open.  Runners call this after the
  // drain period; with per-job deadline events it is normally a no-op.
  virtual void finish() {}

  const std::string& name() const noexcept { return name_; }

  // Time spent in the AES / BQ execution modes (Fig. 1).  Algorithms
  // without a mode concept report zero for both.
  virtual double aes_time(double now) const { (void)now; return 0.0; }
  virtual double bq_time(double now) const { (void)now; return 0.0; }

  // Jobs waiting for assignment (timeline observability).
  virtual std::size_t backlog() const { return 0; }

 protected:
  // Freezes the job's quality contribution and detaches it from its core.
  // Idempotent.
  void settle(workload::Job* job);

  double now() const noexcept { return env_.sim->now(); }

  // Trace buffer of the run, or nullptr when tracing is off.  Cached at
  // construction (the runner installs telemetry on the simulator before
  // building the scheduler), so subclasses pay one pointer test per emit.
  obs::TraceBuffer* trace() const noexcept { return trace_; }

  SchedulerEnv env_;

 private:
  std::string name_;

  // Cached metric handles (null when metrics are off); see the catalog in
  // docs/OBSERVABILITY.md for the semantics of each.
  obs::TraceBuffer* trace_ = nullptr;
  obs::Counter* m_settled_ = nullptr;
  obs::Counter* m_cut_ = nullptr;
  obs::Counter* m_missed_ = nullptr;
  obs::Histogram* m_response_ms_ = nullptr;
  obs::Histogram* m_slack_ms_ = nullptr;
  obs::Histogram* m_job_quality_ = nullptr;
};

}  // namespace ge::sched
