#include "core/load_estimator.h"

#include <algorithm>

#include "util/check.h"

namespace ge::sched {

LoadEstimator::LoadEstimator(double window_seconds) : window_(window_seconds) {
  GE_CHECK(window_seconds > 0.0, "estimator window must be positive");
}

void LoadEstimator::record_arrival(double t) {
  GE_CHECK(arrivals_.empty() || t >= arrivals_.back(),
           "arrivals must be recorded in time order");
  arrivals_.push_back(t);
}

double LoadEstimator::rate(double now) {
  while (!arrivals_.empty() && arrivals_.front() < now - window_) {
    arrivals_.pop_front();
  }
  // Shrink the window at the start of the run so the estimate is not
  // biased low before `window_` seconds have elapsed; the 50 ms floor keeps
  // the very first arrivals from producing huge rates.
  const double effective = std::min(window_, std::max(now, 0.05));
  return static_cast<double>(arrivals_.size()) / effective;
}

}  // namespace ge::sched
