// Discrete-DVFS plan rectification (Sec. IV-A-5).
//
// Continuous Energy-OPT plans pick arbitrary speeds; a real core only offers
// the operating points in a DiscreteSpeedTable.  The paper's rule: starting
// from the core with the lowest assigned power, round each chosen speed up
// to the closest discrete level subject to the total power budget, and fall
// back to the next lower level when the budget cannot support the higher
// one.  rectify_plan implements the per-core half of that rule; the GE
// scheduler supplies `ceil_speed_limit` per core from the budget slack it is
// tracking across cores.
#pragma once

#include "opt/plan.h"
#include "power/discrete_speed.h"

namespace ge::sched {

// Rebuilds `plan` on the discrete ladder.  Each segment's speed is rounded
// up to the next level when that level is <= ceil_speed_limit, and down
// otherwise.  The timeline is re-packed sequentially from the original start
// time; segments are clipped at their job's deadline (rounding down can lose
// work -- exactly the quality loss Fig. 12a reports) and dropped when no
// time or no positive level remains.
opt::ExecutionPlan rectify_plan(const opt::ExecutionPlan& plan,
                                const power::DiscreteSpeedTable& table,
                                double ceil_speed_limit);

}  // namespace ge::sched
