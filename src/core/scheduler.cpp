#include "core/scheduler.h"

#include <algorithm>

#include "util/check.h"

namespace ge::sched {

Scheduler::Scheduler(SchedulerEnv env, std::string name)
    : env_(env), name_(std::move(name)) {
  GE_CHECK(env_.valid(), "scheduler environment is incomplete");
}

void Scheduler::on_job_finished(workload::Job* job) { settle(job); }

void Scheduler::on_deadline(workload::Job* job) {
  if (!job->settled) {
    settle(job);
  }
}

void Scheduler::settle(workload::Job* job) {
  if (job->settled) {
    return;
  }
  if (job->assigned()) {
    env_.server->core(static_cast<std::size_t>(job->core))
        .remove_job(job, env_.sim->now());
  }
  job->settled = true;
  // The response leaves the system now, but never conceptually later than
  // the deadline (lazy settlement of expired jobs happens at the next
  // scheduling round).
  job->finish_time = std::min(env_.sim->now(), job->deadline);
  env_.monitor->settle(job->executed, job->demand);
}

}  // namespace ge::sched
