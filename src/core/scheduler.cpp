#include "core/scheduler.h"

#include <algorithm>

#include "obs/telemetry.h"
#include "util/check.h"

namespace ge::sched {
namespace {

// A job counts as having reached its (cut) target within this many units.
constexpr double kTargetTol = 1e-6;

}  // namespace

Scheduler::Scheduler(SchedulerEnv env, std::string name)
    : env_(env), name_(std::move(name)) {
  GE_CHECK(env_.valid(), "scheduler environment is incomplete");
  if (obs::Telemetry* tel = env_.sim->telemetry()) {
    trace_ = tel->trace;
    if (tel->metrics != nullptr) {
      obs::MetricsRegistry& reg = *tel->metrics;
      m_settled_ = &reg.counter("jobs.settled", "jobs");
      m_cut_ = &reg.counter("jobs.cut", "jobs");
      m_missed_ = &reg.counter("jobs.deadline_missed", "jobs");
      m_response_ms_ = &reg.histogram(
          "job.response_ms",
          {10, 25, 50, 75, 100, 125, 150, 200, 250, 300, 400, 500, 750, 1000},
          "ms");
      m_slack_ms_ = &reg.histogram(
          "job.deadline_slack_ms", {0, 1, 5, 10, 25, 50, 75, 100, 150, 250, 500},
          "ms");
      m_job_quality_ = &reg.histogram(
          "job.quality", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
          "ratio");
    }
  }
}

void Scheduler::on_job_finished(workload::Job* job) { settle(job); }

void Scheduler::on_deadline(workload::Job* job) {
  if (!job->settled) {
    settle(job);
  }
}

void Scheduler::settle(workload::Job* job) {
  if (job->settled) {
    return;
  }
  if (job->assigned()) {
    env_.server->core(static_cast<std::size_t>(job->core))
        .remove_job(job, env_.sim->now());
  }
  job->settled = true;
  // The response leaves the system now, but never conceptually later than
  // the deadline (lazy settlement of expired jobs happens at the next
  // scheduling round).
  job->finish_time = std::min(env_.sim->now(), job->deadline);
  env_.monitor->settle(job->executed, job->demand);

  // "Miss": the deadline truncated the job before it reached its (cut)
  // target -- including jobs that expired waiting and never got a target.
  const bool reached_target =
      job->target > kTargetTol && job->executed >= job->target - kTargetTol;
  const bool missed = !reached_target && job->executed < job->demand - kTargetTol;
  if (m_settled_ != nullptr) {
    m_settled_->increment();
    if (job->target < job->demand - kTargetTol) {
      m_cut_->increment();
    }
    if (missed) {
      m_missed_->increment();
    }
    m_response_ms_->observe((job->finish_time - job->arrival) * 1000.0);
    m_slack_ms_->observe((job->deadline - job->finish_time) * 1000.0);
    const double potential = env_.quality_function->value(job->demand);
    m_job_quality_->observe(
        potential > 0.0
            ? env_.quality_function->value(std::min(job->executed, job->demand)) /
                  potential
            : 1.0);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.type = missed ? obs::TraceEventType::kDeadlineMiss
                     : obs::TraceEventType::kCompletion;
    ev.t = job->finish_time;
    ev.core = job->core;
    ev.job = static_cast<std::int64_t>(job->id);
    ev.a = job->executed;
    ev.b = job->demand;
    ev.c = env_.monitor->quality();
    trace_->push(ev);
  }
}

}  // namespace ge::sched
