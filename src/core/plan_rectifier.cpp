#include "core/plan_rectifier.h"

#include <algorithm>

#include "util/check.h"
#include "workload/job.h"

namespace ge::sched {

opt::ExecutionPlan rectify_plan(const opt::ExecutionPlan& plan,
                                const power::DiscreteSpeedTable& table,
                                double ceil_speed_limit) {
  opt::ExecutionPlan out;
  if (plan.empty()) {
    return out;
  }
  out.segments.reserve(plan.segments.size());
  double t = plan.segments.front().start;
  for (const opt::PlanSegment& seg : plan.segments) {
    GE_CHECK(seg.speed > 0.0, "segment speed must be positive");
    double speed = table.ceil(seg.speed);
    if (speed > ceil_speed_limit + 1e-9) {
      speed = table.floor(std::min(seg.speed, ceil_speed_limit));
    }
    if (speed <= 0.0) {
      continue;  // below the lowest operating point: cannot run this work
    }
    const double deadline = seg.job->deadline;
    if (t >= deadline - 1e-12) {
      continue;  // rounding down earlier segments consumed this job's window
    }
    double units = seg.units;
    double end = t + units / speed;
    if (end > deadline) {
      end = deadline;
      units = speed * (end - t);
    }
    out.segments.push_back(opt::PlanSegment{seg.job, t, end, speed, units});
    t = end;
  }
  return out;
}

}  // namespace ge::sched
