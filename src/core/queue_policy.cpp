#include "core/queue_policy.h"

#include <algorithm>

#include "core/plan_rectifier.h"
#include "util/check.h"

namespace ge::sched {
namespace {

constexpr double kWorkEps = 1e-6;
constexpr double kTimeEps = 1e-9;

std::string scheduler_name(QueueOrder order) { return to_string(order); }

}  // namespace

const char* to_string(QueueOrder order) noexcept {
  switch (order) {
    case QueueOrder::kFcfs:
      return "FCFS";
    case QueueOrder::kFdfs:
      return "FDFS";
    case QueueOrder::kLjf:
      return "LJF";
    case QueueOrder::kSjf:
      return "SJF";
  }
  return "unknown";
}

QueuePolicyScheduler::QueuePolicyScheduler(SchedulerEnv env, QueuePolicyOptions options)
    : Scheduler(env, scheduler_name(options.order)),
      options_(options),
      core_cap_watts_(env.server->power_budget() /
                      static_cast<double>(env.server->core_count())) {}

void QueuePolicyScheduler::on_job_arrival(workload::Job* job) {
  waiting_.push_back(job);
  dispatch();
}

void QueuePolicyScheduler::on_core_idle(int core_id) {
  (void)core_id;
  dispatch();
}

void QueuePolicyScheduler::on_deadline(workload::Job* job) {
  if (!job->settled) {
    std::erase(waiting_, job);
    settle(job);
  }
  dispatch();
}

void QueuePolicyScheduler::finish() {
  for (workload::Job* job : waiting_) {
    if (!job->settled) {
      settle(job);
    }
  }
  waiting_.clear();
  for (std::size_t i = 0; i < env_.server->core_count(); ++i) {
    auto queue = env_.server->core(i).queue();  // copy: settle() mutates it
    for (workload::Job* job : queue) {
      if (!job->settled) {
        settle(job);
      }
    }
  }
}

std::size_t QueuePolicyScheduler::pick() const {
  GE_CHECK(!waiting_.empty(), "pick() on empty queue");
  std::size_t best = 0;
  for (std::size_t i = 1; i < waiting_.size(); ++i) {
    const workload::Job* a = waiting_[i];
    const workload::Job* b = waiting_[best];
    bool better = false;
    switch (options_.order) {
      case QueueOrder::kFcfs:
        better = a->arrival < b->arrival;
        break;
      case QueueOrder::kFdfs:
        better = a->deadline < b->deadline;
        break;
      case QueueOrder::kLjf:
        better = a->demand > b->demand;
        break;
      case QueueOrder::kSjf:
        better = a->demand < b->demand;
        break;
    }
    if (better) {
      best = i;
    }
  }
  return best;
}

void QueuePolicyScheduler::run_on_core(workload::Job* job, server::Core& core) {
  const double t = now();
  job->core = core.id();
  core.queue().push_back(job);
  job->target = job->demand;
  const double window = job->deadline - t;
  GE_CHECK(window > kTimeEps, "dispatching an expired job");
  const power::PowerModel& pm = core.power_model();
  const double cap_speed = pm.speed_for_power(core_cap_watts_);
  // Slowest speed that completes by the deadline; if the cap binds, run at
  // the cap until the deadline and answer with a partial result.
  double speed = job->remaining_demand() / window;
  double units = job->remaining_demand();
  if (speed > cap_speed) {
    speed = cap_speed;
    units = speed * window;
  }
  opt::ExecutionPlan plan;
  if (units > kWorkEps && speed > 0.0) {
    plan.segments.push_back(
        opt::PlanSegment{job, t, t + units / speed, speed, units});
    if (options_.speed_table != nullptr) {
      plan = rectify_plan(plan, *options_.speed_table, cap_speed);
    }
  }
  core.install_plan(std::move(plan), core_cap_watts_);
}

void QueuePolicyScheduler::dispatch() {
  const double t = now();
  for (;;) {
    // Discard jobs that expired while queued.
    for (workload::Job* job : waiting_) {
      if (!job->settled && job->expired(t)) {
        settle(job);
      }
    }
    std::erase_if(waiting_, [](const workload::Job* j) { return j->settled; });
    if (waiting_.empty()) {
      return;
    }
    const int idle = env_.server->find_idle_core(t);
    if (idle < 0) {
      return;
    }
    const std::size_t choice = pick();
    workload::Job* job = waiting_[choice];
    waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(choice));
    run_on_core(job, env_.server->core(static_cast<std::size_t>(idle)));
  }
}

}  // namespace ge::sched
