// Online speed-scaling schedulers with deadline feasibility: OA, qOA, AVR,
// BKP (the classic zoo of Abousamra-Bunde-Pruhs, "An Experimental
// Comparison of Speed Scaling Algorithms with Deadline Feasibility
// Constraints").
//
// All four run every job to its full demand (no quality cutting) and pick
// the *speed* online:
//
//   OA   (Optimal Available, Yao-Demers-Shenker '95): at every arrival,
//        re-solve YDS on the remaining work of the jobs on hand.  Because
//        everything on hand is already released, the optimum is a
//        "staircase": repeatedly take the pending-deadline prefix that
//        maximises sum(remaining) / (deadline - now).  2^beta-competitive.
//   qOA  (Bansal-Chan-Lam-Lee): run at q times the OA speed.  Theory picks
//        q = 2 - 1/beta (= 1.5 for beta = 2); the ABP experiments show
//        q < 1 wins at low load.  For q < 1 the profile may be too slow,
//        so the planner's finish-by-deadline repair (below) kicks in.
//   AVR  (Average Rate, Yao-Demers-Shenker '95): s(t) is the sum of the
//        constant densities w_j / (d_j - r_j) of every job whose
//        [release, deadline] window contains t -- including jobs that
//        already finished, until their deadline passes.
//   BKP  (Bansal-Kimbrel-Pruhs '04): s(t) = max over t2 > t of
//        W(t1, t2) / (t2 - t) with t1 = e*t - (e-1)*t2, where W is the
//        *original* work released in [t1, t] with deadline <= t2.  The
//        estimate moves between events, so a refresh grid re-samples it;
//        the OA staircase is kept as a floor, which preserves feasibility.
//
// Integration with this repo's partitioned, non-preemptive-core model
// (docs/SCHEDULERS.md has the full story):
//   * arriving jobs are pinned to the online core with the least remaining
//     target work (ties: lowest id) -- jobs never migrate;
//   * each core gets the Equal-Sharing power cap H/m, and the speed profile
//     is clamped at the cap speed;
//   * per core, jobs execute in EDF order along the piecewise-constant
//     profile (a job may span several plan segments);
//   * if the profile cannot finish a job by its deadline (q < 1, or the
//     cap binds), the planner raises that job to the constant speed
//     remaining / (deadline - cursor), capped; a cap-clipped job runs to
//     its deadline and settles partial, exactly like queue_policy.h.
//
// Under a generous power budget OA/qOA/AVR/BKP never miss a deadline
// (pinned by tests/test_speed_scaling.cpp's fuzz suite).
#pragma once

#include <string>
#include <vector>

#include "core/scheduler.h"
#include "power/discrete_speed.h"
#include "sim/event_queue.h"

namespace ge::sched {

// One pending job for the all-released YDS suffix: remaining work due by an
// absolute deadline.
struct SuffixJob {
  double deadline = 0.0;   // absolute seconds, > now
  double remaining = 0.0;  // units still to execute
};

// A piecewise-constant speed block; blocks are contiguous from `now`.
struct SuffixBlock {
  double end = 0.0;    // absolute seconds the block ends
  double speed = 0.0;  // units/second over [block start, end)
};

// YDS on an all-released instance: the staircase of critical intervals
// starting at `now`.  Blocks come back in time order with non-increasing
// speeds; their total capacity equals the total remaining work.  Jobs with
// no remaining work or deadlines at/before `now` are ignored.
std::vector<SuffixBlock> oa_suffix_schedule(double now, std::vector<SuffixJob> jobs);

enum class SpeedScalingPolicy { kOa, kQoa, kAvr, kBkp };
const char* to_string(SpeedScalingPolicy policy) noexcept;

struct SpeedScalingOptions {
  SpeedScalingPolicy policy = SpeedScalingPolicy::kOa;
  // qOA multiplier on the OA speed (> 0); 1.0 degenerates to OA.
  double q = 1.0;
  // Re-plan grid for the policies whose speed moves between events (BKP
  // always; qOA away from q = 1).  <= 0 disables the grid: plans are only
  // rebuilt at arrivals and deadline settlements.
  double refresh_interval = 0.0;
  // Discrete DVFS ladder, or nullptr for continuous speeds.
  const power::DiscreteSpeedTable* speed_table = nullptr;
};

class SpeedScalingScheduler : public Scheduler {
 public:
  SpeedScalingScheduler(SchedulerEnv env, SpeedScalingOptions options,
                        std::string name);

  void on_job_arrival(workload::Job* job) override;
  void on_job_finished(workload::Job* job) override;
  void on_deadline(workload::Job* job) override;
  void finish() override;

 private:
  // AVR keeps a job's density until its deadline even after the job
  // finishes; BKP keeps the original work of past releases.  Both are POD
  // copies: a streaming JobStore recycles Job slots shortly after
  // settlement, so no Job* may be held past settle.
  struct AvrEntry {
    double deadline = 0.0;
    double density = 0.0;  // demand / (deadline - arrival), units/second
  };
  struct BkpRecord {
    double release = 0.0;
    double deadline = 0.0;
    double work = 0.0;  // original demand, units
  };
  struct CoreState {
    std::vector<workload::Job*> active;  // pinned here, not yet settled
    std::vector<AvrEntry> densities;     // AVR only
    std::vector<BkpRecord> history;      // BKP only
    sim::EventId refresh_event = sim::kInvalidEventId;
    double cap_speed = 0.0;  // speed at the Equal-Sharing power cap
  };

  // Online core with the least remaining target work (ties: lowest id);
  // -1 when every core is offline.
  int pick_core() const;
  void forget(workload::Job* job);
  // Re-plans one core: settles exact completions, prunes records, rebuilds
  // the speed profile, lays the active jobs EDF along it, installs the
  // plan, re-arms the refresh grid.
  void rebuild(std::size_t core_id);
  std::vector<SuffixBlock> speed_profile(double t0, const CoreState& state) const;
  double bkp_speed(double t0, const CoreState& state) const;
  void arm_refresh(std::size_t core_id);

  SpeedScalingOptions options_;
  double core_cap_watts_ = 0.0;
  std::vector<CoreState> cores_;
};

}  // namespace ge::sched
