// Single-job queueing baselines: FCFS, FDFS, LJF, SJF (Sec. IV-A-1).
//
// These algorithms are triggered whenever a core becomes idle: one job is
// picked from the waiting queue -- by earliest release (FCFS), earliest
// deadline (FDFS), largest demand (LJF) or smallest demand (SJF) -- and
// runs alone on the core at the slowest speed that finishes by its
// deadline.  The power distribution is Equal-Sharing: each core may draw at
// most H/m; when that cap cannot complete the job it runs at the capped
// speed until the deadline and returns a partial result.  Jobs that expire
// while queued are discarded (quality 0).
#pragma once

#include <vector>

#include "core/scheduler.h"
#include "power/discrete_speed.h"

namespace ge::sched {

enum class QueueOrder {
  kFcfs,  // earliest release time first
  kFdfs,  // earliest deadline first
  kLjf,   // largest service demand first
  kSjf,   // smallest service demand first
};

const char* to_string(QueueOrder order) noexcept;

struct QueuePolicyOptions {
  QueueOrder order = QueueOrder::kFcfs;
  // Optional discrete DVFS ladder (ceil within the per-core cap, else floor).
  const power::DiscreteSpeedTable* speed_table = nullptr;
};

class QueuePolicyScheduler : public Scheduler {
 public:
  QueuePolicyScheduler(SchedulerEnv env, QueuePolicyOptions options);

  void on_job_arrival(workload::Job* job) override;
  void on_core_idle(int core_id) override;
  void on_deadline(workload::Job* job) override;
  void finish() override;
  std::size_t backlog() const override { return waiting_.size(); }

 private:
  // Assigns queued jobs to idle cores until one side runs out.
  void dispatch();
  // Index of the next job to run according to the policy order.
  std::size_t pick() const;
  void run_on_core(workload::Job* job, server::Core& core);

  QueuePolicyOptions options_;
  std::vector<workload::Job*> waiting_;
  double core_cap_watts_;  // H / m (Equal-Sharing)
};

}  // namespace ge::sched
