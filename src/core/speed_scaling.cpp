#include "core/speed_scaling.h"

#include <algorithm>
#include <numbers>

#include "core/plan_rectifier.h"
#include "util/check.h"

namespace ge::sched {
namespace {

// Matches the settle tolerance of scheduler.cpp / the runner's completion
// tolerance: a job within kDoneEps units of its target counts as done.
constexpr double kDoneEps = 1e-6;
constexpr double kTimeEps = 1e-9;
// Slack allowed between a job's profile finish time and its deadline before
// the finish-by-deadline repair replaces the profile (absorbs fp drift on
// OA plans, which finish critical jobs exactly at their deadlines).
constexpr double kSnapEps = 1e-7;
// Plan pieces shorter than this are dropped (the lost work is far below
// kDoneEps at any reachable speed).
constexpr double kSliverEps = 1e-12;
constexpr double kE = std::numbers::e;
// BKP history records are pruned once `now` is this many deadline windows
// past the record's release (they can no longer dominate the estimator in
// any window the surviving deadlines anchor).
constexpr double kBkpHistoryFactor = 8.0;

}  // namespace

const char* to_string(SpeedScalingPolicy policy) noexcept {
  switch (policy) {
    case SpeedScalingPolicy::kOa:
      return "OA";
    case SpeedScalingPolicy::kQoa:
      return "qOA";
    case SpeedScalingPolicy::kAvr:
      return "AVR";
    case SpeedScalingPolicy::kBkp:
      return "BKP";
  }
  return "unknown";
}

std::vector<SuffixBlock> oa_suffix_schedule(double now, std::vector<SuffixJob> jobs) {
  std::erase_if(jobs, [now](const SuffixJob& j) {
    return j.remaining <= 0.0 || j.deadline <= now + kTimeEps;
  });
  std::sort(jobs.begin(), jobs.end(), [](const SuffixJob& a, const SuffixJob& b) {
    return a.deadline < b.deadline;
  });
  std::vector<SuffixBlock> blocks;
  std::size_t i = 0;
  double t0 = now;
  while (i < jobs.size()) {
    // Critical prefix: the deadline prefix maximising sum(remaining) over
    // the time to that deadline.  Strict '>' keeps the earliest maximiser,
    // which makes the staircase deterministic and the speeds non-increasing.
    double work = 0.0;
    double best_intensity = -1.0;
    std::size_t best = i;
    for (std::size_t j = i; j < jobs.size(); ++j) {
      work += jobs[j].remaining;
      const double intensity = work / (jobs[j].deadline - t0);
      if (intensity > best_intensity) {
        best_intensity = intensity;
        best = j;
      }
    }
    blocks.push_back(SuffixBlock{jobs[best].deadline, best_intensity});
    t0 = jobs[best].deadline;
    i = best + 1;
  }
  return blocks;
}

SpeedScalingScheduler::SpeedScalingScheduler(SchedulerEnv env,
                                             SpeedScalingOptions options,
                                             std::string name)
    : Scheduler(env, std::move(name)),
      options_(options),
      core_cap_watts_(env.server->power_budget() /
                      static_cast<double>(env.server->core_count())) {
  GE_CHECK(options_.q > 0.0, "speed-scaling q must be positive");
  cores_.resize(env_.server->core_count());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cores_[i].cap_speed =
        env_.server->core(i).power_model().speed_for_power(core_cap_watts_);
  }
}

int SpeedScalingScheduler::pick_core() const {
  int best = -1;
  double best_load = 0.0;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (!env_.server->core(i).online()) {
      continue;
    }
    double load = 0.0;
    for (const workload::Job* job : cores_[i].active) {
      load += job->remaining_target();
    }
    if (best < 0 || load < best_load) {
      best = static_cast<int>(i);
      best_load = load;
    }
  }
  return best;
}

void SpeedScalingScheduler::forget(workload::Job* job) {
  if (job->core == workload::kUnassigned) {
    return;
  }
  std::erase(cores_[static_cast<std::size_t>(job->core)].active, job);
}

void SpeedScalingScheduler::on_job_arrival(workload::Job* job) {
  const double t = now();
  // Bring execution state up to date so the load comparison sees current
  // remaining work (advance_to credits work without firing callbacks).
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (env_.server->core(i).online()) {
      env_.server->core(i).advance_to(t);
    }
  }
  const int core_id = pick_core();
  if (core_id < 0) {
    // Every core is offline: the job settles at its deadline with no work.
    return;
  }
  job->target = job->demand;  // never cut
  job->core = core_id;
  CoreState& state = cores_[static_cast<std::size_t>(core_id)];
  env_.server->core(static_cast<std::size_t>(core_id)).queue().push_back(job);
  state.active.push_back(job);
  if (options_.policy == SpeedScalingPolicy::kAvr) {
    const double window = std::max(job->window(), kTimeEps);
    state.densities.push_back(AvrEntry{job->deadline, job->demand / window});
  } else if (options_.policy == SpeedScalingPolicy::kBkp) {
    state.history.push_back(BkpRecord{job->arrival, job->deadline, job->demand});
  }
  rebuild(static_cast<std::size_t>(core_id));
}

void SpeedScalingScheduler::on_job_finished(workload::Job* job) {
  // Cores raise this at *every* completed plan segment; a job may span
  // several segments of the piecewise profile, so only settle once it has
  // received its full target.
  if (job->settled) {
    return;
  }
  if (job->executed >= job->target - kDoneEps) {
    forget(job);
    settle(job);
  }
}

void SpeedScalingScheduler::on_deadline(workload::Job* job) {
  if (job->settled) {
    return;
  }
  const int core_id = job->core;
  forget(job);
  settle(job);
  if (core_id != workload::kUnassigned &&
      env_.server->core(static_cast<std::size_t>(core_id)).online()) {
    rebuild(static_cast<std::size_t>(core_id));
  }
}

void SpeedScalingScheduler::finish() {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    CoreState& state = cores_[i];
    if (state.refresh_event != sim::kInvalidEventId) {
      env_.sim->cancel(state.refresh_event);
      state.refresh_event = sim::kInvalidEventId;
    }
    const std::vector<workload::Job*> active = state.active;  // settle mutates
    for (workload::Job* job : active) {
      if (!job->settled) {
        settle(job);
      }
    }
    state.active.clear();
    state.densities.clear();
    state.history.clear();
  }
}

double SpeedScalingScheduler::bkp_speed(double t0, const CoreState& state) const {
  // s(t) = e * v(t),  v(t) = max_{t2 > t} W(t1, t2) / (e (t2 - t)),
  // t1 = e t - (e-1) t2; W = original work released in [t1, t] with
  // deadline <= t2.  The e's cancel: s(t) = max W / (t2 - t).  Candidate
  // t2's are the recorded deadlines (W and the denominator only change
  // when t2 crosses one).
  double best = 0.0;
  for (const BkpRecord& anchor : state.history) {
    const double t2 = anchor.deadline;
    if (t2 <= t0 + kTimeEps) {
      continue;
    }
    const double t1 = kE * t0 - (kE - 1.0) * t2;
    double work = 0.0;
    for (const BkpRecord& rec : state.history) {
      if (rec.release >= t1 - kTimeEps && rec.deadline <= t2 + kTimeEps) {
        work += rec.work;
      }
    }
    best = std::max(best, work / (t2 - t0));
  }
  return best;
}

std::vector<SuffixBlock> SpeedScalingScheduler::speed_profile(
    double t0, const CoreState& state) const {
  std::vector<SuffixBlock> blocks;
  if (options_.policy == SpeedScalingPolicy::kAvr) {
    // Suffix sums of the densities still in their windows, one block per
    // distinct deadline.
    std::vector<AvrEntry> entries = state.densities;
    std::erase_if(entries, [t0](const AvrEntry& e) {
      return e.deadline <= t0 + kTimeEps || e.density <= 0.0;
    });
    std::sort(entries.begin(), entries.end(),
              [](const AvrEntry& a, const AvrEntry& b) {
                return a.deadline < b.deadline;
              });
    double running = 0.0;
    for (const AvrEntry& e : entries) {
      running += e.density;
    }
    std::size_t i = 0;
    while (i < entries.size()) {
      const double deadline = entries[i].deadline;
      blocks.push_back(SuffixBlock{deadline, running});
      while (i < entries.size() && entries[i].deadline == deadline) {
        running -= entries[i].density;
        ++i;
      }
    }
  } else {
    std::vector<SuffixJob> pending;
    pending.reserve(state.active.size());
    for (const workload::Job* job : state.active) {
      pending.push_back(SuffixJob{job->deadline, job->remaining_target()});
    }
    blocks = oa_suffix_schedule(t0, std::move(pending));
    if (options_.policy == SpeedScalingPolicy::kQoa && options_.q != 1.0) {
      for (SuffixBlock& b : blocks) {
        b.speed *= options_.q;
      }
    } else if (options_.policy == SpeedScalingPolicy::kBkp) {
      // The OA staircase is the feasibility floor; the BKP estimate rides
      // on top until the next refresh re-samples it.
      const double estimate = bkp_speed(t0, state);
      for (SuffixBlock& b : blocks) {
        b.speed = std::max(b.speed, estimate);
      }
    }
  }
  for (SuffixBlock& b : blocks) {
    b.speed = std::min(b.speed, state.cap_speed);
  }
  return blocks;
}

void SpeedScalingScheduler::arm_refresh(std::size_t core_id) {
  if (options_.refresh_interval <= 0.0) {
    return;
  }
  CoreState& state = cores_[core_id];
  if (state.refresh_event != sim::kInvalidEventId) {
    env_.sim->cancel(state.refresh_event);
    state.refresh_event = sim::kInvalidEventId;
  }
  if (state.active.empty()) {
    return;
  }
  state.refresh_event =
      env_.sim->schedule_in(options_.refresh_interval, [this, core_id] {
        cores_[core_id].refresh_event = sim::kInvalidEventId;
        rebuild(core_id);
      });
}

void SpeedScalingScheduler::rebuild(std::size_t core_id) {
  server::Core& core = env_.server->core(core_id);
  if (!core.online()) {
    return;  // stranded jobs settle at their deadlines
  }
  const double t = now();
  core.advance_to(t);
  CoreState& state = cores_[core_id];

  // Settle jobs that already received their full target (their segment
  // boundary may share this timestamp and not have fired yet).
  {
    std::vector<workload::Job*> done;
    for (workload::Job* job : state.active) {
      if (job->remaining_target() <= kDoneEps) {
        done.push_back(job);
      }
    }
    for (workload::Job* job : done) {
      forget(job);
      settle(job);
    }
  }

  if (options_.policy == SpeedScalingPolicy::kAvr) {
    std::erase_if(state.densities, [t](const AvrEntry& e) {
      return e.deadline <= t + kTimeEps;
    });
  } else if (options_.policy == SpeedScalingPolicy::kBkp) {
    std::erase_if(state.history, [t](const BkpRecord& r) {
      return r.deadline < t &&
             t - r.release > kBkpHistoryFactor * (r.deadline - r.release);
    });
  }

  const std::vector<SuffixBlock> blocks = speed_profile(t, state);
  std::sort(state.active.begin(), state.active.end(),
            [](const workload::Job* a, const workload::Job* b) {
              if (a->deadline != b->deadline) {
                return a->deadline < b->deadline;
              }
              return a->id < b->id;
            });

  opt::ExecutionPlan plan;
  std::size_t bi = 0;  // profile block the cursor sits in
  double cursor = t;
  for (workload::Job* job : state.active) {
    const double remaining = job->remaining_target();
    if (remaining <= kDoneEps) {
      continue;
    }
    if (job->deadline <= cursor + kTimeEps) {
      continue;  // due now; its deadline event settles it
    }
    // Walk the profile: where would this job finish?
    std::vector<opt::PlanSegment> pieces;
    std::size_t walk = bi;
    double piece_cursor = cursor;
    double left = remaining;
    bool fits = false;
    while (walk < blocks.size()) {
      const SuffixBlock& block = blocks[walk];
      if (block.end <= piece_cursor + kTimeEps) {
        ++walk;
        continue;
      }
      if (block.speed <= 0.0) {
        break;
      }
      const double span = block.end - piece_cursor;
      const double capacity = block.speed * span;
      if (capacity >= left - kSliverEps) {
        const double duration = left / block.speed;
        pieces.push_back(opt::PlanSegment{job, piece_cursor,
                                          piece_cursor + duration, block.speed,
                                          left});
        piece_cursor += duration;
        left = 0.0;
        fits = true;
        break;
      }
      pieces.push_back(opt::PlanSegment{job, piece_cursor, block.end,
                                        block.speed, capacity});
      left -= capacity;
      piece_cursor = block.end;
      ++walk;
    }
    if (fits && piece_cursor <= job->deadline + kSnapEps) {
      if (piece_cursor > job->deadline) {
        // fp drift past the deadline (OA finishes critical jobs exactly at
        // their deadlines): pull the last piece back and absorb the speed
        // difference, which is within ulps.
        opt::PlanSegment& last = pieces.back();
        last.end = job->deadline;
        last.speed = last.units / (last.end - last.start);
        piece_cursor = job->deadline;
      }
      for (const opt::PlanSegment& piece : pieces) {
        if (piece.end - piece.start > kSliverEps) {
          plan.segments.push_back(piece);
        }
      }
      bi = walk;
      cursor = piece_cursor;
    } else {
      // Finish-by-deadline repair: the profile is too slow for this job
      // (q < 1, or the profile ran dry).  Run it at the slowest constant
      // speed that completes by the deadline; if the cap binds, run at the
      // cap until the deadline and settle partial (queue_policy semantics).
      const double window = job->deadline - cursor;
      double speed = remaining / window;
      double units = remaining;
      if (speed > state.cap_speed) {
        speed = state.cap_speed;
        units = speed * window;
      }
      if (units > kDoneEps && speed > 0.0) {
        plan.segments.push_back(
            opt::PlanSegment{job, cursor, job->deadline, speed, units});
      }
      cursor = job->deadline;
      while (bi < blocks.size() && blocks[bi].end <= cursor + kTimeEps) {
        ++bi;
      }
    }
  }

  if (options_.speed_table != nullptr) {
    plan = rectify_plan(plan, *options_.speed_table, state.cap_speed);
  }
  core.install_plan(std::move(plan), core_cap_watts_);
  arm_refresh(core_id);
}

}  // namespace ge::sched
