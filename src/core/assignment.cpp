#include "core/assignment.h"

#include "util/check.h"

namespace ge::sched {

CumulativeRoundRobin::CumulativeRoundRobin(std::size_t cores, bool cumulative)
    : cores_(cores), cumulative_(cumulative) {
  GE_CHECK(cores > 0, "need at least one core");
}

std::size_t CumulativeRoundRobin::next() {
  const std::size_t core = position_;
  position_ = (position_ + 1) % cores_;
  return core;
}

void CumulativeRoundRobin::begin_batch() {
  if (!cumulative_) {
    position_ = 0;
  }
}

}  // namespace ge::sched
