// The "Good Enough" (GE) scheduling engine (Sec. III).
//
// GE is an online batch scheduler driven by three triggering events
// (Sec. III-E): a periodic quantum, cores going idle while work waits, and
// the waiting queue reaching a counter threshold.  Every scheduling round:
//
//   1. expired waiting jobs are settled;
//   2. waiting jobs are pinned to cores with Cumulative Round-Robin;
//   3. the execution mode is chosen: AES (cut jobs to the good-enough level)
//      while the monitored quality is at/above Q_GE, BQ (run everything to
//      completion) below it -- the compensation policy of Sec. III-C;
//   4. per-core cut targets are set (Longest-First cutting in AES);
//   5. the power budget is split into per-core caps (Equal-Sharing below the
//      critical load, Water-Filling above -- the hybrid policy of
//      Sec. III-D);
//   6. per core: if the cap cannot meet the targets, Quality-OPT trims them
//      optimally; Energy-OPT then builds the minimal-energy speed plan,
//      optionally rectified onto a discrete DVFS ladder, and the core runs
//      it until the next round.
//
// The engine doubles as the paper's comparison algorithms through options:
//   BE  = no cutting (always BQ) + always Water-Filling;
//   OQ  = cut to Q_GE + 2% and never compensate;
//   GE-no-comp, GE-forced-ES, GE-forced-WF = the Fig. 5/6/7 ablations;
//   BE-P = BE on a calibrated (smaller) budget;
//   BE-S = BE with a calibrated per-core speed cap.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/assignment.h"
#include "core/load_estimator.h"
#include "core/scheduler.h"
#include "opt/energy_opt.h"
#include "opt/job_cutter.h"
#include "opt/quality_opt.h"
#include "power/discrete_speed.h"
#include "power/distribution.h"

namespace ge::obs {
class Profiler;
}  // namespace ge::obs

namespace ge::sched {

struct GoodEnoughOptions {
  // Monitored quality threshold Q_GE that triggers compensation.
  double q_ge = 0.9;
  // AES cutting target (OQ sets q_ge + 0.02).
  double cut_target = 0.9;
  // false disables the AES mode entirely: every round runs BQ (Best Effort).
  bool cutting = true;
  // false disables the compensation policy: with cutting on, the scheduler
  // stays in AES regardless of the monitored quality (Fig. 5 ablation).
  bool compensation = true;

  power::DistributionPolicy power_policy = power::DistributionPolicy::kHybrid;
  // Arrival rate (req/s) separating light from heavy load for the hybrid
  // policy.
  double critical_load = 154.0;
  // Trailing window of the arrival-rate estimator.
  double load_window = 2.0;

  // Triggering events (Sec. III-E / IV-B).
  double quantum = 0.5;       // seconds
  int counter_threshold = 8;  // waiting jobs

  // Discrete DVFS ladder; nullptr = continuous speed scaling.
  const power::DiscreteSpeedTable* speed_table = nullptr;

  // Per-core speed cap in units/s (BE-S control policy); infinity = none.
  double core_speed_cap = std::numeric_limits<double>::infinity();

  // Plain (non-cumulative) round-robin assignment, for the C-RR ablation.
  bool cumulative_rr = true;
};

class GoodEnoughScheduler : public Scheduler {
 public:
  enum class Mode { kAes, kBq };

  GoodEnoughScheduler(SchedulerEnv env, GoodEnoughOptions options,
                      std::string name = "GE");

  void start() override;
  void on_job_arrival(workload::Job* job) override;
  void on_core_idle(int core_id) override;
  void on_job_finished(workload::Job* job) override;
  void on_deadline(workload::Job* job) override;
  void finish() override;

  double aes_time(double now) const override;
  double bq_time(double now) const override;
  std::size_t backlog() const override { return waiting_.size(); }

  Mode mode() const noexcept { return mode_; }
  const GoodEnoughOptions& options() const noexcept { return options_; }
  std::uint64_t rounds() const noexcept { return rounds_; }
  // Rounds that used Water-Filling vs Equal-Sharing (hybrid diagnostics).
  std::uint64_t wf_rounds() const noexcept { return wf_rounds_; }
  std::uint64_t es_rounds() const noexcept { return es_rounds_; }

 private:
  void schedule_round();
  void account_mode_time();
  Mode choose_mode() const;
  // Rebuilds the per-core EDF queues (open jobs in (deadline, id) order)
  // into edf_cache_.  Called once per round after expired jobs settle;
  // set_targets, core_power_demand and plan_core all consume the cached
  // order instead of re-sorting the queue (jobs settled mid-round stay in
  // the cache and are skipped by their `settled` flag, which preserves the
  // exact filtered sequence a fresh sort would produce).
  //
  // Incremental rounds: only *dirty* cores -- those whose queue membership
  // or online state changed since the last rebuild (assignment, any
  // settlement, failure/repair) -- are re-scanned and re-sorted.  A clean
  // core's cache is provably identical to what a rebuild would produce:
  // membership only changes through tracked mutations, and (deadline, id)
  // is a total order, so equal membership forces an equal sequence.  This
  // also keeps cache pointers valid without quarantine: every settlement
  // dirties its core, so a clean cache holds live jobs only.
  void refresh_edf_cache();
  void mark_core_dirty(int core_id);
  // settle() + dirty-marking for the job's core; all settlements inside the
  // GE engine route through this so the incremental cache stays exact.
  void settle_tracked(workload::Job* job);
  // Sets job->target for every open job on the core according to the mode.
  void set_targets(server::Core& core, Mode mode);
  // Per-core power demand (W) to finish its remaining targets by deadline.
  double core_power_demand(server::Core& core);
  // Splits the power budget into per-core caps, written to caps_.
  void distribute_power();
  void plan_core(server::Core& core, double cap_watts, double* budget_slack);
  void arm_quantum();

  GoodEnoughOptions options_;
  CumulativeRoundRobin assigner_;
  LoadEstimator load_;
  std::vector<workload::Job*> waiting_;

  Mode mode_ = Mode::kAes;
  double mode_accounted_until_ = 0.0;
  double aes_time_ = 0.0;
  double bq_time_ = 0.0;

  std::uint64_t rounds_ = 0;
  std::uint64_t wf_rounds_ = 0;
  std::uint64_t es_rounds_ = 0;
  bool in_round_ = false;
  sim::EventId quantum_event_ = sim::kInvalidEventId;

  // Round-scoped scratch buffers, reused across rounds so the per-round
  // replanning allocates nothing in steady state (hot-path optimisation;
  // bit-identical outputs are guarded by tests/test_kernel_equivalence.cpp).
  std::vector<std::vector<workload::Job*>> edf_cache_;  // per-core EDF order
  // Struct-of-arrays hot lane: each core's job demands in EDF-cache order.
  // `demand` is immutable after admission, so the lane stays exact while
  // the cache is clean; AES cutting consumes it as one contiguous copy
  // instead of chasing Job pointers.
  std::vector<std::vector<double>> edf_demand_;
  // Per-core change tracking for incremental rounds (1 = must rebuild).
  std::vector<std::uint8_t> edf_dirty_;
  std::vector<std::uint8_t> edf_online_;  // online state at last rebuild
  std::vector<opt::PlanJob> plan_jobs_;
  std::vector<opt::AllocJob> alloc_jobs_;
  std::vector<opt::PlanJob> trimmed_;
  std::vector<double> cut_demands_;
  std::vector<double> demand_watts_;
  std::vector<double> caps_;
  std::vector<std::size_t> order_;
  opt::CutScratch cut_scratch_;

  // Cached telemetry handles (null when metrics are off); catalog in
  // docs/OBSERVABILITY.md.
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_rounds_aes_ = nullptr;
  obs::Counter* m_rounds_bq_ = nullptr;
  obs::Counter* m_rounds_es_ = nullptr;
  obs::Counter* m_rounds_wf_ = nullptr;
  obs::Counter* m_mode_switches_ = nullptr;
  obs::Counter* m_plans_ = nullptr;
  obs::Counter* m_qopt_trims_ = nullptr;
  obs::Counter* m_edf_rebuilds_ = nullptr;
  obs::Counter* m_edf_skips_ = nullptr;
  obs::Histogram* m_cut_level_ = nullptr;
  // Wall-clock self-profiling spans (--profile); null when profiling is off.
  obs::Profiler* prof_ = nullptr;
};

}  // namespace ge::sched
