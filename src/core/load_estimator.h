// Sliding-window arrival-rate estimator.
//
// The hybrid power-distribution policy (Sec. III-D) switches between
// Equal-Sharing and Water-Filling by comparing the *current workload*
// against the critical load (154 req/s in the paper's setup).  The
// estimator counts arrivals over a short trailing window; early in the run
// the window is shortened to the elapsed time so the estimate is unbiased
// from the first second.
#pragma once

#include <deque>

namespace ge::sched {

class LoadEstimator {
 public:
  explicit LoadEstimator(double window_seconds);

  void record_arrival(double t);

  // Arrivals per second over the trailing window at time `now`.
  double rate(double now);

  double window() const noexcept { return window_; }

 private:
  double window_;
  std::deque<double> arrivals_;
};

}  // namespace ge::sched
