// Job-to-core assignment policies (Sec. III-E).
//
// When a scheduling round runs, the jobs waiting in the queue are spread
// over the cores in a batch.  The paper uses Cumulative Round-Robin (C-RR):
// plain round-robin that remembers where the previous distribution cycle
// stopped, which balances assignment counts across rounds with ragged batch
// sizes.  Plain RR (restarting at core 0 every batch) is provided for the
// ablation benchmark.
#pragma once

#include <cstddef>

namespace ge::sched {

class CumulativeRoundRobin {
 public:
  explicit CumulativeRoundRobin(std::size_t cores, bool cumulative = true);

  // Core index for the next job.
  std::size_t next();

  // Called at the start of a distribution cycle; resets position unless
  // cumulative.
  void begin_batch();

  bool cumulative() const noexcept { return cumulative_; }

 private:
  std::size_t cores_;
  std::size_t position_ = 0;
  bool cumulative_;
};

}  // namespace ge::sched
