#include "core/good_enough.h"

#include <algorithm>
#include <cmath>

#include "core/plan_rectifier.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "opt/energy_opt.h"
#include "opt/job_cutter.h"
#include "opt/quality_opt.h"
#include "util/check.h"

namespace ge::sched {
namespace {

// Remaining work below this many units counts as "done".
constexpr double kWorkEps = 1e-6;
// Deadlines closer than this are treated as already passed for planning.
constexpr double kTimeEps = 1e-9;

// EDF order: (deadline, arrival id) is a total order, so any subset of jobs
// has exactly one sorted arrangement -- which is why a single sort per round
// (refresh_edf_cache) can replace the per-call sorts without changing any
// downstream sequence.
bool edf_before(const workload::Job* a, const workload::Job* b) {
  if (a->deadline != b->deadline) {
    return a->deadline < b->deadline;
  }
  return a->id < b->id;
}

}  // namespace

GoodEnoughScheduler::GoodEnoughScheduler(SchedulerEnv env, GoodEnoughOptions options,
                                         std::string name)
    : Scheduler(env, std::move(name)),
      options_(options),
      assigner_(env.server->core_count(), options.cumulative_rr),
      load_(options.load_window) {
  // Every core starts dirty (and with an impossible last-seen online state)
  // so the first round rebuilds everything.
  edf_dirty_.assign(env.server->core_count(), 1);
  edf_online_.assign(env.server->core_count(), 2);
  GE_CHECK(options_.q_ge >= 0.0 && options_.q_ge <= 1.0, "q_ge must be in [0,1]");
  GE_CHECK(options_.cut_target >= 0.0 && options_.cut_target <= 1.0,
           "cut_target must be in [0,1]");
  GE_CHECK(options_.quantum > 0.0, "quantum must be positive");
  GE_CHECK(options_.counter_threshold > 0, "counter threshold must be positive");
  mode_ = options_.cutting ? Mode::kAes : Mode::kBq;
  if (obs::Telemetry* tel = env_.sim->telemetry(); tel != nullptr) {
    prof_ = tel->profile;
  }
  if (obs::Telemetry* tel = env_.sim->telemetry();
      tel != nullptr && tel->metrics != nullptr) {
    obs::MetricsRegistry& reg = *tel->metrics;
    m_rounds_ = &reg.counter("ge.rounds", "rounds");
    m_rounds_aes_ = &reg.counter("ge.rounds_aes", "rounds");
    m_rounds_bq_ = &reg.counter("ge.rounds_bq", "rounds");
    m_rounds_es_ = &reg.counter("ge.rounds_equal_sharing", "rounds");
    m_rounds_wf_ = &reg.counter("ge.rounds_water_filling", "rounds");
    m_mode_switches_ = &reg.counter("ge.mode_switches", "switches");
    m_plans_ = &reg.counter("ge.plan_recomputations", "plans");
    m_qopt_trims_ = &reg.counter("ge.quality_opt_trims", "plans");
    m_edf_rebuilds_ = &reg.counter("ge.edf_rebuilds", "cores");
    m_edf_skips_ = &reg.counter("ge.edf_skips", "cores");
    m_cut_level_ = &reg.histogram(
        "ge.cut_level_units", {130, 200, 300, 400, 500, 600, 700, 800, 900, 1000},
        "units");
  }
}

void GoodEnoughScheduler::start() {
  mode_accounted_until_ = now();
  arm_quantum();
}

void GoodEnoughScheduler::arm_quantum() {
  quantum_event_ = env_.sim->schedule_in(options_.quantum, [this] {
    quantum_event_ = sim::kInvalidEventId;
    schedule_round();
    arm_quantum();
  });
}

void GoodEnoughScheduler::on_job_arrival(workload::Job* job) {
  load_.record_arrival(now());
  waiting_.push_back(job);
  // Counter triggering, plus immediate dispatch when capacity sits idle
  // (the idle-core trigger seen from the arrival side).
  if (static_cast<int>(waiting_.size()) >= options_.counter_threshold ||
      env_.server->find_idle_core(now()) >= 0) {
    schedule_round();
  }
}

void GoodEnoughScheduler::on_core_idle(int core_id) {
  (void)core_id;
  if (!waiting_.empty()) {
    schedule_round();
  }
}

void GoodEnoughScheduler::mark_core_dirty(int core_id) {
  if (core_id >= 0 && static_cast<std::size_t>(core_id) < edf_dirty_.size()) {
    edf_dirty_[static_cast<std::size_t>(core_id)] = 1;
  }
}

void GoodEnoughScheduler::settle_tracked(workload::Job* job) {
  mark_core_dirty(job->core);  // settle() detaches the job; read core first
  settle(job);
}

void GoodEnoughScheduler::on_job_finished(workload::Job* job) {
  if (!job->settled) {
    settle_tracked(job);
  }
}

void GoodEnoughScheduler::on_deadline(workload::Job* job) {
  if (!job->settled) {
    settle_tracked(job);
  }
  // A settlement can free a core while work is waiting; don't sit on it
  // until the next quantum.
  if (!in_round_ && !waiting_.empty() && env_.server->find_idle_core(now()) >= 0) {
    schedule_round();
  }
}

void GoodEnoughScheduler::finish() {
  for (workload::Job* job : waiting_) {
    if (!job->settled) {
      settle_tracked(job);
    }
  }
  waiting_.clear();
  for (std::size_t i = 0; i < env_.server->core_count(); ++i) {
    auto queue = env_.server->core(i).queue();  // copy: settle() mutates it
    for (workload::Job* job : queue) {
      if (!job->settled) {
        settle_tracked(job);
      }
    }
  }
  account_mode_time();
}

void GoodEnoughScheduler::account_mode_time() {
  const double t = now();
  const double dt = t - mode_accounted_until_;
  if (dt > 0.0) {
    (mode_ == Mode::kAes ? aes_time_ : bq_time_) += dt;
    mode_accounted_until_ = t;
  }
}

double GoodEnoughScheduler::aes_time(double t) const {
  return aes_time_ + (mode_ == Mode::kAes ? std::max(t - mode_accounted_until_, 0.0) : 0.0);
}

double GoodEnoughScheduler::bq_time(double t) const {
  return bq_time_ + (mode_ == Mode::kBq ? std::max(t - mode_accounted_until_, 0.0) : 0.0);
}

GoodEnoughScheduler::Mode GoodEnoughScheduler::choose_mode() const {
  if (!options_.cutting) {
    return Mode::kBq;  // Best Effort: never cut
  }
  // Strictly-below test with a small numeric slack: AES cuts batches to
  // *exactly* Q_GE, so without slack the monitored quality sits on the
  // boundary and floating-point noise would flap the mode.
  constexpr double kQualitySlack = 1e-6;
  if (options_.compensation && env_.monitor->quality() < options_.q_ge - kQualitySlack) {
    return Mode::kBq;  // compensation policy (Sec. III-C)
  }
  return Mode::kAes;
}

void GoodEnoughScheduler::refresh_edf_cache() {
  const std::size_t m = env_.server->core_count();
  edf_cache_.resize(m);
  edf_demand_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    server::Core& core = env_.server->core(i);
    const std::uint8_t online = core.online() ? 1 : 0;
    // A clean core's cache is exact: queue membership only changes through
    // assignment and settlement (both mark the core dirty), and membership
    // plus the (deadline, id) total order determine the sequence uniquely.
    if (edf_dirty_[i] == 0 && edf_online_[i] == online) {
      if (m_edf_skips_ != nullptr) {
        m_edf_skips_->increment();
      }
      continue;
    }
    edf_dirty_[i] = 0;
    edf_online_[i] = online;
    std::vector<workload::Job*>& jobs = edf_cache_[i];
    std::vector<double>& demands = edf_demand_[i];
    jobs.clear();
    demands.clear();
    if (!online) {
      continue;  // offline cores are never planned; stranded jobs settle later
    }
    for (workload::Job* job : core.queue()) {
      if (!job->settled) {
        jobs.push_back(job);
      }
    }
    std::sort(jobs.begin(), jobs.end(), edf_before);
    demands.reserve(jobs.size());
    for (const workload::Job* job : jobs) {
      demands.push_back(job->demand);  // immutable: lane valid while clean
    }
    if (m_edf_rebuilds_ != nullptr) {
      m_edf_rebuilds_->increment();
    }
  }
}

void GoodEnoughScheduler::set_targets(server::Core& core, Mode mode) {
  // The cache was rebuilt after the round's settlement sweep and nothing
  // settles between then and target-setting, so it is exactly the fresh EDF
  // queue here.
  const std::vector<workload::Job*>& jobs =
      edf_cache_[static_cast<std::size_t>(core.id())];
  if (jobs.empty()) {
    return;
  }
  if (mode == Mode::kBq) {
    for (workload::Job* job : jobs) {
      job->target = job->demand;
    }
    return;
  }
  // AES: Longest-First cutting against the original demands (a running job
  // is re-cut as if new, Sec. III-B); a target can never drop below what is
  // already executed.  Demands come from the SoA lane kept alongside the
  // EDF cache -- one contiguous copy instead of a pointer-chasing gather.
  const std::vector<double>& lane =
      edf_demand_[static_cast<std::size_t>(core.id())];
  cut_demands_.assign(lane.begin(), lane.end());
  opt::cut_longest_first(cut_demands_, *env_.quality_function, options_.cut_target,
                         cut_scratch_);
  const opt::CutResult& cut = cut_scratch_.result;
  double target_units = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i]->target = std::max(cut.targets[i], std::min(jobs[i]->executed, jobs[i]->demand));
    target_units += jobs[i]->target;
  }
  if (m_cut_level_ != nullptr) {
    m_cut_level_->observe(cut.level);
  }
  if (trace() != nullptr) {
    obs::TraceEvent ev;
    ev.type = obs::TraceEventType::kCut;
    ev.t = now();
    ev.core = core.id();
    ev.a = static_cast<double>(jobs.size());
    ev.b = cut.level;
    ev.c = target_units;
    trace()->push(ev);
  }
}

double GoodEnoughScheduler::core_power_demand(server::Core& core) {
  const double t = env_.sim->now();
  // The cache is already EDF-sorted; filtering it preserves sortedness, so
  // the per-call sort the old code needed is gone.
  plan_jobs_.clear();
  for (workload::Job* job : edf_cache_[static_cast<std::size_t>(core.id())]) {
    if (job->settled || job->deadline <= t + kTimeEps) {
      continue;
    }
    const double rem = job->remaining_target();
    if (rem <= kWorkEps) {
      continue;
    }
    plan_jobs_.push_back(opt::PlanJob{job, rem, job->deadline});
  }
  const double speed = opt::required_speed(t, plan_jobs_);
  return core.power_model().power(speed);
}

void GoodEnoughScheduler::distribute_power() {
  const double budget = env_.server->power_budget();
  const std::size_t m = env_.server->core_count();
  const std::size_t alive = env_.server->online_cores();
  const power::DistributionPolicy policy = power::resolve_hybrid(
      options_.power_policy, load_.rate(now()), options_.critical_load);
  if (policy == power::DistributionPolicy::kEqualSharing) {
    ++es_rounds_;
    if (m_rounds_es_ != nullptr) {
      m_rounds_es_->increment();
    }
    // Equal share over the *online* cores; offline cores draw nothing.
    caps_.assign(m, 0.0);
    if (alive > 0) {
      const double share = budget / static_cast<double>(alive);
      for (std::size_t i = 0; i < m; ++i) {
        caps_[i] = env_.server->core(i).online() ? share : 0.0;
      }
    }
    return;
  }
  ++wf_rounds_;
  if (m_rounds_wf_ != nullptr) {
    m_rounds_wf_->increment();
  }
  demand_watts_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    demand_watts_[i] = env_.server->core(i).online()
                           ? core_power_demand(env_.server->core(i))
                           : 0.0;
  }
  power::water_filling(budget, demand_watts_, caps_);
}

void GoodEnoughScheduler::plan_core(server::Core& core, double cap_watts,
                                    double* budget_slack) {
  const double t = now();
  const power::PowerModel& pm = core.power_model();
  // Jobs settled since the cache was built (target-completion sweep) carry
  // the settled flag; skipping them here yields the same filtered EDF
  // sequence the old fresh-sort produced.
  plan_jobs_.clear();
  for (workload::Job* job : edf_cache_[static_cast<std::size_t>(core.id())]) {
    if (job->settled || job->deadline <= t + kTimeEps) {
      continue;  // expired jobs were settled during cleanup
    }
    const double rem = job->remaining_target();
    if (rem <= kWorkEps) {
      continue;
    }
    plan_jobs_.push_back(opt::PlanJob{job, rem, job->deadline});
  }
  const double s_cap = std::min(pm.speed_for_power(cap_watts), options_.core_speed_cap);
  if (plan_jobs_.empty() || s_cap <= 0.0) {
    core.install_plan(opt::ExecutionPlan{}, cap_watts);
    return;
  }
  if (m_plans_ != nullptr) {
    m_plans_->increment();
  }
  const double required = opt::required_speed(t, plan_jobs_);
  if (required > s_cap * (1.0 + 1e-9)) {
    // Quality-OPT second cut (Sec. III-E): the cap cannot meet the targets;
    // trim them to maximise achievable quality under the cap.
    if (m_qopt_trims_ != nullptr) {
      m_qopt_trims_->increment();
    }
    alloc_jobs_.resize(plan_jobs_.size());
    for (std::size_t i = 0; i < plan_jobs_.size(); ++i) {
      alloc_jobs_[i] = opt::AllocJob{plan_jobs_[i].job->executed,
                                     plan_jobs_[i].remaining, plan_jobs_[i].deadline};
    }
    const std::vector<double> extra =
        opt::maximize_quality(t, alloc_jobs_, s_cap, *env_.quality_function);
    trimmed_.clear();
    trimmed_.reserve(plan_jobs_.size());
    for (std::size_t i = 0; i < plan_jobs_.size(); ++i) {
      plan_jobs_[i].job->target = plan_jobs_[i].job->executed + extra[i];
      if (extra[i] > kWorkEps) {
        trimmed_.push_back(
            opt::PlanJob{plan_jobs_[i].job, extra[i], plan_jobs_[i].deadline});
      }
    }
    plan_jobs_.swap(trimmed_);
  }
  opt::ExecutionPlan plan = opt::plan_min_energy(t, plan_jobs_, s_cap);
  double cap_final = cap_watts;
  if (options_.speed_table != nullptr && !plan.empty()) {
    // Discrete DVFS rectification (Sec. IV-A-5): round up when the budget
    // slack affords it, down otherwise; cores are processed lowest-cap
    // first by the caller.
    opt::ExecutionPlan ceiled =
        rectify_plan(plan, *options_.speed_table,
                     std::numeric_limits<double>::infinity());
    const double peak = ceiled.max_power(pm);
    if (peak <= cap_watts + *budget_slack + 1e-9) {
      const double extra = std::max(peak - cap_watts, 0.0);
      *budget_slack -= extra;
      cap_final = cap_watts + extra;
      plan = std::move(ceiled);
    } else {
      plan = rectify_plan(plan, *options_.speed_table, s_cap);
    }
  }
  core.install_plan(std::move(plan), cap_final);
}

void GoodEnoughScheduler::schedule_round() {
  if (in_round_) {
    return;
  }
  in_round_ = true;
  obs::ScopedTimer round_timer(prof_ != nullptr ? &prof_->ge_round : nullptr);
  const double t = now();
  ++rounds_;
  account_mode_time();
  const std::size_t waiting_at_trigger = waiting_.size();
  if (m_rounds_ != nullptr) {
    m_rounds_->increment();
  }

  // 1. Settle waiting jobs whose deadline already passed (not yet assigned,
  // so no core cache is invalidated).
  for (workload::Job* job : waiting_) {
    if (!job->settled && job->expired(t)) {
      settle_tracked(job);
    }
  }
  std::erase_if(waiting_, [](const workload::Job* j) { return j->settled; });

  // 2. Pin waiting jobs to cores (Cumulative Round-Robin over online cores).
  if (env_.server->online_cores() > 0) {
    assigner_.begin_batch();
    for (workload::Job* job : waiting_) {
      std::size_t c = assigner_.next();
      while (!env_.server->core(c).online()) {
        c = assigner_.next();
      }
      job->core = static_cast<int>(c);
      env_.server->core(c).queue().push_back(job);
      mark_core_dirty(job->core);
      if (trace() != nullptr) {
        obs::TraceEvent ev;
        ev.type = obs::TraceEventType::kAssign;
        ev.t = t;
        ev.job = static_cast<std::int64_t>(job->id);
        ev.core = job->core;
        trace()->push(ev);
      }
    }
    waiting_.clear();
  }

  // 3. Credit in-flight work, then settle expired queued jobs.
  const std::size_t m = env_.server->core_count();
  for (std::size_t i = 0; i < m; ++i) {
    env_.server->core(i).advance_to(t);
    auto queue = env_.server->core(i).queue();  // copy: settle() mutates it
    for (workload::Job* job : queue) {
      if (!job->settled && job->expired(t)) {
        settle_tracked(job);
      }
    }
  }

  // One EDF sort per core per round; steps 4-6 consume the cached order.
  refresh_edf_cache();

  // 4. Execution mode (compensation policy) and per-core cut targets.
  // Offline cores are skipped: their stranded jobs settle at deadline.
  const Mode previous_mode = mode_;
  mode_ = choose_mode();
  if (m_rounds_ != nullptr) {
    (mode_ == Mode::kAes ? m_rounds_aes_ : m_rounds_bq_)->increment();
    if (mode_ != previous_mode) {
      m_mode_switches_->increment();
    }
  }
  if (trace() != nullptr) {
    if (mode_ != previous_mode) {
      obs::TraceEvent ev;
      ev.type = obs::TraceEventType::kModeSwitch;
      ev.t = t;
      ev.mode = mode_ == Mode::kAes ? obs::kModeAes : obs::kModeBq;
      ev.a = env_.monitor->quality();
      trace()->push(ev);
    }
    obs::TraceEvent ev;
    ev.type = obs::TraceEventType::kRound;
    ev.t = t;
    ev.mode = mode_ == Mode::kAes ? obs::kModeAes : obs::kModeBq;
    ev.a = static_cast<double>(waiting_at_trigger);
    ev.b = load_.rate(t);
    ev.c = static_cast<double>(rounds_);
    trace()->push(ev);
  }
  {
    obs::ScopedTimer cut_timer(prof_ != nullptr ? &prof_->cut : nullptr);
    for (std::size_t i = 0; i < m; ++i) {
      if (env_.server->core(i).online()) {
        set_targets(env_.server->core(i), mode_);
      }
    }
  }
  // Jobs that already hit their (possibly re-raised) target complete now.
  for (std::size_t i = 0; i < m; ++i) {
    auto queue = env_.server->core(i).queue();
    for (workload::Job* job : queue) {
      if (!job->settled && job->remaining_target() <= kWorkEps) {
        settle_tracked(job);
      }
    }
  }

  // 5. Power caps.
  {
    obs::ScopedTimer dist_timer(prof_ != nullptr ? &prof_->power_dist : nullptr);
    distribute_power();
  }
  env_.server->check_caps(caps_);
  if (trace() != nullptr) {
    for (std::size_t i = 0; i < caps_.size(); ++i) {
      obs::TraceEvent ev;
      ev.type = obs::TraceEventType::kCap;
      ev.t = t;
      ev.core = static_cast<std::int32_t>(i);
      ev.a = caps_[i];
      trace()->push(ev);
    }
  }

  // 6. Per-core planning.  With a discrete ladder the paper rectifies
  // lowest-assigned-power cores first; keep index order otherwise.
  order_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    order_[i] = i;
  }
  double slack = env_.server->power_budget();
  for (double cap : caps_) {
    slack -= cap;
  }
  if (slack < 0.0) {
    slack = 0.0;
  }
  if (options_.speed_table != nullptr) {
    std::stable_sort(order_.begin(), order_.end(), [this](std::size_t a, std::size_t b) {
      return caps_[a] < caps_[b];
    });
  }
  {
    obs::ScopedTimer plan_timer(prof_ != nullptr ? &prof_->plan : nullptr);
    for (std::size_t idx : order_) {
      if (env_.server->core(idx).online()) {
        plan_core(env_.server->core(idx), caps_[idx], &slack);
      }
    }
  }
  in_round_ = false;
}

}  // namespace ge::sched
