// Stochastic building blocks of the paper's web-search workload model
// (Sec. IV-B): Poisson request arrivals and bounded-Pareto service demands.
#pragma once

#include "util/rng.h"

namespace ge::workload {

// Bounded (truncated) Pareto distribution on [xmin, xmax] with tail index
// alpha.  The paper uses alpha = 3, xmin = 130, xmax = 1000, giving a mean
// demand of ~192.1 processing units.
class BoundedParetoDistribution {
 public:
  BoundedParetoDistribution(double alpha, double xmin, double xmax);

  double sample(util::Rng& rng) const;

  // Closed-form mean of the distribution.
  double mean() const;

  double alpha() const noexcept { return alpha_; }
  double xmin() const noexcept { return xmin_; }
  double xmax() const noexcept { return xmax_; }

 private:
  double alpha_;
  double xmin_;
  double xmax_;
  double ratio_pow_;  // (xmin / xmax)^alpha, cached for inverse-CDF sampling
};

// Two-state (on-off) modulated Poisson process: a "burst" state with an
// elevated rate alternates with a "calm" state, dwell times exponential.
// The long-run mean rate equals the configured `mean_rate`, so sweeps stay
// comparable as burstiness grows.  peak_to_mean == 1 degenerates to a
// homogeneous Poisson process.  Used to stress the GE compensation policy
// with workloads whose instantaneous rate crosses the critical load even
// when the average does not.
class OnOffPoissonProcess {
 public:
  // burst_fraction: long-run share of time spent in the burst state (0,1).
  // peak_to_mean:   burst-state rate / mean rate; must satisfy
  //                 peak_to_mean * burst_fraction < 1 so the calm rate is
  //                 positive.
  // burst_dwell:    mean sojourn in the burst state (seconds).
  OnOffPoissonProcess(double mean_rate, double peak_to_mean, double burst_fraction,
                      double burst_dwell, util::Rng rng);

  double next();

  double burst_rate() const noexcept { return burst_rate_; }
  double calm_rate() const noexcept { return calm_rate_; }
  bool in_burst() const noexcept { return in_burst_; }

 private:
  double burst_rate_;
  double calm_rate_;
  double burst_dwell_;
  double calm_dwell_;
  double time_ = 0.0;
  double next_switch_;
  bool in_burst_ = false;
  util::Rng rng_;
};

// Homogeneous Poisson arrival process with the given rate (requests/second).
class PoissonProcess {
 public:
  PoissonProcess(double rate, util::Rng rng);

  // Returns the next arrival time strictly after the previous one.
  double next();

  double rate() const noexcept { return rate_; }
  double last_arrival() const noexcept { return time_; }

 private:
  double rate_;
  double time_ = 0.0;
  util::Rng rng_;
};

}  // namespace ge::workload
