// Arena/pool storage for in-flight jobs (the streaming replay core).
//
// The non-streaming path materialises the whole workload as one
// std::vector<Job> before the run starts -- simple, but memory grows with
// the *total* job count, which rules out 10^6..10^8-job replays.  JobStore
// instead hands out pointer-stable slots from slab allocations and recycles
// the slot of every *retired* (settled and accounted) job, so resident
// memory tracks the number of jobs in flight, not the number ever seen.
//
// Pointer stability: jobs are allocated in fixed-size slabs that are never
// moved or freed while the store lives, so a Job* stays valid from acquire()
// until its slot is recycled.  Schedulers keep raw Job* in run queues, EDF
// caches and plan segments, and may read a *settled* job's pointer until the
// next planning round purges it.  Recycling therefore goes through a
// time-based quarantine: retire(job, now) parks the slot until
// now + quarantine_delay, and reclaim(now) only returns slots whose
// quarantine has lapsed to the free list.  Callers size the delay to cover
// the maximum scheduler-side retention (for the GE round chain: one quantum;
// see docs/DESIGN.md "Streaming core").
//
// Slot reuse is LIFO (better cache behaviour); the quarantine queue is FIFO
// because retirement times are monotone in simulation time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "workload/job.h"

namespace ge::workload {

class JobStore {
 public:
  // quarantine_delay: seconds of simulated time a retired slot stays
  // unavailable before reuse (0 = immediate reuse).
  explicit JobStore(double quarantine_delay = 0.0)
      : quarantine_delay_(quarantine_delay) {}

  JobStore(const JobStore&) = delete;
  JobStore& operator=(const JobStore&) = delete;

  // Copies `proto` into a stable slot and returns it.  The pointer stays
  // valid until the slot is retired, quarantined out, and reused.
  Job* acquire(const Job& proto);

  // Marks a settled job's slot for recycling once the quarantine lapses.
  // The job must have come from this store and must be settled.
  void retire(Job* job, double now);

  // Moves quarantined slots whose release time has passed to the free list.
  // Call periodically (e.g. per arrival) with the current simulated time.
  void reclaim(double now);

  // Jobs currently acquired and not yet retired.
  std::size_t in_flight() const noexcept { return in_flight_; }
  // High-water mark of in_flight() over the store's lifetime.
  std::size_t peak_in_flight() const noexcept { return peak_in_flight_; }
  // Total acquire() calls ever.
  std::uint64_t total_acquired() const noexcept { return total_acquired_; }
  // Slots allocated across all slabs (the arena footprint).
  std::size_t capacity() const noexcept { return kSlabJobs * slabs_.size(); }
  // Approximate resident bytes of the arena (slabs only).
  std::size_t memory_bytes() const noexcept {
    return capacity() * sizeof(Job);
  }
  // Slots parked in quarantine right now (retired, not yet reusable).
  std::size_t quarantined() const noexcept { return limbo_.size(); }

  double quarantine_delay() const noexcept { return quarantine_delay_; }

 private:
  static constexpr std::size_t kSlabJobs = 4096;

  struct Quarantined {
    Job* job;
    double release_time;
  };

  std::vector<std::unique_ptr<Job[]>> slabs_;
  std::size_t slab_used_ = kSlabJobs;  // slots handed out of the last slab
  std::vector<Job*> free_;             // recycled slots, LIFO
  std::deque<Quarantined> limbo_;      // FIFO; release times are monotone
  double quarantine_delay_;
  std::size_t in_flight_ = 0;
  std::size_t peak_in_flight_ = 0;
  std::uint64_t total_acquired_ = 0;
};

}  // namespace ge::workload
