#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "workload/generator.h"

namespace ge::workload {

Trace::Trace(std::vector<Job> jobs) : jobs_(std::move(jobs)) {
  GE_CHECK(std::is_sorted(jobs_.begin(), jobs_.end(),
                          [](const Job& a, const Job& b) { return a.arrival < b.arrival; }),
           "trace jobs must be sorted by arrival");
  for (const Job& job : jobs_) {
    GE_CHECK(job_invariants_hold(job), "invalid job in trace");
  }
}

Trace Trace::generate(const WorkloadSpec& spec, double horizon,
                      std::uint64_t max_jobs) {
  WorkloadGenerator gen(spec);
  return Trace(gen.generate_until(horizon, max_jobs));
}

double Trace::total_demand() const {
  double total = 0.0;
  for (const Job& job : jobs_) {
    total += job.demand;
  }
  return total;
}

double Trace::horizon() const { return jobs_.empty() ? 0.0 : jobs_.back().arrival; }

std::string Trace::to_csv() const {
  std::ostringstream os;
  os << "id,arrival,deadline,demand\n";
  char buf[160];
  for (const Job& job : jobs_) {
    // %.17g is round-trip exact for IEEE doubles: replaying a saved trace
    // reproduces the original run bit for bit.
    std::snprintf(buf, sizeof(buf), "%llu,%.17g,%.17g,%.17g\n",
                  static_cast<unsigned long long>(job.id), job.arrival, job.deadline,
                  job.demand);
    os << buf;
  }
  return os.str();
}

Trace Trace::from_csv(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  GE_CHECK(static_cast<bool>(std::getline(is, line)), "empty trace CSV");
  GE_CHECK(line.rfind("id,arrival,deadline,demand", 0) == 0,
           "unexpected trace CSV header");
  std::vector<Job> jobs;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    Job job;
    unsigned long long id = 0;
    const int fields =
        std::sscanf(line.c_str(), "%llu,%lf,%lf,%lf", &id, &job.arrival, &job.deadline,
                    &job.demand);
    GE_CHECK(fields == 4, "malformed trace CSV row");
    job.id = id;
    job.target = job.demand;
    jobs.push_back(job);
  }
  return Trace(std::move(jobs));
}

void Trace::save_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  GE_CHECK(out.good(), "cannot open trace file for writing");
  out << to_csv();
  GE_CHECK(out.good(), "trace write failed");
}

Trace Trace::load_csv(const std::string& path) {
  std::ifstream in(path);
  GE_CHECK(in.good(), "cannot open trace file for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv(buffer.str());
}

}  // namespace ge::workload
