#include "workload/generator.h"

#include "util/check.h"

namespace ge::workload {
namespace {

util::Rng master_rng(std::uint64_t seed) { return util::Rng(seed * 0x9e3779b97f4a7c15ULL + 1); }

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec)
    : spec_(spec),
      demand_(spec.pareto_alpha, spec.demand_min, spec.demand_max),
      arrivals_(spec.arrival_rate, master_rng(spec.seed).split()),
      demand_rng_(master_rng(spec.seed).split().split()),
      deadline_rng_(master_rng(spec.seed).split().split().split()) {
  GE_CHECK(spec.deadline_interval > 0.0, "deadline interval must be positive");
  GE_CHECK(spec.deadline_interval_max >= spec.deadline_interval,
           "deadline_interval_max must be >= deadline_interval");
  if (spec.bursty()) {
    bursty_arrivals_ = std::make_unique<OnOffPoissonProcess>(
        spec.arrival_rate, spec.burst_peak_to_mean, spec.burst_fraction,
        spec.burst_dwell, master_rng(spec.seed).split());
  }
}

double WorkloadGenerator::next_arrival() {
  if (bursty_arrivals_ != nullptr) {
    return bursty_arrivals_->next();
  }
  return arrivals_.next();
}

Job WorkloadGenerator::next() {
  Job job;
  job.id = next_id_++;
  job.arrival = next_arrival();
  double window = spec_.deadline_interval;
  if (spec_.random_deadlines()) {
    window = deadline_rng_.uniform(spec_.deadline_interval, spec_.deadline_interval_max);
  }
  job.deadline = job.arrival + window;
  job.demand = demand_.sample(demand_rng_);
  job.target = job.demand;  // uncut until a scheduler decides otherwise
  return job;
}

std::vector<Job> WorkloadGenerator::generate_until(double horizon,
                                                   std::uint64_t max_jobs) {
  std::vector<Job> jobs;
  while (max_jobs == 0 || jobs.size() < max_jobs) {
    Job job = next();
    if (job.arrival >= horizon) {
      break;
    }
    jobs.push_back(job);
  }
  return jobs;
}

double WorkloadGenerator::offered_load() const {
  return spec_.arrival_rate * demand_.mean();
}

}  // namespace ge::workload
