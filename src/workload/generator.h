// Synthetic web-search workload generator (Sec. IV-B).
//
// Requests arrive by a Poisson process; each carries a bounded-Pareto
// processing demand and a response deadline.  Two deadline regimes are
// modelled:
//   * Fixed interval: deadline = arrival + 150 ms (Fig. 3 and most figures).
//   * Random interval: deadline = arrival + U[150 ms, 500 ms] (Fig. 4),
//     which breaks the "agreeable deadlines" property and motivates FDFS.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "util/rng.h"
#include "workload/distributions.h"
#include "workload/job.h"

namespace ge::workload {

struct WorkloadSpec {
  double arrival_rate = 150.0;  // requests per second
  double pareto_alpha = 3.0;
  double demand_min = 130.0;    // processing units
  double demand_max = 1000.0;
  double deadline_interval = 0.150;      // seconds
  double deadline_interval_max = 0.150;  // > interval enables random windows
  std::uint64_t seed = 1;

  // Burstiness (on-off modulated arrivals).  peak_to_mean == 1 keeps the
  // plain Poisson process; > 1 alternates burst/calm states while holding
  // the long-run mean at arrival_rate.
  double burst_peak_to_mean = 1.0;
  double burst_fraction = 0.2;  // long-run share of time in the burst state
  double burst_dwell = 1.0;     // mean burst sojourn, seconds

  bool random_deadlines() const noexcept {
    return deadline_interval_max > deadline_interval;
  }
  bool bursty() const noexcept { return burst_peak_to_mean > 1.0; }
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadSpec& spec);

  // Generates the next request; arrivals are strictly increasing.
  Job next();

  // Generates all requests arriving before `horizon` seconds.  When
  // `max_jobs` is non-zero, stops after that many requests even if the
  // horizon has not been reached (the capped prefix of the uncapped stream,
  // so capped and uncapped runs share randomness job for job).
  std::vector<Job> generate_until(double horizon, std::uint64_t max_jobs = 0);

  const WorkloadSpec& spec() const noexcept { return spec_; }
  const BoundedParetoDistribution& demand_distribution() const noexcept {
    return demand_;
  }

  // Mean offered load in processing units per second.
  double offered_load() const;

 private:
  double next_arrival();

  WorkloadSpec spec_;
  BoundedParetoDistribution demand_;
  PoissonProcess arrivals_;
  std::unique_ptr<OnOffPoissonProcess> bursty_arrivals_;  // non-null when bursty
  util::Rng demand_rng_;
  util::Rng deadline_rng_;
  std::uint64_t next_id_ = 1;
};

}  // namespace ge::workload
