// Workload trace record / replay.
//
// A trace is the materialised request stream of a run: one record per job
// (id, arrival, deadline, demand).  Traces decouple workload generation from
// scheduling -- the same trace can be replayed against every scheduler so
// that algorithm comparisons see *identical* randomness, and traces can be
// exported to CSV for inspection or external tooling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/job.h"

namespace ge::workload {

struct WorkloadSpec;

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Job> jobs);

  // Materialises `horizon` seconds of a synthetic workload; a non-zero
  // `max_jobs` caps the job count (the capped prefix of the uncapped
  // stream).
  static Trace generate(const WorkloadSpec& spec, double horizon,
                        std::uint64_t max_jobs = 0);

  const std::vector<Job>& jobs() const noexcept { return jobs_; }
  std::size_t size() const noexcept { return jobs_.size(); }
  bool empty() const noexcept { return jobs_.empty(); }

  // Total processing demand in the trace (units).
  double total_demand() const;
  // Last arrival time, 0 when empty.
  double horizon() const;

  // CSV round-trip.  Format: header "id,arrival,deadline,demand" + one row
  // per job, arrival-sorted.  save_csv overwrites; load_csv validates
  // monotone arrivals and positive demands.
  void save_csv(const std::string& path) const;
  static Trace load_csv(const std::string& path);

  std::string to_csv() const;
  static Trace from_csv(const std::string& text);

 private:
  std::vector<Job> jobs_;  // sorted by arrival
};

}  // namespace ge::workload
