#include "workload/job_store.h"

#include "util/check.h"

namespace ge::workload {

Job* JobStore::acquire(const Job& proto) {
  Job* slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    if (slab_used_ == kSlabJobs) {
      slabs_.push_back(std::make_unique<Job[]>(kSlabJobs));
      slab_used_ = 0;
    }
    slot = &slabs_.back()[slab_used_++];
  }
  *slot = proto;
  ++total_acquired_;
  ++in_flight_;
  if (in_flight_ > peak_in_flight_) {
    peak_in_flight_ = in_flight_;
  }
  return slot;
}

void JobStore::retire(Job* job, double now) {
  GE_CHECK(job != nullptr && job->settled, "retiring an unsettled job");
  GE_CHECK(in_flight_ > 0, "retire() without a matching acquire()");
  GE_CHECK(limbo_.empty() || limbo_.back().release_time <=
                                 now + quarantine_delay_ + 1e-12,
           "retire() times must be non-decreasing");
  --in_flight_;
  limbo_.push_back(Quarantined{job, now + quarantine_delay_});
}

void JobStore::reclaim(double now) {
  while (!limbo_.empty() && limbo_.front().release_time <= now) {
    free_.push_back(limbo_.front().job);
    limbo_.pop_front();
  }
}

}  // namespace ge::workload
