#include "workload/distributions.h"

#include <cmath>

#include "util/check.h"

namespace ge::workload {

BoundedParetoDistribution::BoundedParetoDistribution(double alpha, double xmin,
                                                     double xmax)
    : alpha_(alpha), xmin_(xmin), xmax_(xmax) {
  GE_CHECK(alpha > 0.0, "Pareto index must be positive");
  GE_CHECK(xmin > 0.0 && xmax > xmin, "need 0 < xmin < xmax");
  ratio_pow_ = std::pow(xmin_ / xmax_, alpha_);
}

double BoundedParetoDistribution::sample(util::Rng& rng) const {
  // Inverse-CDF sampling for the truncated Pareto:
  //   F(x) = (1 - (xmin/x)^alpha) / (1 - (xmin/xmax)^alpha)
  //   x = xmin / (1 - u (1 - (xmin/xmax)^alpha))^(1/alpha),  u ~ U[0,1)
  const double u = rng.uniform();
  const double denom = std::pow(1.0 - u * (1.0 - ratio_pow_), 1.0 / alpha_);
  const double x = xmin_ / denom;
  // Clamp for floating-point safety at the right edge.
  return x > xmax_ ? xmax_ : x;
}

double BoundedParetoDistribution::mean() const {
  if (alpha_ == 1.0) {
    // E[X] = xmin * ln(xmax/xmin) / (1 - xmin/xmax)
    return xmin_ * std::log(xmax_ / xmin_) / (1.0 - xmin_ / xmax_);
  }
  // E[X] = xmin^a / (1 - (xmin/xmax)^a) * a/(a-1) * (xmin^{1-a} - xmax^{1-a})
  return std::pow(xmin_, alpha_) / (1.0 - ratio_pow_) * alpha_ / (alpha_ - 1.0) *
         (std::pow(xmin_, 1.0 - alpha_) - std::pow(xmax_, 1.0 - alpha_));
}

OnOffPoissonProcess::OnOffPoissonProcess(double mean_rate, double peak_to_mean,
                                         double burst_fraction, double burst_dwell,
                                         util::Rng rng)
    : burst_dwell_(burst_dwell), rng_(rng) {
  GE_CHECK(mean_rate > 0.0, "mean rate must be positive");
  GE_CHECK(peak_to_mean >= 1.0, "peak-to-mean ratio must be >= 1");
  GE_CHECK(burst_fraction > 0.0 && burst_fraction < 1.0,
           "burst fraction must be in (0,1)");
  GE_CHECK(peak_to_mean * burst_fraction < 1.0,
           "peak_to_mean * burst_fraction must be < 1 (calm rate positive)");
  GE_CHECK(burst_dwell > 0.0, "burst dwell must be positive");
  burst_rate_ = peak_to_mean * mean_rate;
  // mean = f * burst + (1-f) * calm  =>  calm = mean (1 - f r) / (1 - f).
  calm_rate_ = mean_rate * (1.0 - burst_fraction * peak_to_mean) /
               (1.0 - burst_fraction);
  calm_dwell_ = burst_dwell * (1.0 - burst_fraction) / burst_fraction;
  next_switch_ = rng_.exponential(1.0 / calm_dwell_);
}

double OnOffPoissonProcess::next() {
  // Piecewise-constant-rate Poisson: draw an exponential at the current
  // rate; if it crosses the state boundary, restart from the boundary with
  // the other state's rate (valid by memorylessness).
  for (;;) {
    const double rate = in_burst_ ? burst_rate_ : calm_rate_;
    const double candidate = time_ + rng_.exponential(rate);
    if (candidate <= next_switch_) {
      time_ = candidate;
      return time_;
    }
    time_ = next_switch_;
    in_burst_ = !in_burst_;
    const double dwell = in_burst_ ? burst_dwell_ : calm_dwell_;
    next_switch_ = time_ + rng_.exponential(1.0 / dwell);
  }
}

PoissonProcess::PoissonProcess(double rate, util::Rng rng)
    : rate_(rate), rng_(rng) {
  GE_CHECK(rate > 0.0, "arrival rate must be positive");
}

double PoissonProcess::next() {
  time_ += rng_.exponential(rate_);
  return time_;
}

}  // namespace ge::workload
