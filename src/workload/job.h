// The unit of work: an interactive service request ("job" in the paper).
//
// A job J_j arrives at time s_j, must be answered by its deadline d_j, and
// carries a processing demand p_j in processing units (1 GHz-second = 1000
// units, Sec. IV-B).  Jobs may be *partially* processed: the scheduler sets
// `target` (the cut demand c_j <= p_j) and the executing core accumulates
// `executed`.  Once a job is settled (completed, truncated at its deadline,
// or dropped) its quality contribution f(executed) is frozen.
#pragma once

#include <cstdint>

namespace ge::workload {

inline constexpr int kUnassigned = -1;

struct Job {
  std::uint64_t id = 0;
  double arrival = 0.0;   // s_j, seconds
  double deadline = 0.0;  // d_j, seconds
  double demand = 0.0;    // p_j, processing units
  double target = 0.0;    // c_j after cutting; invariant: 0 <= target <= demand
  double executed = 0.0;  // units processed so far; <= target (+eps)
  int core = kUnassigned; // core the job is pinned to (no migration)
  // Cluster node the job was dispatched to (kUnassigned on a single server).
  // Lives on the job instead of a cluster-side id-indexed vector so resident
  // memory stays O(jobs in flight) on streaming replays.
  std::int32_t server = kUnassigned;
  bool settled = false;
  // Time the response was returned to the user: completion of the (cut)
  // target, or the deadline for partial/dropped jobs.  < 0 until settled.
  double finish_time = -1.0;

  double window() const noexcept { return deadline - arrival; }
  double remaining_target() const noexcept {
    const double r = target - executed;
    return r > 0.0 ? r : 0.0;
  }
  double remaining_demand() const noexcept {
    const double r = demand - executed;
    return r > 0.0 ? r : 0.0;
  }
  bool assigned() const noexcept { return core != kUnassigned; }
  bool expired(double now) const noexcept { return now >= deadline; }
};

// Validates basic job invariants; used by tests and debug paths.
bool job_invariants_hold(const Job& job) noexcept;

}  // namespace ge::workload
