#include "workload/job.h"

namespace ge::workload {

bool job_invariants_hold(const Job& job) noexcept {
  if (job.demand <= 0.0) {
    return false;
  }
  if (job.deadline < job.arrival) {
    return false;
  }
  if (job.target < -1e-9 || job.target > job.demand + 1e-9) {
    return false;
  }
  if (job.executed < -1e-9 || job.executed > job.target + 1e-6) {
    return false;
  }
  return true;
}

}  // namespace ge::workload
