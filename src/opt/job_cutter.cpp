#include "opt/job_cutter.h"

#include <algorithm>
#include <cmath>

#include "quality/quality_function.h"
#include "util/check.h"

namespace ge::opt {
namespace {

constexpr double kQualityTol = 1e-9;

}  // namespace

double batch_quality(std::span<const double> targets, std::span<const double> demands,
                     const quality::QualityFunction& f) {
  GE_CHECK(targets.size() == demands.size(), "targets/demands size mismatch");
  double achieved = 0.0;
  double potential = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    achieved += f.value(targets[i]);
    potential += f.value(demands[i]);
  }
  return potential > 0.0 ? achieved / potential : 1.0;
}

void cut_longest_first(std::span<const double> demands,
                       const quality::QualityFunction& f, double q_target,
                       CutScratch& scratch) {
  CutResult& result = scratch.result;
  result.targets.assign(demands.begin(), demands.end());
  result.level = 0.0;
  result.quality = 1.0;
  result.iterations = 0;
  result.uncut = false;
  const std::size_t n = demands.size();
  if (n == 0 || q_target >= 1.0 - kQualityTol) {
    result.uncut = true;
    result.level = n == 0 ? 0.0 : *std::max_element(demands.begin(), demands.end());
    return;
  }
  q_target = std::max(q_target, 0.0);
  for (double p : demands) {
    GE_CHECK(p > 0.0, "job demands must be positive");
  }

  // Distinct demand levels, descending; the LF loop walks down this ladder.
  std::vector<double>& levels = scratch.levels;
  levels.assign(demands.begin(), demands.end());
  std::sort(levels.begin(), levels.end(), std::greater<>());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

  double potential = 0.0;
  for (double p : demands) {
    potential += f.value(p);
  }

  // Sorted demands ascending with running prefix sums of f: prefix[k] is the
  // left-to-right sum of f over the k smallest demands, which is exactly the
  // partial sum a per-job evaluation loop would produce.  Each quality probe
  // below then costs one f evaluation plus cheap additions instead of n
  // evaluations -- the memoisation that makes the LF walk O(n log n + k)
  // in f-calls instead of O(n k).
  std::vector<double>& sorted = scratch.sorted;
  sorted.assign(demands.begin(), demands.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double>& prefix = scratch.prefix;
  prefix.resize(n + 1);
  prefix[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + f.value(sorted[i]);
  }

  // Batch quality with every demand clamped to `level`.  Replays the exact
  // summation sequence of the naive ascending loop (prefix part, then the
  // clamped jobs one addition at a time) so results stay bit-identical to
  // the pre-memoisation implementation.
  auto quality_at_level = [&](double level) {
    const std::size_t k = static_cast<std::size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), level) - sorted.begin());
    double achieved = prefix[k];
    if (k < n) {
      const double f_level = f.value(level);
      for (std::size_t i = k; i < n; ++i) {
        achieved += f_level;
      }
    }
    return achieved / potential;
  };

  // Walk: after iteration i, every job with p_j > levels[i+1] is cut to
  // levels[i+1] (the new level).
  double level = levels.front();  // current common height of the cut jobs
  double quality = 1.0;
  int iterations = 0;
  std::size_t next_rung = 1;  // index into `levels` of the next level-down target
  bool overshoot = false;
  while (quality > q_target + kQualityTol) {
    ++iterations;
    const double next_level = next_rung < levels.size() ? levels[next_rung] : 0.0;
    ++next_rung;
    level = next_level;
    quality = quality_at_level(level);
    if (level <= 0.0 && quality > q_target + kQualityTol) {
      // Even cutting everything to zero cannot reach the target -- only
      // possible when q_target <= 0; treat as "level 0".
      break;
    }
    if (quality < q_target - kQualityTol) {
      overshoot = true;
      break;
    }
  }

  if (overshoot) {
    // Paper step 5: the cut jobs (p_j > level) all receive the same quality
    //   f(c) = (Q_GE * (F_U + F_C) - F_U) / |C|
    // where U = uncut jobs (p_j <= level) and C = cut jobs.
    const std::size_t k = static_cast<std::size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), level + kQualityTol) -
        sorted.begin());
    const double f_uncut = prefix[k];
    const std::size_t cut_count = n - k;
    GE_CHECK(cut_count > 0, "overshoot without cut jobs");
    const double desired =
        (q_target * potential - f_uncut) / static_cast<double>(cut_count);
    const double clamped = std::clamp(desired, 0.0, 1.0);
    level = f.inverse(clamped);
  }

  result.level = level;
  result.iterations = iterations;
  for (std::size_t i = 0; i < n; ++i) {
    result.targets[i] = std::min(demands[i], level);
  }
  result.quality = batch_quality(result.targets, demands, f);
}

CutResult cut_longest_first(std::span<const double> demands,
                            const quality::QualityFunction& f, double q_target) {
  CutScratch scratch;
  cut_longest_first(demands, f, q_target, scratch);
  return std::move(scratch.result);
}

double cut_level_for_quality(std::span<const double> demands,
                             const quality::QualityFunction& f, double q_target) {
  if (demands.empty()) {
    return 0.0;
  }
  const double max_demand = *std::max_element(demands.begin(), demands.end());
  if (q_target >= 1.0) {
    return max_demand;
  }
  if (q_target <= 0.0) {
    return 0.0;
  }
  // Ascending demands with prefix sums of f, so every bisection probe costs
  // one f evaluation instead of n (this solver is a test cross-check, not a
  // simulation path, so the summation-order change is benign).
  std::vector<double> sorted(demands.begin(), demands.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + f.value(sorted[i]);
  }
  const double potential = prefix[n];
  auto quality_at = [&](double level) {
    const std::size_t k = static_cast<std::size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), level) - sorted.begin());
    return (prefix[k] + static_cast<double>(n - k) * f.value(level)) / potential;
  };
  double lo = 0.0;
  double hi = max_demand;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    // Midpoint == endpoint means the interval is one ulp wide: further
    // iterations replay this exact (mid, branch) pair, so hi is final and
    // the early break is bitwise-identical.
    const bool converged = mid == lo || mid == hi;
    if (quality_at(mid) < q_target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (converged) {
      break;
    }
  }
  return hi;
}

}  // namespace ge::opt
