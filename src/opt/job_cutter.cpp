#include "opt/job_cutter.h"

#include <algorithm>
#include <cmath>

#include "quality/quality_function.h"
#include "util/check.h"

namespace ge::opt {
namespace {

constexpr double kQualityTol = 1e-9;

}  // namespace

double batch_quality(std::span<const double> targets, std::span<const double> demands,
                     const quality::QualityFunction& f) {
  GE_CHECK(targets.size() == demands.size(), "targets/demands size mismatch");
  double achieved = 0.0;
  double potential = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    achieved += f.value(targets[i]);
    potential += f.value(demands[i]);
  }
  return potential > 0.0 ? achieved / potential : 1.0;
}

CutResult cut_longest_first(std::span<const double> demands,
                            const quality::QualityFunction& f, double q_target) {
  CutResult result;
  result.targets.assign(demands.begin(), demands.end());
  const std::size_t n = demands.size();
  if (n == 0 || q_target >= 1.0 - kQualityTol) {
    result.uncut = true;
    result.level = n == 0 ? 0.0 : *std::max_element(demands.begin(), demands.end());
    result.quality = 1.0;
    return result;
  }
  q_target = std::max(q_target, 0.0);
  for (double p : demands) {
    GE_CHECK(p > 0.0, "job demands must be positive");
  }

  // Distinct demand levels, descending; the LF loop walks down this ladder.
  std::vector<double> levels(demands.begin(), demands.end());
  std::sort(levels.begin(), levels.end(), std::greater<>());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

  double potential = 0.0;
  for (double p : demands) {
    potential += f.value(p);
  }

  // Walk: after iteration i, every job with p_j > levels[i+1] is cut to
  // levels[i+1] (the new level); count how many jobs sit at/above each rung.
  // Sorted demands ascending for prefix bookkeeping.
  std::vector<double> sorted(demands.begin(), demands.end());
  std::sort(sorted.begin(), sorted.end());

  auto quality_at_level = [&](double level) {
    double achieved = 0.0;
    for (double p : sorted) {
      achieved += f.value(std::min(p, level));
    }
    return achieved / potential;
  };

  double level = levels.front();  // current common height of the cut jobs
  double quality = 1.0;
  int iterations = 0;
  std::size_t next_rung = 1;  // index into `levels` of the next level-down target
  bool overshoot = false;
  while (quality > q_target + kQualityTol) {
    ++iterations;
    const double next_level = next_rung < levels.size() ? levels[next_rung] : 0.0;
    ++next_rung;
    level = next_level;
    quality = quality_at_level(level);
    if (level <= 0.0 && quality > q_target + kQualityTol) {
      // Even cutting everything to zero cannot reach the target -- only
      // possible when q_target <= 0; treat as "level 0".
      break;
    }
    if (quality < q_target - kQualityTol) {
      overshoot = true;
      break;
    }
  }

  if (overshoot) {
    // Paper step 5: the cut jobs (p_j > level) all receive the same quality
    //   f(c) = (Q_GE * (F_U + F_C) - F_U) / |C|
    // where U = uncut jobs (p_j <= level) and C = cut jobs.
    double f_uncut = 0.0;
    std::size_t cut_count = 0;
    for (double p : sorted) {
      if (p <= level + kQualityTol) {
        f_uncut += f.value(p);
      } else {
        ++cut_count;
      }
    }
    GE_CHECK(cut_count > 0, "overshoot without cut jobs");
    const double desired =
        (q_target * potential - f_uncut) / static_cast<double>(cut_count);
    const double clamped = std::clamp(desired, 0.0, 1.0);
    level = f.inverse(clamped);
  }

  result.level = level;
  result.iterations = iterations;
  for (std::size_t i = 0; i < n; ++i) {
    result.targets[i] = std::min(demands[i], level);
  }
  result.quality = batch_quality(result.targets, demands, f);
  return result;
}

double cut_level_for_quality(std::span<const double> demands,
                             const quality::QualityFunction& f, double q_target) {
  if (demands.empty()) {
    return 0.0;
  }
  const double max_demand = *std::max_element(demands.begin(), demands.end());
  if (q_target >= 1.0) {
    return max_demand;
  }
  if (q_target <= 0.0) {
    return 0.0;
  }
  double potential = 0.0;
  for (double p : demands) {
    potential += f.value(p);
  }
  auto quality_at = [&](double level) {
    double achieved = 0.0;
    for (double p : demands) {
      achieved += f.value(std::min(p, level));
    }
    return achieved / potential;
  };
  double lo = 0.0;
  double hi = max_demand;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (quality_at(mid) < q_target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace ge::opt
