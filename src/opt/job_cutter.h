// Longest-First (LF) job cutting (Sec. III-B, Fig. 2).
//
// Given a batch of jobs with demands p_j and a concave quality function f,
// the AES mode discards the least quality-efficient *tails* of the longest
// jobs until the batch quality
//
//     Q = sum_j f(c_j) / sum_j f(p_j)
//
// drops to the user-specified level Q_GE.  The paper's iteration levels the
// longest job(s) down to the second-longest, re-evaluates Q, and finishes
// with a closed-form step that assigns every cut job the same quality
// f(c) = (Q_GE (F_U + F_C) - F_U) / |C|.  The net effect is a single demand
// level L with c_j = min(p_j, L); the implementation performs the paper's
// iteration and also exposes a bisection-based solver used for
// cross-validation in tests.
#pragma once

#include <span>
#include <vector>

namespace ge::quality {
class QualityFunction;
}

namespace ge::opt {

struct CutResult {
  // Common demand level of the cut jobs; uncut jobs keep their demand.
  double level = 0.0;
  // Per-job cut targets c_j = min(p_j, level), in input order.
  std::vector<double> targets;
  // Batch quality sum f(c_j) / sum f(p_j) achieved by the targets.
  double quality = 1.0;
  // Number of level-down iterations the LF loop performed.
  int iterations = 0;
  // True when no cutting was required (q_target >= 1 or empty batch).
  bool uncut = false;
};

// Reusable working memory for cut_longest_first.  A scheduler calls the
// cutter once per core per round; routing those calls through one CutScratch
// replaces four vector allocations per call with amortised-free reuse.  The
// result of the last call lives in `result`.
struct CutScratch {
  CutResult result;
  // Internal buffers (distinct demand levels, ascending demands, prefix
  // sums of f over the ascending demands); exposed only for reuse.
  std::vector<double> levels;
  std::vector<double> sorted;
  std::vector<double> prefix;
};

// Runs the paper's Longest-First cutting loop.  `demands` are the original
// processing demands p_j (all positive); q_target is Q_GE in [0, 1].
CutResult cut_longest_first(std::span<const double> demands,
                            const quality::QualityFunction& f, double q_target);

// Allocation-free variant: identical outputs, delivered in scratch.result.
void cut_longest_first(std::span<const double> demands,
                       const quality::QualityFunction& f, double q_target,
                       CutScratch& scratch);

// Bisection on the demand level: smallest L with batch quality >= q_target.
// Mathematically equivalent to cut_longest_first (used to cross-check it).
double cut_level_for_quality(std::span<const double> demands,
                             const quality::QualityFunction& f, double q_target);

// Batch quality of arbitrary targets against their demands.
double batch_quality(std::span<const double> targets, std::span<const double> demands,
                     const quality::QualityFunction& f);

}  // namespace ge::opt
