// Energy-OPT: minimal-energy speed planning for one core (Sec. III-E).
//
// The paper executes the jobs assigned to a core in EDF order with the
// speed schedule of Yao, Demers and Shenker (FOCS'95).  In the GE scheduler
// every planned job is already released (jobs are assigned when they
// arrive), so the YDS optimum reduces to the classic critical-interval
// construction: repeatedly find the prefix of the EDF queue with the highest
// intensity
//
//     S_k = (sum_{j<=k} w_j) / (d_k - t)
//
// run that block at speed max_k S_k, and recurse on the remainder.  Because
// the power-speed curve P = a s^beta is convex, running each critical block
// at its constant intensity minimises energy; block speeds are
// non-increasing over time.
//
// A speed cap (from the core's power cap) can make the plan infeasible; the
// planner then truncates work at deadlines.  The GE scheduler avoids that
// path by running Quality-OPT first, so truncation is only a safety net.
#pragma once

#include <span>

#include "opt/plan.h"

namespace ge::opt {

struct PlanJob {
  workload::Job* job = nullptr;
  double remaining = 0.0;  // units still to execute (after any cutting)
  double deadline = 0.0;   // absolute seconds, > now
};

// Maximum prefix intensity of the EDF queue: the minimal constant speed that
// completes all remaining work by every deadline.  `jobs` must be sorted by
// deadline with deadlines strictly after `now`.  Returns 0 for an empty set.
double required_speed(double now, std::span<const PlanJob> jobs);

// Builds the minimal-energy plan.  Segments never extend past their job's
// deadline; with speed_cap >= required_speed the plan completes every job.
// speed_cap <= 0 yields an empty plan.
ExecutionPlan plan_min_energy(double now, std::span<const PlanJob> jobs,
                              double speed_cap);

}  // namespace ge::opt
