#include "opt/plan.h"

#include <cmath>

#include "power/power_model.h"
#include "util/check.h"
#include "workload/job.h"

namespace ge::opt {

double ExecutionPlan::max_power(const power::PowerModel& pm) const {
  double max_p = 0.0;
  for (const PlanSegment& seg : segments) {
    const double p = pm.power(seg.speed);
    if (p > max_p) {
      max_p = p;
    }
  }
  return max_p;
}

double ExecutionPlan::total_energy(const power::PowerModel& pm) const {
  double energy = 0.0;
  for (const PlanSegment& seg : segments) {
    energy += pm.energy(seg.speed, seg.end - seg.start);
  }
  return energy;
}

double ExecutionPlan::total_units() const {
  double units = 0.0;
  for (const PlanSegment& seg : segments) {
    units += seg.units;
  }
  return units;
}

void ExecutionPlan::validate(double now, double tol) const {
  double cursor = now - tol;
  for (const PlanSegment& seg : segments) {
    GE_CHECK(seg.job != nullptr, "plan segment without a job");
    GE_CHECK(seg.start >= cursor, "plan segments overlap or precede now");
    GE_CHECK(seg.end > seg.start, "plan segment has non-positive duration");
    GE_CHECK(seg.speed > 0.0, "plan segment has non-positive speed");
    GE_CHECK(std::abs(seg.units - seg.speed * (seg.end - seg.start)) <=
                 tol * (1.0 + seg.units),
             "segment units inconsistent with speed * duration");
    GE_CHECK(seg.end <= seg.job->deadline + tol,
             "plan segment runs past its job's deadline");
    cursor = seg.end - tol;
  }
}

}  // namespace ge::opt
