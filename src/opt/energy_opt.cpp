#include "opt/energy_opt.h"

#include <algorithm>

#include "util/check.h"
#include "workload/job.h"

namespace ge::opt {
namespace {

constexpr double kTimeTol = 1e-12;

void check_sorted(double now, std::span<const PlanJob> jobs) {
  double prev = now;
  for (const PlanJob& pj : jobs) {
    GE_CHECK(pj.job != nullptr, "plan job without a job");
    GE_CHECK(pj.remaining >= 0.0, "negative remaining work");
    GE_CHECK(pj.deadline > now + kTimeTol, "plan job already expired");
    GE_CHECK(pj.deadline >= prev - 1e-9, "plan jobs must be EDF-sorted");
    prev = pj.deadline;
  }
}

}  // namespace

double required_speed(double now, std::span<const PlanJob> jobs) {
  check_sorted(now, jobs);
  double cumulative = 0.0;
  double best = 0.0;
  for (const PlanJob& pj : jobs) {
    cumulative += pj.remaining;
    const double intensity = cumulative / (pj.deadline - now);
    if (intensity > best) {
      best = intensity;
    }
  }
  return best;
}

ExecutionPlan plan_min_energy(double now, std::span<const PlanJob> jobs,
                              double speed_cap) {
  check_sorted(now, jobs);
  ExecutionPlan plan;
  if (speed_cap <= 0.0) {
    return plan;
  }
  plan.segments.reserve(jobs.size());

  std::size_t i = 0;
  double t = now;
  const std::size_t n = jobs.size();
  while (i < n) {
    // Critical block: the prefix starting at i with the highest intensity.
    double cumulative = 0.0;
    double best_intensity = 0.0;
    std::size_t best_k = i;
    for (std::size_t k = i; k < n; ++k) {
      cumulative += jobs[k].remaining;
      const double window = jobs[k].deadline - t;
      if (window <= kTimeTol) {
        // Deadline reached while earlier blocks ran (possible only when the
        // cap truncated them); this job gets no time.
        continue;
      }
      const double intensity = cumulative / window;
      if (intensity > best_intensity + 1e-12) {
        best_intensity = intensity;
        best_k = k;
      }
    }
    if (best_intensity <= 0.0) {
      break;  // nothing executable remains
    }
    const double speed = std::min(best_intensity, speed_cap);
    for (std::size_t j = i; j <= best_k; ++j) {
      if (jobs[j].remaining <= 0.0) {
        continue;
      }
      const double deadline = jobs[j].deadline;
      if (t >= deadline - kTimeTol) {
        continue;  // no time left for this job (cap-truncated block)
      }
      double units = jobs[j].remaining;
      double end = t + units / speed;
      if (end > deadline) {
        // Cap makes the block infeasible: truncate at the deadline.
        end = deadline;
        units = speed * (end - t);
      }
      plan.segments.push_back(PlanSegment{jobs[j].job, t, end, speed, units});
      t = end;
    }
    i = best_k + 1;
  }
  return plan;
}

}  // namespace ge::opt
