#include "opt/quality_opt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "quality/quality_function.h"
#include "util/check.h"

namespace ge::opt {
namespace {

constexpr double kTol = 1e-9;

// Equal-marginal water-filling for jobs [l, r] with a total budget, ignoring
// internal prefix constraints.  Writes allocations into x[l..r].
void waterfill(std::span<const AllocJob> jobs, std::size_t l, std::size_t r,
               double budget, const quality::QualityFunction& f,
               std::vector<double>& x) {
  double total_extra = 0.0;
  for (std::size_t j = l; j <= r; ++j) {
    total_extra += jobs[j].max_extra;
  }
  if (budget <= kTol) {
    for (std::size_t j = l; j <= r; ++j) {
      x[j] = 0.0;
    }
    return;
  }
  if (budget >= total_extra - kTol) {
    for (std::size_t j = l; j <= r; ++j) {
      x[j] = jobs[j].max_extra;
    }
    return;
  }
  // Bisection on the marginal-quality threshold theta: each job takes work
  // until its marginal f'(e_j + x_j) falls to theta.
  double theta_hi = 0.0;  // allocates nothing
  double theta_lo = std::numeric_limits<double>::infinity();
  for (std::size_t j = l; j <= r; ++j) {
    theta_hi = std::max(theta_hi, f.derivative(jobs[j].executed));
    theta_lo = std::min(theta_lo, f.derivative(jobs[j].executed + jobs[j].max_extra));
  }
  auto allocated_at = [&](double theta) {
    const double level = f.inverse_derivative(theta);
    double sum = 0.0;
    for (std::size_t j = l; j <= r; ++j) {
      const double want = level - jobs[j].executed;
      sum += std::clamp(want, 0.0, jobs[j].max_extra);
    }
    return sum;
  };
  double lo = theta_lo;
  double hi = theta_hi;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    // Once the midpoint collides with an endpoint the interval cannot
    // shrink further: every later iteration recomputes this same mid and
    // takes this same branch, so hi has reached its final value.  Breaking
    // after the update is therefore bitwise-identical to running out the
    // full iteration count.
    const bool converged = mid == lo || mid == hi;
    if (allocated_at(mid) > budget) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (converged) {
      break;
    }
  }
  const double theta = hi;  // allocated_at(hi) <= budget
  const double level = f.inverse_derivative(theta);
  double used = 0.0;
  for (std::size_t j = l; j <= r; ++j) {
    x[j] = std::clamp(level - jobs[j].executed, 0.0, jobs[j].max_extra);
    used += x[j];
  }
  // Distribute the bisection residual to jobs with slack (keeps the budget
  // fully used; the residual is tiny so optimality is unaffected).
  double residual = budget - used;
  for (std::size_t j = l; j <= r && residual > kTol; ++j) {
    const double slack = jobs[j].max_extra - x[j];
    const double take = std::min(slack, residual);
    x[j] += take;
    residual -= take;
  }
}

// Solves jobs [l, r] given `base` units already committed to earlier prefixes
// and `budget` units available to this range.  capacity(k) is the absolute
// prefix capacity s*(d_k - now) for job index k.
void solve(std::span<const AllocJob> jobs, std::size_t l, std::size_t r, double base,
           double budget, std::span<const double> capacity,
           const quality::QualityFunction& f, std::vector<double>& x) {
  budget = std::max(budget, 0.0);
  waterfill(jobs, l, r, budget, f, x);
  if (l == r) {
    return;
  }
  // Find the most violated internal prefix constraint.
  double worst_violation = kTol;
  std::size_t worst_k = r;
  double prefix = 0.0;
  for (std::size_t k = l; k < r; ++k) {
    prefix += x[k];
    const double allowed = std::max(capacity[k] - base, 0.0);
    const double violation = prefix - allowed;
    if (violation > worst_violation) {
      worst_violation = violation;
      worst_k = k;
    }
  }
  if (worst_k == r) {
    return;  // feasible
  }
  // Pin the worst prefix tight and recurse on both sides.
  const double left_budget = std::max(capacity[worst_k] - base, 0.0);
  solve(jobs, l, worst_k, base, left_budget, capacity, f, x);
  solve(jobs, worst_k + 1, r, base + left_budget, budget - left_budget, capacity, f,
        x);
}

}  // namespace

std::vector<double> maximize_quality(double now, std::span<const AllocJob> jobs,
                                     double speed_cap,
                                     const quality::QualityFunction& f) {
  const std::size_t n = jobs.size();
  std::vector<double> x(n, 0.0);
  if (n == 0 || speed_cap <= 0.0) {
    return x;
  }
  double prev_deadline = -std::numeric_limits<double>::infinity();
  for (const AllocJob& aj : jobs) {
    GE_CHECK(aj.executed >= 0.0, "negative executed work");
    GE_CHECK(aj.max_extra >= 0.0, "negative max_extra");
    GE_CHECK(aj.deadline >= prev_deadline - 1e-9, "jobs must be EDF-sorted");
    prev_deadline = aj.deadline;
  }
  std::vector<double> capacity(n);
  for (std::size_t k = 0; k < n; ++k) {
    capacity[k] = speed_cap * std::max(jobs[k].deadline - now, 0.0);
  }
  solve(jobs, 0, n - 1, 0.0, capacity[n - 1], capacity, f, x);
  return x;
}

double allocation_quality(std::span<const AllocJob> jobs, std::span<const double> extra,
                          const quality::QualityFunction& f) {
  GE_CHECK(jobs.size() == extra.size(), "jobs/extra size mismatch");
  double total = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    total += f.value(jobs[j].executed + extra[j]);
  }
  return total;
}

}  // namespace ge::opt
