// Per-core execution plan: the output of the Energy-OPT planner and the
// input to a simulated core.
//
// A plan is a sequence of non-overlapping constant-speed segments in
// absolute simulation time, one segment per job (jobs run non-preemptively
// in EDF order, Sec. II-A).  Cores execute the plan verbatim until the next
// scheduling round replaces it.
#pragma once

#include <span>
#include <vector>

namespace ge::workload {
struct Job;
}
namespace ge::power {
class PowerModel;
}

namespace ge::opt {

struct PlanSegment {
  workload::Job* job = nullptr;
  double start = 0.0;  // absolute seconds
  double end = 0.0;    // absolute seconds, > start
  double speed = 0.0;  // processing units per second, > 0
  double units = 0.0;  // work credited over [start, end]; == speed*(end-start)
};

struct ExecutionPlan {
  std::vector<PlanSegment> segments;

  bool empty() const noexcept { return segments.empty(); }
  double start() const noexcept { return segments.empty() ? 0.0 : segments.front().start; }
  double end() const noexcept { return segments.empty() ? 0.0 : segments.back().end; }

  // Highest instantaneous power over the plan.
  double max_power(const power::PowerModel& pm) const;

  // Total energy if the plan runs to completion.
  double total_energy(const power::PowerModel& pm) const;

  // Total work across segments.
  double total_units() const;

  // Checks structural invariants: segments ordered and non-overlapping,
  // positive speeds, units consistent with speed * duration, each segment
  // ending no later than its job's deadline (tolerance `tol`).
  void validate(double now, double tol = 1e-6) const;
};

}  // namespace ge::opt
