// Quality-OPT: best partial processing under a speed cap (Sec. III-E).
//
// When a core's power cap cannot sustain the speed its queue requires, the
// paper applies the Quality-OPT step of Tians scheduling (He, Elnikety,
// Sun -- ICDCS'11): choose how much of each job to process so the total
// quality is maximised subject to the core's processing capacity.  For an
// EDF queue with all jobs released at `now` and speed cap `s`, feasibility
// of extra allocations x_j is exactly the nested prefix constraints
//
//     sum_{j<=k} x_j <= s * (d_k - now)        for every k,
//     0 <= x_j <= w_j                          (w_j = remaining target work).
//
// Maximising the separable concave objective sum_j f(e_j + x_j) over this
// polymatroid is solved exactly by marginal water-filling combined with the
// classic tight-prefix decomposition: solve unconstrained, find the most
// violated prefix, pin it tight, recurse left and right.
#pragma once

#include <span>
#include <vector>

namespace ge::quality {
class QualityFunction;
}

namespace ge::opt {

struct AllocJob {
  double executed = 0.0;   // e_j: units already processed
  double max_extra = 0.0;  // w_j: most additional units worth processing
  double deadline = 0.0;   // absolute seconds
};

// Returns the optimal extra allocation x_j (same order as `jobs`).  `jobs`
// must be EDF-sorted.  Deadlines at or before `now` force x_j contributions
// of the corresponding prefix towards zero.  speed_cap <= 0 returns all
// zeros.
std::vector<double> maximize_quality(double now, std::span<const AllocJob> jobs,
                                     double speed_cap,
                                     const quality::QualityFunction& f);

// Total quality sum f(e_j + x_j) of an allocation (helper for tests).
double allocation_quality(std::span<const AllocJob> jobs,
                          std::span<const double> extra,
                          const quality::QualityFunction& f);

}  // namespace ge::opt
