#include "opt/yds.h"

#include <algorithm>

#include "power/power_model.h"
#include "util/check.h"

namespace ge::opt {
namespace {

constexpr double kTimeTol = 1e-12;

struct Critical {
  double t1 = 0.0;
  double t2 = 0.0;
  double intensity = -1.0;
};

// Finds the maximum-intensity interval.  t1 ranges over release points and
// t2 over deadline points (a classic property of the YDS optimum).  One
// deadline-sort per round, then an O(n) sweep per distinct release:
// O(n^2) per round overall.
Critical find_critical(const std::vector<YdsJob>& jobs) {
  Critical best;
  std::vector<double> releases;
  releases.reserve(jobs.size());
  for (const YdsJob& job : jobs) {
    releases.push_back(job.release);
  }
  std::sort(releases.begin(), releases.end());
  releases.erase(std::unique(releases.begin(), releases.end()), releases.end());

  std::vector<const YdsJob*> by_deadline;
  by_deadline.reserve(jobs.size());
  for (const YdsJob& job : jobs) {
    by_deadline.push_back(&job);
  }
  std::sort(by_deadline.begin(), by_deadline.end(),
            [](const YdsJob* a, const YdsJob* b) { return a->deadline < b->deadline; });

  for (double t1 : releases) {
    double cumulative = 0.0;
    for (std::size_t i = 0; i < by_deadline.size(); ++i) {
      const YdsJob* job = by_deadline[i];
      if (job->release >= t1 - kTimeTol) {
        cumulative += job->work;
      }
      // Only evaluate at the last job sharing this deadline.
      if (i + 1 < by_deadline.size() &&
          by_deadline[i + 1]->deadline <= job->deadline + kTimeTol) {
        continue;
      }
      const double t2 = job->deadline;
      if (t2 <= t1 + kTimeTol || cumulative <= 0.0) {
        continue;
      }
      const double intensity = cumulative / (t2 - t1);
      if (intensity > best.intensity + 1e-12) {
        best = Critical{t1, t2, intensity};
      }
    }
  }
  return best;
}

}  // namespace

double YdsSchedule::total_work() const {
  double total = 0.0;
  for (const YdsBlock& block : blocks) {
    total += block.work;
  }
  return total;
}

double YdsSchedule::max_speed() const {
  double best = 0.0;
  for (const YdsBlock& block : blocks) {
    best = std::max(best, block.speed);
  }
  return best;
}

double YdsSchedule::energy(const power::PowerModel& pm) const {
  double total = 0.0;
  for (const YdsBlock& block : blocks) {
    total += pm.power(block.speed) * block.duration;
  }
  return total;
}

YdsSchedule yds_schedule(std::span<const YdsJob> input) {
  std::vector<YdsJob> jobs;
  jobs.reserve(input.size());
  for (const YdsJob& job : input) {
    if (job.work <= 0.0) {
      continue;
    }
    GE_CHECK(job.deadline > job.release + kTimeTol,
             "YDS job needs a positive execution window");
    jobs.push_back(job);
  }

  YdsSchedule schedule;
  while (!jobs.empty()) {
    const Critical crit = find_critical(jobs);
    GE_CHECK(crit.intensity > 0.0, "no critical interval found");
    const double t1 = crit.t1;
    const double t2 = crit.t2;

    YdsBlock block;
    block.duration = t2 - t1;
    block.speed = crit.intensity;

    // Remove the jobs contained in [t1, t2] and excise the interval from
    // the timeline for the survivors.
    auto collapse = [t1, t2](double t) {
      if (t <= t1 + kTimeTol) {
        return t;
      }
      if (t < t2) {
        return t1;
      }
      return t - (t2 - t1);
    };
    std::vector<YdsJob> remaining;
    remaining.reserve(jobs.size());
    for (const YdsJob& job : jobs) {
      const bool contained =
          job.release >= t1 - kTimeTol && job.deadline <= t2 + kTimeTol;
      if (contained) {
        block.work += job.work;
        ++block.jobs;
        continue;
      }
      YdsJob shrunk = job;
      shrunk.release = collapse(job.release);
      shrunk.deadline = collapse(job.deadline);
      GE_CHECK(shrunk.deadline > shrunk.release + kTimeTol,
               "collapse produced an empty window");
      remaining.push_back(shrunk);
    }
    GE_CHECK(block.jobs > 0, "critical interval contained no job");
    schedule.blocks.push_back(block);
    jobs = std::move(remaining);
  }
  return schedule;
}

double yds_min_energy(std::span<const YdsJob> jobs, const power::PowerModel& pm) {
  return yds_schedule(jobs).energy(pm);
}

}  // namespace ge::opt
