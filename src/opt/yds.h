// Full Yao-Demers-Shenker (FOCS'95) minimal-energy speed scheduling for
// preemptive jobs with arbitrary release times and deadlines.
//
// The GE scheduler itself only needs the restricted all-released case
// (energy_opt.h); the full algorithm serves two purposes here:
//   * it cross-checks the restricted planner (with every job released at
//     plan time and agreeable deadlines the two must produce the same
//     energy), and
//   * it powers the idealised offline reference of abl_optimality_gap: a
//     clairvoyant fluid relaxation of the whole trace that GE's online,
//     non-preemptive, partitioned schedule can be compared against.
//
// Classic critical-interval construction: repeatedly find the interval
// [t1, t2] maximising the intensity
//
//     g(t1, t2) = (sum of work of jobs with [r_j, d_j] subseteq [t1, t2])
//                 / (t2 - t1),
//
// schedule those jobs at speed g over the interval, excise the interval
// from the timeline, and recurse on the remaining jobs.  Candidate t1/t2
// are release/deadline points, so each round costs O(n^2) with the
// per-release sweep used below.
#pragma once

#include <span>
#include <vector>

namespace ge::power {
class PowerModel;
}

namespace ge::opt {

struct YdsJob {
  double release = 0.0;
  double deadline = 0.0;  // > release
  double work = 0.0;      // units; jobs with zero work are ignored
};

struct YdsBlock {
  double duration = 0.0;  // seconds of (collapsed) timeline
  double speed = 0.0;     // units/second
  double work = 0.0;      // speed * duration
  std::size_t jobs = 0;   // number of jobs completed in this block
};

struct YdsSchedule {
  // Critical blocks in construction order; speeds are non-increasing.
  std::vector<YdsBlock> blocks;

  double total_work() const;
  double max_speed() const;
  // Energy of executing the blocks on one machine with the given model.
  double energy(const power::PowerModel& pm) const;
};

// Computes the YDS schedule.  Jobs may be in any order.
YdsSchedule yds_schedule(std::span<const YdsJob> jobs);

// Minimal energy of the instance under the power model (convenience).
double yds_min_energy(std::span<const YdsJob> jobs, const power::PowerModel& pm);

}  // namespace ge::opt
