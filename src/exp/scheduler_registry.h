// Self-registering scheduler plugin registry.
//
// A scheduler is one translation unit: it defines a SchedulerPlugin --
// canonical name, aliases, parameter contract, factory -- and hands it to
// the registry at static-initialisation time through a SchedulerRegistrar
// (or the GE_REGISTER_SCHEDULER convenience macro).  SchedulerSpec::parse,
// display_name and make_scheduler are thin lookups over this table, so
// adding an algorithm touches no central switch: drop a file next to the
// built-ins (src/exp/schedulers/), or register from your own binary's
// translation unit (examples/custom_scheduler.cpp is the worked tutorial;
// docs/SCHEDULERS.md is the handbook).
//
// Registration happens during static init, strictly before main(); lookups
// happen after.  The registry is therefore read-only at run time and safe
// to consult from the experiment engine's worker threads without locking.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ge::sched {
class Scheduler;
struct SchedulerEnv;
}  // namespace ge::sched

namespace ge::power {
class DiscreteSpeedTable;
}

namespace ge::exp {

struct ExperimentConfig;
struct SchedulerSpec;

struct SchedulerPlugin {
  // Canonical CLI name ("GE", "GE-NoComp", "QOA", ...).  Lookups are
  // case-insensitive; display_name() and docs use this exact spelling.
  std::string name;
  // Alternate spellings ("GE-NC" for "GE-NoComp"), also case-insensitive.
  std::vector<std::string> aliases;
  // One-line description for ge_list_schedulers / docs validation.
  std::string summary;
  // Human-readable parameter contract, "" when the scheduler takes none
  // (e.g. "q > 0: multiplier on the OA speed (default 1.5)").
  std::string params_help;
  // Accepted bracket-parameter count for the "NAME[p1,p2]" grammar.
  std::size_t min_params = 0;
  std::size_t max_params = 0;

  // Builds the scheduler (required).  `table` may be nullptr (continuous
  // DVFS) and must outlive the scheduler when provided.
  std::function<std::unique_ptr<sched::Scheduler>(
      const SchedulerSpec& spec, const sched::SchedulerEnv& env,
      const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table)>
      factory;

  // Optional: validates and applies spec.params right after parse() stores
  // them (set defaults, copy into dedicated spec fields, abort on domain
  // errors).  Called with parse()'s result even when no bracket was given.
  std::function<void(SchedulerSpec& spec)> apply_params;

  // Optional: canonical display of a spec; must round-trip through parse().
  // Default: the canonical name, plus "[p1,p2]" when params are present.
  std::function<std::string(const SchedulerSpec& spec)> display;

  // Optional: effective server power budget (BE-P scales it).  Default:
  // cfg.power_budget.
  std::function<double(const SchedulerSpec& spec, const ExperimentConfig& cfg)>
      effective_budget;
};

class SchedulerRegistry {
 public:
  // Meyers singleton: safe to use from any translation unit's static init.
  static SchedulerRegistry& instance();

  // Registers a plugin.  Checked errors: missing name/factory, duplicate
  // name or alias (case-insensitive), min_params > max_params.
  void add(SchedulerPlugin plugin);

  // Case-insensitive lookup by canonical name or alias; nullptr if absent.
  const SchedulerPlugin* find(std::string_view key) const;

  // Every plugin in canonical-name order (stable across runs, used by
  // ge_list_schedulers and the docs catalog check).
  std::vector<const SchedulerPlugin*> plugins() const;

  std::size_t size() const noexcept { return plugins_.size(); }

 private:
  SchedulerRegistry() = default;

  // unique_ptr keeps plugin addresses stable: SchedulerSpec holds one.
  std::vector<std::unique_ptr<SchedulerPlugin>> plugins_;
};

// Registers at static init: `static const SchedulerRegistrar r{plugin};`.
struct SchedulerRegistrar {
  explicit SchedulerRegistrar(SchedulerPlugin plugin);
};

// One-liner for plugin translation units: `fn` is a free function returning
// the SchedulerPlugin to register.
#define GE_REGISTER_SCHEDULER(fn) \
  static const ::ge::exp::SchedulerRegistrar ge_scheduler_registrar_##fn { fn() }

}  // namespace ge::exp
