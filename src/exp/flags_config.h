// Command-line binding for ExperimentConfig: every field of the experiment
// configuration is overridable with a --flag, shared by the sweep tool and
// available to downstream binaries.
#pragma once

#include "exp/config.h"
#include "exp/experiment_engine.h"
#include "util/flags.h"

namespace ge::exp {

// Applies recognised flags onto `cfg` (unrecognised flags are ignored):
//   --rate R --seconds S --seed N --cores M --budget W --qge Q
//   --quality-family exponential|linear|powerlaw --quality-c C
//   --alpha A --xmin X --xmax X
//   --deadline MS --deadline-max MS
//   --burst RATIO --burst-fraction F --burst-dwell S
//   --quantum S --counter N --critical-load R --load-window S
//   --monitor-window N --discrete [--step-ghz G --max-ghz G]
//   --static-power W --failure-time S --failure-cores K --hetero-spread X
ExperimentConfig apply_flags(ExperimentConfig cfg, const util::Flags& flags);

// Parses the engine execution flags shared by every figure binary and
// ge_sweep (previously duplicated in each):
//   --jobs N --progress[=bool]
//   --trace F --trace-format jsonl|chrome --metrics F
//   --report DIR   derived-analysis report directory (docs/OBSERVABILITY.md)
//   --watchdog     online invariant watchdog (default: on when --report is)
//   --profile      wall-clock kernel self-profiling spans (nondeterministic
//                  prof.* metrics; default off, keeping metrics files
//                  byte-identical for any --jobs)
ExecutionOptions parse_execution_options(const util::Flags& flags);

}  // namespace ge::exp
