#include "exp/scheduler_registry.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "util/check.h"

namespace ge::exp {
namespace {

std::string upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

// Case-folded key -> plugin.  Lives beside the plugin vector inside the
// singleton's translation unit; a function-local map keeps the index and
// the Meyers singleton construction-ordered under static init.
std::map<std::string, const SchedulerPlugin*>& index_map() {
  static std::map<std::string, const SchedulerPlugin*> index;
  return index;
}

}  // namespace

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry registry;
  return registry;
}

void SchedulerRegistry::add(SchedulerPlugin plugin) {
  GE_CHECK(!plugin.name.empty(), "scheduler plugin has no name");
  GE_CHECK(plugin.factory != nullptr,
           "scheduler plugin has no factory: " + plugin.name);
  GE_CHECK(plugin.min_params <= plugin.max_params,
           "scheduler plugin min_params > max_params: " + plugin.name);
  plugins_.push_back(std::make_unique<SchedulerPlugin>(std::move(plugin)));
  const SchedulerPlugin* stored = plugins_.back().get();
  auto& index = index_map();
  const auto claim = [&](const std::string& key) {
    GE_CHECK(!key.empty(), "scheduler plugin has an empty alias: " + stored->name);
    const bool inserted = index.emplace(upper(key), stored).second;
    GE_CHECK(inserted, "duplicate scheduler name/alias: " + key);
  };
  claim(stored->name);
  for (const std::string& alias : stored->aliases) {
    claim(alias);
  }
}

const SchedulerPlugin* SchedulerRegistry::find(std::string_view key) const {
  const auto& index = index_map();
  const auto it = index.find(upper(key));
  return it == index.end() ? nullptr : it->second;
}

std::vector<const SchedulerPlugin*> SchedulerRegistry::plugins() const {
  std::vector<const SchedulerPlugin*> out;
  out.reserve(plugins_.size());
  for (const auto& plugin : plugins_) {
    out.push_back(plugin.get());
  }
  std::sort(out.begin(), out.end(),
            [](const SchedulerPlugin* a, const SchedulerPlugin* b) {
              return upper(a->name) < upper(b->name);
            });
  return out;
}

SchedulerRegistrar::SchedulerRegistrar(SchedulerPlugin plugin) {
  SchedulerRegistry::instance().add(std::move(plugin));
}

}  // namespace ge::exp
