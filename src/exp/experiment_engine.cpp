#include "exp/experiment_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>

#include "cluster/cluster.h"
#include "obs/analysis/report.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "workload/trace.h"

namespace ge::exp {
namespace {

// Lazily-generated shared trace of one plan point.  once_flag makes the
// first worker to reach the point generate the trace while the others
// block, so every task of the point replays identical randomness no matter
// which worker gets there first.
struct TraceSlot {
  std::once_flag once;
  workload::Trace trace;
};

// Live progress shared by the workers; guarded by its own mutex so slow
// stderr writes never serialise the simulations themselves.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t total, bool enabled)
      : total_(total), enabled_(enabled),
        start_(std::chrono::steady_clock::now()) {}

  void task_done(double sim_seconds) {
    if (!enabled_) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++done_;
    sim_seconds_ += sim_seconds;
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    std::fprintf(stderr, "\r[engine] %zu/%zu tasks | %.0f sim-s | %.1f sim-s/s ",
                 done_, total_, sim_seconds_,
                 wall > 0.0 ? sim_seconds_ / wall : 0.0);
    if (done_ == total_) {
      std::fprintf(stderr, "\n");
    }
    std::fflush(stderr);
  }

 private:
  std::mutex mu_;
  std::size_t total_;
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
  std::size_t done_ = 0;
  double sim_seconds_ = 0.0;
};

obs::TraceTaskInfo task_info(std::size_t index, const RunTask& task) {
  obs::TraceTaskInfo info;
  info.task = index;
  info.scheduler = task.spec.display_name();
  info.arrival_rate = task.config.arrival_rate;
  info.cores = task.config.cores;
  info.power_budget = effective_budget(task.spec, task.config);
  info.power_model_json = task.config.power_model().describe_json();
  return info;
}

// Serialises the per-task telemetry in task order (the only order that keeps
// the output independent of worker scheduling).
void write_telemetry(const obs::TelemetryOptions& opts,
                     const std::vector<RunTask>& tasks,
                     const std::vector<std::unique_ptr<obs::RunTelemetry>>& telem) {
  if (!opts.metrics_path.empty()) {
    obs::MetricsRegistry merged;
    for (const auto& t : telem) {
      merged.merge(t->metrics);
    }
    std::ofstream out(opts.metrics_path);
    GE_CHECK(out.good(), "cannot open --metrics output file");
    merged.write_json(out);
  }
  if (!opts.trace_path.empty()) {
    std::ofstream out(opts.trace_path);
    GE_CHECK(out.good(), "cannot open --trace output file");
    obs::TraceWriter writer(out, opts.trace_format);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      writer.append_task(task_info(i, tasks[i]), telem[i]->trace);
    }
    writer.close();
  }
}

// Renders the --report directory from the in-memory trace buffers.  Running
// in-process, the analysis sees the exact per-core power models and the
// exact energy accrual terms, so the residency-vs-reported cross-check holds
// to 1e-9 relative (ReportOptions default); tasks are added in task order,
// so report bytes inherit the engine's any---jobs determinism.
void write_report(const std::string& dir, const std::vector<RunTask>& tasks,
                  const std::vector<std::unique_ptr<obs::RunTelemetry>>& telem,
                  const std::vector<RunResult>& results) {
  obs::analysis::ReportWriter writer;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const RunTask& task = tasks[i];
    obs::analysis::TaskInput input;
    input.info = task_info(i, task);
    input.buffer = &telem[i]->trace;
    for (const cluster::NodeSpec& node :
         task.config.cluster_node_specs(input.info.power_budget)) {
      input.models.push_back(node.core_models);
    }
    input.reported_energy_j = results[i].energy;
    writer.add_task(input);
  }
  writer.write_directory(dir);
}

}  // namespace

std::size_t ExperimentPlan::add(ExperimentConfig config, SchedulerSpec spec,
                                std::size_t point) {
  num_points_ = std::max(num_points_, point + 1);
  tasks_.push_back(RunTask{std::move(config), std::move(spec), point});
  return tasks_.size() - 1;
}

std::size_t ExperimentPlan::add_isolated(ExperimentConfig config,
                                         SchedulerSpec spec) {
  return add(std::move(config), std::move(spec), num_points_);
}

ExperimentEngine::ExperimentEngine(ExecutionOptions options)
    : options_(options) {}

std::size_t ExperimentEngine::effective_jobs(std::size_t tasks) const noexcept {
  const std::size_t requested =
      options_.jobs == 0 ? util::ThreadPool::default_concurrency() : options_.jobs;
  return std::max<std::size_t>(1, std::min(requested, tasks));
}

std::vector<RunResult> ExperimentEngine::run(const ExperimentPlan& plan) const {
  const std::vector<RunTask>& tasks = plan.tasks();
  std::vector<RunResult> results(tasks.size());
  if (tasks.empty()) {
    return results;
  }

  // The first task of each point defines the point's trace; later tasks
  // must describe the same workload or the "shared trace" pairing is a lie.
  std::vector<const RunTask*> point_owner(plan.num_points(), nullptr);
  for (const RunTask& task : tasks) {
    const RunTask*& owner = point_owner[task.point];
    if (owner == nullptr) {
      owner = &task;
      continue;
    }
    GE_CHECK(task.config.seed == owner->config.seed &&
                 task.config.duration == owner->config.duration &&
                 task.config.arrival_rate == owner->config.arrival_rate &&
                 task.config.max_jobs == owner->config.max_jobs,
             "tasks sharing a plan point must share the workload "
             "(seed/duration/arrival_rate/max_jobs mismatch)");
  }

  std::vector<std::unique_ptr<TraceSlot>> trace_cache(plan.num_points());
  for (auto& slot : trace_cache) {
    slot = std::make_unique<TraceSlot>();
  }

  const bool want_telemetry = options_.telemetry.enabled();
#ifdef GE_NO_TELEMETRY
  GE_CHECK(!want_telemetry,
           "telemetry output requested, but this binary was built with "
           "-DGE_TELEMETRY=OFF");
#endif
  std::vector<std::unique_ptr<obs::RunTelemetry>> telem(
      want_telemetry ? tasks.size() : 0);
  for (auto& t : telem) {
    t = std::make_unique<obs::RunTelemetry>();
    // Reports and the watchdog both consume trace events, so either implies
    // event capture even when no --trace file was requested.
    t->want_trace = !options_.telemetry.trace_path.empty() ||
                    !options_.telemetry.report_dir.empty() ||
                    options_.telemetry.watchdog;
    t->want_watchdog = options_.telemetry.watchdog;
    if (options_.telemetry.profile) {
      t->enable_profiling();
    }
  }

  auto run_task = [&](std::size_t i) {
    const RunTask& task = tasks[i];
    if (task.config.stream) {
      // Streaming tasks generate their own workload on the fly (bounded
      // memory); the generator replays the exact stream the shared trace
      // would materialise, so point pairing still compares identical
      // randomness.
      results[i] = run_simulation_stream(task.config, task.spec, nullptr,
                                         want_telemetry ? telem[i].get() : nullptr);
      return;
    }
    TraceSlot& slot = *trace_cache[task.point];
    std::call_once(slot.once, [&] {
      const ExperimentConfig& cfg = point_owner[task.point]->config;
      slot.trace = workload::Trace::generate(cfg.workload_spec(), cfg.duration,
                                             cfg.max_jobs);
    });
    results[i] = run_simulation(task.config, task.spec, slot.trace, nullptr,
                                want_telemetry ? telem[i].get() : nullptr);
  };

  ProgressMeter meter(tasks.size(), options_.progress);
  const std::size_t jobs = effective_jobs(tasks.size());
  if (jobs == 1) {
    // Inline serial path: no pool, easier debugging, and the reference
    // ordering the determinism tests compare the parallel path against.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      run_task(i);
      meter.task_done(tasks[i].config.duration);
    }
  } else {
    util::ThreadPool pool(jobs);
    pool.parallel_for(tasks.size(), [&](std::size_t i) {
      run_task(i);
      meter.task_done(tasks[i].config.duration);
    });
  }

  if (want_telemetry) {
    write_telemetry(options_.telemetry, tasks, telem);
    if (!options_.telemetry.report_dir.empty()) {
      write_report(options_.telemetry.report_dir, tasks, telem, results);
    }
  }
  return results;
}

std::vector<RunResult> run_plan(const ExperimentPlan& plan,
                                const ExecutionOptions& exec) {
  return ExperimentEngine(exec).run(plan);
}

}  // namespace ge::exp
