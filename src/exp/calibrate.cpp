#include "exp/calibrate.h"

#include "exp/runner.h"
#include "util/check.h"

namespace ge::exp {
namespace {

template <typename MakeSpec>
CalibrationResult bisect(const ExperimentConfig& cfg, double lo, double hi,
                         int iterations, MakeSpec make_spec) {
  GE_CHECK(lo < hi, "invalid calibration bracket");
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  CalibrationResult result;
  auto quality_at = [&](double value) {
    ++result.evaluations;
    return run_simulation(cfg, make_spec(value), trace).quality;
  };
  // If the upper end cannot reach the target, return it (best effort).
  double hi_quality = quality_at(hi);
  if (hi_quality < cfg.q_ge) {
    result.value = hi;
    result.quality = hi_quality;
    return result;
  }
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (quality_at(mid) >= cfg.q_ge) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.value = hi;
  result.quality = quality_at(hi);
  return result;
}

}  // namespace

CalibrationResult calibrate_budget_scale(const ExperimentConfig& cfg, double lo,
                                         double hi, int iterations) {
  return bisect(cfg, lo, hi, iterations, [](double scale) {
    SchedulerSpec spec = SchedulerSpec::parse("BE-P");
    spec.budget_scale = scale;
    return spec;
  });
}

CalibrationResult calibrate_speed_cap(const ExperimentConfig& cfg, double lo_ghz,
                                      double hi_ghz, int iterations) {
  return bisect(cfg, lo_ghz, hi_ghz, iterations, [](double ghz) {
    SchedulerSpec spec = SchedulerSpec::parse("BE-S");
    spec.speed_cap_ghz = ghz;
    return spec;
  });
}

}  // namespace ge::exp
