#include "exp/flags_config.h"

#include <unistd.h>

#include "util/check.h"

namespace ge::exp {

ExperimentConfig apply_flags(ExperimentConfig cfg, const util::Flags& flags) {
  cfg.arrival_rate = flags.get_double("rate", cfg.arrival_rate);
  cfg.duration = flags.get_double("seconds", cfg.duration);
  cfg.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.cores = static_cast<std::size_t>(
      flags.get_int("cores", static_cast<std::int64_t>(cfg.cores)));
  cfg.power_budget = flags.get_double("budget", cfg.power_budget);
  cfg.q_ge = flags.get_double("qge", cfg.q_ge);

  const std::string family = flags.get_string("quality-family", "");
  if (family == "linear") {
    cfg.quality_family = QualityFamily::kLinear;
  } else if (family == "powerlaw") {
    cfg.quality_family = QualityFamily::kPowerLaw;
  } else if (family == "exponential") {
    cfg.quality_family = QualityFamily::kExponential;
  } else {
    GE_CHECK(family.empty(), "unknown quality family: " + family);
  }
  cfg.quality_c = flags.get_double("quality-c", cfg.quality_c);

  cfg.demand_alpha = flags.get_double("alpha", cfg.demand_alpha);
  cfg.demand_min = flags.get_double("xmin", cfg.demand_min);
  cfg.demand_max = flags.get_double("xmax", cfg.demand_max);

  // Deadlines are given in milliseconds on the command line.
  cfg.deadline_interval =
      flags.get_double("deadline", cfg.deadline_interval * 1000.0) / 1000.0;
  cfg.deadline_interval_max = std::max(
      cfg.deadline_interval,
      flags.get_double("deadline-max", cfg.deadline_interval_max * 1000.0) / 1000.0);

  cfg.burst_peak_to_mean = flags.get_double("burst", cfg.burst_peak_to_mean);
  cfg.burst_fraction = flags.get_double("burst-fraction", cfg.burst_fraction);
  cfg.burst_dwell = flags.get_double("burst-dwell", cfg.burst_dwell);

  cfg.quantum = flags.get_double("quantum", cfg.quantum);
  cfg.counter_threshold = static_cast<int>(
      flags.get_int("counter", cfg.counter_threshold));
  cfg.critical_load = flags.get_double("critical-load", cfg.critical_load);
  cfg.load_window = flags.get_double("load-window", cfg.load_window);
  cfg.monitor_window = static_cast<std::size_t>(
      flags.get_int("monitor-window", static_cast<std::int64_t>(cfg.monitor_window)));

  cfg.discrete_speeds = flags.get_bool("discrete", cfg.discrete_speeds);
  cfg.discrete_step_ghz = flags.get_double("step-ghz", cfg.discrete_step_ghz);
  cfg.discrete_max_ghz = flags.get_double("max-ghz", cfg.discrete_max_ghz);

  cfg.static_power_per_core = flags.get_double("static-power", cfg.static_power_per_core);
  cfg.hetero_spread = flags.get_double("hetero-spread", cfg.hetero_spread);
  cfg.failure_time = flags.get_double("failure-time", cfg.failure_time);
  cfg.failure_cores = static_cast<std::size_t>(
      flags.get_int("failure-cores", static_cast<std::int64_t>(cfg.failure_cores)));

  // Cluster shape (--servers 1 is the paper's single-server setup).
  cfg.num_servers = static_cast<std::size_t>(
      flags.get_int("servers", static_cast<std::int64_t>(cfg.num_servers)));
  const std::string dispatch = flags.get_string("dispatch", "");
  if (!dispatch.empty()) {
    cfg.dispatch = cluster::parse_dispatch_policy(dispatch);
  }
  for (double n : flags.get_double_list("server-cores", {})) {
    cfg.server_cores.push_back(static_cast<std::size_t>(n));
  }
  cfg.server_power_scale =
      flags.get_double_list("server-power-scale", cfg.server_power_scale);
  cfg.server_max_ghz = flags.get_double_list("server-max-ghz", cfg.server_max_ghz);

  // Streaming replay controls (docs/CLI.md, "Streaming replay").
  cfg.stream = flags.get_bool("stream", cfg.stream);
  cfg.max_jobs = static_cast<std::uint64_t>(
      flags.get_int("max-jobs", static_cast<std::int64_t>(cfg.max_jobs)));
  const std::string queue = flags.get_string("event-queue", "");
  if (!queue.empty()) {
    cfg.event_queue = sim::parse_event_queue_kind(queue);
  }
  return cfg;
}

ExecutionOptions parse_execution_options(const util::Flags& flags) {
  ExecutionOptions exec;
  exec.jobs = static_cast<std::size_t>(flags.get_int("jobs", 0));
  // Progress goes to stderr; default it on only for interactive runs so CI
  // logs and `2> file` captures stay clean.
  exec.progress = flags.get_bool("progress", isatty(STDERR_FILENO) != 0);
  exec.telemetry.trace_path = flags.get_string("trace", "");
  exec.telemetry.trace_format =
      obs::parse_trace_format(flags.get_string("trace-format", "jsonl"));
  exec.telemetry.metrics_path = flags.get_string("metrics", "");
  exec.telemetry.report_dir = flags.get_string("report", "");
  // A report without the watchdog would silently drop the invariant section;
  // opt out explicitly with --watchdog false if the overhead matters.
  exec.telemetry.watchdog =
      flags.get_bool("watchdog", !exec.telemetry.report_dir.empty());
  exec.telemetry.profile = flags.get_bool("profile", false);
  return exec;
}

}  // namespace ge::exp
