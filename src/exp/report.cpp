#include "exp/report.h"

#include <cstdio>
#include <sstream>

namespace ge::exp {
namespace {

void json_field(std::ostringstream& os, const char* key, double value,
                bool* first) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  os << (*first ? "" : ", ") << '"' << key << "\": " << buf;
  *first = false;
}

void json_field(std::ostringstream& os, const char* key, std::uint64_t value,
                bool* first) {
  os << (*first ? "" : ", ") << '"' << key << "\": " << value;
  *first = false;
}

}  // namespace

std::string summarize(const RunResult& r, const ExperimentConfig& cfg) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "scheduler      : %s\n"
      "workload       : %.0f req/s for %.0f s (%llu requests)\n"
      "quality        : %.4f (target Q_GE = %.2f)\n"
      "energy         : %.1f J dynamic (%.1f W avg, budget %.0f W)\n"
      "outcomes       : %llu completed, %llu partial, %llu dropped\n"
      "AES-mode share : %.1f%%\n"
      "response (ms)  : mean %.1f, p50 %.1f, p95 %.1f, p99 %.1f\n"
      "busy speed     : %.2f GHz mean, %.4f GHz^2 variance\n",
      r.scheduler.c_str(), r.arrival_rate, r.duration,
      static_cast<unsigned long long>(r.released), r.quality, cfg.q_ge, r.energy,
      r.avg_power, cfg.power_budget, static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.partial),
      static_cast<unsigned long long>(r.dropped), r.aes_fraction * 100.0,
      r.mean_response_ms, r.p50_response_ms, r.p95_response_ms, r.p99_response_ms,
      r.avg_speed_ghz, r.speed_variance);
  std::string out = buf;
  if (r.num_servers > 1) {
    std::snprintf(buf, sizeof(buf),
                  "cluster        : %llu servers, %s dispatch "
                  "(energy CoV %.3f, load CoV %.3f)\n",
                  static_cast<unsigned long long>(r.num_servers),
                  r.dispatch.c_str(), r.server_energy_cov, r.server_load_cov);
    out += buf;
  }
  return out;
}

std::string to_json(const RunResult& r) {
  std::ostringstream os;
  bool first = true;
  os << '{';
  os << "\"scheduler\": \"" << r.scheduler << '"';
  first = false;
  json_field(os, "arrival_rate", r.arrival_rate, &first);
  json_field(os, "duration_s", r.duration, &first);
  json_field(os, "quality", r.quality, &first);
  json_field(os, "energy_j", r.energy, &first);
  json_field(os, "static_energy_j", r.static_energy, &first);
  json_field(os, "avg_power_w", r.avg_power, &first);
  json_field(os, "mean_response_ms", r.mean_response_ms, &first);
  json_field(os, "p50_response_ms", r.p50_response_ms, &first);
  json_field(os, "p95_response_ms", r.p95_response_ms, &first);
  json_field(os, "p99_response_ms", r.p99_response_ms, &first);
  json_field(os, "aes_fraction", r.aes_fraction, &first);
  json_field(os, "avg_speed_ghz", r.avg_speed_ghz, &first);
  json_field(os, "speed_variance", r.speed_variance, &first);
  json_field(os, "busy_fraction", r.busy_fraction, &first);
  json_field(os, "energy_cov", r.energy_cov, &first);
  json_field(os, "released", r.released, &first);
  json_field(os, "completed", r.completed, &first);
  json_field(os, "partial", r.partial, &first);
  json_field(os, "dropped", r.dropped, &first);
  json_field(os, "rounds", r.rounds, &first);
  json_field(os, "wf_rounds", r.wf_rounds, &first);
  json_field(os, "es_rounds", r.es_rounds, &first);
  json_field(os, "num_servers", r.num_servers, &first);
  os << ", \"dispatch\": \"" << r.dispatch << '"';
  json_field(os, "server_energy_cov", r.server_energy_cov, &first);
  json_field(os, "server_load_cov", r.server_load_cov, &first);
  os << '}';
  return os.str();
}

}  // namespace ge::exp
