// Run timeline: a sampled time series of server state over one simulation.
//
// Each point records instantaneous total power, the monitored quality, how
// many cores are busy, the scheduler's backlog, and the GE execution mode.
// Timelines make the scheduler's dynamics observable (compensation episodes,
// ES<->WF switches, burst responses) and export to CSV for plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ge::exp {

struct TimelinePoint {
  double time = 0.0;
  double total_power = 0.0;     // W
  double quality = 1.0;         // monitored quality at sample time
  int busy_cores = 0;
  std::size_t backlog = 0;      // scheduler waiting-queue length
  int mode = -1;                // 0 = AES, 1 = BQ, -1 = not applicable
};

struct Timeline {
  double interval = 0.0;  // sampling period (s)
  std::vector<TimelinePoint> points;

  bool empty() const noexcept { return points.empty(); }
  std::string to_csv() const;
  void save_csv(const std::string& path) const;

  // Highest sampled total power (useful to confirm the budget holds).
  double peak_power() const;
  // Share of samples in BQ mode (-1-mode samples excluded).
  double bq_share() const;
};

}  // namespace ge::exp
