// Result reporting helpers shared by examples and downstream tooling:
// a human-readable summary and a machine-readable JSON record per run.
#pragma once

#include <string>

#include "exp/runner.h"

namespace ge::exp {

// Multi-line human-readable summary (the quickstart format).
std::string summarize(const RunResult& result, const ExperimentConfig& cfg);

// One flat JSON object with every RunResult field.  Stable key names; no
// external JSON dependency needed for this fixed schema.
std::string to_json(const RunResult& result);

}  // namespace ge::exp
