// Simulation runner: wires workload -> scheduler -> server -> metrics and
// executes one experiment end to end.
//
// The workload is materialised as a Trace up front so that every scheduler
// compared at the same sweep point sees byte-identical randomness.  The run
// releases arrivals for `duration` seconds, drains until every released job
// settles (each job has a deadline event, so the drain is bounded by the
// deadline window), and then aggregates the paper's metrics.
#pragma once

#include <cstdint>
#include <string>

#include "exp/config.h"
#include "exp/scheduler_spec.h"
#include "workload/trace.h"

namespace ge::obs {
struct RunTelemetry;
}

namespace ge::exp {

struct RunResult {
  std::string scheduler;
  double arrival_rate = 0.0;
  double duration = 0.0;  // arrival horizon (s)

  // Paper metrics.
  double quality = 1.0;        // sum f(c_j) / sum f(p_j) over all released jobs
  double energy = 0.0;         // total dynamic energy (J)
  double static_energy = 0.0;  // m * static_power_per_core * elapsed (J)
  double avg_power = 0.0;      // dynamic energy / duration (W)

  // Response-time metrics (ms): time from arrival to the response leaving
  // the system (completion of the cut target, or the deadline).
  double mean_response_ms = 0.0;
  double p50_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double p99_response_ms = 0.0;
  double aes_fraction = 0.0;   // share of time in AES mode (Fig. 1)
  double avg_speed_ghz = 0.0;  // time-weighted busy-core speed (Fig. 6a)
  double speed_variance = 0.0; // time-weighted busy-speed variance (Fig. 6b)

  // Outcome counts.
  std::uint64_t released = 0;
  std::uint64_t completed = 0;  // executed >= demand (full quality)
  std::uint64_t partial = 0;    // 0 < executed < demand
  std::uint64_t dropped = 0;    // executed == 0

  // Scheduler diagnostics (zero for non-GE algorithms).
  std::uint64_t rounds = 0;
  std::uint64_t wf_rounds = 0;
  std::uint64_t es_rounds = 0;

  double busy_fraction = 0.0;  // busy core-time / (m * elapsed)
  // Coefficient of variation of per-core energy (stddev / mean): 0 = perfect
  // balance.  Quantifies assignment imbalance (see abl_assignment).
  double energy_cov = 0.0;

  // Cluster shape (the paper's single-server setup reports 1 / "single").
  std::uint64_t num_servers = 1;
  std::string dispatch = "single";
  // Cross-server imbalance, 0 when num_servers == 1: CoV of per-server
  // dynamic energy and of per-server dispatched-job counts.
  double server_energy_cov = 0.0;
  double server_load_cov = 0.0;
};

// Runs the scheduler on a fresh synthetic trace derived from cfg.  When
// cfg.stream is set, forwards to run_simulation_stream (no materialised
// trace).
RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec);

// Streaming replay: generates and releases jobs on the fly from a JobStore
// arena instead of materialising the trace, so resident memory tracks jobs
// in flight rather than jobs ever released (10^6+-job runs in a flat RSS).
// Results are bit-identical to the materialised path on the same cfg (the
// fuzz suite pins this); cfg.max_jobs bounds the released-job count.
struct Timeline;
RunResult run_simulation_stream(const ExperimentConfig& cfg,
                                const SchedulerSpec& spec,
                                Timeline* timeline = nullptr,
                                obs::RunTelemetry* telemetry = nullptr);

// Runs the scheduler on a caller-provided trace (shared across schedulers).
RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace);

// As above, additionally sampling a state timeline every
// `timeline->interval` seconds into `timeline` (interval must be positive).
struct Timeline;
RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace, Timeline* timeline);

// As above, additionally recording telemetry (metrics and, if
// telemetry->want_trace, trace events) into `telemetry`.  Either pointer may
// be null.  The registry and buffer are filled per run; callers (the
// experiment engine) merge them across runs in task order so output stays
// deterministic.  See docs/OBSERVABILITY.md for the schema.
RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace, Timeline* timeline,
                         obs::RunTelemetry* telemetry);

}  // namespace ge::exp
