// Idealised offline reference for the optimality-gap study.
//
// How much of the energy GE leaves on the table is inherent to online,
// non-preemptive, partitioned scheduling?  This reference relaxes all three
// at once, clairvoyantly over the whole trace:
//
//   1. *Global* Longest-First cut: one demand level over every job of the
//      run such that the total quality equals the target.  (For a common
//      concave f this level allocation minimises the total work needed for
//      the target quality.)
//   2. *Fluid* multicore: the m cores are replaced by one machine whose
//      power law is the best m-way split, P_m(s) = m * a * (s / m)^beta --
//      by convexity no partitioned schedule of total speed s can draw less.
//   3. *Preemptive YDS* with true release times on that fluid machine.
//
// The result is an optimistic reference point, not a tight bound: it
// ignores the power budget H, per-core non-preemption, and the online
// information constraint.  GE landing within a modest factor of it says the
// heuristic captures most of the available savings.
#pragma once

#include "exp/config.h"
#include "workload/trace.h"

namespace ge::exp {

struct OfflineReference {
  double cut_level = 0.0;          // global demand level (units)
  double quality = 1.0;            // quality achieved by the global cut
  double total_work = 0.0;         // sum of cut targets (units)
  double energy = 0.0;             // fluid YDS energy (J)
  double peak_power = 0.0;         // highest instantaneous fluid power (W)
  bool within_budget = false;      // peak_power <= cfg.power_budget
};

// Computes the reference for `trace` at quality target `q_target` under the
// server parameters of `cfg`.  Cost grows quadratically with trace size;
// intended for horizons of a few seconds.
OfflineReference offline_reference(const workload::Trace& trace, double q_target,
                                   const ExperimentConfig& cfg);

}  // namespace ge::exp
