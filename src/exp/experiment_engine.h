// Unified experiment execution: every harness (figure sweeps, ablations,
// replications, ge_sweep) describes its runs as a flat ExperimentPlan of
// RunTasks and hands it to an ExperimentEngine, which executes the tasks on
// a fixed-size util::ThreadPool.
//
// Determinism contract: a RunResult depends only on its task's (config,
// spec) and the trace of its point -- run_simulation shares no mutable
// state between runs, and the per-point trace is generated once from the
// point's workload spec (Trace::generate is a pure function of spec,
// horizon and config.seed).  Results are returned indexed by task order,
// never by completion order, so the output of run() is bit-identical for
// any worker count, including 1.
//
// Trace sharing: tasks that name the same point index replay one shared
// trace, generated lazily (once, by whichever worker needs it first) from
// the first such task's config.  All tasks of a point must therefore agree
// on the workload-shaping fields (seed, duration, arrival and demand
// parameters); the engine cross-checks the cheap ones and aborts on a
// mismatch rather than silently unpairing a comparison.
#pragma once

#include <cstddef>
#include <vector>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "obs/telemetry.h"

namespace ge::exp {

// One simulation run: a fully-configured experiment (including its seed)
// plus the scheduler to run and the trace-sharing group it belongs to.
struct RunTask {
  ExperimentConfig config;
  SchedulerSpec spec;
  std::size_t point = 0;  // tasks with equal `point` share one trace
};

// A flat, ordered list of runs.  Builders append tasks point-major so that
// consumers can slice the result vector back into per-point groups.
class ExperimentPlan {
 public:
  // Appends a task and returns its index (== result index after run()).
  std::size_t add(ExperimentConfig config, SchedulerSpec spec, std::size_t point);

  // Appends a task in a fresh point of its own and returns the task index.
  std::size_t add_isolated(ExperimentConfig config, SchedulerSpec spec);

  const std::vector<RunTask>& tasks() const noexcept { return tasks_; }
  std::size_t size() const noexcept { return tasks_.size(); }
  bool empty() const noexcept { return tasks_.empty(); }
  // One past the highest point index named by any task (0 when empty).
  std::size_t num_points() const noexcept { return num_points_; }

 private:
  std::vector<RunTask> tasks_;
  std::size_t num_points_ = 0;
};

struct ExecutionOptions {
  // Worker count; 0 means util::ThreadPool::default_concurrency().  1 runs
  // inline on the calling thread (no pool).
  std::size_t jobs = 0;
  // When true the engine prints a live "tasks done | sim-seconds/sec" line
  // to stderr while the plan runs (tables go to stdout, so progress never
  // contaminates captured output).
  bool progress = false;
  // Telemetry outputs requested via --trace / --trace-format / --metrics /
  // --report / --watchdog / --profile.  Each task records into its own
  // RunTelemetry; after the plan finishes the engine merges metrics,
  // serialises traces, and renders the --report directory in task order, so
  // telemetry files inherit the engine's determinism contract
  // (byte-identical for any worker count).  The one deliberate exception is
  // --profile, whose prof.* wall-clock counters measure the host machine.
  obs::TelemetryOptions telemetry;
};

class ExperimentEngine {
 public:
  explicit ExperimentEngine(ExecutionOptions options = {});

  // Executes every task and returns results in task order (see the
  // determinism contract above).
  std::vector<RunResult> run(const ExperimentPlan& plan) const;

  const ExecutionOptions& options() const noexcept { return options_; }
  // The worker count run() will actually use for a plan of `tasks` tasks.
  std::size_t effective_jobs(std::size_t tasks) const noexcept;

 private:
  ExecutionOptions options_;
};

// Convenience: one-shot execution with default options overridden by `exec`.
std::vector<RunResult> run_plan(const ExperimentPlan& plan,
                                const ExecutionOptions& exec = {});

}  // namespace ge::exp
