// Experiment configuration: every constant of the paper's simulation setup
// (Sec. IV-B) in one struct, so a benchmark binary can start from
// paper_defaults() and override the swept parameter.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/dispatcher.h"
#include "power/power_model.h"
#include "quality/quality_function.h"
#include "sim/event_queue.h"
#include "workload/generator.h"

namespace ge::cluster {
struct NodeSpec;
}

namespace ge::exp {

// Which concave family Eq. (1)'s role is played by (Fig. 9 uses the
// exponential; the others support sensitivity studies).
enum class QualityFamily {
  kExponential,  // (1 - e^{-cx}) / (1 - e^{-c xmax}), the paper's Eq. (1)
  kLinear,       // x / xmax -- no diminishing returns (control)
  kPowerLaw,     // (x / xmax)^gamma with gamma = quality_c interpreted in (0,1)
};

const char* to_string(QualityFamily family) noexcept;

struct ExperimentConfig {
  // Server (Sec. II-B / IV-B).
  std::size_t cores = 16;
  double power_budget = 320.0;  // W
  double power_a = 5.0;
  double power_beta = 2.0;
  double units_per_ghz = 1000.0;  // 1 GHz completes 1000 units/s

  // Quality function, Eq. (1).  For kPowerLaw, quality_c is the exponent
  // gamma in (0,1) instead of the concavity multiplier.
  QualityFamily quality_family = QualityFamily::kExponential;
  double quality_c = 0.003;

  // Workload (web search model).
  double arrival_rate = 150.0;  // req/s
  double demand_alpha = 3.0;
  double demand_min = 130.0;   // units
  double demand_max = 1000.0;  // units; also the quality function's xmax
  double deadline_interval = 0.150;      // s
  double deadline_interval_max = 0.150;  // s; > interval => random windows

  // Burstiness of the arrival process (1.0 = plain Poisson; see
  // workload::OnOffPoissonProcess).
  double burst_peak_to_mean = 1.0;
  double burst_fraction = 0.2;
  double burst_dwell = 1.0;

  // Static power per core (W), drawn for the whole run.  The paper ignores
  // it because cores cannot be shut down, making it a constant offset for
  // every scheduler; it is modelled here so the offset can be included in
  // absolute energy reports.
  double static_power_per_core = 0.0;

  // GE parameters.
  double q_ge = 0.9;
  double critical_load = 154.0;  // req/s (hybrid ES/WF switch)
  double overload_rate = 198.0;  // req/s (plot annotation only)
  double quantum = 0.5;          // s
  int counter_threshold = 8;     // waiting requests
  double load_window = 2.0;      // s
  std::size_t monitor_window = 0;  // settled jobs; 0 = cumulative (paper)

  // Discrete DVFS (Fig. 12).
  bool discrete_speeds = false;
  double discrete_step_ghz = 0.2;
  double discrete_max_ghz = 3.2;

  // Core heterogeneity (beyond the paper; its conclusion points at "other
  // hardware platforms").  The power scale factor a_i grows linearly from
  // `power_a` on core 0 to `power_a * hetero_spread` on core m-1: higher a
  // means the same speed costs more power (less efficient silicon).
  // hetero_spread == 1 keeps the paper's homogeneous server.
  double hetero_spread = 1.0;

  // Fault injection: at `failure_time` seconds, `failure_cores` cores (the
  // highest-indexed ones, on the highest-indexed server) go offline
  // permanently.  failure_time < 0 disables injection.  Jobs pinned to a
  // failed core are stranded (no migration) and settle at their deadlines.
  double failure_time = -1.0;
  std::size_t failure_cores = 0;

  // Cluster (beyond the paper, which studies one server; Sec. VII points at
  // server farms).  `num_servers` servers sit behind a dispatch tier; each
  // gets its own scheduler instance and, by default, `cores` cores under a
  // budget of `power_budget` (scaled by core-count ratio when a server's
  // core count differs).  num_servers == 1 is the paper's setup and
  // reproduces the pre-cluster results bit-identically; `dispatch` is
  // ignored in that case (the passthrough policy is forced).
  std::size_t num_servers = 1;
  cluster::DispatchPolicy dispatch = cluster::DispatchPolicy::kRoundRobin;
  // Per-server heterogeneity knobs; each is either empty (every server uses
  // the homogeneous default) or has exactly num_servers entries.
  std::vector<std::size_t> server_cores;     // core count per server
  std::vector<double> server_power_scale;    // multiplier on power_a per server
  std::vector<double> server_max_ghz;        // discrete_max_ghz per server

  // Run control.  `duration` is the arrival horizon; the run then drains
  // until every released job settles.  The paper uses 600 s; the benchmark
  // default of 60 s preserves every curve shape at a tenth of the wall time
  // (energies scale linearly with duration).
  double duration = 60.0;
  std::uint64_t seed = 1;

  // Streaming replay (docs/DESIGN.md, "Streaming core").  When `stream` is
  // true the runner generates and releases jobs on the fly from a JobStore
  // arena instead of materialising the whole trace up front: resident memory
  // tracks jobs *in flight*, so 10^6+-job replays fit in a small, flat RSS.
  // Results are bit-identical to the materialised path (fuzz-pinned).
  bool stream = false;
  // Cap on released jobs, 0 = unlimited.  Applies to both paths (the capped
  // run replays the capped prefix of the uncapped job stream), so
  // stream on/off and capped sweeps stay comparable.
  std::uint64_t max_jobs = 0;
  // Event queue backing the simulator: binary heap (default) or calendar
  // queue (O(1) amortised holds).  Pop order is identical; see
  // src/sim/calendar_queue.h for the tie-order contract.
  sim::EventQueueKind event_queue = sim::EventQueueKind::kHeap;
  // When true the runner samples total power and checks it never exceeds
  // the budget (used by tests; cheap but pointless in sweeps).
  bool verify_power = false;

  static ExperimentConfig paper_defaults();

  // Aborts (GE_CHECK) on out-of-domain values: non-positive cores/budget/
  // rates, quality targets outside [0,1], inverted deadline bounds, etc.
  // run_simulation() validates implicitly.
  void validate() const;

  workload::WorkloadSpec workload_spec() const;
  power::PowerModel power_model() const;
  // One model per core; varies only when hetero_spread > 1.
  std::vector<power::PowerModel> core_power_models() const;
  // Core count of server `s` (server_cores override, else `cores`).
  std::size_t server_core_count(std::size_t s) const;
  // Sum of core counts across all servers.
  std::size_t total_cores() const;
  // One NodeSpec per server, ready for cluster::Cluster.  `budget` is the
  // per-server budget for a default-sized server (the runner passes the
  // scheduler's effective budget); servers with a different core count get
  // it scaled by their core-count ratio.
  std::vector<cluster::NodeSpec> cluster_node_specs(double budget) const;
  std::unique_ptr<quality::QualityFunction> make_quality_function() const;

  // Mean demand of the bounded-Pareto distribution (~192.1 units).
  double mean_demand() const;
  // Nominal capacity in units/s with every core at the ES speed (H/m).
  double nominal_capacity() const;
  // Arrival rate that saturates the nominal capacity with uncut work.
  double saturation_rate() const;
};

}  // namespace ge::exp
