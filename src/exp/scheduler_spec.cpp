#include "exp/scheduler_spec.h"

#include <algorithm>
#include <cctype>

#include "core/good_enough.h"
#include "core/queue_policy.h"
#include "exp/config.h"
#include "util/check.h"
#include "util/table.h"

namespace ge::exp {
namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

}  // namespace

std::string SchedulerSpec::display_name() const {
  switch (algo) {
    case Algorithm::kGe:
      return "GE";
    case Algorithm::kGeNoComp:
      return "GE-NoComp";
    case Algorithm::kGeEs:
      return "GE-ES";
    case Algorithm::kGeWf:
      return "GE-WF";
    case Algorithm::kGeRr:
      return "GE-RR";
    case Algorithm::kOq:
      return "OQ";
    case Algorithm::kBe:
      return "BE";
    case Algorithm::kBeP:
      return "BE-P";
    case Algorithm::kBeS:
      return "BE-S";
    case Algorithm::kFcfs:
      return "FCFS";
    case Algorithm::kFdfs:
      return "FDFS";
    case Algorithm::kLjf:
      return "LJF";
    case Algorithm::kSjf:
      return "SJF";
  }
  return "unknown";
}

SchedulerSpec SchedulerSpec::parse(const std::string& name) {
  const std::string key = upper(name);
  SchedulerSpec spec;
  if (key == "GE") {
    spec.algo = Algorithm::kGe;
  } else if (key == "GE-NOCOMP" || key == "GE-NC") {
    spec.algo = Algorithm::kGeNoComp;
  } else if (key == "GE-ES") {
    spec.algo = Algorithm::kGeEs;
  } else if (key == "GE-WF") {
    spec.algo = Algorithm::kGeWf;
  } else if (key == "GE-RR") {
    spec.algo = Algorithm::kGeRr;
  } else if (key == "OQ") {
    spec.algo = Algorithm::kOq;
  } else if (key == "BE") {
    spec.algo = Algorithm::kBe;
  } else if (key == "BE-P") {
    spec.algo = Algorithm::kBeP;
  } else if (key == "BE-S") {
    spec.algo = Algorithm::kBeS;
  } else if (key == "FCFS") {
    spec.algo = Algorithm::kFcfs;
  } else if (key == "FDFS") {
    spec.algo = Algorithm::kFdfs;
  } else if (key == "LJF") {
    spec.algo = Algorithm::kLjf;
  } else if (key == "SJF") {
    spec.algo = Algorithm::kSjf;
  } else {
    GE_CHECK(false, "unknown scheduler name: " + name);
  }
  return spec;
}

double effective_budget(const SchedulerSpec& spec, const ExperimentConfig& cfg) {
  if (spec.algo == Algorithm::kBeP) {
    return cfg.power_budget * spec.budget_scale;
  }
  return cfg.power_budget;
}

std::unique_ptr<sched::Scheduler> make_scheduler(const SchedulerSpec& spec,
                                                 const sched::SchedulerEnv& env,
                                                 const ExperimentConfig& cfg,
                                                 const power::DiscreteSpeedTable* table) {
  auto ge_options = [&](bool cutting, bool compensation, double cut_target,
                        power::DistributionPolicy policy) {
    sched::GoodEnoughOptions opts;
    opts.q_ge = cfg.q_ge;
    opts.cut_target = cut_target;
    opts.cutting = cutting;
    opts.compensation = compensation;
    opts.power_policy = policy;
    opts.critical_load = cfg.critical_load;
    opts.load_window = cfg.load_window;
    opts.quantum = cfg.quantum;
    opts.counter_threshold = cfg.counter_threshold;
    opts.speed_table = table;
    return opts;
  };

  using power::DistributionPolicy;
  switch (spec.algo) {
    case Algorithm::kGe:
      return std::make_unique<sched::GoodEnoughScheduler>(
          env, ge_options(true, true, cfg.q_ge, DistributionPolicy::kHybrid), "GE");
    case Algorithm::kGeNoComp:
      return std::make_unique<sched::GoodEnoughScheduler>(
          env, ge_options(true, false, cfg.q_ge, DistributionPolicy::kHybrid),
          "GE-NoComp");
    case Algorithm::kGeEs:
      return std::make_unique<sched::GoodEnoughScheduler>(
          env, ge_options(true, true, cfg.q_ge, DistributionPolicy::kEqualSharing),
          "GE-ES");
    case Algorithm::kGeWf:
      return std::make_unique<sched::GoodEnoughScheduler>(
          env, ge_options(true, true, cfg.q_ge, DistributionPolicy::kWaterFilling),
          "GE-WF");
    case Algorithm::kGeRr: {
      sched::GoodEnoughOptions opts =
          ge_options(true, true, cfg.q_ge, DistributionPolicy::kHybrid);
      opts.cumulative_rr = false;
      return std::make_unique<sched::GoodEnoughScheduler>(env, opts, "GE-RR");
    }
    case Algorithm::kOq:
      // Over-Qualified: target 2% above the demanded quality, never
      // compensate (Sec. IV-A-1).
      return std::make_unique<sched::GoodEnoughScheduler>(
          env,
          ge_options(true, false, std::min(cfg.q_ge + 0.02, 1.0),
                     DistributionPolicy::kHybrid),
          "OQ");
    case Algorithm::kBe:
      return std::make_unique<sched::GoodEnoughScheduler>(
          env, ge_options(false, false, 1.0, DistributionPolicy::kWaterFilling), "BE");
    case Algorithm::kBeP:
      // The budget reduction is applied by the runner through
      // effective_budget(); the scheduling behaviour is plain BE.
      return std::make_unique<sched::GoodEnoughScheduler>(
          env, ge_options(false, false, 1.0, DistributionPolicy::kWaterFilling),
          "BE-P(x" + util::format_double(spec.budget_scale, 3) + ")");
    case Algorithm::kBeS: {
      // Speed control caps every core uniformly ("limits the power
      // distributed to all the cores"), i.e. Equal-Sharing semantics; the
      // lack of WF rebalancing is why BE-P beats BE-S in Fig. 8.
      sched::GoodEnoughOptions opts =
          ge_options(false, false, 1.0, DistributionPolicy::kEqualSharing);
      opts.core_speed_cap = spec.speed_cap_ghz * cfg.units_per_ghz;
      return std::make_unique<sched::GoodEnoughScheduler>(
          env, opts, "BE-S(" + util::format_double(spec.speed_cap_ghz, 3) + "GHz)");
    }
    case Algorithm::kFcfs:
    case Algorithm::kFdfs:
    case Algorithm::kLjf:
    case Algorithm::kSjf: {
      sched::QueuePolicyOptions opts;
      opts.speed_table = table;
      switch (spec.algo) {
        case Algorithm::kFcfs:
          opts.order = sched::QueueOrder::kFcfs;
          break;
        case Algorithm::kFdfs:
          opts.order = sched::QueueOrder::kFdfs;
          break;
        case Algorithm::kLjf:
          opts.order = sched::QueueOrder::kLjf;
          break;
        default:
          opts.order = sched::QueueOrder::kSjf;
          break;
      }
      return std::make_unique<sched::QueuePolicyScheduler>(env, opts);
    }
  }
  GE_CHECK(false, "unhandled algorithm");
}

}  // namespace ge::exp
