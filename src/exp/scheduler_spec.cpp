#include "exp/scheduler_spec.h"

#include <cstdio>
#include <cstdlib>

#include "exp/config.h"
#include "exp/scheduler_registry.h"
#include "util/check.h"

namespace ge::exp {
namespace {

std::string format_param(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string format_params(const std::vector<double>& params) {
  std::string out = "[";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out += ",";
    out += format_param(params[i]);
  }
  out += "]";
  return out;
}

}  // namespace

const SchedulerPlugin& SchedulerSpec::resolved() const {
  if (plugin != nullptr) {
    return *plugin;
  }
  const SchedulerPlugin* ge = SchedulerRegistry::instance().find("GE");
  GE_CHECK(ge != nullptr, "default scheduler plugin 'GE' is not registered");
  return *ge;
}

bool SchedulerSpec::is(std::string_view canonical_name) const {
  return resolved().name == canonical_name;
}

std::string SchedulerSpec::display_name() const {
  const SchedulerPlugin& p = resolved();
  if (p.display) {
    return p.display(*this);
  }
  if (params.empty()) {
    return p.name;
  }
  return p.name + format_params(params);
}

SchedulerSpec SchedulerSpec::parse(const std::string& name) {
  std::string base = name;
  std::vector<double> params;
  const std::size_t lb = name.find('[');
  if (lb != std::string::npos) {
    GE_CHECK(!name.empty() && name.back() == ']',
             "bad scheduler spec (expected trailing ']'): " + name);
    base = name.substr(0, lb);
    const std::string inside = name.substr(lb + 1, name.size() - lb - 2);
    std::size_t pos = 0;
    while (pos < inside.size()) {
      std::size_t comma = inside.find(',', pos);
      if (comma == std::string::npos) comma = inside.size();
      const std::string token = inside.substr(pos, comma - pos);
      char* end = nullptr;
      const double value = std::strtod(token.c_str(), &end);
      GE_CHECK(!token.empty() && end == token.c_str() + token.size(),
               "bad scheduler parameter '" + token + "' in: " + name);
      params.push_back(value);
      pos = comma + 1;
    }
    GE_CHECK(!params.empty(), "empty scheduler parameter list in: " + name);
  }

  const SchedulerPlugin* p = SchedulerRegistry::instance().find(base);
  GE_CHECK(p != nullptr, "unknown scheduler name: " + name);
  GE_CHECK(params.size() >= p->min_params && params.size() <= p->max_params,
           "scheduler " + p->name + " expects between " +
               std::to_string(p->min_params) + " and " +
               std::to_string(p->max_params) + " parameters, got " +
               std::to_string(params.size()) + ": " + name);

  SchedulerSpec spec;
  spec.plugin = p;
  spec.params = std::move(params);
  if (p->apply_params) {
    p->apply_params(spec);
  }
  return spec;
}

double effective_budget(const SchedulerSpec& spec, const ExperimentConfig& cfg) {
  const SchedulerPlugin& p = spec.resolved();
  if (p.effective_budget) {
    return p.effective_budget(spec, cfg);
  }
  return cfg.power_budget;
}

std::unique_ptr<sched::Scheduler> make_scheduler(const SchedulerSpec& spec,
                                                 const sched::SchedulerEnv& env,
                                                 const ExperimentConfig& cfg,
                                                 const power::DiscreteSpeedTable* table) {
  return spec.resolved().factory(spec, env, cfg, table);
}

}  // namespace ge::exp
