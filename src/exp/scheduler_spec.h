// Named scheduler configurations: every algorithm the experiments evaluate,
// resolvable from a string for the benchmark command lines.
//
// A spec is a pointer into the scheduler plugin registry plus the parsed
// parameters.  The grammar is "NAME" or "NAME[p1,p2,...]" (case-insensitive
// names/aliases, numeric parameters), e.g. "GE", "ge-nc", "QOA[0.5]",
// "BE-P[0.8]".  The set of valid names is whatever is registered -- see
// exp/scheduler_registry.h and docs/SCHEDULERS.md.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/scheduler.h"
#include "power/discrete_speed.h"

namespace ge::exp {

struct ExperimentConfig;
struct SchedulerPlugin;

struct SchedulerSpec {
  // The registered algorithm; nullptr means the default "GE" plugin
  // (resolved lazily so `SchedulerSpec{}` keeps working as plain GE).
  const SchedulerPlugin* plugin = nullptr;
  // Bracket parameters exactly as parsed ("QOA[0.5]" -> {0.5}); plugins
  // normalise them into dedicated fields via apply_params.
  std::vector<double> params;
  // BE-P: multiplier on the configured power budget.
  double budget_scale = 1.0;
  // BE-S: per-core speed cap in GHz.
  double speed_cap_ghz = std::numeric_limits<double>::infinity();

  // The plugin, with nullptr resolved to the registered "GE" entry.
  const SchedulerPlugin& resolved() const;

  // True when this spec resolves to the plugin with that canonical name
  // (exact match, e.g. is("BE-P")).
  bool is(std::string_view canonical_name) const;

  // Canonical spelling; round-trips through parse() for every registered
  // plugin (pinned by SchedulerSpecTest.ParseRoundTripEveryPlugin).
  std::string display_name() const;

  // Parses "NAME" or "NAME[p1,...]" against the registry; aborts on an
  // unknown scheduler name, malformed brackets, or a parameter-count /
  // domain violation.
  static SchedulerSpec parse(const std::string& name);
};

// Effective server power budget for a spec (BE-P scales it).
double effective_budget(const SchedulerSpec& spec, const ExperimentConfig& cfg);

// Builds the scheduler through the spec's plugin factory.  `table` may be
// nullptr (continuous DVFS) and must outlive the scheduler when provided.
std::unique_ptr<sched::Scheduler> make_scheduler(const SchedulerSpec& spec,
                                                 const sched::SchedulerEnv& env,
                                                 const ExperimentConfig& cfg,
                                                 const power::DiscreteSpeedTable* table);

}  // namespace ge::exp
