// Named scheduler configurations: every algorithm the paper evaluates,
// resolvable from a string for the benchmark command lines.
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "core/scheduler.h"
#include "power/discrete_speed.h"

namespace ge::exp {

struct ExperimentConfig;

enum class Algorithm {
  kGe,        // the paper's Good Enough scheduler (hybrid ES/WF)
  kGeNoComp,  // GE without the compensation policy (Fig. 5)
  kGeEs,      // GE forced to Equal-Sharing (Fig. 6/7)
  kGeWf,      // GE forced to Water-Filling (Fig. 6/7)
  kGeRr,      // GE with plain (non-cumulative) round-robin assignment
  kOq,        // Over-Qualified: cut to Q_GE + 2%, no compensation
  kBe,        // Best Effort: never cut, Water-Filling
  kBeP,       // power control: BE on a calibrated budget (Fig. 8)
  kBeS,       // speed control: BE with a calibrated core speed cap (Fig. 8)
  kFcfs,
  kFdfs,
  kLjf,
  kSjf,
};

struct SchedulerSpec {
  Algorithm algo = Algorithm::kGe;
  // BE-P: multiplier on the configured power budget.
  double budget_scale = 1.0;
  // BE-S: per-core speed cap in GHz.
  double speed_cap_ghz = std::numeric_limits<double>::infinity();

  std::string display_name() const;

  // Parses "GE", "OQ", "BE", "BE-P", "BE-S", "FCFS", "FDFS", "LJF", "SJF",
  // "GE-NOCOMP" (alias "GE-NC"), "GE-ES", "GE-WF", "GE-RR"
  // (case-insensitive).  Round-trips with display_name() for every
  // Algorithm (pinned by SchedulerSpecTest.ParseRoundTripEveryAlgorithm).
  static SchedulerSpec parse(const std::string& name);
};

// Effective server power budget for a spec (BE-P scales it).
double effective_budget(const SchedulerSpec& spec, const ExperimentConfig& cfg);

// Builds the scheduler.  `table` may be nullptr (continuous DVFS) and must
// outlive the scheduler when provided.
std::unique_ptr<sched::Scheduler> make_scheduler(const SchedulerSpec& spec,
                                                 const sched::SchedulerEnv& env,
                                                 const ExperimentConfig& cfg,
                                                 const power::DiscreteSpeedTable* table);

}  // namespace ge::exp
