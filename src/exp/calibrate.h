// Calibration of the Fig. 8 control policies.
//
// The paper's power control policy (BE-P) "employs the least power budget
// which can complete the quality guarantee of the jobs", and the speed
// control policy (BE-S) the minimum speed cap.  Both are found offline by
// bisection: run BE at a reference arrival rate, shrink the knob until the
// achieved quality just reaches Q_GE.  The calibrated knob is then held
// fixed across the sweep, which is what produces the characteristic Fig. 8
// shape (quality sagging below Q_GE once the load exceeds the calibration
// point, while GE's online compensation holds the line).
#pragma once

#include "exp/config.h"
#include "exp/scheduler_spec.h"

namespace ge::exp {

struct CalibrationResult {
  double value = 0.0;    // budget scale or speed cap (GHz)
  double quality = 0.0;  // quality achieved at the calibration point
  int evaluations = 0;
};

// Smallest budget scale in [lo, hi] whose BE run achieves cfg.q_ge at
// cfg.arrival_rate.  Returns hi if even the full budget falls short.
CalibrationResult calibrate_budget_scale(const ExperimentConfig& cfg, double lo = 0.05,
                                         double hi = 1.0, int iterations = 12);

// Smallest per-core speed cap (GHz) whose BE run achieves cfg.q_ge.
CalibrationResult calibrate_speed_cap(const ExperimentConfig& cfg, double lo_ghz = 0.2,
                                      double hi_ghz = 4.0, int iterations = 12);

}  // namespace ge::exp
