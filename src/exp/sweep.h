// Sweep helpers shared by the figure-reproduction benchmarks: run a set of
// schedulers (or config variants) across a parameter range on shared
// traces and render the series as a table.
//
// All sweeps are thin plan-builders over exp::ExperimentEngine: each sweep
// point is one plan point (one shared trace), each scheduler or variant at
// the point is one RunTask, and the engine executes the flat plan on a
// worker pool.  Pass ExecutionOptions to control the worker count; results
// are bit-identical for any worker count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/experiment_engine.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "util/table.h"

namespace ge::exp {

struct SweepPoint {
  double x = 0.0;                  // swept parameter value
  std::vector<RunResult> results;  // one per scheduler/variant, input order
};

// Runs every scheduler at every arrival rate.  Schedulers at the same rate
// share one trace, so comparisons are paired.
std::vector<SweepPoint> sweep_arrival_rates(const ExperimentConfig& base,
                                            const std::vector<SchedulerSpec>& specs,
                                            const std::vector<double>& rates,
                                            const ExecutionOptions& exec = {});

// Generic sweep: `configure` maps (base config, x) to the config for that
// point.  Schedulers at the same point share one trace.
std::vector<SweepPoint> sweep(
    const ExperimentConfig& base, const std::vector<SchedulerSpec>& specs,
    const std::vector<double>& xs,
    const std::function<ExperimentConfig(ExperimentConfig, double)>& configure,
    const ExecutionOptions& exec = {});

// One compared series of a variant sweep: a display label, the scheduler to
// run, and an optional config tweak applied on top of the point config.
// Tweaks must not change the workload-shaping fields (seed, duration,
// arrival and demand parameters) -- variants at a point share one trace,
// and the engine aborts on the mismatches it can detect.
struct RunVariant {
  std::string label;
  SchedulerSpec spec;
  std::function<ExperimentConfig(ExperimentConfig)> tweak;  // may be null
};

// Generalised sweep where the compared series differ by scheduler *and/or*
// config (e.g. one GE column per critical-load threshold).  Each returned
// RunResult carries its variant's label in `scheduler`, so series_table()
// renders variant sweeps unchanged.
std::vector<SweepPoint> sweep_variants(
    const ExperimentConfig& base, const std::vector<RunVariant>& variants,
    const std::vector<double>& xs,
    const std::function<ExperimentConfig(ExperimentConfig, double)>& configure,
    const ExecutionOptions& exec = {});

// Renders one metric of a sweep as a table: column 0 is the swept value,
// one column per scheduler.  An empty sweep yields a table with only the
// x-column header.
util::Table series_table(const std::vector<SweepPoint>& points,
                         const std::string& x_name,
                         const std::function<double(const RunResult&)>& metric,
                         int precision = 4);

// The arrival rates the paper sweeps in most figures (100..250 req/s).
std::vector<double> paper_arrival_rates();

// `configure` for sweeps whose x axis is the arrival rate.
ExperimentConfig configure_arrival_rate(ExperimentConfig cfg, double rate);

}  // namespace ge::exp
