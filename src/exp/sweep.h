// Sweep helpers shared by the figure-reproduction benchmarks: run a set of
// schedulers across a parameter range on shared traces and render the
// series as a table.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "util/table.h"

namespace ge::exp {

struct SweepPoint {
  double x = 0.0;                  // swept parameter value
  std::vector<RunResult> results;  // one per scheduler, input order
};

// Runs every scheduler at every arrival rate.  Schedulers at the same rate
// share one trace, so comparisons are paired.
std::vector<SweepPoint> sweep_arrival_rates(const ExperimentConfig& base,
                                            const std::vector<SchedulerSpec>& specs,
                                            const std::vector<double>& rates);

// Generic sweep: `configure` maps (base config, x) to the config for that
// point.  Schedulers at the same point share one trace.
std::vector<SweepPoint> sweep(
    const ExperimentConfig& base, const std::vector<SchedulerSpec>& specs,
    const std::vector<double>& xs,
    const std::function<ExperimentConfig(ExperimentConfig, double)>& configure);

// Renders one metric of a sweep as a table: column 0 is the swept value,
// one column per scheduler.
util::Table series_table(const std::vector<SweepPoint>& points,
                         const std::string& x_name,
                         const std::function<double(const RunResult&)>& metric,
                         int precision = 4);

// The arrival rates the paper sweeps in most figures (100..250 req/s).
std::vector<double> paper_arrival_rates();

}  // namespace ge::exp
