#include "exp/runner.h"

#include "exp/timeline.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "core/good_enough.h"
#include "obs/analysis/watchdog.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "quality/quality_function.h"
#include "quality/quality_monitor.h"
#include "server/multicore_server.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/quantiles.h"
#include "util/stats.h"

namespace ge::exp {
namespace {

constexpr double kCompleteTol = 1e-6;

}  // namespace

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec) {
  const workload::Trace trace = workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  return run_simulation(cfg, spec, trace);
}

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace) {
  return run_simulation(cfg, spec, trace, nullptr);
}

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace, Timeline* timeline) {
  return run_simulation(cfg, spec, trace, timeline, nullptr);
}

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace, Timeline* timeline,
                         obs::RunTelemetry* telemetry) {
  cfg.validate();
  sim::Simulator sim;
  // Install telemetry before any component is built: cores and schedulers
  // cache their handles at construction.
  obs::Telemetry tel_view;
  if (telemetry != nullptr) {
    tel_view = telemetry->view();
    sim.set_telemetry(&tel_view);
  }
  obs::TraceBuffer* trace_buf = nullptr;
  if (obs::Telemetry* tel = sim.telemetry()) {
    trace_buf = tel->trace;
  }
  const power::PowerModel pm = cfg.power_model();
  const double budget = effective_budget(spec, cfg);
  const std::unique_ptr<quality::QualityFunction> fp = cfg.make_quality_function();
  const quality::QualityFunction& f = *fp;

  // Every run is a cluster run; the paper's single server is the one-node
  // cluster with the passthrough dispatcher (bit-identical results -- see
  // src/cluster/cluster.h and the golden test in tests/test_cluster.cpp).
  cluster::Cluster cluster(
      cfg.cluster_node_specs(budget), f,
      [&spec, &cfg](const sched::SchedulerEnv& env,
                    const power::DiscreteSpeedTable* table) {
        return make_scheduler(spec, env, cfg, table);
      },
      cfg.dispatch, cfg.seed, sim);

  // The watchdog observes the trace buffer live, re-deriving each invariant
  // from the same events the analysis layer consumes; violations land in the
  // buffer itself (as kViolation events) plus the watchdog.* counters.
  std::unique_ptr<obs::analysis::Watchdog> watchdog;
  if (telemetry != nullptr && telemetry->want_watchdog && trace_buf != nullptr) {
    obs::analysis::WatchdogOptions wopts;
    for (const cluster::NodeSpec& node : cfg.cluster_node_specs(budget)) {
      wopts.models.push_back(node.core_models);
      wopts.server_budgets_w.push_back(node.power_budget);
    }
    watchdog = std::make_unique<obs::analysis::Watchdog>(*trace_buf, wopts,
                                                         &telemetry->metrics);
    trace_buf->set_observer(watchdog.get());
  }

  // Private, mutable copy of the trace; addresses are stable for the run.
  std::vector<workload::Job> jobs = trace.jobs();
  for (workload::Job& job : jobs) {
    sim.schedule_at(job.arrival, [&cluster, &job, trace_buf] {
      if (trace_buf != nullptr) {
        obs::TraceEvent ev;
        ev.type = obs::TraceEventType::kArrival;
        ev.t = job.arrival;
        ev.job = static_cast<std::int64_t>(job.id);
        ev.a = job.demand;
        ev.b = job.deadline;
        trace_buf->push(ev);
      }
      cluster.on_job_arrival(&job);
    });
    sim.schedule_at(job.deadline, [&cluster, &job] { cluster.on_deadline(&job); });
  }

  if (cfg.verify_power) {
    // Sample total power on a grid; no server may exceed its own budget.
    const double step = 0.01;
    for (double t = step; t < cfg.duration + cfg.deadline_interval_max; t += step) {
      sim.schedule_at(t, [&cluster, &sim] {
        for (std::size_t s = 0; s < cluster.size(); ++s) {
          const server::MulticoreServer& server = cluster.node(s).server();
          GE_CHECK(server.total_power(sim.now()) <=
                       server.power_budget() * (1.0 + 1e-6) + 1e-6,
                   "total power exceeded the budget");
        }
      });
    }
  }

  if (cfg.failure_time >= 0.0 && cfg.failure_cores > 0) {
    sim.schedule_at(cfg.failure_time, [&cluster, &sim, &cfg] {
      // Failures hit the highest-indexed cores of the highest-indexed server
      // (validate() guarantees it has enough cores).
      server::MulticoreServer& server = cluster.node(cluster.size() - 1).server();
      const std::size_t n = server.core_count();
      for (std::size_t i = n - cfg.failure_cores; i < n; ++i) {
        server.core(i).set_offline(sim.now());
      }
    });
  }

  // Drain: all deadlines fall within duration + the widest deadline window.
  const double horizon = cfg.duration + cfg.deadline_interval_max + 2.0 * cfg.quantum;

  if (timeline != nullptr) {
    GE_CHECK(timeline->interval > 0.0, "timeline interval must be positive");
    // Mode comes from node 0's scheduler; with GE on every node they switch
    // on their own feedback, and node 0 is the representative trace.
    auto* ge_sched =
        dynamic_cast<sched::GoodEnoughScheduler*>(&cluster.node(0).scheduler());
    for (double t = timeline->interval; t < horizon; t += timeline->interval) {
      sim.schedule_at(t, [&cluster, &sim, ge_sched, timeline] {
        TimelinePoint point;
        point.time = sim.now();
        point.total_power = cluster.total_power(point.time);
        point.quality = cluster.monitored_quality();
        point.busy_cores = cluster.busy_cores(point.time);
        point.backlog = cluster.total_backlog();
        if (ge_sched != nullptr) {
          point.mode =
              ge_sched->mode() == sched::GoodEnoughScheduler::Mode::kBq ? 1 : 0;
        }
        timeline->points.push_back(point);
      });
    }
  }

  {
    obs::ScopedTimer run_timer(
        tel_view.profile != nullptr ? &tel_view.profile->sim_run : nullptr);
    cluster.start();
    sim.run_until(horizon);
    cluster.finish();
  }

  RunResult result;
  result.scheduler = cluster.node(0).scheduler().name();
  result.arrival_rate = cfg.arrival_rate;
  result.duration = cfg.duration;
  result.num_servers = static_cast<std::uint64_t>(cluster.size());
  result.dispatch = cluster.dispatcher().name();

  double achieved = 0.0;
  double potential = 0.0;
  util::QuantileCollector responses;
  responses.reserve(jobs.size());
  for (const workload::Job& job : jobs) {
    GE_CHECK(job.settled, "job left unsettled at end of run");
    achieved += f.value(std::min(job.executed, job.demand));
    potential += f.value(job.demand);
    GE_CHECK(job.finish_time >= job.arrival - 1e-9, "finish before arrival");
    responses.add((job.finish_time - job.arrival) * 1000.0);
    ++result.released;
    if (job.executed >= job.demand - kCompleteTol) {
      ++result.completed;
    } else if (job.executed > kCompleteTol) {
      ++result.partial;
    } else {
      ++result.dropped;
    }
  }
  result.quality = potential > 0.0 ? achieved / potential : 1.0;
  result.energy = cluster.total_energy();

  if (watchdog != nullptr) {
    obs::analysis::Watchdog::Totals totals;
    totals.released = result.released;
    for (std::size_t s = 0; s < cluster.size(); ++s) {
      totals.server_energy_j.push_back(cluster.node(s).server().total_energy());
    }
    watchdog->finish(sim.now(), totals);
    trace_buf->set_observer(nullptr);
  }

  result.static_energy = cfg.static_power_per_core *
                         static_cast<double>(cluster.total_cores()) * horizon;
  result.avg_power = cfg.duration > 0.0 ? result.energy / cfg.duration : 0.0;
  if (responses.count() > 0) {
    result.mean_response_ms = responses.mean();
    result.p50_response_ms = responses.quantile(0.50);
    result.p95_response_ms = responses.quantile(0.95);
    result.p99_response_ms = responses.quantile(0.99);
  }

  double aes = 0.0;
  double bq = 0.0;
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    aes += cluster.node(s).scheduler().aes_time(sim.now());
    bq += cluster.node(s).scheduler().bq_time(sim.now());
  }
  result.aes_fraction = (aes + bq) > 0.0 ? aes / (aes + bq) : 0.0;

  const util::TimeWeightedStats speed = cluster.aggregate_speed_stats();
  result.avg_speed_ghz = pm.ghz(speed.mean());
  const double ghz_scale = 1.0 / (cfg.units_per_ghz * cfg.units_per_ghz);
  result.speed_variance = speed.variance() * ghz_scale;
  result.busy_fraction = cluster.total_busy_time() /
                         (static_cast<double>(cluster.total_cores()) * horizon);
  util::RunningStats core_energy;
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    const server::MulticoreServer& server = cluster.node(s).server();
    for (std::size_t i = 0; i < server.core_count(); ++i) {
      core_energy.add(server.core(i).energy());
    }
  }
  result.energy_cov =
      core_energy.mean() > 0.0 ? core_energy.stddev() / core_energy.mean() : 0.0;

  if (cluster.size() > 1) {
    util::RunningStats server_energy;
    util::RunningStats server_load;
    for (std::size_t s = 0; s < cluster.size(); ++s) {
      server_energy.add(cluster.node(s).server().total_energy());
      server_load.add(static_cast<double>(cluster.node(s).dispatched()));
    }
    result.server_energy_cov = server_energy.mean() > 0.0
                                   ? server_energy.stddev() / server_energy.mean()
                                   : 0.0;
    result.server_load_cov =
        server_load.mean() > 0.0 ? server_load.stddev() / server_load.mean() : 0.0;
  }

  for (std::size_t s = 0; s < cluster.size(); ++s) {
    if (auto* ge = dynamic_cast<sched::GoodEnoughScheduler*>(
            &cluster.node(s).scheduler())) {
      result.rounds += ge->rounds();
      result.wf_rounds += ge->wf_rounds();
      result.es_rounds += ge->es_rounds();
    }
  }

  if (telemetry != nullptr) {
    obs::MetricsRegistry& reg = telemetry->metrics;
    reg.counter("jobs.released", "jobs").add(static_cast<double>(result.released));
    reg.counter("jobs.completed", "jobs").add(static_cast<double>(result.completed));
    reg.counter("jobs.partial", "jobs").add(static_cast<double>(result.partial));
    reg.counter("jobs.dropped", "jobs").add(static_cast<double>(result.dropped));
    reg.counter("energy.total_j", "J").add(result.energy);
    reg.counter("energy.static_j", "J").add(result.static_energy);
    reg.counter("sim.events_executed", "events")
        .add(static_cast<double>(sim.executed_events()));
    // Worst run quality across merged tasks; the full distribution is in the
    // run.quality histogram.
    reg.gauge("quality.monitored", "ratio", obs::Gauge::Merge::kMin)
        .set(result.quality);
    reg.histogram("run.quality",
                  {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, "ratio")
        .observe(result.quality);
    if (cluster.size() == 1) {
      // Single-server runs keep the unprefixed metric schema byte-for-byte.
      cluster.node(0).server().export_metrics(reg, horizon);
    } else {
      cluster.export_metrics(reg, horizon);
    }
  }
  return result;
}

}  // namespace ge::exp
