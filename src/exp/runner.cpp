#include "exp/runner.h"

#include "exp/timeline.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "core/good_enough.h"
#include "obs/analysis/watchdog.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "quality/quality_function.h"
#include "quality/quality_monitor.h"
#include "server/multicore_server.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/quantiles.h"
#include "util/stats.h"
#include "workload/generator.h"
#include "workload/job_store.h"

namespace ge::exp {
namespace {

constexpr double kCompleteTol = 1e-6;

// Per-job end-of-life accounting, shared verbatim by the materialised and
// streaming paths.  Bit-identity between the two paths hinges on this being
// the *single* definition of the per-job arithmetic: both feed jobs in id
// order, so the floating-point accumulation sequence is identical.
struct JobAccounting {
  const quality::QualityFunction* f;
  RunResult* result;
  double achieved = 0.0;
  double potential = 0.0;
  util::QuantileCollector responses;

  void account(const workload::Job& job) {
    GE_CHECK(job.settled, "job left unsettled at end of run");
    achieved += f->value(std::min(job.executed, job.demand));
    potential += f->value(job.demand);
    GE_CHECK(job.finish_time >= job.arrival - 1e-9, "finish before arrival");
    responses.add((job.finish_time - job.arrival) * 1000.0);
    ++result->released;
    if (job.executed >= job.demand - kCompleteTol) {
      ++result->completed;
    } else if (job.executed > kCompleteTol) {
      ++result->partial;
    } else {
      ++result->dropped;
    }
  }
};

// State of the streaming job pipeline (docs/DESIGN.md, "Streaming core").
//
// Jobs live in a JobStore arena from release to retirement; arrivals are
// self-scheduling (each arrival event stages the next one), so at most one
// generated-but-unreleased job exists at a time.  Retirement happens at the
// deadline event -- the last event that can touch a job -- and retired jobs
// pass through an id-ordered reorder buffer into JobAccounting, because
// random deadline windows let a later job's deadline fire before an earlier
// one's.  The buffer stays small: it holds at most the jobs whose deadline
// windows overlap (bounded by arrival rate x widest window), not the run.
struct StreamState {
  workload::JobStore store;
  workload::WorkloadGenerator gen;
  std::optional<workload::Job> staged;  // generated, not yet released
  std::uint64_t remaining;              // releases still allowed under max_jobs
  std::map<std::uint64_t, workload::Job> retired;  // id-ordered reorder buffer
  std::uint64_t next_account = 1;  // generator ids start at 1

  StreamState(double quarantine_delay, const workload::WorkloadSpec& spec,
              std::uint64_t max_jobs)
      : store(quarantine_delay),
        gen(spec),
        remaining(max_jobs == 0 ? std::numeric_limits<std::uint64_t>::max()
                                : max_jobs) {}
};

// One experiment end to end.  `trace == nullptr` selects the streaming path;
// everything outside job release/accounting is shared, and release order is
// engineered so the event sequence matches the materialised path wherever
// the (time, seq) tie order is observable -- see the comments at the
// streaming block.
RunResult run_simulation_impl(const ExperimentConfig& cfg,
                              const SchedulerSpec& spec,
                              const workload::Trace* trace, Timeline* timeline,
                              obs::RunTelemetry* telemetry) {
  cfg.validate();
  sim::Simulator sim(cfg.event_queue);
  // Install telemetry before any component is built: cores and schedulers
  // cache their handles at construction.
  obs::Telemetry tel_view;
  if (telemetry != nullptr) {
    tel_view = telemetry->view();
    sim.set_telemetry(&tel_view);
  }
  obs::TraceBuffer* trace_buf = nullptr;
  if (obs::Telemetry* tel = sim.telemetry()) {
    trace_buf = tel->trace;
  }
  const power::PowerModel pm = cfg.power_model();
  const double budget = effective_budget(spec, cfg);
  const std::unique_ptr<quality::QualityFunction> fp = cfg.make_quality_function();
  const quality::QualityFunction& f = *fp;

  // Every run is a cluster run; the paper's single server is the one-node
  // cluster with the passthrough dispatcher (bit-identical results -- see
  // src/cluster/cluster.h and the golden test in tests/test_cluster.cpp).
  cluster::Cluster cluster(
      cfg.cluster_node_specs(budget), f,
      [&spec, &cfg](const sched::SchedulerEnv& env,
                    const power::DiscreteSpeedTable* table) {
        return make_scheduler(spec, env, cfg, table);
      },
      cfg.dispatch, cfg.seed, sim);

  // The watchdog observes the trace buffer live, re-deriving each invariant
  // from the same events the analysis layer consumes; violations land in the
  // buffer itself (as kViolation events) plus the watchdog.* counters.
  std::unique_ptr<obs::analysis::Watchdog> watchdog;
  if (telemetry != nullptr && telemetry->want_watchdog && trace_buf != nullptr) {
    obs::analysis::WatchdogOptions wopts;
    for (const cluster::NodeSpec& node : cfg.cluster_node_specs(budget)) {
      wopts.models.push_back(node.core_models);
      wopts.server_budgets_w.push_back(node.power_budget);
    }
    watchdog = std::make_unique<obs::analysis::Watchdog>(*trace_buf, wopts,
                                                         &telemetry->metrics);
    trace_buf->set_observer(watchdog.get());
  }

  RunResult result;
  JobAccounting acct{&f, &result};

  // Materialised path: private, mutable copy of the trace; addresses are
  // stable for the run.  Accounting happens after the run, in id order.
  std::vector<workload::Job> jobs;
  // Streaming path: arena-backed pipeline; accounting happens online as the
  // reorder buffer drains in id order.
  std::unique_ptr<StreamState> st;
  std::function<void()> release_staged;
  std::function<void()> stage_next;

  if (trace != nullptr) {
    jobs = trace->jobs();
    for (workload::Job& job : jobs) {
      sim.schedule_at(job.arrival, [&cluster, &job, trace_buf] {
        if (trace_buf != nullptr) {
          obs::TraceEvent ev;
          ev.type = obs::TraceEventType::kArrival;
          ev.t = job.arrival;
          ev.job = static_cast<std::int64_t>(job.id);
          ev.a = job.demand;
          ev.b = job.deadline;
          trace_buf->push(ev);
        }
        cluster.on_job_arrival(&job);
      });
      sim.schedule_at(job.deadline, [&cluster, &job] { cluster.on_deadline(&job); });
    }
  } else {
    // The quarantine must outlast every scheduler-side reference to a
    // settled job.  The GE engine purges settled pointers from its waiting
    // queue and EDF caches at the next round, and the quantum chain bounds
    // the round gap; two quanta leave generous slack.
    st = std::make_unique<StreamState>(2.0 * cfg.quantum + 1e-3,
                                       cfg.workload_spec(), cfg.max_jobs);
    stage_next = [&cfg, &sim, &st, &release_staged] {
      if (st->remaining == 0) {
        return;  // max_jobs cap: stop without drawing more randomness
      }
      workload::Job job = st->gen.next();
      if (job.arrival >= cfg.duration) {
        return;  // same stop rule as WorkloadGenerator::generate_until
      }
      --st->remaining;
      const double at = job.arrival;
      st->staged = std::move(job);
      sim.schedule_at(at, release_staged);
    };
    release_staged = [&cluster, &sim, &st, &stage_next, &acct, trace_buf] {
      st->store.reclaim(sim.now());
      workload::Job* job = st->store.acquire(*st->staged);
      st->staged.reset();
      // Event-creation order mirrors the materialised path's (time, seq)
      // tie order everywhere ties are possible: the deadline is scheduled
      // before anything the arrival round may schedule (plan-boundary
      // events often land exactly on a deadline), and the next arrival is
      // staged before the round runs.
      sim.schedule_at(job->deadline, [&cluster, &sim, &st, &acct, job] {
        cluster.on_deadline(job);
        GE_CHECK(job->settled, "deadline event left the job unsettled");
        st->retired.emplace(job->id, *job);
        st->store.retire(job, sim.now());
        while (!st->retired.empty() &&
               st->retired.begin()->first == st->next_account) {
          acct.account(st->retired.begin()->second);
          st->retired.erase(st->retired.begin());
          ++st->next_account;
        }
      });
      stage_next();
      if (trace_buf != nullptr) {
        obs::TraceEvent ev;
        ev.type = obs::TraceEventType::kArrival;
        ev.t = job->arrival;
        ev.job = static_cast<std::int64_t>(job->id);
        ev.a = job->demand;
        ev.b = job->deadline;
        trace_buf->push(ev);
      }
      cluster.on_job_arrival(job);
    };
    stage_next();  // first arrival gets seq 1, like the materialised path
  }

  if (cfg.verify_power) {
    // Sample total power on a grid; no server may exceed its own budget.
    const double step = 0.01;
    for (double t = step; t < cfg.duration + cfg.deadline_interval_max; t += step) {
      sim.schedule_at(t, [&cluster, &sim] {
        for (std::size_t s = 0; s < cluster.size(); ++s) {
          const server::MulticoreServer& server = cluster.node(s).server();
          GE_CHECK(server.total_power(sim.now()) <=
                       server.power_budget() * (1.0 + 1e-6) + 1e-6,
                   "total power exceeded the budget");
        }
      });
    }
  }

  if (cfg.failure_time >= 0.0 && cfg.failure_cores > 0) {
    sim.schedule_at(cfg.failure_time, [&cluster, &sim, &cfg] {
      // Failures hit the highest-indexed cores of the highest-indexed server
      // (validate() guarantees it has enough cores).
      server::MulticoreServer& server = cluster.node(cluster.size() - 1).server();
      const std::size_t n = server.core_count();
      for (std::size_t i = n - cfg.failure_cores; i < n; ++i) {
        server.core(i).set_offline(sim.now());
      }
    });
  }

  // Drain: all deadlines fall within duration + the widest deadline window.
  const double horizon = cfg.duration + cfg.deadline_interval_max + 2.0 * cfg.quantum;

  if (timeline != nullptr) {
    GE_CHECK(timeline->interval > 0.0, "timeline interval must be positive");
    // Mode comes from node 0's scheduler; with GE on every node they switch
    // on their own feedback, and node 0 is the representative trace.
    auto* ge_sched =
        dynamic_cast<sched::GoodEnoughScheduler*>(&cluster.node(0).scheduler());
    for (double t = timeline->interval; t < horizon; t += timeline->interval) {
      sim.schedule_at(t, [&cluster, &sim, ge_sched, timeline] {
        TimelinePoint point;
        point.time = sim.now();
        point.total_power = cluster.total_power(point.time);
        point.quality = cluster.monitored_quality();
        point.busy_cores = cluster.busy_cores(point.time);
        point.backlog = cluster.total_backlog();
        if (ge_sched != nullptr) {
          point.mode =
              ge_sched->mode() == sched::GoodEnoughScheduler::Mode::kBq ? 1 : 0;
        }
        timeline->points.push_back(point);
      });
    }
  }

  {
    obs::ScopedTimer run_timer(
        tel_view.profile != nullptr ? &tel_view.profile->sim_run : nullptr);
    cluster.start();
    sim.run_until(horizon);
    cluster.finish();
  }

  result.scheduler = cluster.node(0).scheduler().name();
  result.arrival_rate = cfg.arrival_rate;
  result.duration = cfg.duration;
  result.num_servers = static_cast<std::uint64_t>(cluster.size());
  result.dispatch = cluster.dispatcher().name();

  if (trace != nullptr) {
    acct.responses.reserve(jobs.size());
    for (const workload::Job& job : jobs) {
      acct.account(job);
    }
  } else {
    // Everything released must have retired (every deadline precedes the
    // horizon) and drained through the reorder buffer in id order.
    GE_CHECK(!st->staged.has_value(), "staged arrival never released");
    GE_CHECK(st->retired.empty(), "retired jobs stuck in the reorder buffer");
    GE_CHECK(st->store.in_flight() == 0, "jobs still in flight after drain");
  }
  result.quality = acct.potential > 0.0 ? acct.achieved / acct.potential : 1.0;
  result.energy = cluster.total_energy();

  if (watchdog != nullptr) {
    obs::analysis::Watchdog::Totals totals;
    totals.released = result.released;
    for (std::size_t s = 0; s < cluster.size(); ++s) {
      totals.server_energy_j.push_back(cluster.node(s).server().total_energy());
    }
    watchdog->finish(sim.now(), totals);
    trace_buf->set_observer(nullptr);
  }

  result.static_energy = cfg.static_power_per_core *
                         static_cast<double>(cluster.total_cores()) * horizon;
  result.avg_power = cfg.duration > 0.0 ? result.energy / cfg.duration : 0.0;
  util::QuantileCollector& responses = acct.responses;
  if (responses.count() > 0) {
    result.mean_response_ms = responses.mean();
    result.p50_response_ms = responses.quantile(0.50);
    result.p95_response_ms = responses.quantile(0.95);
    result.p99_response_ms = responses.quantile(0.99);
  }

  double aes = 0.0;
  double bq = 0.0;
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    aes += cluster.node(s).scheduler().aes_time(sim.now());
    bq += cluster.node(s).scheduler().bq_time(sim.now());
  }
  result.aes_fraction = (aes + bq) > 0.0 ? aes / (aes + bq) : 0.0;

  const util::TimeWeightedStats speed = cluster.aggregate_speed_stats();
  result.avg_speed_ghz = pm.ghz(speed.mean());
  const double ghz_scale = 1.0 / (cfg.units_per_ghz * cfg.units_per_ghz);
  result.speed_variance = speed.variance() * ghz_scale;
  result.busy_fraction = cluster.total_busy_time() /
                         (static_cast<double>(cluster.total_cores()) * horizon);
  util::RunningStats core_energy;
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    const server::MulticoreServer& server = cluster.node(s).server();
    for (std::size_t i = 0; i < server.core_count(); ++i) {
      core_energy.add(server.core(i).energy());
    }
  }
  result.energy_cov =
      core_energy.mean() > 0.0 ? core_energy.stddev() / core_energy.mean() : 0.0;

  if (cluster.size() > 1) {
    util::RunningStats server_energy;
    util::RunningStats server_load;
    for (std::size_t s = 0; s < cluster.size(); ++s) {
      server_energy.add(cluster.node(s).server().total_energy());
      server_load.add(static_cast<double>(cluster.node(s).dispatched()));
    }
    result.server_energy_cov = server_energy.mean() > 0.0
                                   ? server_energy.stddev() / server_energy.mean()
                                   : 0.0;
    result.server_load_cov =
        server_load.mean() > 0.0 ? server_load.stddev() / server_load.mean() : 0.0;
  }

  for (std::size_t s = 0; s < cluster.size(); ++s) {
    if (auto* ge = dynamic_cast<sched::GoodEnoughScheduler*>(
            &cluster.node(s).scheduler())) {
      result.rounds += ge->rounds();
      result.wf_rounds += ge->wf_rounds();
      result.es_rounds += ge->es_rounds();
    }
  }

  if (telemetry != nullptr) {
    obs::MetricsRegistry& reg = telemetry->metrics;
    reg.counter("jobs.released", "jobs").add(static_cast<double>(result.released));
    reg.counter("jobs.completed", "jobs").add(static_cast<double>(result.completed));
    reg.counter("jobs.partial", "jobs").add(static_cast<double>(result.partial));
    reg.counter("jobs.dropped", "jobs").add(static_cast<double>(result.dropped));
    reg.counter("energy.total_j", "J").add(result.energy);
    reg.counter("energy.static_j", "J").add(result.static_energy);
    reg.counter("sim.events_executed", "events")
        .add(static_cast<double>(sim.executed_events()));
    // Worst run quality across merged tasks; the full distribution is in the
    // run.quality histogram.
    reg.gauge("quality.monitored", "ratio", obs::Gauge::Merge::kMin)
        .set(result.quality);
    reg.histogram("run.quality",
                  {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, "ratio")
        .observe(result.quality);
    if (st != nullptr) {
      // Streaming-only memory gauges; the non-streaming metric schema stays
      // byte-identical.  Peaks merge with kMax across tasks.
      reg.gauge("stream.peak_in_flight", "jobs", obs::Gauge::Merge::kMax)
          .set(static_cast<double>(st->store.peak_in_flight()));
      reg.gauge("stream.arena_slots", "jobs", obs::Gauge::Merge::kMax)
          .set(static_cast<double>(st->store.capacity()));
      reg.gauge("stream.arena_bytes", "bytes", obs::Gauge::Merge::kMax)
          .set(static_cast<double>(st->store.memory_bytes()));
      reg.gauge("sim.peak_pending_events", "events", obs::Gauge::Merge::kMax)
          .set(static_cast<double>(sim.peak_pending_events()));
    }
    if (cluster.size() == 1) {
      // Single-server runs keep the unprefixed metric schema byte-for-byte.
      cluster.node(0).server().export_metrics(reg, horizon);
    } else {
      cluster.export_metrics(reg, horizon);
    }
  }
  return result;
}

}  // namespace

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec) {
  if (cfg.stream) {
    return run_simulation_stream(cfg, spec);
  }
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration, cfg.max_jobs);
  return run_simulation(cfg, spec, trace);
}

RunResult run_simulation_stream(const ExperimentConfig& cfg,
                                const SchedulerSpec& spec, Timeline* timeline,
                                obs::RunTelemetry* telemetry) {
  return run_simulation_impl(cfg, spec, nullptr, timeline, telemetry);
}

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace) {
  return run_simulation(cfg, spec, trace, nullptr);
}

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace, Timeline* timeline) {
  return run_simulation(cfg, spec, trace, timeline, nullptr);
}

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace, Timeline* timeline,
                         obs::RunTelemetry* telemetry) {
  GE_CHECK(!cfg.stream,
           "cfg.stream is set but a materialised trace was supplied; use "
           "run_simulation_stream (or run_simulation without a trace)");
  return run_simulation_impl(cfg, spec, &trace, timeline, telemetry);
}

}  // namespace ge::exp
