#include "exp/runner.h"

#include "exp/timeline.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/good_enough.h"
#include "obs/telemetry.h"
#include "quality/quality_function.h"
#include "quality/quality_monitor.h"
#include "server/multicore_server.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/quantiles.h"

namespace ge::exp {
namespace {

constexpr double kCompleteTol = 1e-6;

}  // namespace

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec) {
  const workload::Trace trace = workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  return run_simulation(cfg, spec, trace);
}

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace) {
  return run_simulation(cfg, spec, trace, nullptr);
}

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace, Timeline* timeline) {
  return run_simulation(cfg, spec, trace, timeline, nullptr);
}

RunResult run_simulation(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                         const workload::Trace& trace, Timeline* timeline,
                         obs::RunTelemetry* telemetry) {
  cfg.validate();
  sim::Simulator sim;
  // Install telemetry before any component is built: cores and schedulers
  // cache their handles at construction.
  obs::Telemetry tel_view;
  if (telemetry != nullptr) {
    tel_view = telemetry->view();
    sim.set_telemetry(&tel_view);
  }
  obs::TraceBuffer* trace_buf = nullptr;
  if (obs::Telemetry* tel = sim.telemetry()) {
    trace_buf = tel->trace;
  }
  const power::PowerModel pm = cfg.power_model();
  const double budget = effective_budget(spec, cfg);
  server::MulticoreServer server(cfg.core_power_models(), budget, sim);
  const std::unique_ptr<quality::QualityFunction> fp = cfg.make_quality_function();
  const quality::QualityFunction& f = *fp;
  quality::QualityMonitor monitor(f, cfg.monitor_window);

  std::unique_ptr<power::DiscreteSpeedTable> table;
  if (cfg.discrete_speeds) {
    table = std::make_unique<power::DiscreteSpeedTable>(
        power::DiscreteSpeedTable::uniform_ghz(cfg.discrete_step_ghz,
                                               cfg.discrete_max_ghz, cfg.units_per_ghz));
  }

  sched::SchedulerEnv env;
  env.sim = &sim;
  env.server = &server;
  env.quality_function = &f;
  env.monitor = &monitor;
  std::unique_ptr<sched::Scheduler> scheduler =
      make_scheduler(spec, env, cfg, table.get());

  for (std::size_t i = 0; i < cfg.cores; ++i) {
    server.core(i).set_job_finished_callback(
        [&scheduler](workload::Job* job) { scheduler->on_job_finished(job); });
    server.core(i).set_idle_callback(
        [&scheduler](int core_id) { scheduler->on_core_idle(core_id); });
  }

  // Private, mutable copy of the trace; addresses are stable for the run.
  std::vector<workload::Job> jobs = trace.jobs();
  for (workload::Job& job : jobs) {
    sim.schedule_at(job.arrival, [&scheduler, &job, trace_buf] {
      if (trace_buf != nullptr) {
        obs::TraceEvent ev;
        ev.type = obs::TraceEventType::kArrival;
        ev.t = job.arrival;
        ev.job = static_cast<std::int64_t>(job.id);
        ev.a = job.demand;
        ev.b = job.deadline;
        trace_buf->push(ev);
      }
      scheduler->on_job_arrival(&job);
    });
    sim.schedule_at(job.deadline, [&scheduler, &job] { scheduler->on_deadline(&job); });
  }

  if (cfg.verify_power) {
    // Sample total power on a grid; the budget must never be exceeded.
    const double step = 0.01;
    for (double t = step; t < cfg.duration + cfg.deadline_interval_max; t += step) {
      sim.schedule_at(t, [&server, &sim, budget] {
        GE_CHECK(server.total_power(sim.now()) <= budget * (1.0 + 1e-6) + 1e-6,
                 "total power exceeded the budget");
      });
    }
  }

  if (cfg.failure_time >= 0.0 && cfg.failure_cores > 0) {
    GE_CHECK(cfg.failure_cores <= cfg.cores, "cannot fail more cores than exist");
    sim.schedule_at(cfg.failure_time, [&server, &sim, &cfg] {
      for (std::size_t i = cfg.cores - cfg.failure_cores; i < cfg.cores; ++i) {
        server.core(i).set_offline(sim.now());
      }
    });
  }

  // Drain: all deadlines fall within duration + the widest deadline window.
  const double horizon = cfg.duration + cfg.deadline_interval_max + 2.0 * cfg.quantum;

  if (timeline != nullptr) {
    GE_CHECK(timeline->interval > 0.0, "timeline interval must be positive");
    auto* ge_sched = dynamic_cast<sched::GoodEnoughScheduler*>(scheduler.get());
    for (double t = timeline->interval; t < horizon; t += timeline->interval) {
      sim.schedule_at(t, [&server, &sim, &monitor, &scheduler, ge_sched, timeline,
                          &cfg] {
        TimelinePoint point;
        point.time = sim.now();
        point.total_power = server.total_power(point.time);
        point.quality = monitor.quality();
        for (std::size_t i = 0; i < cfg.cores; ++i) {
          point.busy_cores += server.core(i).busy(point.time) ? 1 : 0;
        }
        point.backlog = scheduler->backlog();
        if (ge_sched != nullptr) {
          point.mode =
              ge_sched->mode() == sched::GoodEnoughScheduler::Mode::kBq ? 1 : 0;
        }
        timeline->points.push_back(point);
      });
    }
  }

  scheduler->start();
  sim.run_until(horizon);
  scheduler->finish();

  RunResult result;
  result.scheduler = scheduler->name();
  result.arrival_rate = cfg.arrival_rate;
  result.duration = cfg.duration;

  double achieved = 0.0;
  double potential = 0.0;
  util::QuantileCollector responses;
  responses.reserve(jobs.size());
  for (const workload::Job& job : jobs) {
    GE_CHECK(job.settled, "job left unsettled at end of run");
    achieved += f.value(std::min(job.executed, job.demand));
    potential += f.value(job.demand);
    GE_CHECK(job.finish_time >= job.arrival - 1e-9, "finish before arrival");
    responses.add((job.finish_time - job.arrival) * 1000.0);
    ++result.released;
    if (job.executed >= job.demand - kCompleteTol) {
      ++result.completed;
    } else if (job.executed > kCompleteTol) {
      ++result.partial;
    } else {
      ++result.dropped;
    }
  }
  result.quality = potential > 0.0 ? achieved / potential : 1.0;
  result.energy = server.total_energy();
  result.static_energy =
      cfg.static_power_per_core * static_cast<double>(cfg.cores) * horizon;
  result.avg_power = cfg.duration > 0.0 ? result.energy / cfg.duration : 0.0;
  if (responses.count() > 0) {
    result.mean_response_ms = responses.mean();
    result.p50_response_ms = responses.quantile(0.50);
    result.p95_response_ms = responses.quantile(0.95);
    result.p99_response_ms = responses.quantile(0.99);
  }

  const double aes = scheduler->aes_time(sim.now());
  const double bq = scheduler->bq_time(sim.now());
  result.aes_fraction = (aes + bq) > 0.0 ? aes / (aes + bq) : 0.0;

  const util::TimeWeightedStats speed = server.aggregate_speed_stats();
  result.avg_speed_ghz = pm.ghz(speed.mean());
  const double ghz_scale = 1.0 / (cfg.units_per_ghz * cfg.units_per_ghz);
  result.speed_variance = speed.variance() * ghz_scale;
  result.busy_fraction =
      server.total_busy_time() / (static_cast<double>(cfg.cores) * horizon);
  util::RunningStats core_energy;
  for (std::size_t i = 0; i < cfg.cores; ++i) {
    core_energy.add(server.core(i).energy());
  }
  result.energy_cov =
      core_energy.mean() > 0.0 ? core_energy.stddev() / core_energy.mean() : 0.0;

  if (auto* ge = dynamic_cast<sched::GoodEnoughScheduler*>(scheduler.get())) {
    result.rounds = ge->rounds();
    result.wf_rounds = ge->wf_rounds();
    result.es_rounds = ge->es_rounds();
  }

  if (telemetry != nullptr) {
    obs::MetricsRegistry& reg = telemetry->metrics;
    reg.counter("jobs.released", "jobs").add(static_cast<double>(result.released));
    reg.counter("jobs.completed", "jobs").add(static_cast<double>(result.completed));
    reg.counter("jobs.partial", "jobs").add(static_cast<double>(result.partial));
    reg.counter("jobs.dropped", "jobs").add(static_cast<double>(result.dropped));
    reg.counter("energy.total_j", "J").add(result.energy);
    reg.counter("energy.static_j", "J").add(result.static_energy);
    reg.counter("sim.events_executed", "events")
        .add(static_cast<double>(sim.executed_events()));
    // Worst run quality across merged tasks; the full distribution is in the
    // run.quality histogram.
    reg.gauge("quality.monitored", "ratio", obs::Gauge::Merge::kMin)
        .set(result.quality);
    reg.histogram("run.quality",
                  {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, "ratio")
        .observe(result.quality);
    server.export_metrics(reg, horizon);
  }
  return result;
}

}  // namespace ge::exp
