#include "exp/offline_reference.h"

#include <cmath>
#include <vector>

#include "opt/job_cutter.h"
#include "opt/yds.h"
#include "util/check.h"

namespace ge::exp {

OfflineReference offline_reference(const workload::Trace& trace, double q_target,
                                   const ExperimentConfig& cfg) {
  OfflineReference ref;
  if (trace.empty()) {
    ref.within_budget = true;
    return ref;
  }
  const auto f = cfg.make_quality_function();

  // 1. Global Longest-First cut across the whole trace.
  std::vector<double> demands;
  demands.reserve(trace.size());
  for (const workload::Job& job : trace.jobs()) {
    demands.push_back(job.demand);
  }
  const opt::CutResult cut = opt::cut_longest_first(demands, *f, q_target);
  ref.cut_level = cut.level;
  ref.quality = cut.quality;

  // 2. Fluid m-core machine: splitting total speed s evenly is optimal by
  // convexity, so P_m(s) = m * a * (s/m)^beta = (a * m^{1-beta}) * s^beta.
  const double m = static_cast<double>(cfg.cores);
  const power::PowerModel fluid(cfg.power_a * std::pow(m, 1.0 - cfg.power_beta),
                                cfg.power_beta, cfg.units_per_ghz);

  // 3. Preemptive YDS with true release times on the cut workload.
  std::vector<opt::YdsJob> yds_jobs;
  yds_jobs.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const workload::Job& job = trace.jobs()[i];
    const double work = cut.targets[i];
    if (work <= 1e-9) {
      continue;
    }
    ref.total_work += work;
    yds_jobs.push_back(opt::YdsJob{job.arrival, job.deadline, work});
  }
  const opt::YdsSchedule schedule = opt::yds_schedule(yds_jobs);
  GE_CHECK(std::abs(schedule.total_work() - ref.total_work) <=
               1e-6 * (1.0 + ref.total_work),
           "YDS schedule lost work");
  ref.energy = schedule.energy(fluid);
  ref.peak_power = fluid.power(schedule.max_speed());
  ref.within_budget = ref.peak_power <= cfg.power_budget * (1.0 + 1e-9);
  return ref;
}

}  // namespace ge::exp
