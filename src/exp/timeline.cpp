#include "exp/timeline.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace ge::exp {

std::string Timeline::to_csv() const {
  std::ostringstream os;
  os << "time,total_power_w,quality,busy_cores,backlog,mode\n";
  char buf[160];
  for (const TimelinePoint& p : points) {
    std::snprintf(buf, sizeof(buf), "%.6f,%.4f,%.6f,%d,%zu,%d\n", p.time,
                  p.total_power, p.quality, p.busy_cores, p.backlog, p.mode);
    os << buf;
  }
  return os.str();
}

void Timeline::save_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  GE_CHECK(out.good(), "cannot open timeline file for writing");
  out << to_csv();
  GE_CHECK(out.good(), "timeline write failed");
}

double Timeline::peak_power() const {
  double peak = 0.0;
  for (const TimelinePoint& p : points) {
    if (p.total_power > peak) {
      peak = p.total_power;
    }
  }
  return peak;
}

double Timeline::bq_share() const {
  std::size_t bq = 0;
  std::size_t applicable = 0;
  for (const TimelinePoint& p : points) {
    if (p.mode >= 0) {
      ++applicable;
      bq += p.mode == 1 ? 1u : 0u;
    }
  }
  return applicable > 0 ? static_cast<double>(bq) / static_cast<double>(applicable)
                        : 0.0;
}

}  // namespace ge::exp
