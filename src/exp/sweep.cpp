#include "exp/sweep.h"

#include "util/check.h"

namespace ge::exp {

std::vector<SweepPoint> sweep(
    const ExperimentConfig& base, const std::vector<SchedulerSpec>& specs,
    const std::vector<double>& xs,
    const std::function<ExperimentConfig(ExperimentConfig, double)>& configure) {
  GE_CHECK(!specs.empty(), "sweep needs at least one scheduler");
  std::vector<SweepPoint> points;
  points.reserve(xs.size());
  for (double x : xs) {
    const ExperimentConfig cfg = configure(base, x);
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    SweepPoint point;
    point.x = x;
    point.results.reserve(specs.size());
    for (const SchedulerSpec& spec : specs) {
      point.results.push_back(run_simulation(cfg, spec, trace));
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<SweepPoint> sweep_arrival_rates(const ExperimentConfig& base,
                                            const std::vector<SchedulerSpec>& specs,
                                            const std::vector<double>& rates) {
  return sweep(base, specs, rates, [](ExperimentConfig cfg, double rate) {
    cfg.arrival_rate = rate;
    return cfg;
  });
}

util::Table series_table(const std::vector<SweepPoint>& points,
                         const std::string& x_name,
                         const std::function<double(const RunResult&)>& metric,
                         int precision) {
  GE_CHECK(!points.empty(), "empty sweep");
  std::vector<std::string> header{x_name};
  for (const RunResult& r : points.front().results) {
    header.push_back(r.scheduler);
  }
  util::Table table(std::move(header));
  for (const SweepPoint& point : points) {
    table.begin_row();
    table.add(point.x, 1);
    for (const RunResult& r : point.results) {
      table.add(metric(r), precision);
    }
  }
  return table;
}

std::vector<double> paper_arrival_rates() {
  return {100.0, 125.0, 150.0, 175.0, 200.0, 225.0, 250.0};
}

}  // namespace ge::exp
