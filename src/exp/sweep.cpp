#include "exp/sweep.h"

#include "util/check.h"

namespace ge::exp {
namespace {

// Slices the engine's flat, task-ordered result vector back into the
// point-major grid the plan builders appended.
std::vector<SweepPoint> collect_points(const std::vector<double>& xs,
                                       std::size_t per_point,
                                       std::vector<RunResult> results) {
  std::vector<SweepPoint> points;
  points.reserve(xs.size());
  std::size_t next = 0;
  for (double x : xs) {
    SweepPoint point;
    point.x = x;
    point.results.reserve(per_point);
    for (std::size_t s = 0; s < per_point; ++s) {
      point.results.push_back(std::move(results[next++]));
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace

std::vector<SweepPoint> sweep(
    const ExperimentConfig& base, const std::vector<SchedulerSpec>& specs,
    const std::vector<double>& xs,
    const std::function<ExperimentConfig(ExperimentConfig, double)>& configure,
    const ExecutionOptions& exec) {
  GE_CHECK(!specs.empty(), "sweep needs at least one scheduler");
  ExperimentPlan plan;
  for (std::size_t p = 0; p < xs.size(); ++p) {
    const ExperimentConfig cfg = configure(base, xs[p]);
    for (const SchedulerSpec& spec : specs) {
      plan.add(cfg, spec, p);
    }
  }
  return collect_points(xs, specs.size(), run_plan(plan, exec));
}

std::vector<SweepPoint> sweep_arrival_rates(const ExperimentConfig& base,
                                            const std::vector<SchedulerSpec>& specs,
                                            const std::vector<double>& rates,
                                            const ExecutionOptions& exec) {
  return sweep(base, specs, rates, configure_arrival_rate, exec);
}

std::vector<SweepPoint> sweep_variants(
    const ExperimentConfig& base, const std::vector<RunVariant>& variants,
    const std::vector<double>& xs,
    const std::function<ExperimentConfig(ExperimentConfig, double)>& configure,
    const ExecutionOptions& exec) {
  GE_CHECK(!variants.empty(), "sweep needs at least one variant");
  ExperimentPlan plan;
  for (std::size_t p = 0; p < xs.size(); ++p) {
    const ExperimentConfig cfg = configure(base, xs[p]);
    for (const RunVariant& variant : variants) {
      plan.add(variant.tweak ? variant.tweak(cfg) : cfg, variant.spec, p);
    }
  }
  std::vector<RunResult> results = run_plan(plan, exec);
  // Overwrite the runner's scheduler name with the variant label so that
  // series_table() headers name the compared series, not "GE" six times.
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].scheduler = variants[i % variants.size()].label;
  }
  return collect_points(xs, variants.size(), std::move(results));
}

util::Table series_table(const std::vector<SweepPoint>& points,
                         const std::string& x_name,
                         const std::function<double(const RunResult&)>& metric,
                         int precision) {
  std::vector<std::string> header{x_name};
  if (!points.empty()) {
    for (const RunResult& r : points.front().results) {
      header.push_back(r.scheduler);
    }
  }
  util::Table table(std::move(header));
  for (const SweepPoint& point : points) {
    table.begin_row();
    table.add(point.x, 1);
    for (const RunResult& r : point.results) {
      table.add(metric(r), precision);
    }
  }
  return table;
}

std::vector<double> paper_arrival_rates() {
  return {100.0, 125.0, 150.0, 175.0, 200.0, 225.0, 250.0};
}

ExperimentConfig configure_arrival_rate(ExperimentConfig cfg, double rate) {
  cfg.arrival_rate = rate;
  return cfg;
}

}  // namespace ge::exp
