// Registry plugins for the non-cutting queue-policy baselines: FCFS, FDFS,
// LJF, SJF.  All four share QueuePolicyScheduler and differ only in the
// dispatch order.
#include <memory>

#include "core/queue_policy.h"
#include "exp/config.h"
#include "exp/scheduler_registry.h"
#include "exp/scheduler_spec.h"

namespace ge::exp {
namespace {

SchedulerPlugin make_queue_plugin(std::string name, sched::QueueOrder order,
                                  std::string summary) {
  SchedulerPlugin p;
  p.name = std::move(name);
  p.summary = std::move(summary);
  p.factory = [order](const SchedulerSpec&, const sched::SchedulerEnv& env,
                      const ExperimentConfig&,
                      const power::DiscreteSpeedTable* table) {
    sched::QueuePolicyOptions opts;
    opts.order = order;
    opts.speed_table = table;
    return std::make_unique<sched::QueuePolicyScheduler>(env, opts);
  };
  return p;
}

SchedulerPlugin make_fcfs() {
  return make_queue_plugin("FCFS", sched::QueueOrder::kFcfs,
                           "First-Come-First-Served queue baseline");
}

SchedulerPlugin make_fdfs() {
  return make_queue_plugin("FDFS", sched::QueueOrder::kFdfs,
                           "First-Deadline-First-Served (EDF) queue baseline");
}

SchedulerPlugin make_ljf() {
  return make_queue_plugin("LJF", sched::QueueOrder::kLjf,
                           "Longest-Job-First queue baseline");
}

SchedulerPlugin make_sjf() {
  return make_queue_plugin("SJF", sched::QueueOrder::kSjf,
                           "Shortest-Job-First queue baseline");
}

GE_REGISTER_SCHEDULER(make_fcfs);
GE_REGISTER_SCHEDULER(make_fdfs);
GE_REGISTER_SCHEDULER(make_ljf);
GE_REGISTER_SCHEDULER(make_sjf);

}  // namespace
}  // namespace ge::exp
