// Registry plugins for the paper's own scheduler family: GE and its
// ablations (GE-NoComp, GE-ES, GE-WF, GE-RR), the Over-Qualified control
// (OQ), Best Effort (BE) and its calibrated power/speed-control variants
// (BE-P, BE-S).  Behaviour is pinned bit-identical to the pre-registry
// switch by tests/test_golden_schedulers.cpp.
#include <algorithm>
#include <cmath>
#include <memory>

#include "core/good_enough.h"
#include "exp/config.h"
#include "exp/scheduler_registry.h"
#include "exp/scheduler_spec.h"
#include "util/check.h"
#include "util/table.h"

namespace ge::exp {
namespace {

sched::GoodEnoughOptions ge_options(const ExperimentConfig& cfg,
                                    const power::DiscreteSpeedTable* table,
                                    bool cutting, bool compensation,
                                    double cut_target,
                                    power::DistributionPolicy policy) {
  sched::GoodEnoughOptions opts;
  opts.q_ge = cfg.q_ge;
  opts.cut_target = cut_target;
  opts.cutting = cutting;
  opts.compensation = compensation;
  opts.power_policy = policy;
  opts.critical_load = cfg.critical_load;
  opts.load_window = cfg.load_window;
  opts.quantum = cfg.quantum;
  opts.counter_threshold = cfg.counter_threshold;
  opts.speed_table = table;
  return opts;
}

SchedulerPlugin make_ge() {
  SchedulerPlugin p;
  p.name = "GE";
  p.summary = "Good Enough: quality cutting + compensation, hybrid ES/WF power";
  p.factory = [](const SchedulerSpec&, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    return std::make_unique<sched::GoodEnoughScheduler>(
        env,
        ge_options(cfg, table, true, true, cfg.q_ge,
                   power::DistributionPolicy::kHybrid),
        "GE");
  };
  return p;
}

SchedulerPlugin make_ge_nocomp() {
  SchedulerPlugin p;
  p.name = "GE-NoComp";
  p.aliases = {"GE-NC"};
  p.summary = "GE without the compensation policy (Fig. 5 ablation)";
  p.factory = [](const SchedulerSpec&, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    return std::make_unique<sched::GoodEnoughScheduler>(
        env,
        ge_options(cfg, table, true, false, cfg.q_ge,
                   power::DistributionPolicy::kHybrid),
        "GE-NoComp");
  };
  return p;
}

SchedulerPlugin make_ge_es() {
  SchedulerPlugin p;
  p.name = "GE-ES";
  p.summary = "GE forced to Equal-Sharing power distribution (Fig. 6/7)";
  p.factory = [](const SchedulerSpec&, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    return std::make_unique<sched::GoodEnoughScheduler>(
        env,
        ge_options(cfg, table, true, true, cfg.q_ge,
                   power::DistributionPolicy::kEqualSharing),
        "GE-ES");
  };
  return p;
}

SchedulerPlugin make_ge_wf() {
  SchedulerPlugin p;
  p.name = "GE-WF";
  p.summary = "GE forced to Water-Filling power distribution (Fig. 6/7)";
  p.factory = [](const SchedulerSpec&, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    return std::make_unique<sched::GoodEnoughScheduler>(
        env,
        ge_options(cfg, table, true, true, cfg.q_ge,
                   power::DistributionPolicy::kWaterFilling),
        "GE-WF");
  };
  return p;
}

SchedulerPlugin make_ge_rr() {
  SchedulerPlugin p;
  p.name = "GE-RR";
  p.summary = "GE with plain (non-cumulative) round-robin core assignment";
  p.factory = [](const SchedulerSpec&, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    sched::GoodEnoughOptions opts = ge_options(
        cfg, table, true, true, cfg.q_ge, power::DistributionPolicy::kHybrid);
    opts.cumulative_rr = false;
    return std::make_unique<sched::GoodEnoughScheduler>(env, opts, "GE-RR");
  };
  return p;
}

SchedulerPlugin make_oq() {
  SchedulerPlugin p;
  p.name = "OQ";
  p.summary = "Over-Qualified: cut to Q_GE + 2%, never compensate (Sec. IV-A-1)";
  p.factory = [](const SchedulerSpec&, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    // Over-Qualified: target 2% above the demanded quality, never
    // compensate (Sec. IV-A-1).
    return std::make_unique<sched::GoodEnoughScheduler>(
        env,
        ge_options(cfg, table, true, false, std::min(cfg.q_ge + 0.02, 1.0),
                   power::DistributionPolicy::kHybrid),
        "OQ");
  };
  return p;
}

SchedulerPlugin make_be() {
  SchedulerPlugin p;
  p.name = "BE";
  p.summary = "Best Effort: never cut quality, Water-Filling power";
  p.factory = [](const SchedulerSpec&, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    return std::make_unique<sched::GoodEnoughScheduler>(
        env,
        ge_options(cfg, table, false, false, 1.0,
                   power::DistributionPolicy::kWaterFilling),
        "BE");
  };
  return p;
}

SchedulerPlugin make_be_p() {
  SchedulerPlugin p;
  p.name = "BE-P";
  p.summary = "power control: BE on a scaled power budget (Fig. 8)";
  p.params_help = "scale > 0: multiplier on the configured power budget "
                  "(default 1, i.e. plain BE)";
  p.min_params = 0;
  p.max_params = 1;
  p.apply_params = [](SchedulerSpec& spec) {
    if (!spec.params.empty()) {
      GE_CHECK(spec.params[0] > 0.0,
               "BE-P budget scale must be positive");
      spec.budget_scale = spec.params[0];
    }
  };
  p.display = [](const SchedulerSpec& spec) {
    if (spec.budget_scale == 1.0) {
      return std::string("BE-P");
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "BE-P[%.12g]", spec.budget_scale);
    return std::string(buf);
  };
  p.effective_budget = [](const SchedulerSpec& spec, const ExperimentConfig& cfg) {
    return cfg.power_budget * spec.budget_scale;
  };
  p.factory = [](const SchedulerSpec& spec, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    // The budget reduction is applied by the runner through
    // effective_budget(); the scheduling behaviour is plain BE.
    return std::make_unique<sched::GoodEnoughScheduler>(
        env,
        ge_options(cfg, table, false, false, 1.0,
                   power::DistributionPolicy::kWaterFilling),
        "BE-P(x" + util::format_double(spec.budget_scale, 3) + ")");
  };
  return p;
}

SchedulerPlugin make_be_s() {
  SchedulerPlugin p;
  p.name = "BE-S";
  p.summary = "speed control: BE with a uniform per-core speed cap (Fig. 8)";
  p.params_help = "cap_ghz > 0: per-core speed cap in GHz (default: uncapped)";
  p.min_params = 0;
  p.max_params = 1;
  p.apply_params = [](SchedulerSpec& spec) {
    if (!spec.params.empty()) {
      GE_CHECK(spec.params[0] > 0.0, "BE-S speed cap must be positive");
      spec.speed_cap_ghz = spec.params[0];
    }
  };
  p.display = [](const SchedulerSpec& spec) {
    if (!std::isfinite(spec.speed_cap_ghz)) {
      return std::string("BE-S");
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "BE-S[%.12g]", spec.speed_cap_ghz);
    return std::string(buf);
  };
  p.factory = [](const SchedulerSpec& spec, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    // Speed control caps every core uniformly ("limits the power
    // distributed to all the cores"), i.e. Equal-Sharing semantics; the
    // lack of WF rebalancing is why BE-P beats BE-S in Fig. 8.
    sched::GoodEnoughOptions opts = ge_options(
        cfg, table, false, false, 1.0, power::DistributionPolicy::kEqualSharing);
    opts.core_speed_cap = spec.speed_cap_ghz * cfg.units_per_ghz;
    return std::make_unique<sched::GoodEnoughScheduler>(
        env, opts,
        "BE-S(" + util::format_double(spec.speed_cap_ghz, 3) + "GHz)");
  };
  return p;
}

GE_REGISTER_SCHEDULER(make_ge);
GE_REGISTER_SCHEDULER(make_ge_nocomp);
GE_REGISTER_SCHEDULER(make_ge_es);
GE_REGISTER_SCHEDULER(make_ge_wf);
GE_REGISTER_SCHEDULER(make_ge_rr);
GE_REGISTER_SCHEDULER(make_oq);
GE_REGISTER_SCHEDULER(make_be);
GE_REGISTER_SCHEDULER(make_be_p);
GE_REGISTER_SCHEDULER(make_be_s);

}  // namespace
}  // namespace ge::exp
