// Registry plugins for the online speed-scaling zoo: OA, qOA (QOA[q]),
// AVR, BKP (core/speed_scaling.h).  All four are external baselines from
// Abousamra-Bunde-Pruhs, "An Experimental Comparison of Speed Scaling
// Algorithms with Deadline Feasibility Constraints"; bench/abl_speed_scaling
// reproduces that comparison on this repo's workload.
#include <algorithm>
#include <memory>

#include "core/speed_scaling.h"
#include "exp/config.h"
#include "exp/scheduler_registry.h"
#include "exp/scheduler_spec.h"
#include "util/check.h"
#include "util/table.h"

namespace ge::exp {
namespace {

// qOA's theoretical optimum for the repo's default power exponent beta = 2
// (q = 2 - 1/beta); the ABP experiments favour smaller q at low load, which
// bench/abl_speed_scaling sweeps.
constexpr double kDefaultQoaQ = 1.5;

// BKP's estimate (and qOA's speed away from q = 1) moves continuously
// between events; re-sample it a few times per deadline window without
// outpacing the scheduler quantum.
double refresh_interval(const ExperimentConfig& cfg) {
  return std::max(1e-3, std::min(cfg.quantum, 0.25 * cfg.deadline_interval));
}

std::unique_ptr<sched::Scheduler> make_speed_scaler(
    const sched::SchedulerEnv& env, const ExperimentConfig& cfg,
    const power::DiscreteSpeedTable* table, sched::SpeedScalingPolicy policy,
    double q, bool refresh, std::string name) {
  sched::SpeedScalingOptions opts;
  opts.policy = policy;
  opts.q = q;
  opts.refresh_interval = refresh ? refresh_interval(cfg) : 0.0;
  opts.speed_table = table;
  return std::make_unique<sched::SpeedScalingScheduler>(env, opts,
                                                        std::move(name));
}

SchedulerPlugin make_oa() {
  SchedulerPlugin p;
  p.name = "OA";
  p.summary = "Optimal Available: re-solve YDS on remaining work per arrival";
  p.factory = [](const SchedulerSpec&, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    return make_speed_scaler(env, cfg, table, sched::SpeedScalingPolicy::kOa,
                             1.0, false, "OA");
  };
  return p;
}

SchedulerPlugin make_qoa() {
  SchedulerPlugin p;
  p.name = "QOA";
  p.summary = "qOA: OA speed scaled by q (QOA[q]; default q = 1.5)";
  p.params_help = "q > 0: multiplier on the OA speed (default 1.5, the "
                  "2 - 1/beta optimum for beta = 2)";
  p.min_params = 0;
  p.max_params = 1;
  p.apply_params = [](SchedulerSpec& spec) {
    if (spec.params.empty()) {
      spec.params.push_back(kDefaultQoaQ);
    }
    GE_CHECK(spec.params[0] > 0.0, "QOA q must be positive");
  };
  p.factory = [](const SchedulerSpec& spec, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    const double q = spec.params.empty() ? kDefaultQoaQ : spec.params[0];
    // Away from q = 1 the intended speed drifts from the installed plan
    // between events; the refresh grid re-samples it.
    return make_speed_scaler(env, cfg, table, sched::SpeedScalingPolicy::kQoa,
                             q, q != 1.0,
                             "qOA(q=" + util::format_double(q, 2) + ")");
  };
  return p;
}

SchedulerPlugin make_avr() {
  SchedulerPlugin p;
  p.name = "AVR";
  p.summary = "Average Rate: run at the sum of per-job constant densities";
  p.factory = [](const SchedulerSpec&, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    return make_speed_scaler(env, cfg, table, sched::SpeedScalingPolicy::kAvr,
                             1.0, false, "AVR");
  };
  return p;
}

SchedulerPlugin make_bkp() {
  SchedulerPlugin p;
  p.name = "BKP";
  p.summary = "Bansal-Kimbrel-Pruhs e-competitive estimator over OA floor";
  p.factory = [](const SchedulerSpec&, const sched::SchedulerEnv& env,
                 const ExperimentConfig& cfg, const power::DiscreteSpeedTable* table) {
    return make_speed_scaler(env, cfg, table, sched::SpeedScalingPolicy::kBkp,
                             1.0, true, "BKP");
  };
  return p;
}

GE_REGISTER_SCHEDULER(make_oa);
GE_REGISTER_SCHEDULER(make_qoa);
GE_REGISTER_SCHEDULER(make_avr);
GE_REGISTER_SCHEDULER(make_bkp);

}  // namespace
}  // namespace ge::exp
