#include "exp/replicate.h"

#include "util/check.h"

namespace ge::exp {

ReplicationSummary replicate(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                             int replicas, const ExecutionOptions& exec) {
  GE_CHECK(replicas > 0, "need at least one replica");
  ExperimentPlan plan;
  for (int i = 0; i < replicas; ++i) {
    ExperimentConfig run_cfg = cfg;
    run_cfg.seed = cfg.seed + static_cast<std::uint64_t>(i);
    plan.add_isolated(std::move(run_cfg), spec);
  }
  const std::vector<RunResult> results = run_plan(plan, exec);

  ReplicationSummary summary;
  summary.replicas = replicas;
  for (const RunResult& r : results) {
    summary.quality.add(r.quality);
    summary.energy.add(r.energy);
    summary.aes_fraction.add(r.aes_fraction);
    summary.p99_response_ms.add(r.p99_response_ms);
  }
  return summary;
}

}  // namespace ge::exp
