#include "exp/replicate.h"

#include "exp/runner.h"
#include "util/check.h"

namespace ge::exp {

ReplicationSummary replicate(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                             int replicas) {
  GE_CHECK(replicas > 0, "need at least one replica");
  ReplicationSummary summary;
  summary.replicas = replicas;
  for (int i = 0; i < replicas; ++i) {
    ExperimentConfig run_cfg = cfg;
    run_cfg.seed = cfg.seed + static_cast<std::uint64_t>(i);
    const RunResult r = run_simulation(run_cfg, spec);
    summary.quality.add(r.quality);
    summary.energy.add(r.energy);
    summary.aes_fraction.add(r.aes_fraction);
    summary.p99_response_ms.add(r.p99_response_ms);
  }
  return summary;
}

}  // namespace ge::exp
