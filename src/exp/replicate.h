// Multi-seed replication: run the same experiment over n independent seeds
// and summarise the headline metrics with mean / stddev / extremes.  Used
// to put confidence behind the single-seed figure reproductions.
//
// Like the sweeps, replicate() is a plan-builder over ExperimentEngine:
// each replica is its own plan point (its own seed, its own trace) and the
// replicas execute in parallel.  The summary accumulates results in
// replica order regardless of worker count, so the statistics are
// bit-identical to a serial run.
#pragma once

#include "exp/config.h"
#include "exp/experiment_engine.h"
#include "exp/scheduler_spec.h"
#include "util/stats.h"

namespace ge::exp {

struct ReplicationSummary {
  int replicas = 0;
  util::RunningStats quality;
  util::RunningStats energy;
  util::RunningStats aes_fraction;
  util::RunningStats p99_response_ms;
};

// Runs `replicas` simulations with seeds base_seed, base_seed+1, ...
ReplicationSummary replicate(const ExperimentConfig& cfg, const SchedulerSpec& spec,
                             int replicas, const ExecutionOptions& exec = {});

}  // namespace ge::exp
