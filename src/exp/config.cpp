#include "exp/config.h"

#include <cmath>

#include "cluster/cluster.h"
#include "util/check.h"
#include "workload/distributions.h"

namespace ge::exp {

const char* to_string(QualityFamily family) noexcept {
  switch (family) {
    case QualityFamily::kExponential:
      return "exponential";
    case QualityFamily::kLinear:
      return "linear";
    case QualityFamily::kPowerLaw:
      return "power-law";
  }
  return "unknown";
}

ExperimentConfig ExperimentConfig::paper_defaults() { return ExperimentConfig{}; }

void ExperimentConfig::validate() const {
  GE_CHECK(cores > 0, "config: need at least one core");
  GE_CHECK(power_budget > 0.0, "config: power budget must be positive");
  GE_CHECK(power_a > 0.0 && power_beta > 1.0, "config: invalid power model");
  GE_CHECK(units_per_ghz > 0.0, "config: units_per_ghz must be positive");
  GE_CHECK(quality_c > 0.0, "config: quality parameter must be positive");
  GE_CHECK(quality_family != QualityFamily::kPowerLaw || quality_c < 1.0,
           "config: power-law exponent must be in (0,1)");
  GE_CHECK(arrival_rate > 0.0, "config: arrival rate must be positive");
  GE_CHECK(demand_alpha > 0.0 && demand_min > 0.0 && demand_max > demand_min,
           "config: invalid demand distribution");
  GE_CHECK(deadline_interval > 0.0 && deadline_interval_max >= deadline_interval,
           "config: invalid deadline window");
  GE_CHECK(burst_peak_to_mean >= 1.0, "config: burst ratio must be >= 1");
  GE_CHECK(q_ge >= 0.0 && q_ge <= 1.0, "config: Q_GE must be in [0,1]");
  GE_CHECK(quantum > 0.0 && counter_threshold > 0, "config: invalid triggers");
  GE_CHECK(load_window > 0.0, "config: load window must be positive");
  GE_CHECK(!discrete_speeds ||
               (discrete_step_ghz > 0.0 && discrete_max_ghz >= discrete_step_ghz),
           "config: invalid discrete speed ladder");
  GE_CHECK(static_power_per_core >= 0.0, "config: negative static power");
  GE_CHECK(hetero_spread >= 1.0, "config: hetero spread must be >= 1");
  GE_CHECK(num_servers > 0, "config: need at least one server");
  GE_CHECK(server_cores.empty() || server_cores.size() == num_servers,
           "config: server_cores must be empty or have one entry per server");
  for (std::size_t n : server_cores) {
    GE_CHECK(n > 0, "config: every server needs at least one core");
  }
  GE_CHECK(server_power_scale.empty() || server_power_scale.size() == num_servers,
           "config: server_power_scale must be empty or one entry per server");
  for (double s : server_power_scale) {
    GE_CHECK(s > 0.0, "config: server power scale must be positive");
  }
  GE_CHECK(server_max_ghz.empty() || server_max_ghz.size() == num_servers,
           "config: server_max_ghz must be empty or one entry per server");
  for (double g : server_max_ghz) {
    GE_CHECK(!discrete_speeds || g >= discrete_step_ghz,
             "config: per-server max GHz below the ladder step");
  }
  // Failures land on the last server; it must have that many cores.
  GE_CHECK(failure_cores <= server_core_count(num_servers - 1),
           "config: cannot fail more cores than exist");
  GE_CHECK(duration > 0.0, "config: duration must be positive");
}

std::unique_ptr<quality::QualityFunction> ExperimentConfig::make_quality_function()
    const {
  switch (quality_family) {
    case QualityFamily::kLinear:
      return std::make_unique<quality::LinearQuality>(demand_max);
    case QualityFamily::kPowerLaw:
      return std::make_unique<quality::PowerLawQuality>(quality_c, demand_max);
    case QualityFamily::kExponential:
      break;
  }
  return std::make_unique<quality::ExponentialQuality>(quality_c, demand_max);
}

workload::WorkloadSpec ExperimentConfig::workload_spec() const {
  workload::WorkloadSpec spec;
  spec.arrival_rate = arrival_rate;
  spec.pareto_alpha = demand_alpha;
  spec.demand_min = demand_min;
  spec.demand_max = demand_max;
  spec.deadline_interval = deadline_interval;
  spec.deadline_interval_max = deadline_interval_max;
  spec.burst_peak_to_mean = burst_peak_to_mean;
  spec.burst_fraction = burst_fraction;
  spec.burst_dwell = burst_dwell;
  spec.seed = seed;
  return spec;
}

power::PowerModel ExperimentConfig::power_model() const {
  return power::PowerModel(power_a, power_beta, units_per_ghz);
}

namespace {

// Core models for one server: `a_base` grows linearly to `a_base * spread`
// across the server's cores (the single-server hetero_spread rule, applied
// per server so heterogeneous fleets keep the same intra-server shape).
std::vector<power::PowerModel> models_for(std::size_t ncores, double a_base,
                                          double spread, double beta,
                                          double units_per_ghz) {
  std::vector<power::PowerModel> models;
  models.reserve(ncores);
  for (std::size_t i = 0; i < ncores; ++i) {
    const double frac =
        ncores > 1 ? static_cast<double>(i) / static_cast<double>(ncores - 1) : 0.0;
    const double a = a_base * (1.0 + (spread - 1.0) * frac);
    models.emplace_back(a, beta, units_per_ghz);
  }
  return models;
}

}  // namespace

std::vector<power::PowerModel> ExperimentConfig::core_power_models() const {
  return models_for(cores, power_a, hetero_spread, power_beta, units_per_ghz);
}

std::size_t ExperimentConfig::server_core_count(std::size_t s) const {
  GE_CHECK(s < num_servers, "config: server index out of range");
  return server_cores.empty() ? cores : server_cores[s];
}

std::size_t ExperimentConfig::total_cores() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < num_servers; ++s) {
    total += server_core_count(s);
  }
  return total;
}

std::vector<cluster::NodeSpec> ExperimentConfig::cluster_node_specs(
    double budget) const {
  std::vector<cluster::NodeSpec> specs;
  specs.reserve(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) {
    const std::size_t ncores = server_core_count(s);
    cluster::NodeSpec spec;
    // `power_a * 1.0` and `budget * (n/n)` are bit-exact, but skipping the
    // multiply entirely keeps the num_servers == 1 identity obvious.
    const double scale = server_power_scale.empty() ? 1.0 : server_power_scale[s];
    const double a_base = scale == 1.0 ? power_a : power_a * scale;
    spec.core_models = models_for(ncores, a_base, hetero_spread, power_beta,
                                  units_per_ghz);
    spec.power_budget =
        ncores == cores
            ? budget
            : budget * (static_cast<double>(ncores) / static_cast<double>(cores));
    spec.monitor_window = monitor_window;
    spec.discrete_speeds = discrete_speeds;
    spec.discrete_step_ghz = discrete_step_ghz;
    spec.discrete_max_ghz =
        server_max_ghz.empty() ? discrete_max_ghz : server_max_ghz[s];
    spec.units_per_ghz = units_per_ghz;
    specs.push_back(std::move(spec));
  }
  return specs;
}

double ExperimentConfig::mean_demand() const {
  return workload::BoundedParetoDistribution(demand_alpha, demand_min, demand_max)
      .mean();
}

double ExperimentConfig::nominal_capacity() const {
  const power::PowerModel pm = power_model();
  const double per_core_watts = power_budget / static_cast<double>(cores);
  return static_cast<double>(cores) * pm.speed_for_power(per_core_watts);
}

double ExperimentConfig::saturation_rate() const {
  return nominal_capacity() / mean_demand();
}

}  // namespace ge::exp
