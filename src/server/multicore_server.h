// The multicore server (Sec. II-B): m DVFS cores under one dynamic-power
// budget H.
//
// The server owns the cores and enforces the global constraint
// sum_i P_i(t) <= H structurally: power caps are assigned through
// set_power_caps(), which validates that the caps sum to at most H, and each
// core rejects plans exceeding its cap.  Convenience accessors aggregate
// energy and speed statistics across cores.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "power/power_model.h"
#include "server/core.h"
#include "sim/simulator.h"

namespace ge::obs {
class MetricsRegistry;
}

namespace ge::server {

class MulticoreServer {
 public:
  // Homogeneous server: every core shares one power model.
  MulticoreServer(std::size_t cores, double power_budget, const power::PowerModel& pm,
                  sim::Simulator& sim);

  // Heterogeneous server: one power model per core (e.g. efficient "big"
  // cores next to less efficient ones).  models.size() fixes the core
  // count; models[0] doubles as the reference model for unit conversions.
  MulticoreServer(std::vector<power::PowerModel> models, double power_budget,
                  sim::Simulator& sim);

  std::size_t core_count() const noexcept { return cores_.size(); }
  Core& core(std::size_t i);
  const Core& core(std::size_t i) const;

  double power_budget() const noexcept { return budget_; }
  // Reference model (conversions); equals every core's model when the
  // server is homogeneous.
  const power::PowerModel& power_model() const noexcept { return models_.front(); }
  // Core i's own model (may differ per core on heterogeneous servers).
  const power::PowerModel& power_model(std::size_t i) const;
  bool heterogeneous() const noexcept { return heterogeneous_; }

  // Validates caps (size m, non-negative, sum <= H) without installing them;
  // schedulers call this before planning against the caps.
  void check_caps(const std::vector<double>& caps) const;

  // Instantaneous total power across cores at time t.
  double total_power(double t) const;

  // Total dynamic energy integrated so far across cores.
  double total_energy() const;

  // Aggregated busy-speed statistics across cores (Fig. 6 metrics).
  util::TimeWeightedStats aggregate_speed_stats() const;

  // Total busy core-seconds.
  double total_busy_time() const;

  // Index of an idle *online* core at time t, or -1 if none.
  int find_idle_core(double t) const;

  // Number of cores still online.
  std::size_t online_cores() const;

  // End-of-run telemetry: per-core and total energy / busy / idle time into
  // `registry` (metric catalog: docs/OBSERVABILITY.md).  `elapsed` is the
  // run horizon in simulated seconds (idle = elapsed - busy).  `prefix` is
  // prepended to every metric name; the cluster layer uses "sK." so a
  // multi-server run labels each server's metrics, while single-server runs
  // keep the unprefixed schema.
  void export_metrics(obs::MetricsRegistry& registry, double elapsed,
                      const std::string& prefix = "") const;

 private:
  void build_cores(sim::Simulator& sim);

  double budget_;
  std::vector<power::PowerModel> models_;  // one per core; stable addresses
  bool heterogeneous_ = false;
  std::vector<std::unique_ptr<Core>> cores_;
};

}  // namespace ge::server
