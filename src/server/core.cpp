#include "server/core.h"

#include <algorithm>

#include "obs/telemetry.h"
#include "util/check.h"

namespace ge::server {
namespace {

constexpr double kPowerTol = 1e-6;

}  // namespace

Core::Core(int id, const power::PowerModel& pm, sim::Simulator& sim)
    : id_(id), pm_(&pm), sim_(&sim), cursor_(sim.now()) {}

void Core::set_offline(double now) {
  advance_to(now);
  finished_buffer_.clear();  // stranded jobs settle via their deadline events
  if (boundary_event_ != sim::kInvalidEventId) {
    sim_->cancel(boundary_event_);
    boundary_event_ = sim::kInvalidEventId;
  }
  plan_ = opt::ExecutionPlan{};
  seg_idx_ = 0;
  seg_credited_ = 0.0;
  power_cap_ = 0.0;
  online_ = false;
  if (obs::Telemetry* tel = sim_->telemetry(); tel != nullptr && tel->trace) {
    obs::TraceEvent ev;
    ev.type = obs::TraceEventType::kCoreOffline;
    ev.t = now;
    ev.core = id_;
    tel->trace->push(ev);
  }
}

void Core::install_plan(opt::ExecutionPlan plan, double power_cap) {
  GE_CHECK(online_, "cannot install a plan on an offline core");
  const double now = sim_->now();
  advance_to(now);
  // Jobs whose segments closed during the catch-up are owned by the caller
  // (the scheduler round re-examines every queued job), so no callbacks.
  finished_buffer_.clear();
  plan.validate(now);
  GE_CHECK(plan.max_power(*pm_) <= power_cap + kPowerTol,
           "plan exceeds the core's power cap");
  for (const opt::PlanSegment& seg : plan.segments) {
    GE_CHECK(std::find(queue_.begin(), queue_.end(), seg.job) != queue_.end(),
             "plan references a job not pinned to this core");
    GE_CHECK(!seg.job->settled, "plan references a settled job");
  }
  if (boundary_event_ != sim::kInvalidEventId) {
    sim_->cancel(boundary_event_);
    boundary_event_ = sim::kInvalidEventId;
  }
  plan_ = std::move(plan);
  seg_idx_ = 0;
  seg_credited_ = 0.0;
  power_cap_ = power_cap;
  arm_boundary_event();
}

void Core::advance_to(double t) {
  GE_CHECK(t <= sim_->now() + 1e-9, "cannot advance a core into the future");
  if (t <= cursor_) {
    return;
  }
  while (seg_idx_ < plan_.segments.size()) {
    const opt::PlanSegment& seg = plan_.segments[seg_idx_];
    const double from = std::max(seg.start, cursor_);
    const double to = std::min(seg.end, t);
    if (to > from) {
      const double dt = to - from;
      double credit = seg.speed * dt;
      if (to >= seg.end - 1e-12) {
        // Closing out the segment: credit exactly the remaining planned
        // units so floating-point drift cannot leave targets unreachable.
        credit = seg.units - seg_credited_;
      }
      if (credit > 0.0) {
        seg.job->executed += credit;
        seg_credited_ += credit;
      }
      energy_ += pm_->power(seg.speed) * dt;
      speed_stats_.add(seg.speed, dt);
      if (obs::Telemetry* tel = sim_->telemetry(); tel != nullptr && tel->trace) {
        obs::TraceEvent ev;
        ev.type = obs::TraceEventType::kExec;
        ev.t = from;
        ev.t2 = to;
        ev.core = id_;
        ev.job = static_cast<std::int64_t>(seg.job->id);
        ev.a = seg.speed;
        tel->trace->push(ev);
      }
    }
    if (t < seg.end) {
      break;  // still inside this segment
    }
    finished_buffer_.push_back(seg.job);
    ++seg_idx_;
    seg_credited_ = 0.0;
  }
  cursor_ = t;
}

void Core::remove_job(workload::Job* job, double now) {
  advance_to(now);
  auto it = std::find(queue_.begin(), queue_.end(), job);
  GE_CHECK(it != queue_.end(), "remove_job: job not pinned to this core");
  queue_.erase(it);
  // The caller is settling this job; it no longer needs callbacks.
  finished_buffer_.erase(
      std::remove(finished_buffer_.begin(), finished_buffer_.end(), job),
      finished_buffer_.end());
  // Drop this job's not-yet-finished segments.  Later segments keep their
  // absolute times (the gap simply stays idle; replanning normally follows).
  bool current_dropped = false;
  std::size_t w = seg_idx_;
  for (std::size_t r = seg_idx_; r < plan_.segments.size(); ++r) {
    if (plan_.segments[r].job == job) {
      if (r == seg_idx_) {
        current_dropped = true;
      }
      continue;
    }
    plan_.segments[w++] = plan_.segments[r];
  }
  plan_.segments.resize(w);
  if (current_dropped) {
    seg_credited_ = 0.0;
    if (boundary_event_ != sim::kInvalidEventId) {
      sim_->cancel(boundary_event_);
      boundary_event_ = sim::kInvalidEventId;
    }
    arm_boundary_event();
  }
  flush_finished();
}

bool Core::busy(double t) const {
  for (std::size_t i = seg_idx_; i < plan_.segments.size(); ++i) {
    if (plan_.segments[i].end > t) {
      return true;
    }
  }
  return false;
}

double Core::current_speed(double t) const {
  for (std::size_t i = seg_idx_; i < plan_.segments.size(); ++i) {
    const opt::PlanSegment& seg = plan_.segments[i];
    if (t < seg.start) {
      return 0.0;
    }
    if (t < seg.end) {
      return seg.speed;
    }
  }
  return 0.0;
}

void Core::arm_boundary_event() {
  GE_CHECK(boundary_event_ == sim::kInvalidEventId, "boundary event already armed");
  if (seg_idx_ >= plan_.segments.size()) {
    return;
  }
  const double when = plan_.segments[seg_idx_].end;
  boundary_event_ = sim_->schedule_at(when, [this] { on_segment_boundary(); });
}

void Core::flush_finished() {
  while (!finished_buffer_.empty()) {
    std::vector<workload::Job*> batch;
    batch.swap(finished_buffer_);
    for (workload::Job* job : batch) {
      if (on_job_finished_) {
        on_job_finished_(job);
      }
    }
  }
}

void Core::on_segment_boundary() {
  boundary_event_ = sim::kInvalidEventId;
  advance_to(sim_->now());
  arm_boundary_event();
  flush_finished();
  if (!busy(sim_->now()) && on_idle_) {
    on_idle_(id_);
  }
}

}  // namespace ge::server
