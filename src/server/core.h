// A simulated DVFS core.
//
// A core owns the queue of jobs pinned to it (jobs never migrate, Sec. II-B)
// and executes the ExecutionPlan installed by the scheduler: piecewise
// constant-speed segments, one job at a time, in EDF order.  The core
// integrates processed work, dynamic energy E = integral of a*s(t)^beta dt,
// and time-weighted speed statistics (for the Fig. 6 thrashing study), and
// raises callbacks when a segment's job finishes and when the plan runs dry.
//
// Plans can be replaced at any time: install_plan() first advances execution
// to "now" along the old plan (crediting partial work on the in-flight
// segment), then swaps in the new one.  This is how the GE scheduler re-cuts
// and re-plans running jobs at every scheduling round.
#pragma once

#include <functional>
#include <vector>

#include "opt/plan.h"
#include "power/power_model.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "workload/job.h"

namespace ge::server {

class Core {
 public:
  // Fired when a plan segment completes naturally: the job has received all
  // the work this plan intended for it (full target, or deadline-truncated).
  using JobFinishedCallback = std::function<void(workload::Job*)>;
  // Fired when the last segment of the plan completes.
  using IdleCallback = std::function<void(int core_id)>;

  Core(int id, const power::PowerModel& pm, sim::Simulator& sim);

  // Non-copyable and non-movable: scheduled events capture `this`.
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;
  Core(Core&&) = delete;
  Core& operator=(Core&&) = delete;

  void set_job_finished_callback(JobFinishedCallback cb) { on_job_finished_ = std::move(cb); }
  void set_idle_callback(IdleCallback cb) { on_idle_ = std::move(cb); }

  int id() const noexcept { return id_; }
  const power::PowerModel& power_model() const noexcept { return *pm_; }

  // Jobs pinned to this core and not yet settled, in assignment order.
  std::vector<workload::Job*>& queue() noexcept { return queue_; }
  const std::vector<workload::Job*>& queue() const noexcept { return queue_; }

  // Replaces the current plan.  Advances execution to sim.now() first.
  // power_cap is the cap assigned by the distribution policy; the plan's
  // peak power must not exceed it (checked).
  void install_plan(opt::ExecutionPlan plan, double power_cap);

  // Integrates work/energy along the current plan up to time t (<= now).
  // Does not fire callbacks; segment-boundary events do that.
  void advance_to(double t);

  // Removes a job from the queue and erases its not-yet-executed segments.
  // Advances to `now` first so in-flight work is credited.
  void remove_job(workload::Job* job, double now);

  // True if the plan still has work at or after time t.
  bool busy(double t) const;

  // Fault injection: takes the core offline at `now`.  In-flight work is
  // credited up to `now`, the rest of the plan is dropped, and no further
  // plans may be installed.  Jobs already pinned here are stranded (no
  // migration, Sec. II-B) and settle at their deadlines with whatever was
  // executed.  Irreversible.
  void set_offline(double now);
  bool online() const noexcept { return online_; }

  // Speed the core is running at time t (0 when idle).
  double current_speed(double t) const;
  double current_power(double t) const { return pm_->power(current_speed(t)); }

  double energy() const noexcept { return energy_; }
  double busy_time() const noexcept { return speed_stats_.total_time(); }
  const util::TimeWeightedStats& speed_stats() const noexcept { return speed_stats_; }
  double power_cap() const noexcept { return power_cap_; }

 private:
  void arm_boundary_event();
  void on_segment_boundary();
  void flush_finished();

  int id_;
  const power::PowerModel* pm_;
  sim::Simulator* sim_;
  std::vector<workload::Job*> queue_;

  opt::ExecutionPlan plan_;
  std::size_t seg_idx_ = 0;
  double seg_credited_ = 0.0;  // units credited on the current segment
  double cursor_ = 0.0;        // time up to which execution is integrated
  sim::EventId boundary_event_ = sim::kInvalidEventId;
  double power_cap_ = 0.0;
  bool online_ = true;
  std::vector<workload::Job*> finished_buffer_;

  double energy_ = 0.0;
  util::TimeWeightedStats speed_stats_;  // busy time only

  JobFinishedCallback on_job_finished_;
  IdleCallback on_idle_;
};

}  // namespace ge::server
