#include "server/multicore_server.h"

#include <string>

#include "obs/metrics.h"
#include "util/check.h"

namespace ge::server {

MulticoreServer::MulticoreServer(std::size_t cores, double power_budget,
                                 const power::PowerModel& pm, sim::Simulator& sim)
    : budget_(power_budget), models_(cores, pm) {
  GE_CHECK(cores > 0, "server needs at least one core");
  GE_CHECK(power_budget > 0.0, "power budget must be positive");
  build_cores(sim);
}

MulticoreServer::MulticoreServer(std::vector<power::PowerModel> models,
                                 double power_budget, sim::Simulator& sim)
    : budget_(power_budget), models_(std::move(models)), heterogeneous_(true) {
  GE_CHECK(!models_.empty(), "server needs at least one core");
  GE_CHECK(power_budget > 0.0, "power budget must be positive");
  build_cores(sim);
}

void MulticoreServer::build_cores(sim::Simulator& sim) {
  cores_.reserve(models_.size());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    cores_.push_back(std::make_unique<Core>(static_cast<int>(i), models_[i], sim));
  }
}

Core& MulticoreServer::core(std::size_t i) {
  GE_CHECK(i < cores_.size(), "core index out of range");
  return *cores_[i];
}

const Core& MulticoreServer::core(std::size_t i) const {
  GE_CHECK(i < cores_.size(), "core index out of range");
  return *cores_[i];
}

const power::PowerModel& MulticoreServer::power_model(std::size_t i) const {
  GE_CHECK(i < models_.size(), "core index out of range");
  return models_[i];
}

void MulticoreServer::check_caps(const std::vector<double>& caps) const {
  GE_CHECK(caps.size() == cores_.size(), "one cap per core required");
  double total = 0.0;
  for (double cap : caps) {
    GE_CHECK(cap >= 0.0, "power caps must be non-negative");
    total += cap;
  }
  GE_CHECK(total <= budget_ * (1.0 + 1e-9) + 1e-9, "caps exceed the power budget");
}

double MulticoreServer::total_power(double t) const {
  double total = 0.0;
  for (const auto& core : cores_) {
    total += core->current_power(t);
  }
  return total;
}

double MulticoreServer::total_energy() const {
  double total = 0.0;
  for (const auto& core : cores_) {
    total += core->energy();
  }
  return total;
}

util::TimeWeightedStats MulticoreServer::aggregate_speed_stats() const {
  util::TimeWeightedStats stats;
  for (const auto& core : cores_) {
    stats.merge(core->speed_stats());
  }
  return stats;
}

double MulticoreServer::total_busy_time() const {
  double total = 0.0;
  for (const auto& core : cores_) {
    total += core->busy_time();
  }
  return total;
}

int MulticoreServer::find_idle_core(double t) const {
  for (const auto& core : cores_) {
    if (core->online() && !core->busy(t)) {
      return core->id();
    }
  }
  return -1;
}

void MulticoreServer::export_metrics(obs::MetricsRegistry& registry,
                                     double elapsed,
                                     const std::string& prefix) const {
  registry.counter(prefix + "server.energy_j", "J").add(total_energy());
  registry.counter(prefix + "server.busy_core_s", "s").add(total_busy_time());
  registry.counter(prefix + "server.idle_core_s", "s")
      .add(static_cast<double>(cores_.size()) * elapsed - total_busy_time());
  registry.gauge(prefix + "server.online_cores", "cores", obs::Gauge::Merge::kMin)
      .set(static_cast<double>(online_cores()));
  for (const auto& core : cores_) {
    const std::string core_prefix = prefix + "core." + std::to_string(core->id());
    registry.counter(core_prefix + ".energy_j", "J").add(core->energy());
    registry.counter(core_prefix + ".busy_s", "s").add(core->busy_time());
    registry.counter(core_prefix + ".idle_s", "s").add(elapsed - core->busy_time());
  }
}

std::size_t MulticoreServer::online_cores() const {
  std::size_t count = 0;
  for (const auto& core : cores_) {
    count += core->online() ? 1u : 0u;
  }
  return count;
}

}  // namespace ge::server
