#include "util/table.h"

#include <cstdint>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace ge::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GE_CHECK(!header_.empty(), "table must have at least one column");
}

void Table::begin_row() { cells_.emplace_back(); }

void Table::add(const std::string& cell) {
  GE_CHECK(!cells_.empty(), "begin_row() before add()");
  GE_CHECK(cells_.back().size() < header_.size(), "row has too many cells");
  cells_.back().push_back(cell);
}

void Table::add(double value, int precision) { add(format_double(value, precision)); }

void Table::add(std::uint64_t value) { add(std::to_string(value)); }

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  GE_CHECK(row < cells_.size() && col < cells_[row].size(), "cell out of range");
  return cells_[row][col];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << "  ";
      }
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : cells_) {
    emit_row(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ',';
      }
      os << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : cells_) {
    emit_row(row);
  }
}

}  // namespace ge::util
