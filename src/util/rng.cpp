#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace ge::util {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  GE_CHECK(n > 0, "uniform_index requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::exponential(double rate) noexcept {
  GE_CHECK(rate > 0.0, "exponential rate must be positive");
  // uniform() is in [0,1); use 1-u in (0,1] so log() never sees zero.
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::split() noexcept {
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  return Rng(a ^ rotl(b, 32));
}

}  // namespace ge::util
