// Plain-text table / CSV emitters used by the benchmark harnesses.
//
// Every figure-reproduction binary prints one table: a header row naming the
// series, then one row per sweep point.  Table renders the data aligned for
// humans and can also dump strict CSV so the series can be re-plotted.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ge::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Starts a new row; subsequent add() calls fill it left to right.
  void begin_row();
  void add(const std::string& cell);
  void add(double value, int precision = 4);
  void add(std::uint64_t value);

  std::size_t rows() const noexcept { return cells_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const;

  // Aligned human-readable rendering.
  void print(std::ostream& os) const;
  // Strict comma-separated rendering (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

// Formats a double with fixed precision (helper shared with examples).
std::string format_double(double value, int precision = 4);

}  // namespace ge::util
