// Minimal command-line flag parser for the bench/example binaries.
//
// Supports --name value and --name=value forms plus typed accessors with
// defaults.  Unknown flags are tolerated and reported through unknown()
// (google-benchmark binaries share argv with their own flags).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ge::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(std::string_view name) const;
  std::string get_string(std::string_view name, std::string default_value) const;
  double get_double(std::string_view name, double default_value) const;
  std::int64_t get_int(std::string_view name, std::int64_t default_value) const;
  bool get_bool(std::string_view name, bool default_value) const;

  // Parses a comma-separated list of doubles, e.g. --rates 100,150,200.
  std::vector<double> get_double_list(std::string_view name,
                                      std::vector<double> default_value) const;

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::optional<std::string> find(std::string_view name) const;

  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> positional_;
};

}  // namespace ge::util
