#include "util/thread_pool.h"

#include <atomic>
#include <utility>

namespace ge::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) {
    return;
  }
  // One shared claim counter instead of n queue entries: workers grab the
  // next index as they free up.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t lanes = std::min(n, workers_.size());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([next, n, &body] {
      for (std::size_t i = (*next)++; i < n; i = (*next)++) {
        body(i);
      }
    });
  }
  wait();
}

std::size_t ThreadPool::default_concurrency() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_ == nullptr) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace ge::util
