#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace ge::util {

void check_failed(std::string_view condition, std::string_view file, int line,
                  std::string_view message) {
  std::fprintf(stderr, "GE_CHECK failed: %.*s at %.*s:%d: %.*s\n",
               static_cast<int>(condition.size()), condition.data(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(message.size()), message.data());
  std::abort();
}

}  // namespace ge::util
