#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ge::util {

void RunningStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void TimeWeightedStats::add(double value, double duration) noexcept {
  GE_CHECK(duration >= -1e-12, "negative duration in TimeWeightedStats");
  if (duration <= 0.0) {
    return;
  }
  total_time_ += duration;
  sum_ += value * duration;
  sum_sq_ += value * value * duration;
}

void TimeWeightedStats::merge(const TimeWeightedStats& other) noexcept {
  total_time_ += other.total_time_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double TimeWeightedStats::mean() const noexcept {
  return total_time_ > 0.0 ? sum_ / total_time_ : 0.0;
}

double TimeWeightedStats::variance() const noexcept {
  if (total_time_ <= 0.0) {
    return 0.0;
  }
  const double m = sum_ / total_time_;
  const double v = sum_sq_ / total_time_ - m * m;
  return v > 0.0 ? v : 0.0;
}

}  // namespace ge::util
