// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic components of the reproduction (arrival process, demand
// distribution, deadline jitter) draw from ge::util::Rng so that a single
// 64-bit seed fully determines a simulation run.  The generator is
// xoshiro256++ seeded through splitmix64, which is fast, has a 2^256-1
// period, and passes BigCrush -- more than adequate for a discrete-event
// workload model and, unlike std::mt19937, bit-reproducible across
// standard library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace ge::util {

// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  // Uniform double in [0, 1).  Uses the top 53 bits.
  double uniform() noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // Uniform integer in [0, n).  n must be positive.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  // Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  // Derives an independent child generator; useful to give each component
  // (arrivals, demands, jitter) its own stream from one master seed.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace ge::util
