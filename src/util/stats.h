// Streaming statistics helpers.
//
// RunningStats accumulates count/mean/variance/min/max of a sample stream
// (Welford's algorithm, numerically stable).  TimeWeightedStats accumulates
// the time-weighted mean and variance of a piecewise-constant signal, which
// is how we summarise core speeds (Fig. 6 of the paper reports the
// time-average speed and the speed variance under the WF and ES policies).
#pragma once

#include <cstdint>
#include <limits>

namespace ge::util {

class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  // Population variance (divide by n).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class TimeWeightedStats {
 public:
  // Records that the signal held `value` for `duration` units of time.
  // Zero-duration observations are ignored.
  void add(double value, double duration) noexcept;
  void merge(const TimeWeightedStats& other) noexcept;

  double total_time() const noexcept { return total_time_; }
  // Time-weighted mean; 0 when no time has been observed.
  double mean() const noexcept;
  // Time-weighted population variance: E[x^2] - E[x]^2.
  double variance() const noexcept;
  double weighted_sum() const noexcept { return sum_; }
  double weighted_sum_squares() const noexcept { return sum_sq_; }

 private:
  double total_time_ = 0.0;
  double sum_ = 0.0;     // integral of value dt
  double sum_sq_ = 0.0;  // integral of value^2 dt
};

}  // namespace ge::util
