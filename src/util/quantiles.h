// Exact quantile collector.
//
// Interactive services care about tail latency; the runner records one
// response time per request and reports p50/p95/p99.  At the simulator's
// scale (<= a few hundred thousand samples per run) an exact collector is
// cheaper than a sketch and has no error to reason about: samples are
// stored and sorted lazily on first query.
#pragma once

#include <cstddef>
#include <vector>

namespace ge::util {

class QuantileCollector {
 public:
  void add(double sample);
  void reserve(std::size_t n) { samples_.reserve(n); }
  // Pools another collector's samples into this one; equivalent to adding
  // its samples individually (quantiles are computed over the pooled set,
  // so merged per-server collectors match one cluster-wide collector).
  void merge(const QuantileCollector& other);

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  double min() const;
  double max() const;

  // Quantile q in [0, 1] with linear interpolation between order statistics;
  // requires at least one sample.
  double quantile(double q) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

}  // namespace ge::util
