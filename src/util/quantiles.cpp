#include "util/quantiles.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ge::util {

void QuantileCollector::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_ = false;
}

void QuantileCollector::merge(const QuantileCollector& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  sorted_ = samples_.empty();
}

double QuantileCollector::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

void QuantileCollector::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double QuantileCollector::min() const {
  GE_CHECK(!samples_.empty(), "quantile of an empty collector");
  ensure_sorted();
  return samples_.front();
}

double QuantileCollector::max() const {
  GE_CHECK(!samples_.empty(), "quantile of an empty collector");
  ensure_sorted();
  return samples_.back();
}

double QuantileCollector::quantile(double q) const {
  GE_CHECK(!samples_.empty(), "quantile of an empty collector");
  GE_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace ge::util
