// Fixed-size worker pool for CPU-bound task fan-out.
//
// The pool owns `threads` std::threads for its whole lifetime; submitted
// tasks are queued FIFO and executed by whichever worker frees up first.
// wait() blocks until every submitted task has finished, so a pool can be
// reused for several fan-out rounds.  If a task throws, the first exception
// is captured and rethrown from wait() (or the destructor's implicit wait
// swallows it -- call wait() if you care).
//
// This is the execution substrate of exp::ExperimentEngine: simulation runs
// are pure functions of their inputs, so scheduling them on any number of
// workers must not change results -- the pool therefore makes no ordering
// promises beyond FIFO dispatch, and callers index results by task, never
// by completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ge::util {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task.  Must not be called concurrently with the destructor.
  void submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is running, then rethrows
  // the first exception any task raised since the last wait().
  void wait();

  std::size_t threads() const noexcept { return workers_.size(); }

  // Runs body(0) .. body(n-1) on the pool and blocks until all complete.
  // Iterations are claimed dynamically, one at a time, so ragged task
  // durations still load-balance.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  // hardware_concurrency(), with the mandated fallback to 1 when unknown.
  static std::size_t default_concurrency() noexcept;

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;   // queue grew or shutdown
  std::condition_variable all_done_;     // pending_ hit zero
  std::deque<std::function<void()>> queue_;
  std::size_t pending_ = 0;  // queued + running tasks
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ge::util
