// Always-on invariant checks for the goodenough library.
//
// GE_CHECK is used for conditions that indicate a programming error or a
// violated model invariant (e.g. a negative speed, a power cap overrun).
// The checks stay enabled in release builds: the simulation is cheap enough
// that correctness beats the last few percent of throughput, and a silently
// wrong energy figure is worse than an abort.
#pragma once

#include <string_view>

namespace ge::util {

// Aborts with a diagnostic message.  Marked noreturn so GE_CHECK can be used
// in value-returning code paths without spurious warnings.
[[noreturn]] void check_failed(std::string_view condition, std::string_view file,
                               int line, std::string_view message);

}  // namespace ge::util

#define GE_CHECK(cond, msg)                                          \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::ge::util::check_failed(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                \
  } while (false)

#define GE_DCHECK(cond, msg) GE_CHECK(cond, msg)
