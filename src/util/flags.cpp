#include "util/flags.h"

#include <cstdlib>

namespace ge::util {
namespace {

bool parse_bool(const std::string& text, bool fallback) {
  if (text == "true" || text == "1" || text == "yes" || text == "on" || text.empty()) {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  return fallback;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_.emplace_back(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
      continue;
    }
    // --name value form: consume the next token if it does not look like a flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_.emplace_back(std::string(arg), std::string(argv[i + 1]));
      ++i;
    } else {
      values_.emplace_back(std::string(arg), std::string());  // boolean switch
    }
  }
}

std::optional<std::string> Flags::find(std::string_view name) const {
  // Last occurrence wins so callers can override defaults on the command line.
  std::optional<std::string> result;
  for (const auto& [key, value] : values_) {
    if (key == name) {
      result = value;
    }
  }
  return result;
}

bool Flags::has(std::string_view name) const { return find(name).has_value(); }

std::string Flags::get_string(std::string_view name, std::string default_value) const {
  auto v = find(name);
  return v ? *v : default_value;
}

double Flags::get_double(std::string_view name, double default_value) const {
  auto v = find(name);
  if (!v || v->empty()) {
    return default_value;
  }
  return std::strtod(v->c_str(), nullptr);
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t default_value) const {
  auto v = find(name);
  if (!v || v->empty()) {
    return default_value;
  }
  return std::strtoll(v->c_str(), nullptr, 10);
}

bool Flags::get_bool(std::string_view name, bool default_value) const {
  auto v = find(name);
  if (!v) {
    return default_value;
  }
  return parse_bool(*v, default_value);
}

std::vector<double> Flags::get_double_list(std::string_view name,
                                           std::vector<double> default_value) const {
  auto v = find(name);
  if (!v || v->empty()) {
    return default_value;
  }
  std::vector<double> out;
  const std::string& text = *v;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    out.push_back(std::strtod(text.substr(pos, comma - pos).c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

}  // namespace ge::util
