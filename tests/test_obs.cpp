// Tests for the telemetry subsystem (src/obs): metric semantics, the
// deterministic merge the experiment engine relies on, the documented trace
// serialisation formats, and the end-to-end contract that telemetry files
// are byte-identical for any worker count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/experiment_engine.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "workload/trace.h"

namespace ge::obs {
namespace {

TEST(Counter, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.increment();
  c.add(2.5);
  EXPECT_EQ(c.value(), 3.5);
}

TEST(Gauge, SetTracksWritten) {
  Gauge g;
  EXPECT_FALSE(g.written());
  g.set(4.0);
  g.set(-1.0);
  EXPECT_TRUE(g.written());
  EXPECT_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketPlacementAndStats) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0, 5.0});
  // Bucket i counts values <= bounds[i]; last bucket is overflow.
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(1.5);   // bucket 1
  h.observe(10.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 13.0);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 10.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("jobs", "jobs");
  Counter& b = reg.counter("jobs", "jobs");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  reg.gauge("q", "ratio", Gauge::Merge::kMin);
  reg.histogram("lat", {1, 2}, "ms");
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, KindMismatchDies) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_DEATH((void)reg.gauge("x"), "registered");
}

TEST(MetricsRegistry, UnitMismatchDies) {
  MetricsRegistry reg;
  reg.counter("x", "J");
  EXPECT_DEATH((void)reg.counter("x", "W"), "unit");
}

TEST(MetricsRegistry, HistogramBoundsMismatchDies) {
  MetricsRegistry reg;
  reg.histogram("h", {1, 2});
  EXPECT_DEATH((void)reg.histogram("h", {1, 3}), "bounds");
}

std::string to_json(const MetricsRegistry& reg) {
  std::ostringstream out;
  reg.write_json(out);
  return out.str();
}

TEST(MetricsRegistry, MergeCombinesPerKind) {
  MetricsRegistry a;
  a.counter("n").add(2);
  a.gauge("worst", "", Gauge::Merge::kMin).set(0.9);
  a.gauge("best", "", Gauge::Merge::kMax).set(0.9);
  a.gauge("last", "", Gauge::Merge::kLast).set(1.0);
  a.histogram("h", {1.0, 2.0}).observe(0.5);

  MetricsRegistry b;
  b.counter("n").add(3);
  b.gauge("worst", "", Gauge::Merge::kMin).set(0.4);
  b.gauge("best", "", Gauge::Merge::kMax).set(0.4);
  b.gauge("last", "", Gauge::Merge::kLast).set(2.0);
  b.histogram("h", {1.0, 2.0}).observe(1.5);
  b.counter("only_in_b").add(7);

  a.merge(b);
  EXPECT_EQ(a.counter("n").value(), 5.0);
  EXPECT_EQ(a.gauge("worst", "", Gauge::Merge::kMin).value(), 0.4);
  EXPECT_EQ(a.gauge("best", "", Gauge::Merge::kMax).value(), 0.9);
  EXPECT_EQ(a.gauge("last", "", Gauge::Merge::kLast).value(), 2.0);
  EXPECT_EQ(a.histogram("h", {1.0, 2.0}).count(), 2u);
  EXPECT_EQ(a.histogram("h", {1.0, 2.0}).sum(), 2.0);
  // Metrics absent from the destination are appended in source order.
  EXPECT_EQ(a.counter("only_in_b").value(), 7.0);
}

TEST(MetricsRegistry, MergeSkipsUnwrittenGauges) {
  MetricsRegistry a;
  a.gauge("worst", "", Gauge::Merge::kMin).set(0.9);
  MetricsRegistry b;
  (void)b.gauge("worst", "", Gauge::Merge::kMin);  // created, never set
  a.merge(b);
  EXPECT_EQ(a.gauge("worst", "", Gauge::Merge::kMin).value(), 0.9);
}

TEST(MetricsRegistry, MergeIsDeterministic) {
  // Merging equal registries in the same order must yield equal bytes --
  // the property the engine's parallel path relies on.
  auto build = [] {
    MetricsRegistry reg;
    reg.counter("jobs", "jobs").add(17);
    reg.gauge("q", "ratio", Gauge::Merge::kMin).set(0.875);
    reg.histogram("lat", {10.0, 100.0}, "ms").observe(42.5);
    return reg;
  };
  MetricsRegistry m1;
  MetricsRegistry m2;
  for (int i = 0; i < 3; ++i) {
    m1.merge(build());
    m2.merge(build());
  }
  EXPECT_EQ(to_json(m1), to_json(m2));
}

TEST(MetricsRegistry, JsonMatchesDocumentedSchema) {
  MetricsRegistry reg;
  reg.counter("jobs.settled", "jobs").add(3);
  reg.gauge("quality.monitored", "ratio", Gauge::Merge::kMin).set(0.5);
  reg.histogram("lat", {1.0}, "ms").observe(0.5);
  const std::string json = to_json(reg);
  EXPECT_NE(json.find("\"schema\": \"goodenough-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"jobs.settled\", \"type\": \"counter\", "
                      "\"unit\": \"jobs\", \"value\": 3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"type\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"merge\": \"min\""), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 1, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"inf\", \"count\": 0}"), std::string::npos);
}

TEST(TraceFormat, Parse) {
  EXPECT_EQ(parse_trace_format("jsonl"), TraceFormat::kJsonl);
  EXPECT_EQ(parse_trace_format("chrome"), TraceFormat::kChrome);
  EXPECT_DEATH((void)parse_trace_format("xml"), "trace format");
}

// A hand-built miniature of a 3-job run; the golden strings below pin the
// documented JSONL schema (docs/OBSERVABILITY.md) byte for byte.
TraceBuffer tiny_buffer() {
  TraceBuffer buf;
  TraceEvent ev;
  ev.type = TraceEventType::kArrival;
  ev.t = 0.25;
  ev.job = 1;
  ev.a = 150.0;   // demand
  ev.b = 0.4;     // deadline
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kRound;
  ev.t = 0.25;
  ev.mode = kModeAes;
  ev.a = 1;      // waiting
  ev.b = 4.0;    // rate
  ev.c = 1;      // round index
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kExec;
  ev.t = 0.25;
  ev.t2 = 0.35;
  ev.core = 0;
  ev.job = 1;
  ev.a = 1500.0;  // speed
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kCompletion;
  ev.t = 0.35;
  ev.core = 0;
  ev.job = 1;
  ev.a = 150.0;  // executed
  ev.b = 150.0;  // demand
  ev.c = 1.0;    // monitored quality
  buf.push(ev);
  return buf;
}

TraceTaskInfo tiny_info() {
  TraceTaskInfo info;
  info.task = 0;
  info.scheduler = "GE";
  info.arrival_rate = 4.0;
  info.cores = 1;
  info.power_budget = 20.0;
  info.power_model_json = "{\"a\": 5, \"beta\": 2, \"units_per_ghz\": 1000}";
  return info;
}

TEST(TraceWriter, JsonlGolden) {
  std::ostringstream out;
  TraceWriter writer(out, TraceFormat::kJsonl);
  writer.append_task(tiny_info(), tiny_buffer());
  writer.close();
  const std::string expected =
      "{\"ev\": \"meta\", \"task\": 0, \"scheduler\": \"GE\", "
      "\"arrival_rate\": 4, \"cores\": 1, \"power_budget_w\": 20, "
      "\"power_model\": {\"a\": 5, \"beta\": 2, \"units_per_ghz\": 1000}}\n"
      "{\"ev\": \"arrival\", \"task\": 0, \"t\": 0.25, \"job\": 1, "
      "\"demand\": 150, \"deadline\": 0.4}\n"
      "{\"ev\": \"round\", \"task\": 0, \"t\": 0.25, \"round\": 1, "
      "\"mode\": \"AES\", \"waiting\": 1, \"rate\": 4}\n"
      "{\"ev\": \"exec\", \"task\": 0, \"t\": 0.25, \"t_end\": 0.35, "
      "\"core\": 0, \"job\": 1, \"speed\": 1500}\n"
      "{\"ev\": \"completion\", \"task\": 0, \"t\": 0.35, \"core\": 0, "
      "\"job\": 1, \"executed\": 150, \"demand\": 150, \"quality\": 1}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(TraceWriter, ChromeIsStructurallyValidJson) {
  std::ostringstream out;
  TraceWriter writer(out, TraceFormat::kChrome);
  writer.append_task(tiny_info(), tiny_buffer());
  writer.close();
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.substr(text.size() - 2), "]\n");
  // Balanced braces and no trailing comma before the closing bracket: the
  // usual ways a hand-rolled JSON array writer goes wrong.
  int depth = 0;
  for (char ch : text) {
    depth += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(text.find(",\n]"), std::string::npos);
  // 2 metadata records + 1 thread name per core + 4 events (completion emits
  // an extra quality counter sample).
  std::size_t records = 0;
  for (std::size_t pos = 0; (pos = text.find("\"ph\"", pos)) != std::string::npos;
       ++pos) {
    ++records;
  }
  EXPECT_EQ(records, 2u + 1u + 5u);
}

}  // namespace
}  // namespace ge::obs

namespace ge::exp {
namespace {

// A deterministic 3-job workload on a small server: every telemetry channel
// fires at least once and the numbers are easy to check by hand.
workload::Trace three_job_trace() {
  std::vector<workload::Job> jobs(3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = i + 1;
    jobs[i].arrival = 0.1 * static_cast<double>(i + 1);
    jobs[i].deadline = jobs[i].arrival + 0.15;
    jobs[i].demand = 150.0;
  }
  return workload::Trace(std::move(jobs));
}

ExperimentConfig tiny_config() {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.cores = 2;
  cfg.power_budget = 40.0;
  cfg.arrival_rate = 10.0;
  cfg.duration = 0.5;
  cfg.seed = 1;
  return cfg;
}

TEST(RunnerTelemetry, ThreeJobScenarioRecordsEveryChannel) {
  obs::RunTelemetry telemetry;
  const RunResult result = run_simulation(tiny_config(), SchedulerSpec::parse("GE"),
                                          three_job_trace(), nullptr, &telemetry);
  EXPECT_EQ(result.released, 3u);

  EXPECT_EQ(telemetry.metrics.counter("jobs.settled", "jobs").value(), 3.0);
  EXPECT_EQ(telemetry.metrics.counter("jobs.released", "jobs").value(), 3.0);
  EXPECT_GE(telemetry.metrics.counter("ge.rounds", "rounds").value(), 1.0);
  EXPECT_GT(telemetry.metrics.counter("energy.total_j", "J").value(), 0.0);
  EXPECT_EQ(telemetry.metrics.histogram(
                "run.quality",
                {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, "ratio")
                .count(),
            1u);

  // Trace: 3 arrivals and one settlement per job.  Instantaneous events are
  // recorded in simulation order; exec slices are retrospective (pushed when
  // the core advances past them, stamped with the slice start), so they are
  // only required to be well-formed, not buffer-order monotone.
  std::size_t arrivals = 0;
  std::size_t settlements = 0;
  std::size_t execs = 0;
  double last_t = 0.0;
  for (const obs::TraceEvent& ev : telemetry.trace.events()) {
    if (ev.type == obs::TraceEventType::kExec) {
      EXPECT_GE(ev.t2, ev.t);
      ++execs;
      continue;
    }
    EXPECT_GE(ev.t, last_t);
    last_t = ev.t;
    arrivals += ev.type == obs::TraceEventType::kArrival ? 1 : 0;
    settlements += (ev.type == obs::TraceEventType::kCompletion ||
                    ev.type == obs::TraceEventType::kDeadlineMiss)
                       ? 1
                       : 0;
  }
  EXPECT_EQ(arrivals, 3u);
  EXPECT_EQ(settlements, 3u);
  EXPECT_GE(execs, 3u);
}

TEST(RunnerTelemetry, MetricsOnlySkipsTraceRecording) {
  obs::RunTelemetry telemetry;
  telemetry.want_trace = false;
  (void)run_simulation(tiny_config(), SchedulerSpec::parse("GE"),
                       three_job_trace(), nullptr, &telemetry);
  EXPECT_EQ(telemetry.trace.size(), 0u);
  EXPECT_GT(telemetry.metrics.size(), 0u);
}

TEST(RunnerTelemetry, NullTelemetryMatchesInstrumentedRun) {
  // The hooks must observe, never perturb: results with telemetry on are
  // bit-identical to results with it off.
  obs::RunTelemetry telemetry;
  const RunResult with = run_simulation(tiny_config(), SchedulerSpec::parse("GE"),
                                        three_job_trace(), nullptr, &telemetry);
  const RunResult without = run_simulation(
      tiny_config(), SchedulerSpec::parse("GE"), three_job_trace(), nullptr, nullptr);
  EXPECT_EQ(with.quality, without.quality);
  EXPECT_EQ(with.energy, without.energy);
  EXPECT_EQ(with.p99_response_ms, without.p99_response_ms);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(EngineTelemetry, FilesAreByteIdenticalForAnyWorkerCount) {
  ExperimentPlan plan;
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.duration = 1.0;
  cfg.seed = 42;
  for (std::size_t p = 0; p < 2; ++p) {
    cfg.arrival_rate = p == 0 ? 110.0 : 170.0;
    for (const char* name : {"GE", "BE"}) {
      plan.add(cfg, SchedulerSpec::parse(name), p);
    }
  }

  const std::string dir = ::testing::TempDir();
  auto run_with = [&](std::size_t jobs, const std::string& tag) {
    ExecutionOptions exec;
    exec.jobs = jobs;
    exec.telemetry.metrics_path = dir + "/m" + tag + ".json";
    exec.telemetry.trace_path = dir + "/t" + tag + ".jsonl";
    (void)run_plan(plan, exec);
  };
  run_with(1, "1");
  run_with(4, "4");
  EXPECT_EQ(slurp(dir + "/m1.json"), slurp(dir + "/m4.json"));
  EXPECT_EQ(slurp(dir + "/t1.jsonl"), slurp(dir + "/t4.jsonl"));
  std::remove((dir + "/m1.json").c_str());
  std::remove((dir + "/m4.json").c_str());
  std::remove((dir + "/t1.jsonl").c_str());
  std::remove((dir + "/t4.jsonl").c_str());
}

}  // namespace
}  // namespace ge::exp
