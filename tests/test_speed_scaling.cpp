// Tests for the online speed-scaling zoo (core/speed_scaling.h): the
// YDS-on-suffix staircase helper, the OA == YDS differential on an offline
// instance, and deadline-feasibility property checks for OA/qOA/AVR/BKP
// under fuzzed workloads across the materialised, streaming, and
// calendar-queue paths.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/speed_scaling.h"
#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "opt/yds.h"
#include "workload/trace.h"

namespace ge::exp {
namespace {

TEST(OaSuffixSchedule, SingleJobRunsAtItsDensity) {
  const auto blocks =
      sched::oa_suffix_schedule(1.0, {sched::SuffixJob{3.0, 100.0}});
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_DOUBLE_EQ(blocks[0].end, 3.0);
  EXPECT_DOUBLE_EQ(blocks[0].speed, 50.0);
}

TEST(OaSuffixSchedule, CriticalPrefixDominates) {
  // The tight early job forms its own block; the slack job follows slower.
  auto blocks = sched::oa_suffix_schedule(
      0.0, {sched::SuffixJob{1.0, 10.0}, sched::SuffixJob{2.0, 2.0}});
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_DOUBLE_EQ(blocks[0].end, 1.0);
  EXPECT_DOUBLE_EQ(blocks[0].speed, 10.0);
  EXPECT_DOUBLE_EQ(blocks[1].end, 2.0);
  EXPECT_DOUBLE_EQ(blocks[1].speed, 2.0);

  // When the heavy job comes later, the whole prefix is one critical block.
  blocks = sched::oa_suffix_schedule(
      0.0, {sched::SuffixJob{1.0, 4.0}, sched::SuffixJob{2.0, 10.0}});
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_DOUBLE_EQ(blocks[0].end, 2.0);
  EXPECT_DOUBLE_EQ(blocks[0].speed, 7.0);
}

TEST(OaSuffixSchedule, CapacityEqualsTotalWorkAndSpeedsDecrease) {
  std::vector<sched::SuffixJob> jobs = {
      {0.5, 30.0}, {1.25, 80.0}, {2.0, 10.0}, {2.0, 5.0}, {3.5, 120.0}};
  double total = 0.0;
  for (const auto& j : jobs) total += j.remaining;
  const auto blocks = sched::oa_suffix_schedule(0.0, jobs);
  ASSERT_FALSE(blocks.empty());
  double capacity = 0.0;
  double start = 0.0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    capacity += blocks[i].speed * (blocks[i].end - start);
    start = blocks[i].end;
    if (i > 0) {
      EXPECT_LE(blocks[i].speed, blocks[i - 1].speed + 1e-12);
    }
  }
  EXPECT_NEAR(capacity, total, 1e-9 * total);
}

workload::Job make_job(std::uint64_t id, double arrival, double deadline,
                       double demand) {
  workload::Job job;
  job.id = id;
  job.arrival = arrival;
  job.deadline = deadline;
  job.demand = demand;
  return job;
}

TEST(SpeedScalingDifferential, OaEqualsYdsOnSingleReleaseInstance) {
  // With every job released at t = 0 on one core under a generous budget,
  // OA's first (and only nontrivial) re-solve is YDS on the whole instance,
  // so the simulated dynamic energy must match yds_min_energy.
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.cores = 1;
  cfg.power_budget = 1e5;
  cfg.duration = 4.0;
  const std::vector<workload::Job> jobs = {
      make_job(0, 0.0, 1.0, 800.0),
      make_job(1, 0.0, 2.0, 2500.0),
      make_job(2, 0.0, 4.0, 400.0),
  };
  const workload::Trace trace(jobs);
  const RunResult r = run_simulation(cfg, SchedulerSpec::parse("OA"), trace);
  EXPECT_EQ(r.released, 3u);
  EXPECT_EQ(r.completed, 3u);

  const std::vector<opt::YdsJob> yds_jobs = {
      {0.0, 1.0, 800.0}, {0.0, 2.0, 2500.0}, {0.0, 4.0, 400.0}};
  const double optimal = opt::yds_min_energy(yds_jobs, cfg.power_model());
  EXPECT_NEAR(r.energy, optimal, 1e-6 * optimal);
}

ExperimentConfig fuzz_config(std::mt19937_64& rng) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.cores = 4;
  // Generous budget: the Equal-Sharing cap never binds, so every deadline
  // is met iff the planner is actually feasible.
  cfg.power_budget = 1e6;
  cfg.duration = 2.0;
  std::uniform_real_distribution<double> rate(40.0, 240.0);
  std::uniform_real_distribution<double> window(0.05, 0.25);
  cfg.arrival_rate = rate(rng);
  cfg.deadline_interval = window(rng);
  cfg.deadline_interval_max = cfg.deadline_interval + window(rng);
  cfg.seed = rng();
  return cfg;
}

TEST(SpeedScalingFeasibility, NeverMissesDeadlineAcrossPaths) {
  // OA/qOA/AVR/BKP must complete every released job when the power cap is
  // slack -- including qOA with q < 1, where the finish-by-deadline repair
  // carries feasibility.  Stream on/off and heap vs calendar queue must all
  // agree bit-identically.
  const char* kScheds[] = {"OA", "QOA[1.5]", "QOA[0.75]", "AVR", "BKP"};
  std::mt19937_64 rng(20260809ULL);
  for (int iter = 0; iter < 5; ++iter) {
    const ExperimentConfig cfg = fuzz_config(rng);
    for (const char* name : kScheds) {
      SCOPED_TRACE(std::string(name) + " iter " + std::to_string(iter) +
                   " seed " + std::to_string(cfg.seed));
      const SchedulerSpec spec = SchedulerSpec::parse(name);
      const RunResult base = run_simulation(cfg, spec);
      EXPECT_EQ(base.completed, base.released);
      EXPECT_EQ(base.partial, 0u);
      EXPECT_EQ(base.dropped, 0u);

      ExperimentConfig streamed = cfg;
      streamed.stream = true;
      const RunResult s = run_simulation_stream(streamed, spec);
      EXPECT_EQ(s.quality, base.quality);
      EXPECT_EQ(s.energy, base.energy);
      EXPECT_EQ(s.completed, base.completed);

      ExperimentConfig calendar = cfg;
      calendar.event_queue = sim::EventQueueKind::kCalendar;
      const RunResult c = run_simulation(calendar, spec);
      EXPECT_EQ(c.quality, base.quality);
      EXPECT_EQ(c.energy, base.energy);
      EXPECT_EQ(c.completed, base.completed);
    }
  }
}

TEST(SpeedScalingFeasibility, ClusterPathStaysFeasible) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.cores = 4;
  cfg.power_budget = 1e6;
  cfg.duration = 2.0;
  cfg.arrival_rate = 150.0;
  cfg.num_servers = 3;
  cfg.dispatch = cluster::DispatchPolicy::kJsq;
  cfg.seed = 5;
  for (const char* name : {"OA", "AVR", "BKP"}) {
    SCOPED_TRACE(name);
    const RunResult r = run_simulation(cfg, SchedulerSpec::parse(name));
    EXPECT_EQ(r.completed, r.released);
    EXPECT_EQ(r.num_servers, 3u);
  }
}

TEST(SpeedScaling, TightBudgetYieldsPartialsNotCrashes) {
  // When the Equal-Sharing cap binds, cap-clipped jobs run to their
  // deadline and settle partial (queue_policy semantics); accounting must
  // stay consistent and the power-budget watchdog quiet.
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.cores = 4;
  cfg.power_budget = 8.0;
  cfg.duration = 2.0;
  cfg.arrival_rate = 200.0;
  cfg.verify_power = true;
  cfg.seed = 9;
  for (const char* name : {"OA", "QOA[0.5]", "AVR", "BKP"}) {
    SCOPED_TRACE(name);
    const RunResult r = run_simulation(cfg, SchedulerSpec::parse(name));
    EXPECT_EQ(r.completed + r.partial + r.dropped, r.released);
    EXPECT_GT(r.partial, 0u);
  }
}

TEST(SpeedScaling, QDistinguishesQoaFromOa) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.cores = 4;
  cfg.power_budget = 1e6;
  cfg.duration = 2.0;
  cfg.arrival_rate = 120.0;
  cfg.seed = 13;
  const RunResult oa = run_simulation(cfg, SchedulerSpec::parse("OA"));
  const RunResult slow = run_simulation(cfg, SchedulerSpec::parse("QOA[0.75]"));
  const RunResult fast = run_simulation(cfg, SchedulerSpec::parse("QOA[1.5]"));
  EXPECT_NE(oa.energy, slow.energy);
  EXPECT_NE(oa.energy, fast.energy);
  // Racing ahead of OA burns strictly more energy on a convex power curve.
  EXPECT_GT(fast.energy, oa.energy);
}

TEST(SpeedScaling, DiscreteSpeedsStayWithinAccounting) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.cores = 4;
  cfg.power_budget = 1e4;
  cfg.duration = 2.0;
  cfg.arrival_rate = 120.0;
  cfg.discrete_speeds = true;
  cfg.seed = 17;
  for (const char* name : {"OA", "AVR", "BKP"}) {
    SCOPED_TRACE(name);
    const RunResult r = run_simulation(cfg, SchedulerSpec::parse(name));
    EXPECT_EQ(r.completed + r.partial + r.dropped, r.released);
    EXPECT_GT(r.completed, 0u);
  }
}

}  // namespace
}  // namespace ge::exp
