// Behavioural tests for the GoodEnough scheduler engine, driven through
// small controlled simulations.
#include <gtest/gtest.h>

#include <memory>

#include "core/good_enough.h"
#include "exp/config.h"
#include "exp/runner.h"
#include "quality/quality_function.h"
#include "quality/quality_monitor.h"

namespace ge::sched {
namespace {

// A hand-driven harness around one GoodEnoughScheduler.
struct Harness {
  sim::Simulator sim;
  power::PowerModel pm{5.0, 2.0, 1000.0};
  server::MulticoreServer server;
  quality::ExponentialQuality f{0.003, 1000.0};
  quality::QualityMonitor monitor{f};
  std::unique_ptr<GoodEnoughScheduler> scheduler;
  std::vector<std::unique_ptr<workload::Job>> jobs;

  explicit Harness(std::size_t cores = 2, double budget = 40.0,
                   GoodEnoughOptions options = {})
      : server(cores, budget, pm, sim) {
    SchedulerEnv env{&sim, &server, &f, &monitor};
    scheduler = std::make_unique<GoodEnoughScheduler>(env, options);
    for (std::size_t i = 0; i < cores; ++i) {
      server.core(i).set_job_finished_callback(
          [this](workload::Job* j) { scheduler->on_job_finished(j); });
      server.core(i).set_idle_callback(
          [this](int id) { scheduler->on_core_idle(id); });
    }
    scheduler->start();
  }

  workload::Job* add_job(double arrival, double window, double demand) {
    auto job = std::make_unique<workload::Job>();
    job->id = jobs.size() + 1;
    job->arrival = arrival;
    job->deadline = arrival + window;
    job->demand = demand;
    job->target = demand;
    workload::Job* ptr = job.get();
    jobs.push_back(std::move(job));
    sim.schedule_at(arrival, [this, ptr] { scheduler->on_job_arrival(ptr); });
    sim.schedule_at(ptr->deadline, [this, ptr] { scheduler->on_deadline(ptr); });
    return ptr;
  }
};

TEST(GoodEnough, SingleJobCompletesCutTargetInAes) {
  GoodEnoughOptions options;
  options.cut_target = 0.9;
  Harness h(2, 40.0, options);
  // Window wide enough that the 2 GHz power cap is not the binding
  // constraint -- the AES cut is.
  workload::Job* job = h.add_job(0.0, 0.4, 800.0);
  h.sim.run_until(1.0);
  h.scheduler->finish();
  EXPECT_TRUE(job->settled);
  // AES cut: f(c) = 0.9 f(800).
  const double expected = h.f.inverse(0.9 * h.f.value(800.0));
  EXPECT_NEAR(job->executed, expected, 1.0);
}

TEST(GoodEnough, BestEffortRunsJobsToCompletion) {
  GoodEnoughOptions options;
  options.cutting = false;  // BE
  options.power_policy = power::DistributionPolicy::kWaterFilling;
  Harness h(2, 40.0, options);
  workload::Job* job = h.add_job(0.0, 0.15, 200.0);
  h.sim.run_until(1.0);
  h.scheduler->finish();
  EXPECT_NEAR(job->executed, 200.0, 1e-6);
  EXPECT_NEAR(h.monitor.quality(), 1.0, 1e-9);
}

TEST(GoodEnough, ModeIsAesInitially) {
  Harness h;
  EXPECT_EQ(h.scheduler->mode(), GoodEnoughScheduler::Mode::kAes);
}

TEST(GoodEnough, CompensationSwitchesToBqAfterQualityDrop) {
  GoodEnoughOptions options;
  options.q_ge = 0.9;
  Harness h(2, 40.0, options);
  // Poison the monitor: a pile of dropped jobs pushes quality to ~0.
  for (int i = 0; i < 10; ++i) {
    h.monitor.settle(0.0, 500.0);
  }
  workload::Job* job = h.add_job(0.0, 0.45, 800.0);
  h.sim.run_until(1.0);
  h.scheduler->finish();
  // BQ mode: the job must have run to FULL demand, not the 0.9 cut.
  EXPECT_NEAR(job->executed, 800.0, 1e-6);
  EXPECT_GT(h.scheduler->bq_time(h.sim.now()), 0.0);
}

TEST(GoodEnough, NoCompensationStaysInAes) {
  GoodEnoughOptions options;
  options.compensation = false;
  Harness h(2, 40.0, options);
  for (int i = 0; i < 10; ++i) {
    h.monitor.settle(0.0, 500.0);  // quality ~0, but no compensation
  }
  workload::Job* job = h.add_job(0.0, 0.4, 800.0);
  h.sim.run_until(1.0);
  h.scheduler->finish();
  const double expected = h.f.inverse(0.9 * h.f.value(800.0));
  EXPECT_NEAR(job->executed, expected, 1.0);
  EXPECT_DOUBLE_EQ(h.scheduler->bq_time(h.sim.now()), 0.0);
}

TEST(GoodEnough, ExpiredWaitingJobIsDroppedWithZeroQuality) {
  Harness h;
  // Arrives with an already-stale deadline window of 0 via direct injection:
  // use a tiny window instead and let it expire before the first round can
  // run it (demand far beyond capacity in the window).
  workload::Job* job = h.add_job(0.0, 0.0001, 900.0);
  h.sim.run_until(1.0);
  h.scheduler->finish();
  EXPECT_TRUE(job->settled);
  EXPECT_LT(job->executed, 900.0);
}

TEST(GoodEnough, PowerCapRespectedUnderOverload) {
  GoodEnoughOptions options;
  options.cutting = false;  // force maximum appetite for work
  options.power_policy = power::DistributionPolicy::kWaterFilling;
  Harness h(2, 40.0, options);
  // Far more work than 2 cores at 40 W can do in the window.
  for (int i = 0; i < 12; ++i) {
    h.add_job(0.001 * i, 0.15, 900.0);
  }
  bool checked = false;
  for (double t = 0.01; t < 0.15; t += 0.01) {
    h.sim.schedule_at(t, [&h, &checked] {
      EXPECT_LE(h.server.total_power(h.sim.now()), 40.0 * (1.0 + 1e-6));
      checked = true;
    });
  }
  h.sim.run_until(1.0);
  h.scheduler->finish();
  EXPECT_TRUE(checked);
}

TEST(GoodEnough, QualityOptTrimsWhenCapBinds) {
  GoodEnoughOptions options;
  options.cutting = false;
  options.power_policy = power::DistributionPolicy::kEqualSharing;
  Harness h(1, 20.0, options);  // one core, 2 GHz cap
  // 600 units in 0.15 s needs 4 GHz; only ~300 units fit.
  workload::Job* job = h.add_job(0.0, 0.15, 600.0);
  h.sim.run_until(1.0);
  h.scheduler->finish();
  EXPECT_NEAR(job->executed, 300.0, 1.0);
}

TEST(GoodEnough, ConcaveSplitAcrossEqualJobsUnderCap) {
  GoodEnoughOptions options;
  options.cutting = false;
  options.power_policy = power::DistributionPolicy::kEqualSharing;
  Harness h(1, 20.0, options);
  // A short blocker keeps the core busy so the two equal jobs accumulate in
  // the waiting queue; the idle-core trigger then plans them jointly.  With
  // capacity for only ~340 of their 600 units, concavity demands an even
  // split rather than one job completing.
  h.add_job(0.0, 0.05, 100.0);
  workload::Job* a = h.add_job(0.01, 0.20, 300.0);
  workload::Job* b = h.add_job(0.02, 0.20, 300.0);
  h.sim.run_until(1.0);
  h.scheduler->finish();
  // Joint capacity from t=0.05 to b's deadline 0.22 at 2000 u/s is 340.
  EXPECT_NEAR(a->executed + b->executed, 340.0, 2.0);
  EXPECT_NEAR(a->executed, b->executed, 12.0);
}

TEST(GoodEnough, CrrSpreadsBatchAcrossCores) {
  GoodEnoughOptions options;
  options.counter_threshold = 4;
  Harness h(4, 80.0, options);
  for (int i = 0; i < 4; ++i) {
    h.add_job(0.0, 0.15, 300.0);
  }
  h.sim.run_until(0.01);
  int used_cores = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (!h.server.core(i).queue().empty() || h.server.core(i).busy(0.01)) {
      ++used_cores;
    }
  }
  EXPECT_EQ(used_cores, 4);
}

TEST(GoodEnough, AesTimeFractionTracksModes) {
  GoodEnoughOptions options;
  Harness h(2, 40.0, options);
  h.add_job(0.0, 0.3, 300.0);  // comfortably feasible under the cap
  h.sim.run_until(2.0);
  const double aes = h.scheduler->aes_time(2.0);
  const double bq = h.scheduler->bq_time(2.0);
  EXPECT_NEAR(aes + bq, 2.0, 1e-6);
  EXPECT_GT(aes, 1.9);  // nothing pushed quality below target
}

TEST(GoodEnough, RoundsCounted) {
  Harness h;
  h.add_job(0.0, 0.15, 300.0);
  h.sim.run_until(2.0);
  EXPECT_GT(h.scheduler->rounds(), 0u);
}

TEST(GoodEnough, HybridUsesEsUnderLightLoad) {
  GoodEnoughOptions options;
  options.power_policy = power::DistributionPolicy::kHybrid;
  options.critical_load = 154.0;
  Harness h(2, 40.0, options);
  for (int i = 0; i < 5; ++i) {
    h.add_job(0.1 * i, 0.15, 300.0);  // ~10 req/s: far below critical
  }
  h.sim.run_until(2.0);
  h.scheduler->finish();
  EXPECT_GT(h.scheduler->es_rounds(), 0u);
  EXPECT_EQ(h.scheduler->wf_rounds(), 0u);
}

TEST(GoodEnough, ReCutExtendsRunningJobInBqMode) {
  GoodEnoughOptions options;
  options.q_ge = 0.9;
  options.quantum = 0.02;  // frequent rounds
  Harness h(2, 40.0, options);
  workload::Job* job = h.add_job(0.0, 0.5, 800.0);
  // After the job starts (cut to ~0.9), poison the monitor so the next
  // round compensates and raises the target back to the full demand.
  h.sim.schedule_at(0.01, [&h] {
    for (int i = 0; i < 20; ++i) {
      h.monitor.settle(0.0, 500.0);
    }
  });
  h.sim.run_until(1.0);
  h.scheduler->finish();
  EXPECT_NEAR(job->executed, 800.0, 1e-6);
}

TEST(GoodEnough, BeSSpeedCapLimitsSpeed) {
  GoodEnoughOptions options;
  options.cutting = false;
  options.core_speed_cap = 1000.0;  // 1 GHz
  options.power_policy = power::DistributionPolicy::kWaterFilling;
  Harness h(1, 20.0, options);
  workload::Job* job = h.add_job(0.0, 0.15, 600.0);
  h.sim.run_until(1.0);
  h.scheduler->finish();
  // At most 1 GHz * 0.15 s = 150 units.
  EXPECT_NEAR(job->executed, 150.0, 1.0);
  EXPECT_LE(h.server.aggregate_speed_stats().mean(), 1000.0 + 1e-6);
}

TEST(GoodEnough, DiscreteSpeedsStayOnLadder) {
  power::DiscreteSpeedTable table = power::DiscreteSpeedTable::uniform_ghz(0.2, 3.2);
  GoodEnoughOptions options;
  options.speed_table = &table;
  Harness h(2, 40.0, options);
  for (int i = 0; i < 6; ++i) {
    h.add_job(0.02 * i, 0.15, 400.0);
  }
  std::vector<double> speeds;
  for (double t = 0.005; t < 0.3; t += 0.005) {
    h.sim.schedule_at(t, [&h, &speeds] {
      for (std::size_t c = 0; c < 2; ++c) {
        const double s = h.server.core(c).current_speed(h.sim.now());
        if (s > 0.0) {
          speeds.push_back(s);
        }
      }
    });
  }
  h.sim.run_until(1.0);
  h.scheduler->finish();
  ASSERT_FALSE(speeds.empty());
  for (double s : speeds) {
    EXPECT_TRUE(table.is_level(s)) << s;
  }
}

}  // namespace
}  // namespace ge::sched
