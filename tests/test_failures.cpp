// Fault-injection tests: cores dropping offline mid-run.
#include <gtest/gtest.h>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "exp/timeline.h"
#include "opt/energy_opt.h"
#include "server/multicore_server.h"

namespace ge::server {
namespace {

TEST(CoreFailure, OfflineCoreStopsExecuting) {
  sim::Simulator sim;
  power::PowerModel pm(5.0, 2.0, 1000.0);
  MulticoreServer server(2, 40.0, pm, sim);
  workload::Job job;
  job.id = 1;
  job.deadline = 1.0;
  job.demand = job.target = 400.0;
  job.core = 0;
  Core& core = server.core(0);
  core.queue().push_back(&job);
  opt::ExecutionPlan plan;
  plan.segments.push_back(opt::PlanSegment{&job, 0.0, 0.4, 1000.0, 400.0});
  core.install_plan(std::move(plan), 20.0);
  sim.run_until(0.2);
  core.set_offline(0.2);
  sim.run_until(1.0);
  EXPECT_FALSE(core.online());
  EXPECT_NEAR(job.executed, 200.0, 1e-9);  // credited up to the failure only
  EXPECT_FALSE(core.busy(1.0));
  EXPECT_NEAR(core.energy(), 5.0 * 0.2, 1e-9);  // 1 GHz for 0.2 s
}

TEST(CoreFailure, InstallOnOfflineCoreDies) {
  sim::Simulator sim;
  power::PowerModel pm;
  MulticoreServer server(1, 20.0, pm, sim);
  server.core(0).set_offline(0.0);
  workload::Job job;
  job.id = 1;
  job.deadline = 1.0;
  job.demand = job.target = 100.0;
  job.core = 0;
  server.core(0).queue().push_back(&job);
  opt::ExecutionPlan plan;
  plan.segments.push_back(opt::PlanSegment{&job, 0.0, 0.1, 1000.0, 100.0});
  EXPECT_DEATH(server.core(0).install_plan(std::move(plan), 20.0), "offline");
}

TEST(CoreFailure, FindIdleCoreSkipsOffline) {
  sim::Simulator sim;
  power::PowerModel pm;
  MulticoreServer server(2, 40.0, pm, sim);
  EXPECT_EQ(server.online_cores(), 2u);
  server.core(0).set_offline(0.0);
  EXPECT_EQ(server.online_cores(), 1u);
  EXPECT_EQ(server.find_idle_core(0.0), 1);
  server.core(1).set_offline(0.0);
  EXPECT_EQ(server.find_idle_core(0.0), -1);
}

}  // namespace
}  // namespace ge::server

namespace ge::exp {
namespace {

ExperimentConfig failing_config(double rate, std::size_t failed, double when) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.arrival_rate = rate;
  cfg.duration = 8.0;
  cfg.seed = 27;
  cfg.failure_time = when;
  cfg.failure_cores = failed;
  return cfg;
}

TEST(CoreFailure, RunCompletesWithFailures) {
  for (const char* algo : {"GE", "BE", "FCFS"}) {
    const RunResult r =
        run_simulation(failing_config(150.0, 4, 3.0), SchedulerSpec::parse(algo));
    EXPECT_GT(r.released, 0u) << algo;
    EXPECT_EQ(r.released, r.completed + r.partial + r.dropped) << algo;
  }
}

TEST(CoreFailure, QualityDegradesWithFailedCores) {
  const ExperimentConfig base = failing_config(170.0, 0, -1.0);
  const workload::Trace trace =
      workload::Trace::generate(base.workload_spec(), base.duration);
  const RunResult healthy = run_simulation(base, SchedulerSpec::parse("GE"), trace);
  const RunResult degraded = run_simulation(failing_config(170.0, 8, 1.0),
                                            SchedulerSpec::parse("GE"), trace);
  EXPECT_LT(degraded.quality, healthy.quality);
  EXPECT_GT(degraded.quality, 0.3);  // half the cores still serve
}

TEST(CoreFailure, BudgetRespectedAfterFailure) {
  ExperimentConfig cfg = failing_config(200.0, 6, 2.0);
  cfg.verify_power = true;
  const RunResult r = run_simulation(cfg, SchedulerSpec::parse("GE"));
  EXPECT_GT(r.released, 0u);
}

TEST(CoreFailure, SurvivorsAbsorbTheBudget) {
  // With ES over online cores, the per-core share grows after the failure,
  // so the surviving cores can run faster: at moderate load the quality hit
  // from losing 4 of 16 cores should be modest.
  const RunResult r =
      run_simulation(failing_config(120.0, 4, 2.0), SchedulerSpec::parse("GE"));
  EXPECT_GT(r.quality, 0.85);
}

TEST(CoreFailure, TimelineShowsCapacityDrop) {
  ExperimentConfig cfg = failing_config(200.0, 8, 4.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  Timeline timeline;
  timeline.interval = 0.1;
  (void)run_simulation(cfg, SchedulerSpec::parse("BE"), trace, &timeline);
  int max_busy_before = 0;
  int max_busy_after = 0;
  for (const TimelinePoint& p : timeline.points) {
    if (p.time < 4.0) {
      max_busy_before = std::max(max_busy_before, p.busy_cores);
    } else if (p.time > 4.5) {
      max_busy_after = std::max(max_busy_after, p.busy_cores);
    }
  }
  EXPECT_GT(max_busy_before, 8);
  EXPECT_LE(max_busy_after, 8);
}

TEST(CoreFailure, AllCoresFailingDropsEverythingAfter) {
  const RunResult r =
      run_simulation(failing_config(100.0, 16, 1.0), SchedulerSpec::parse("GE"));
  // Jobs arriving after t=1 can never run; quality collapses but the run
  // still terminates cleanly with every job settled.
  EXPECT_EQ(r.released, r.completed + r.partial + r.dropped);
  EXPECT_LT(r.quality, 0.4);
}

}  // namespace
}  // namespace ge::exp
