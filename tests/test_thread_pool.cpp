// Tests for the fixed-size worker pool underlying the experiment engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace ge::util {
namespace {

TEST(ThreadPool, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.wait();
}

TEST(ThreadPool, PoolIsReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<std::uint32_t>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ParallelForWithMoreWorkersThanItems) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, FirstTaskExceptionSurfacesFromWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is consumed: the pool keeps working afterwards.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace ge::util
