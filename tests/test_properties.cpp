// Randomised end-to-end property suite: whole-system invariants that must
// hold for ANY configuration -- random core counts, budgets, rates,
// deadline regimes, burstiness, DVFS mode, monitor horizon, quality family
// and scheduler.  This is the fuzzing layer over the full stack.
#include <gtest/gtest.h>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "exp/timeline.h"
#include "util/rng.h"

namespace ge::exp {
namespace {

struct RandomCase {
  ExperimentConfig cfg;
  SchedulerSpec spec;
  std::string description;
};

RandomCase make_case(std::uint64_t seed) {
  util::Rng rng(seed * 7919 + 1);
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.seed = seed;
  cfg.duration = 2.0 + rng.uniform(0.0, 2.0);
  cfg.cores = 1 + rng.uniform_index(32);
  cfg.power_budget = rng.uniform(40.0, 500.0);
  cfg.arrival_rate = rng.uniform(20.0, 260.0);
  cfg.q_ge = rng.uniform(0.5, 0.99);
  cfg.quantum = rng.uniform(0.05, 1.0);
  cfg.counter_threshold = 1 + static_cast<int>(rng.uniform_index(16));
  cfg.critical_load = rng.uniform(50.0, 250.0);
  cfg.monitor_window = rng.uniform_index(3) == 0 ? 500 : 0;
  cfg.discrete_speeds = rng.uniform_index(3) == 0;
  if (rng.uniform_index(3) == 0) {
    cfg.deadline_interval_max = 0.5;  // random windows
  }
  if (rng.uniform_index(4) == 0) {
    cfg.burst_peak_to_mean = rng.uniform(1.5, 3.5);
  }
  switch (rng.uniform_index(3)) {
    case 0:
      cfg.quality_family = QualityFamily::kExponential;
      cfg.quality_c = rng.uniform(0.0005, 0.01);
      break;
    case 1:
      cfg.quality_family = QualityFamily::kLinear;
      break;
    default:
      cfg.quality_family = QualityFamily::kPowerLaw;
      cfg.quality_c = rng.uniform(0.2, 0.9);
      break;
  }
  static const char* kNames[] = {"GE",   "GE-NoComp", "GE-ES", "GE-WF", "OQ",
                                 "BE",   "FCFS",      "FDFS",  "LJF",   "SJF"};
  const SchedulerSpec spec =
      SchedulerSpec::parse(kNames[rng.uniform_index(std::size(kNames))]);
  RandomCase c{cfg, spec, ""};
  c.description = "seed=" + std::to_string(seed) + " " + spec.display_name() +
                  " m=" + std::to_string(cfg.cores) +
                  " H=" + std::to_string(cfg.power_budget) +
                  " rate=" + std::to_string(cfg.arrival_rate) +
                  (cfg.discrete_speeds ? " discrete" : "") +
                  (cfg.burst_peak_to_mean > 1.0 ? " bursty" : "");
  return c;
}

class RandomConfigProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConfigProperties, SystemInvariantsHold) {
  const RandomCase c = make_case(GetParam());
  SCOPED_TRACE(c.description);
  const workload::Trace trace =
      workload::Trace::generate(c.cfg.workload_spec(), c.cfg.duration);
  Timeline timeline;
  timeline.interval = 0.05;
  const RunResult r = run_simulation(c.cfg, c.spec, trace, &timeline);

  // Conservation: every released job is settled and classified exactly once.
  ASSERT_EQ(r.released, trace.size());
  ASSERT_EQ(r.released, r.completed + r.partial + r.dropped);

  // Quality is a valid average.
  ASSERT_GE(r.quality, 0.0);
  ASSERT_LE(r.quality, 1.0 + 1e-9);

  // Energy is bounded by running every core at the budget for the horizon.
  const double horizon = c.cfg.duration + c.cfg.deadline_interval_max +
                         2.0 * c.cfg.quantum;
  ASSERT_GE(r.energy, 0.0);
  ASSERT_LE(r.energy, c.cfg.power_budget * horizon * (1.0 + 1e-6));

  // Instantaneous power never exceeded the budget at any sample.
  ASSERT_LE(timeline.peak_power(), c.cfg.power_budget * (1.0 + 1e-6));

  // Responses happen inside the deadline window.
  ASSERT_LE(r.p99_response_ms,
            c.cfg.deadline_interval_max * 1000.0 + 1e-6);
  ASSERT_GE(r.p50_response_ms, 0.0);

  // Mode accounting is a valid fraction.
  ASSERT_GE(r.aes_fraction, 0.0);
  ASSERT_LE(r.aes_fraction, 1.0 + 1e-9);

  // Busy fraction is physical.
  ASSERT_GE(r.busy_fraction, 0.0);
  ASSERT_LE(r.busy_fraction, 1.0 + 1e-9);
}

TEST_P(RandomConfigProperties, DeterministicReplay) {
  const RandomCase c = make_case(GetParam());
  SCOPED_TRACE(c.description);
  const workload::Trace trace =
      workload::Trace::generate(c.cfg.workload_spec(), c.cfg.duration);
  const RunResult a = run_simulation(c.cfg, c.spec, trace);
  const RunResult b = run_simulation(c.cfg, c.spec, trace);
  ASSERT_DOUBLE_EQ(a.quality, b.quality);
  ASSERT_DOUBLE_EQ(a.energy, b.energy);
  ASSERT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.dropped, b.dropped);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomConfigProperties,
                         ::testing::Range<std::uint64_t>(1, 41));

// Cross-scheduler invariants on a shared trace.
class CrossSchedulerProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossSchedulerProperties, BeDominatesQualityGeDominatesEnergy) {
  util::Rng rng(GetParam() * 131 + 7);
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.seed = GetParam();
  cfg.duration = 4.0;
  cfg.arrival_rate = rng.uniform(80.0, 170.0);  // below deep overload
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult ge = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult be = run_simulation(cfg, SchedulerSpec::parse("BE"), trace);
  ASSERT_GE(be.quality, ge.quality - 5e-3);
  ASSERT_LE(ge.energy, be.energy * 1.001);
  ASSERT_GE(ge.quality, cfg.q_ge - 0.02);  // the promise holds sub-overload
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSchedulerProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ge::exp
