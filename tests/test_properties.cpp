// Randomised end-to-end property suite: whole-system invariants that must
// hold for ANY configuration -- random core counts, budgets, rates,
// deadline regimes, burstiness, DVFS mode, monitor horizon, quality family
// and scheduler.  This is the fuzzing layer over the full stack.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <random>

#include "core/plan_rectifier.h"
#include "core/queue_policy.h"
#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "exp/timeline.h"
#include "opt/energy_opt.h"
#include "opt/job_cutter.h"
#include "power/discrete_speed.h"
#include "quality/quality_monitor.h"
#include "util/rng.h"

namespace ge::exp {
namespace {

struct RandomCase {
  ExperimentConfig cfg;
  SchedulerSpec spec;
  std::string description;
};

RandomCase make_case(std::uint64_t seed) {
  util::Rng rng(seed * 7919 + 1);
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.seed = seed;
  cfg.duration = 2.0 + rng.uniform(0.0, 2.0);
  cfg.cores = 1 + rng.uniform_index(32);
  cfg.power_budget = rng.uniform(40.0, 500.0);
  cfg.arrival_rate = rng.uniform(20.0, 260.0);
  cfg.q_ge = rng.uniform(0.5, 0.99);
  cfg.quantum = rng.uniform(0.05, 1.0);
  cfg.counter_threshold = 1 + static_cast<int>(rng.uniform_index(16));
  cfg.critical_load = rng.uniform(50.0, 250.0);
  cfg.monitor_window = rng.uniform_index(3) == 0 ? 500 : 0;
  cfg.discrete_speeds = rng.uniform_index(3) == 0;
  if (rng.uniform_index(3) == 0) {
    cfg.deadline_interval_max = 0.5;  // random windows
  }
  if (rng.uniform_index(4) == 0) {
    cfg.burst_peak_to_mean = rng.uniform(1.5, 3.5);
  }
  switch (rng.uniform_index(3)) {
    case 0:
      cfg.quality_family = QualityFamily::kExponential;
      cfg.quality_c = rng.uniform(0.0005, 0.01);
      break;
    case 1:
      cfg.quality_family = QualityFamily::kLinear;
      break;
    default:
      cfg.quality_family = QualityFamily::kPowerLaw;
      cfg.quality_c = rng.uniform(0.2, 0.9);
      break;
  }
  static const char* kNames[] = {"GE",   "GE-NoComp", "GE-ES", "GE-WF", "OQ",
                                 "BE",   "FCFS",      "FDFS",  "LJF",   "SJF"};
  const SchedulerSpec spec =
      SchedulerSpec::parse(kNames[rng.uniform_index(std::size(kNames))]);
  RandomCase c{cfg, spec, ""};
  c.description = "seed=" + std::to_string(seed) + " " + spec.display_name() +
                  " m=" + std::to_string(cfg.cores) +
                  " H=" + std::to_string(cfg.power_budget) +
                  " rate=" + std::to_string(cfg.arrival_rate) +
                  (cfg.discrete_speeds ? " discrete" : "") +
                  (cfg.burst_peak_to_mean > 1.0 ? " bursty" : "");
  return c;
}

class RandomConfigProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConfigProperties, SystemInvariantsHold) {
  const RandomCase c = make_case(GetParam());
  SCOPED_TRACE(c.description);
  const workload::Trace trace =
      workload::Trace::generate(c.cfg.workload_spec(), c.cfg.duration);
  Timeline timeline;
  timeline.interval = 0.05;
  const RunResult r = run_simulation(c.cfg, c.spec, trace, &timeline);

  // Conservation: every released job is settled and classified exactly once.
  ASSERT_EQ(r.released, trace.size());
  ASSERT_EQ(r.released, r.completed + r.partial + r.dropped);

  // Quality is a valid average.
  ASSERT_GE(r.quality, 0.0);
  ASSERT_LE(r.quality, 1.0 + 1e-9);

  // Energy is bounded by running every core at the budget for the horizon.
  const double horizon = c.cfg.duration + c.cfg.deadline_interval_max +
                         2.0 * c.cfg.quantum;
  ASSERT_GE(r.energy, 0.0);
  ASSERT_LE(r.energy, c.cfg.power_budget * horizon * (1.0 + 1e-6));

  // Instantaneous power never exceeded the budget at any sample.
  ASSERT_LE(timeline.peak_power(), c.cfg.power_budget * (1.0 + 1e-6));

  // Responses happen inside the deadline window.
  ASSERT_LE(r.p99_response_ms,
            c.cfg.deadline_interval_max * 1000.0 + 1e-6);
  ASSERT_GE(r.p50_response_ms, 0.0);

  // Mode accounting is a valid fraction.
  ASSERT_GE(r.aes_fraction, 0.0);
  ASSERT_LE(r.aes_fraction, 1.0 + 1e-9);

  // Busy fraction is physical.
  ASSERT_GE(r.busy_fraction, 0.0);
  ASSERT_LE(r.busy_fraction, 1.0 + 1e-9);
}

TEST_P(RandomConfigProperties, DeterministicReplay) {
  const RandomCase c = make_case(GetParam());
  SCOPED_TRACE(c.description);
  const workload::Trace trace =
      workload::Trace::generate(c.cfg.workload_spec(), c.cfg.duration);
  const RunResult a = run_simulation(c.cfg, c.spec, trace);
  const RunResult b = run_simulation(c.cfg, c.spec, trace);
  ASSERT_DOUBLE_EQ(a.quality, b.quality);
  ASSERT_DOUBLE_EQ(a.energy, b.energy);
  ASSERT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.dropped, b.dropped);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomConfigProperties,
                         ::testing::Range<std::uint64_t>(1, 41));

// Cross-scheduler invariants on a shared trace.
class CrossSchedulerProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossSchedulerProperties, BeDominatesQualityGeDominatesEnergy) {
  util::Rng rng(GetParam() * 131 + 7);
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.seed = GetParam();
  cfg.duration = 4.0;
  cfg.arrival_rate = rng.uniform(80.0, 170.0);  // below deep overload
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult ge = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult be = run_simulation(cfg, SchedulerSpec::parse("BE"), trace);
  ASSERT_GE(be.quality, ge.quality - 5e-3);
  ASSERT_LE(ge.energy, be.energy * 1.001);
  ASSERT_GE(ge.quality, cfg.q_ge - 0.02);  // the promise holds sub-overload
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSchedulerProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Component-level properties: plan_rectifier, job_cutter, queue_policy.
// ---------------------------------------------------------------------------

// Random continuous plans pushed through rectify_plan must land on the
// ladder without violating any plan invariant: ladder-level speeds only,
// sequential non-overlapping segments, units consistent with speed*duration,
// every segment within its job's deadline, and never more work than the
// continuous plan carried (rounding down can only lose work, Fig. 12a).
TEST(PlanRectifierProperties, RectifiedPlansKeepCapacityAndDeadlines) {
  const power::DiscreteSpeedTable table =
      power::DiscreteSpeedTable::uniform_ghz(0.2, 2.0);
  std::mt19937_64 rng(501);
  std::uniform_real_distribution<double> work_dist(20.0, 1500.0);
  std::uniform_real_distribution<double> slack_dist(0.05, 1.0);
  std::uniform_int_distribution<int> n_dist(1, 10);
  std::uniform_real_distribution<double> limit_dist(300.0, 2500.0);

  for (int trial = 0; trial < 200; ++trial) {
    const int n = n_dist(rng);
    std::vector<workload::Job> storage(static_cast<std::size_t>(n));
    std::vector<opt::PlanJob> jobs(static_cast<std::size_t>(n));
    double d = 0.0;
    for (int i = 0; i < n; ++i) {
      const auto k = static_cast<std::size_t>(i);
      d += slack_dist(rng);
      storage[k].id = k + 1;
      storage[k].deadline = d;
      storage[k].demand = storage[k].target = work_dist(rng);
      jobs[k] = opt::PlanJob{&storage[k], storage[k].demand, d};
    }
    const opt::ExecutionPlan plan =
        opt::plan_min_energy(0.0, jobs, std::numeric_limits<double>::infinity());
    // Alternate between an unconstrained ceil and a binding limit.
    const double limit = trial % 2 == 0
                             ? std::numeric_limits<double>::infinity()
                             : limit_dist(rng);
    const opt::ExecutionPlan out = sched::rectify_plan(plan, table, limit);

    double t = plan.start();
    for (const opt::PlanSegment& seg : out.segments) {
      EXPECT_TRUE(table.is_level(seg.speed))
          << "trial " << trial << " speed " << seg.speed;
      EXPECT_LE(seg.speed, limit + 1e-6);
      EXPECT_GE(seg.start, t - 1e-9) << "segments must be sequential";
      EXPECT_GT(seg.end, seg.start);
      EXPECT_LE(seg.end, seg.job->deadline + 1e-9);
      EXPECT_NEAR(seg.units, seg.speed * (seg.end - seg.start), 1e-6);
      t = seg.end;
    }
    EXPECT_LE(out.total_units(), plan.total_units() + 1e-6)
        << "rectification must not create work";
    if (!out.empty()) {
      out.validate(0.0);
    }
  }
}

// The LF cut level and every per-job target are monotone non-decreasing in
// Q_GE, and the achieved batch quality meets the target.
TEST(JobCutterProperties, CutLevelsMonotoneInQualityTarget) {
  const quality::ExponentialQuality expq(0.003, 1000.0);
  const quality::PowerLawQuality plq(0.6, 1000.0);
  const quality::QualityFunction* fams[] = {&expq, &plq};
  std::mt19937_64 rng(502);
  std::uniform_real_distribution<double> demand(1.0, 1300.0);
  std::uniform_int_distribution<int> n_dist(1, 25);

  for (int trial = 0; trial < 150; ++trial) {
    const int n = n_dist(rng);
    std::vector<double> demands(static_cast<std::size_t>(n));
    for (double& p : demands) {
      p = demand(rng);
    }
    for (const quality::QualityFunction* f : fams) {
      double prev_level = -1.0;
      std::vector<double> prev_targets;
      for (double q = 0.1; q <= 1.0 + 1e-12; q += 0.1) {
        const opt::CutResult cut = opt::cut_longest_first(demands, *f, q);
        EXPECT_GE(cut.quality, q - 1e-6)
            << "achieved quality must meet the target (q=" << q << ")";
        EXPECT_GE(cut.level, prev_level - 1e-9)
            << "cut level must grow with Q_GE (q=" << q << ")";
        if (!prev_targets.empty()) {
          for (int i = 0; i < n; ++i) {
            const auto k = static_cast<std::size_t>(i);
            EXPECT_GE(cut.targets[k], prev_targets[k] - 1e-9)
                << "target " << i << " shrank when Q_GE rose to " << q;
          }
        }
        prev_level = cut.level;
        prev_targets = cut.targets;
      }
    }
  }
}

// Queue-policy tie stability: pick() uses strict comparisons, so among jobs
// with equal keys the first-queued job must win.  Each policy gets an
// instance where its key ties across all jobs; an unstable pick would
// dispatch a later job first and starve the earlier ones (observable as
// executed == 0 on jobs that should have run).
struct QueuePolicyHarness {
  sim::Simulator sim;
  power::PowerModel pm{5.0, 2.0, 1000.0};
  server::MulticoreServer server;
  quality::ExponentialQuality f{0.003, 1000.0};
  quality::QualityMonitor monitor{f};
  std::unique_ptr<sched::QueuePolicyScheduler> scheduler;
  std::vector<std::unique_ptr<workload::Job>> jobs;

  explicit QueuePolicyHarness(sched::QueuePolicyOptions options)
      : server(1, 20.0, pm, sim) {
    sched::SchedulerEnv env{&sim, &server, &f, &monitor};
    scheduler = std::make_unique<sched::QueuePolicyScheduler>(env, options);
    server.core(0).set_job_finished_callback(
        [this](workload::Job* j) { scheduler->on_job_finished(j); });
    server.core(0).set_idle_callback(
        [this](int id) { scheduler->on_core_idle(id); });
    scheduler->start();
  }

  workload::Job* add_job(double arrival, double deadline, double demand) {
    auto job = std::make_unique<workload::Job>();
    job->id = jobs.size() + 1;
    job->arrival = arrival;
    job->deadline = deadline;
    job->demand = demand;
    job->target = demand;
    workload::Job* ptr = job.get();
    jobs.push_back(std::move(job));
    sim.schedule_at(arrival, [this, ptr] { scheduler->on_job_arrival(ptr); });
    sim.schedule_at(ptr->deadline, [this, ptr] { scheduler->on_deadline(ptr); });
    return ptr;
  }
};

TEST(QueuePolicyProperties, TiedKeysDispatchInArrivalOrder) {
  // Equal demands, staggered deadlines: SJF, LJF and FCFS all tie on their
  // keys (demand / demand / arrival), so dispatch must follow queue order
  // and every job gets its slice before its own deadline.
  for (sched::QueueOrder order : {sched::QueueOrder::kFcfs, sched::QueueOrder::kSjf,
                                  sched::QueueOrder::kLjf}) {
    QueuePolicyHarness h(sched::QueuePolicyOptions{order, nullptr});
    constexpr int kJobs = 5;
    std::vector<workload::Job*> js;
    for (int i = 0; i < kJobs; ++i) {
      js.push_back(h.add_job(0.0, 0.5 * (i + 1), 100.0));
    }
    h.sim.run_until(10.0);
    h.scheduler->finish();
    double prev_finish = -1.0;
    for (int i = 0; i < kJobs; ++i) {
      SCOPED_TRACE(std::string(sched::to_string(order)) + " job " +
                   std::to_string(i));
      EXPECT_GT(js[static_cast<std::size_t>(i)]->executed, 0.0)
          << "stable pick must serve every tied job in order";
      EXPECT_GT(js[static_cast<std::size_t>(i)]->finish_time, prev_finish)
          << "finish order must match arrival order";
      prev_finish = js[static_cast<std::size_t>(i)]->finish_time;
    }
  }
}

TEST(QueuePolicyProperties, TiedDeadlinesServeFirstArrival) {
  // FDFS with identical deadlines: only one job can run (the rest expire
  // together), and stability demands it be the first queued.
  QueuePolicyHarness h(
      sched::QueuePolicyOptions{sched::QueueOrder::kFdfs, nullptr});
  std::vector<workload::Job*> js;
  for (int i = 0; i < 4; ++i) {
    js.push_back(h.add_job(0.0, 1.0, 200.0));
  }
  h.sim.run_until(2.0);
  h.scheduler->finish();
  EXPECT_GT(js[0]->executed, 0.0) << "first-queued job must be picked on a tie";
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(js[static_cast<std::size_t>(i)]->executed, 0.0)
        << "job " << i << " should have waited behind the tie winner";
  }
}

}  // namespace
}  // namespace ge::exp
