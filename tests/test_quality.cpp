// Unit and property tests for quality functions and the quality monitor.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "quality/quality_function.h"
#include "quality/quality_monitor.h"

namespace ge::quality {
namespace {

TEST(ExponentialQuality, BoundaryValues) {
  ExponentialQuality f(0.003, 1000.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_NEAR(f.value(1000.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.xmax(), 1000.0);
}

TEST(ExponentialQuality, ClampsOutsideDomain) {
  ExponentialQuality f(0.003, 1000.0);
  EXPECT_DOUBLE_EQ(f.value(-5.0), 0.0);
  EXPECT_NEAR(f.value(5000.0), 1.0, 1e-12);
}

TEST(ExponentialQuality, MatchesClosedForm) {
  const double c = 0.003;
  const double xmax = 1000.0;
  ExponentialQuality f(c, xmax);
  for (double x : {10.0, 130.0, 192.0, 500.0, 999.0}) {
    const double expected = (1.0 - std::exp(-c * x)) / (1.0 - std::exp(-c * xmax));
    EXPECT_NEAR(f.value(x), expected, 1e-12);
  }
}

TEST(ExponentialQuality, HeadWorthMoreThanTail) {
  // Diminishing returns: the first 100 units contribute more quality than
  // the second 100 units.
  ExponentialQuality f(0.003, 1000.0);
  const double head = f.value(100.0) - f.value(0.0);
  const double tail = f.value(200.0) - f.value(100.0);
  EXPECT_GT(head, tail);
}

// Property sweep over concavity values used in Fig. 9.
class QualityFunctionProperties : public ::testing::TestWithParam<double> {};

TEST_P(QualityFunctionProperties, MonotoneNonDecreasing) {
  ExponentialQuality f(GetParam(), 1000.0);
  double prev = -1.0;
  for (double x = 0.0; x <= 1000.0; x += 10.0) {
    const double v = f.value(x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST_P(QualityFunctionProperties, Concave) {
  ExponentialQuality f(GetParam(), 1000.0);
  for (double x = 0.0; x <= 900.0; x += 50.0) {
    const double mid = f.value(x + 50.0);
    const double chord = 0.5 * (f.value(x) + f.value(x + 100.0));
    EXPECT_GE(mid, chord - 1e-12);
  }
}

TEST_P(QualityFunctionProperties, InverseRoundTrip) {
  ExponentialQuality f(GetParam(), 1000.0);
  for (double x = 0.0; x <= 1000.0; x += 25.0) {
    EXPECT_NEAR(f.inverse(f.value(x)), x, 1e-6);
  }
}

TEST_P(QualityFunctionProperties, DerivativeMatchesFiniteDifference) {
  ExponentialQuality f(GetParam(), 1000.0);
  const double h = 1e-5;
  for (double x = 1.0; x <= 999.0; x += 111.0) {
    const double fd = (f.value(x + h) - f.value(x - h)) / (2.0 * h);
    EXPECT_NEAR(f.derivative(x), fd, 1e-6);
  }
}

TEST_P(QualityFunctionProperties, InverseDerivativeRoundTrip) {
  ExponentialQuality f(GetParam(), 1000.0);
  for (double x = 10.0; x <= 990.0; x += 49.0) {
    const double slope = f.derivative(x);
    EXPECT_NEAR(f.inverse_derivative(slope), x, 1e-6);
  }
}

TEST_P(QualityFunctionProperties, HigherConcavityGivesHigherQuality) {
  // Fig. 9b: for the same processed volume, a larger c yields more quality.
  const double c = GetParam();
  ExponentialQuality low(c, 1000.0);
  ExponentialQuality high(c * 2.0, 1000.0);
  for (double x : {100.0, 300.0, 700.0}) {
    EXPECT_GT(high.value(x), low.value(x));
  }
}

INSTANTIATE_TEST_SUITE_P(ConcavitySweep, QualityFunctionProperties,
                         ::testing::Values(0.0005, 0.001, 0.002, 0.003, 0.005, 0.009));

TEST(LinearQuality, ValueAndInverse) {
  LinearQuality f(1000.0);
  EXPECT_DOUBLE_EQ(f.value(250.0), 0.25);
  EXPECT_DOUBLE_EQ(f.inverse(0.25), 250.0);
  EXPECT_DOUBLE_EQ(f.derivative(123.0), 0.001);
}

TEST(PowerLawQuality, ConcaveAndInvertible) {
  PowerLawQuality f(0.5, 1000.0);
  EXPECT_NEAR(f.value(250.0), 0.5, 1e-12);
  EXPECT_NEAR(f.inverse(0.5), 250.0, 1e-9);
  // Concavity.
  EXPECT_GT(f.value(100.0) - f.value(0.0), f.value(200.0) - f.value(100.0));
}

TEST(PowerLawQuality, GenericInverseDerivative) {
  PowerLawQuality f(0.5, 1000.0);
  const double x = 400.0;
  EXPECT_NEAR(f.inverse_derivative(f.derivative(x)), x, 1e-4);
}

// Inverse boundary contract: inverse(0) = 0 and inverse(1) = xmax for every
// family, with out-of-range q clamped into [0, 1].  The GE cutter calls
// inverse at the closed-form step, where overshoot can push the desired
// quality to exactly 0 or 1 -- these edges must be exact, not approximate.
TEST(QualityInverseEdges, AllFamiliesExactAtZeroAndOne) {
  const ExponentialQuality expq(0.003, 1000.0);
  const LinearQuality linq(1000.0);
  const PowerLawQuality plq(0.5, 1000.0);
  const QualityFunction* fams[] = {&expq, &linq, &plq};
  for (const QualityFunction* f : fams) {
    SCOPED_TRACE(f->name());
    EXPECT_DOUBLE_EQ(f->inverse(0.0), 0.0);
    EXPECT_DOUBLE_EQ(f->inverse(1.0), f->xmax());
    // Out-of-range targets clamp instead of extrapolating.
    EXPECT_DOUBLE_EQ(f->inverse(-0.5), 0.0);
    EXPECT_DOUBLE_EQ(f->inverse(1.5), f->xmax());
    // Round trip at the boundaries.
    EXPECT_DOUBLE_EQ(f->value(f->inverse(0.0)), 0.0);
    EXPECT_NEAR(f->value(f->inverse(1.0)), 1.0, 1e-12);
  }
}

TEST(QualityInverseEdges, RoundTripAcrossTheRange) {
  const ExponentialQuality expq(0.003, 1000.0);
  const LinearQuality linq(1000.0);
  const PowerLawQuality plq(0.5, 1000.0);
  const QualityFunction* fams[] = {&expq, &linq, &plq};
  for (const QualityFunction* f : fams) {
    SCOPED_TRACE(f->name());
    for (double q = 0.05; q < 1.0; q += 0.05) {
      EXPECT_NEAR(f->value(f->inverse(q)), q, 1e-9) << "q=" << q;
    }
  }
}

TEST(QualityConstructorChecks, RejectInvalidParameters) {
  EXPECT_DEATH(ExponentialQuality(0.0, 1000.0), "positive");
  EXPECT_DEATH(ExponentialQuality(0.003, 0.0), "positive");
  EXPECT_DEATH(LinearQuality(-1.0), "positive");
  EXPECT_DEATH(PowerLawQuality(0.0, 1000.0), "exponent");
  EXPECT_DEATH(PowerLawQuality(1.0, 1000.0), "exponent");
  EXPECT_DEATH(PowerLawQuality(0.5, 0.0), "positive");
}

TEST(MakePaperQualityFunction, UsesPaperConstants) {
  auto f = make_paper_quality_function();
  EXPECT_NEAR(f->value(1000.0), 1.0, 1e-12);
  // f(192) ~ 0.46 for c = 0.003 (sanity anchor from the paper's setup).
  EXPECT_NEAR(f->value(192.0), 0.461, 0.005);
}

TEST(QualityMonitor, StartsAtPerfectQuality) {
  ExponentialQuality f(0.003, 1000.0);
  QualityMonitor monitor(f);
  EXPECT_DOUBLE_EQ(monitor.quality(), 1.0);
  EXPECT_EQ(monitor.settled_jobs(), 0u);
}

TEST(QualityMonitor, FullCompletionKeepsQualityOne) {
  ExponentialQuality f(0.003, 1000.0);
  QualityMonitor monitor(f);
  monitor.settle(400.0, 400.0);
  monitor.settle(900.0, 900.0);
  EXPECT_NEAR(monitor.quality(), 1.0, 1e-12);
}

TEST(QualityMonitor, DroppedJobLowersQuality) {
  ExponentialQuality f(0.003, 1000.0);
  QualityMonitor monitor(f);
  monitor.settle(400.0, 400.0);
  monitor.settle(0.0, 400.0);
  EXPECT_NEAR(monitor.quality(), 0.5, 1e-12);
}

TEST(QualityMonitor, MatchesPaperFormula) {
  ExponentialQuality f(0.003, 1000.0);
  QualityMonitor monitor(f);
  monitor.settle(100.0, 300.0);
  monitor.settle(250.0, 500.0);
  const double expected =
      (f.value(100.0) + f.value(250.0)) / (f.value(300.0) + f.value(500.0));
  EXPECT_NEAR(monitor.quality(), expected, 1e-12);
  EXPECT_EQ(monitor.settled_jobs(), 2u);
}

TEST(QualityMonitor, ClampsOverdelivery) {
  ExponentialQuality f(0.003, 1000.0);
  QualityMonitor monitor(f);
  monitor.settle(500.0, 400.0);  // executed > demand (rounding noise)
  EXPECT_NEAR(monitor.quality(), 1.0, 1e-12);
}

TEST(QualityMonitor, SlidingWindowForgetsOldJobs) {
  ExponentialQuality f(0.003, 1000.0);
  QualityMonitor monitor(f, /*window=*/2);
  monitor.settle(0.0, 400.0);  // dropped, will scroll out
  monitor.settle(400.0, 400.0);
  monitor.settle(400.0, 400.0);
  EXPECT_NEAR(monitor.quality(), 1.0, 1e-12);
}

TEST(QualityMonitor, CumulativeNeverForgets) {
  ExponentialQuality f(0.003, 1000.0);
  QualityMonitor monitor(f);  // window = 0
  monitor.settle(0.0, 400.0);
  for (int i = 0; i < 10; ++i) {
    monitor.settle(400.0, 400.0);
  }
  EXPECT_LT(monitor.quality(), 1.0);
}

}  // namespace
}  // namespace ge::quality
