// Unit tests for the discrete-event engine.
//
// The EventQueue contract tests run as a typed suite over every
// implementation (heap and calendar): both must honour the exact same
// (time, scheduling-order) dequeue contract, which is what makes the queue
// kind a pure performance knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace ge::sim {
namespace {

template <typename Queue>
class EventQueueContract : public ::testing::Test {
 protected:
  Queue q;
};

using QueueKinds = ::testing::Types<HeapEventQueue, CalendarEventQueue>;
TYPED_TEST_SUITE(EventQueueContract, QueueKinds);

TYPED_TEST(EventQueueContract, PopsInTimeOrder) {
  auto& q = this->q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TYPED_TEST(EventQueueContract, TiesBreakInSchedulingOrder) {
  auto& q = this->q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().action();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TYPED_TEST(EventQueueContract, CancelRemovesEvent) {
  auto& q = this->q;
  bool ran = false;
  const EventId id = q.push(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TYPED_TEST(EventQueueContract, CancelUnknownIdIsNoop) {
  auto& q = this->q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(kInvalidEventId));
}

TYPED_TEST(EventQueueContract, CancelExecutedIdIsNoop) {
  auto& q = this->q;
  const EventId id = q.push(1.0, [] {});
  q.pop().action();
  EXPECT_FALSE(q.cancel(id));
}

TYPED_TEST(EventQueueContract, DoubleCancelReturnsFalse) {
  auto& q = this->q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TYPED_TEST(EventQueueContract, SizeCountsLiveEvents) {
  auto& q = this->q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TYPED_TEST(EventQueueContract, CancelMiddleOfEqualTimestamps) {
  auto& q = this->q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(0); });
  const EventId mid = q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });
  q.cancel(mid);
  while (!q.empty()) {
    q.pop().action();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TYPED_TEST(EventQueueContract, SlotTableRecyclesRetiredIds) {
  // The liveness table must track *pending* events, not every id ever
  // issued: a long push/pop chain with a bounded working set keeps a
  // bounded slot table (the O(max_job_id) regression this guards against).
  auto& q = this->q;
  for (int i = 0; i < 10; ++i) {
    q.push(static_cast<double>(i), [] {});
  }
  for (int round = 0; round < 1000; ++round) {
    q.pop();
    q.push(static_cast<double>(10 + round), [] {});
  }
  EXPECT_EQ(q.size(), 10u);
  EXPECT_LE(q.slot_count(), 16u);
  EXPECT_EQ(q.total_pushed(), 1010u);
  EXPECT_LE(q.peak_live(), 11u);
}

TYPED_TEST(EventQueueContract, RecycledSlotsKeepHandlesDistinct) {
  // A recycled slot's new id must not alias the retired one: the old
  // handle stays dead for cancel()/is_pending() and the new one is live.
  auto& q = this->q;
  const EventId first = q.push(1.0, [] {});
  q.pop();
  const EventId second = q.push(2.0, [] {});
  EXPECT_NE(first, second);
  EXPECT_FALSE(q.is_pending(first));
  EXPECT_TRUE(q.is_pending(second));
  EXPECT_FALSE(q.cancel(first));
  EXPECT_TRUE(q.cancel(second));
}

// Differential: the heap and the calendar queue must produce the identical
// pop sequence under a randomized push/pop/cancel workload, including
// timestamp collisions and pushes behind the current minimum (the raw queue
// API permits them even though the Simulator never schedules in the past).
TEST(EventQueueDifferential, HeapAndCalendarPopIdentically) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    HeapEventQueue heap;
    CalendarEventQueue calendar;
    util::Rng rng(seed);
    std::vector<std::pair<EventId, EventId>> live;  // (heap id, calendar id)
    std::vector<int> pops_heap;
    std::vector<int> pops_cal;
    int tag = 0;
    const auto push_both = [&](double t) {
      const int id = tag++;
      live.emplace_back(heap.push(t, [&pops_heap, id] { pops_heap.push_back(id); }),
                        calendar.push(t, [&pops_cal, id] { pops_cal.push_back(id); }));
    };
    const auto pop_both = [&](int step) {
      ASSERT_DOUBLE_EQ(heap.next_time(), calendar.next_time());
      Event he = heap.pop();
      Event ce = calendar.pop();
      ASSERT_EQ(he.time, ce.time) << "seed " << seed << " step " << step;
      he.action();
      ce.action();
      ASSERT_EQ(pops_heap.back(), pops_cal.back())
          << "seed " << seed << " step " << step;
      std::erase_if(live,
                    [&](const auto& pair) { return pair.first == he.id; });
    };
    for (int step = 0; step < 4000; ++step) {
      const double p = rng.uniform(0.0, 1.0);
      if (p < 0.55 || heap.empty()) {
        // Coarse grid forces frequent timestamp ties; occasional pushes at
        // time 0 land behind the cursor after earlier pops.
        const double t =
            (rng.uniform(0.0, 1.0) < 0.05)
                ? 0.0
                : std::floor(rng.uniform(0.0, 400.0)) * 0.25;
        push_both(t);
      } else if (p < 0.75 && !live.empty()) {
        const std::size_t victim = static_cast<std::size_t>(
            rng.uniform(0.0, static_cast<double>(live.size())));
        const auto [hid, cid] = live[victim];
        EXPECT_EQ(heap.cancel(hid), calendar.cancel(cid));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        pop_both(step);
      }
      ASSERT_EQ(heap.size(), calendar.size());
    }
    while (!heap.empty()) {
      pop_both(-1);
    }
    EXPECT_TRUE(calendar.empty());
    EXPECT_EQ(pops_heap, pops_cal);
  }
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(2.5, [&] { seen = sim.now(); });
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(1.5, [&] { times.push_back(sim.now()); });
  });
  sim.run_until(10.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  bool late_ran = false;
  sim.schedule_at(10.0, [&] { late_ran = true; });
  sim.run_until(5.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(15.0);
  EXPECT_TRUE(late_ran);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int count = 0;
  // A self-rescheduling ticker.
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) {
      sim.schedule_in(1.0, tick);
    }
  };
  sim.schedule_at(1.0, tick);
  sim.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.event_pending(id));
  sim.cancel(id);
  EXPECT_FALSE(sim.event_pending(id));
  sim.run_until(2.0);
  EXPECT_FALSE(ran);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_at(static_cast<double>(i), [] {});
  }
  sim.run_until(100.0);
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, RunToCompletionDrainsQueue) {
  Simulator sim;
  int runs = 0;
  sim.schedule_at(1.0, [&] { ++runs; });
  sim.schedule_at(2.0, [&] { ++runs; });
  sim.run_to_completion();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, SameTimestampFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(0); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Simulator, SchedulingInThePastDies) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_DEATH(sim.schedule_at(1.0, [] {}), "past");
}

}  // namespace
}  // namespace ge::sim
