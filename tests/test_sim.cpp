// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace ge::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().action();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(kInvalidEventId));
}

TEST(EventQueue, CancelExecutedIdIsNoop) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop().action();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, SizeCountsLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelMiddleOfEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(0); });
  const EventId mid = q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });
  q.cancel(mid);
  while (!q.empty()) {
    q.pop().action();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(2.5, [&] { seen = sim.now(); });
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(1.5, [&] { times.push_back(sim.now()); });
  });
  sim.run_until(10.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  bool late_ran = false;
  sim.schedule_at(10.0, [&] { late_ran = true; });
  sim.run_until(5.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(15.0);
  EXPECT_TRUE(late_ran);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int count = 0;
  // A self-rescheduling ticker.
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) {
      sim.schedule_in(1.0, tick);
    }
  };
  sim.schedule_at(1.0, tick);
  sim.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.event_pending(id));
  sim.cancel(id);
  EXPECT_FALSE(sim.event_pending(id));
  sim.run_until(2.0);
  EXPECT_FALSE(ran);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_at(static_cast<double>(i), [] {});
  }
  sim.run_until(100.0);
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, RunToCompletionDrainsQueue) {
  Simulator sim;
  int runs = 0;
  sim.schedule_at(1.0, [&] { ++runs; });
  sim.schedule_at(2.0, [&] { ++runs; });
  sim.run_to_completion();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, SameTimestampFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(0); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Simulator, SchedulingInThePastDies) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_DEATH(sim.schedule_at(1.0, [] {}), "past");
}

}  // namespace
}  // namespace ge::sim
