// Unit tests for ge::util (RNG, statistics, tables, flags).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace ge::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(rate);
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, UniformIndexWithinBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.uniform_index(7), 7u);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(19);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) {
    counts[rng.uniform_index(5)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // roughly uniform
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child stream should not reproduce the parent's next outputs.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.min(), all.min(), 1e-12);
  EXPECT_NEAR(a.max(), all.max(), 1e-12);
}

TEST(TimeWeightedStats, PiecewiseConstantSignal) {
  TimeWeightedStats s;
  s.add(2.0, 1.0);  // 2 for 1 s
  s.add(4.0, 3.0);  // 4 for 3 s
  EXPECT_DOUBLE_EQ(s.total_time(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  // E[x^2] = (4*1 + 16*3)/4 = 13; var = 13 - 12.25 = 0.75.
  EXPECT_NEAR(s.variance(), 0.75, 1e-12);
}

TEST(TimeWeightedStats, ZeroDurationIgnored) {
  TimeWeightedStats s;
  s.add(100.0, 0.0);
  EXPECT_DOUBLE_EQ(s.total_time(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(TimeWeightedStats, ConstantSignalHasZeroVariance) {
  TimeWeightedStats s;
  for (int i = 0; i < 100; ++i) {
    s.add(2.5, 0.01);
  }
  EXPECT_NEAR(s.variance(), 0.0, 1e-9);
  EXPECT_NEAR(s.mean(), 2.5, 1e-12);
}

TEST(TimeWeightedStats, MergeAccumulates) {
  TimeWeightedStats a;
  TimeWeightedStats b;
  a.add(1.0, 2.0);
  b.add(3.0, 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_NEAR(a.variance(), 1.0, 1e-12);
}

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.begin_row();
  t.add("alpha");
  t.add(1.5, 2);
  t.begin_row();
  t.add("b");
  t.add(std::uint64_t{42});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.begin_row();
  t.add(1.0, 1);
  t.add(2.0, 1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1.0,2.0\n");
}

TEST(Table, CellAccess) {
  Table t({"x"});
  t.begin_row();
  t.add("v");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 1u);
  EXPECT_EQ(t.cell(0, 0), "v");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Flags, SpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--rate", "150", "--seed=7"};
  Flags flags(4, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 150.0);
  EXPECT_EQ(flags.get_int("seed", 0), 7);
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(flags.get_string("name", "dflt"), "dflt");
  EXPECT_TRUE(flags.get_bool("flag", true));
}

TEST(Flags, BooleanSwitch) {
  const char* argv[] = {"prog", "--verbose", "--quiet=false"};
  Flags flags(3, argv);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("quiet", true));
}

TEST(Flags, DoubleList) {
  const char* argv[] = {"prog", "--rates", "100,150,200"};
  Flags flags(3, argv);
  const auto rates = flags.get_double_list("rates", {});
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
  EXPECT_DOUBLE_EQ(rates[2], 200.0);
}

TEST(Flags, LastOccurrenceWins) {
  const char* argv[] = {"prog", "--x", "1", "--x", "2"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.get_int("x", 0), 2);
}

TEST(Flags, PositionalArguments) {
  const char* argv[] = {"prog", "file.csv", "--x=1", "other"};
  Flags flags(4, argv);
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "file.csv");
  EXPECT_EQ(flags.positional()[1], "other");
}

}  // namespace
}  // namespace ge::util

// -- quantiles -------------------------------------------------------------

#include "util/quantiles.h"

namespace ge::util {
namespace {

TEST(QuantileCollector, MedianOfKnownSample) {
  QuantileCollector q;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    q.add(x);
  }
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(q.min(), 1.0);
  EXPECT_DOUBLE_EQ(q.max(), 5.0);
  EXPECT_DOUBLE_EQ(q.mean(), 3.0);
  EXPECT_EQ(q.count(), 5u);
}

TEST(QuantileCollector, InterpolatesBetweenOrderStatistics) {
  QuantileCollector q;
  q.add(0.0);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(q.quantile(0.75), 7.5);
}

TEST(QuantileCollector, AddAfterQueryResorts) {
  QuantileCollector q;
  q.add(2.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 2.0);
  q.add(0.5);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 0.5);
}

TEST(QuantileCollector, UniformSampleQuantiles) {
  QuantileCollector q;
  Rng rng(77);
  for (int i = 0; i < 100000; ++i) {
    q.add(rng.uniform());
  }
  EXPECT_NEAR(q.quantile(0.5), 0.5, 0.01);
  EXPECT_NEAR(q.quantile(0.95), 0.95, 0.01);
  EXPECT_NEAR(q.quantile(0.99), 0.99, 0.01);
}

TEST(QuantileCollector, EmptyDies) {
  QuantileCollector q;
  EXPECT_DEATH((void)q.quantile(0.5), "empty");
}

}  // namespace
}  // namespace ge::util
