// Tests for config validation and the report helpers.
#include <gtest/gtest.h>

#include "exp/config.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"

namespace ge::exp {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.arrival_rate = 130.0;
  cfg.duration = 3.0;
  cfg.seed = 3;
  return cfg;
}

TEST(ConfigValidate, PaperDefaultsAreValid) {
  ExperimentConfig::paper_defaults().validate();  // must not abort
}

TEST(ConfigValidate, RejectsZeroCores) {
  ExperimentConfig cfg = small_config();
  cfg.cores = 0;
  EXPECT_DEATH(cfg.validate(), "core");
}

TEST(ConfigValidate, RejectsNegativeBudget) {
  ExperimentConfig cfg = small_config();
  cfg.power_budget = -5.0;
  EXPECT_DEATH(cfg.validate(), "budget");
}

TEST(ConfigValidate, RejectsQgeOutOfRange) {
  ExperimentConfig cfg = small_config();
  cfg.q_ge = 1.5;
  EXPECT_DEATH(cfg.validate(), "Q_GE");
}

TEST(ConfigValidate, RejectsInvertedDeadlineWindow) {
  ExperimentConfig cfg = small_config();
  cfg.deadline_interval_max = cfg.deadline_interval / 2.0;
  EXPECT_DEATH(cfg.validate(), "deadline");
}

TEST(ConfigValidate, RejectsBadPowerLawExponent) {
  ExperimentConfig cfg = small_config();
  cfg.quality_family = QualityFamily::kPowerLaw;
  cfg.quality_c = 1.5;
  EXPECT_DEATH(cfg.validate(), "power-law");
}

TEST(ConfigValidate, RejectsTooManyFailedCores) {
  ExperimentConfig cfg = small_config();
  cfg.failure_cores = cfg.cores + 1;
  EXPECT_DEATH(cfg.validate(), "fail");
}

TEST(ConfigValidate, RunnerValidatesImplicitly) {
  ExperimentConfig cfg = small_config();
  cfg.arrival_rate = -1.0;
  EXPECT_DEATH((void)run_simulation(cfg, SchedulerSpec{}), "arrival rate");
}

TEST(Report, SummaryContainsHeadlineNumbers) {
  const ExperimentConfig cfg = small_config();
  const RunResult r = run_simulation(cfg, SchedulerSpec{});
  const std::string text = summarize(r, cfg);
  EXPECT_NE(text.find("GE"), std::string::npos);
  EXPECT_NE(text.find("quality"), std::string::npos);
  EXPECT_NE(text.find("energy"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(Report, JsonIsWellFormedAndComplete) {
  const ExperimentConfig cfg = small_config();
  const RunResult r = run_simulation(cfg, SchedulerSpec{});
  const std::string json = to_json(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"scheduler", "arrival_rate", "quality", "energy_j", "aes_fraction",
        "p99_response_ms", "released", "completed", "dropped", "rounds"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos) << key;
  }
  // Balanced quotes: an even count.
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(Report, JsonValuesMatchResult) {
  const ExperimentConfig cfg = small_config();
  const RunResult r = run_simulation(cfg, SchedulerSpec{});
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"released\": " + std::to_string(r.released)),
            std::string::npos);
  EXPECT_NE(json.find("\"scheduler\": \"GE\""), std::string::npos);
}

}  // namespace
}  // namespace ge::exp

// -- command-line -> config binding ------------------------------------------

#include "exp/flags_config.h"

namespace ge::exp {
namespace {

TEST(FlagsConfig, OverridesCoreFields) {
  const char* argv[] = {"prog",          "--rate",    "180", "--cores", "8",
                        "--budget",      "160",       "--qge", "0.8",
                        "--seconds",     "12",        "--seed", "9"};
  const util::Flags flags(static_cast<int>(std::size(argv)), argv);
  const ExperimentConfig cfg =
      apply_flags(ExperimentConfig::paper_defaults(), flags);
  EXPECT_DOUBLE_EQ(cfg.arrival_rate, 180.0);
  EXPECT_EQ(cfg.cores, 8u);
  EXPECT_DOUBLE_EQ(cfg.power_budget, 160.0);
  EXPECT_DOUBLE_EQ(cfg.q_ge, 0.8);
  EXPECT_DOUBLE_EQ(cfg.duration, 12.0);
  EXPECT_EQ(cfg.seed, 9u);
}

TEST(FlagsConfig, DefaultsUntouchedWithoutFlags) {
  const char* argv[] = {"prog"};
  const util::Flags flags(1, argv);
  const ExperimentConfig cfg =
      apply_flags(ExperimentConfig::paper_defaults(), flags);
  EXPECT_DOUBLE_EQ(cfg.arrival_rate, 150.0);
  EXPECT_EQ(cfg.cores, 16u);
  EXPECT_FALSE(cfg.discrete_speeds);
}

TEST(FlagsConfig, DeadlinesGivenInMilliseconds) {
  const char* argv[] = {"prog", "--deadline", "200", "--deadline-max", "600"};
  const util::Flags flags(5, argv);
  const ExperimentConfig cfg =
      apply_flags(ExperimentConfig::paper_defaults(), flags);
  EXPECT_DOUBLE_EQ(cfg.deadline_interval, 0.2);
  EXPECT_DOUBLE_EQ(cfg.deadline_interval_max, 0.6);
}

TEST(FlagsConfig, QualityFamilySelection) {
  const char* argv[] = {"prog", "--quality-family", "powerlaw", "--quality-c",
                        "0.5"};
  const util::Flags flags(5, argv);
  const ExperimentConfig cfg =
      apply_flags(ExperimentConfig::paper_defaults(), flags);
  EXPECT_EQ(cfg.quality_family, QualityFamily::kPowerLaw);
  EXPECT_DOUBLE_EQ(cfg.quality_c, 0.5);
}

TEST(FlagsConfig, UnknownFamilyDies) {
  const char* argv[] = {"prog", "--quality-family", "cubic"};
  const util::Flags flags(3, argv);
  EXPECT_DEATH((void)apply_flags(ExperimentConfig::paper_defaults(), flags),
               "quality family");
}

TEST(FlagsConfig, FailureAndDiscreteFlags) {
  const char* argv[] = {"prog", "--discrete", "--failure-time", "5",
                        "--failure-cores", "4"};
  const util::Flags flags(6, argv);
  const ExperimentConfig cfg =
      apply_flags(ExperimentConfig::paper_defaults(), flags);
  EXPECT_TRUE(cfg.discrete_speeds);
  EXPECT_DOUBLE_EQ(cfg.failure_time, 5.0);
  EXPECT_EQ(cfg.failure_cores, 4u);
}

}  // namespace
}  // namespace ge::exp
