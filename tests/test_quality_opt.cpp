// Tests for the Quality-OPT allocator (Tians partial processing).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "opt/quality_opt.h"
#include "quality/quality_function.h"
#include "util/rng.h"

namespace ge::opt {
namespace {

using quality::ExponentialQuality;

const ExponentialQuality& paper_f() {
  static const ExponentialQuality f(0.003, 1000.0);
  return f;
}

bool prefix_feasible(double now, const std::vector<AllocJob>& jobs,
                     const std::vector<double>& x, double cap) {
  double prefix = 0.0;
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    prefix += x[k];
    if (prefix > cap * std::max(jobs[k].deadline - now, 0.0) + 1e-6) {
      return false;
    }
  }
  return true;
}

// Exhaustive grid search over allocations (small instances only).
double brute_force_quality(double now, const std::vector<AllocJob>& jobs, double cap,
                           int steps = 40) {
  std::vector<double> x(jobs.size(), 0.0);
  double best = -1.0;
  std::function<void(std::size_t)> recurse = [&](std::size_t i) {
    if (i == jobs.size()) {
      if (prefix_feasible(now, jobs, x, cap)) {
        best = std::max(best, allocation_quality(jobs, x, paper_f()));
      }
      return;
    }
    for (int s = 0; s <= steps; ++s) {
      x[i] = jobs[i].max_extra * static_cast<double>(s) / steps;
      recurse(i + 1);
    }
  };
  recurse(0);
  return best;
}

TEST(QualityOpt, EmptyInput) {
  EXPECT_TRUE(maximize_quality(0.0, {}, 1000.0, paper_f()).empty());
}

TEST(QualityOpt, ZeroCapAllocatesNothing) {
  std::vector<AllocJob> jobs{{0.0, 300.0, 0.15}};
  const auto x = maximize_quality(0.0, jobs, 0.0, paper_f());
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(QualityOpt, AmpleCapacityGivesEverything) {
  std::vector<AllocJob> jobs{{0.0, 300.0, 0.5}, {100.0, 200.0, 0.8}};
  const auto x = maximize_quality(0.0, jobs, 1e6, paper_f());
  EXPECT_NEAR(x[0], 300.0, 1e-6);
  EXPECT_NEAR(x[1], 200.0, 1e-6);
}

TEST(QualityOpt, SingleJobCappedByWindow) {
  std::vector<AllocJob> jobs{{0.0, 500.0, 0.1}};
  const auto x = maximize_quality(0.0, jobs, 2000.0, paper_f());
  EXPECT_NEAR(x[0], 200.0, 1e-6);  // 2000 u/s * 0.1 s
}

TEST(QualityOpt, EqualJobsGetEqualShares) {
  // Two identical jobs sharing one deadline window: concavity says split
  // evenly rather than finishing one and starving the other.
  std::vector<AllocJob> jobs{{0.0, 400.0, 0.2}, {0.0, 400.0, 0.2}};
  const auto x = maximize_quality(0.0, jobs, 2000.0, paper_f());
  EXPECT_NEAR(x[0] + x[1], 400.0, 1e-6);
  EXPECT_NEAR(x[0], x[1], 1e-5);
}

TEST(QualityOpt, FavoursLessExecutedJob) {
  // Same remaining capacity; the job with less work done has the higher
  // marginal quality and must receive more.
  std::vector<AllocJob> jobs{{300.0, 400.0, 0.2}, {0.0, 400.0, 0.2}};
  const auto x = maximize_quality(0.0, jobs, 2000.0, paper_f());
  EXPECT_GT(x[1], x[0]);
}

TEST(QualityOpt, ExpiredPrefixGetsNothing) {
  std::vector<AllocJob> jobs{{0.0, 300.0, -0.1}, {0.0, 300.0, 0.5}};
  const auto x = maximize_quality(0.0, jobs, 2000.0, paper_f());
  EXPECT_NEAR(x[0], 0.0, 1e-9);
  EXPECT_NEAR(x[1], 300.0, 1e-6);
}

TEST(QualityOpt, TightFirstDeadlineLimitsFirstJob) {
  // Job 1 has a very short window; job 2 has plenty.  The prefix constraint
  // on job 1 must bind while job 2 still completes.
  std::vector<AllocJob> jobs{{0.0, 500.0, 0.05}, {0.0, 100.0, 1.0}};
  const auto x = maximize_quality(0.0, jobs, 2000.0, paper_f());
  EXPECT_NEAR(x[0], 100.0, 1e-6);  // 2000 * 0.05
  EXPECT_NEAR(x[1], 100.0, 1e-6);
}

TEST(QualityOpt, MatchesBruteForceOnSmallInstances) {
  util::Rng rng(4321);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(2);  // 2..3 jobs
    std::vector<AllocJob> jobs;
    double deadline = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      deadline += rng.uniform(0.02, 0.2);
      jobs.push_back(AllocJob{rng.uniform(0.0, 200.0), rng.uniform(50.0, 400.0),
                              deadline});
    }
    const double cap = rng.uniform(500.0, 3000.0);
    const auto x = maximize_quality(0.0, jobs, cap, paper_f());
    ASSERT_TRUE(prefix_feasible(0.0, jobs, x, cap));
    const double got = allocation_quality(jobs, x, paper_f());
    const double best = brute_force_quality(0.0, jobs, cap);
    // The grid is coarse, so brute force slightly underestimates the true
    // optimum; our solution must be at least as good minus grid error.
    EXPECT_GE(got, best - 2e-3) << "trial " << trial;
  }
}

// Random property sweep: feasibility and local-optimality style checks.
class QualityOptRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QualityOptRandom, FeasibleAndSaturates) {
  util::Rng rng(GetParam());
  const std::size_t n = 1 + rng.uniform_index(12);
  std::vector<AllocJob> jobs;
  double deadline = 0.0;
  double total_extra = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    deadline += rng.uniform(0.01, 0.15);
    jobs.push_back(
        AllocJob{rng.uniform(0.0, 300.0), rng.uniform(10.0, 500.0), deadline});
    total_extra += jobs.back().max_extra;
  }
  const double cap = rng.uniform(200.0, 4000.0);
  const auto x = maximize_quality(0.0, jobs, cap, paper_f());
  ASSERT_EQ(x.size(), n);
  ASSERT_TRUE(prefix_feasible(0.0, jobs, x, cap));
  double used = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_GE(x[i], -1e-9);
    ASSERT_LE(x[i], jobs[i].max_extra + 1e-9);
    used += x[i];
  }
  // Either all work is allocated or some constraint binds (the final prefix
  // at least): check the total cannot be pushed past min(total capacity,
  // total work).
  const double capacity = cap * deadline;
  ASSERT_LE(used, std::min(total_extra, capacity) + 1e-6);
}

TEST_P(QualityOptRandom, MonotoneInCap) {
  util::Rng rng(GetParam() + 500);
  const std::size_t n = 1 + rng.uniform_index(6);
  std::vector<AllocJob> jobs;
  double deadline = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    deadline += rng.uniform(0.02, 0.15);
    jobs.push_back(
        AllocJob{rng.uniform(0.0, 200.0), rng.uniform(10.0, 400.0), deadline});
  }
  const double cap1 = rng.uniform(100.0, 2000.0);
  const double cap2 = cap1 + rng.uniform(10.0, 2000.0);
  const double q1 =
      allocation_quality(jobs, maximize_quality(0.0, jobs, cap1, paper_f()), paper_f());
  const double q2 =
      allocation_quality(jobs, maximize_quality(0.0, jobs, cap2, paper_f()), paper_f());
  EXPECT_GE(q2, q1 - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, QualityOptRandom,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace ge::opt
