// Tests for the experiment runner, scheduler specs, config and sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>

#include "exp/calibrate.h"
#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_registry.h"
#include "exp/scheduler_spec.h"
#include "exp/sweep.h"

namespace ge::exp {
namespace {

ExperimentConfig small_config(double rate = 120.0, double seconds = 4.0) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.arrival_rate = rate;
  cfg.duration = seconds;
  cfg.seed = 42;
  return cfg;
}

TEST(Config, PaperDefaultsMatchSectionIVB) {
  const ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  EXPECT_EQ(cfg.cores, 16u);
  EXPECT_DOUBLE_EQ(cfg.power_budget, 320.0);
  EXPECT_DOUBLE_EQ(cfg.q_ge, 0.9);
  EXPECT_DOUBLE_EQ(cfg.quality_c, 0.003);
  EXPECT_DOUBLE_EQ(cfg.deadline_interval, 0.150);
  EXPECT_DOUBLE_EQ(cfg.critical_load, 154.0);
  EXPECT_DOUBLE_EQ(cfg.quantum, 0.5);
  EXPECT_EQ(cfg.counter_threshold, 8);
}

TEST(Config, DerivedQuantities) {
  const ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  EXPECT_NEAR(cfg.mean_demand(), 192.1, 0.5);
  // 16 cores at 2 GHz = 32000 units/s.
  EXPECT_NEAR(cfg.nominal_capacity(), 32000.0, 1e-6);
  EXPECT_NEAR(cfg.saturation_rate(), 32000.0 / cfg.mean_demand(), 1e-6);
}

TEST(SchedulerSpec, RegistryHoldsEveryBuiltin) {
  // The built-in plugins self-register from an OBJECT library; if the
  // linker ever drops those translation units this fails loudly instead of
  // "unknown scheduler" surfacing at a bench command line.
  const SchedulerRegistry& reg = SchedulerRegistry::instance();
  for (const char* name :
       {"GE", "GE-NoComp", "GE-ES", "GE-WF", "GE-RR", "OQ", "BE", "BE-P",
        "BE-S", "FCFS", "FDFS", "LJF", "SJF", "OA", "QOA", "AVR", "BKP"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_GE(reg.size(), 17u);
}

TEST(SchedulerSpec, ParseRoundTripEveryPlugin) {
  // Every registered plugin must round-trip display_name() -> parse();
  // registering a scheduler whose display does not parse back (or whose
  // aliases collide) fails here rather than at a bench command line.
  for (const SchedulerPlugin* plugin : SchedulerRegistry::instance().plugins()) {
    SchedulerSpec spec = SchedulerSpec::parse(plugin->name);
    EXPECT_EQ(&spec.resolved(), plugin) << plugin->name;
    const std::string name = spec.display_name();
    EXPECT_EQ(&SchedulerSpec::parse(name).resolved(), plugin) << name;
    EXPECT_EQ(SchedulerSpec::parse(name).display_name(), name) << name;
    // Case-insensitive: the lowered spelling parses to the same plugin.
    std::string lowered = name;
    std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    EXPECT_EQ(&SchedulerSpec::parse(lowered).resolved(), plugin) << lowered;
    for (const std::string& alias : plugin->aliases) {
      EXPECT_EQ(&SchedulerSpec::parse(alias).resolved(), plugin) << alias;
    }
  }
  EXPECT_TRUE(SchedulerSpec::parse("GE-NC").is("GE-NoComp"));
  EXPECT_TRUE(SchedulerSpec::parse("fcfs").is("FCFS"));
}

TEST(SchedulerSpec, ParameterizedSpecsRoundTrip) {
  const SchedulerSpec qoa = SchedulerSpec::parse("QOA[0.5]");
  ASSERT_EQ(qoa.params.size(), 1u);
  EXPECT_DOUBLE_EQ(qoa.params[0], 0.5);
  EXPECT_EQ(qoa.display_name(), "QOA[0.5]");
  EXPECT_EQ(SchedulerSpec::parse(qoa.display_name()).display_name(), "QOA[0.5]");
  // QOA defaults to the 2 - 1/beta optimum and displays it explicitly.
  EXPECT_EQ(SchedulerSpec::parse("qoa").display_name(), "QOA[1.5]");

  const SchedulerSpec bep = SchedulerSpec::parse("BE-P[0.8]");
  EXPECT_DOUBLE_EQ(bep.budget_scale, 0.8);
  EXPECT_EQ(bep.display_name(), "BE-P[0.8]");
  EXPECT_EQ(SchedulerSpec::parse("BE-P").display_name(), "BE-P");

  const SchedulerSpec bes = SchedulerSpec::parse("be-s[2.4]");
  EXPECT_DOUBLE_EQ(bes.speed_cap_ghz, 2.4);
  EXPECT_EQ(bes.display_name(), "BE-S[2.4]");
  EXPECT_EQ(SchedulerSpec::parse("BE-S").display_name(), "BE-S");
}

TEST(SchedulerSpec, DefaultSpecIsGe) {
  // SchedulerSpec{} must keep behaving as plain GE: half the test suite
  // (and the runner's defaults) construct it without parse().
  const SchedulerSpec spec;
  EXPECT_TRUE(spec.is("GE"));
  EXPECT_EQ(spec.display_name(), "GE");
}

TEST(SchedulerSpec, UnknownNameDies) {
  EXPECT_DEATH((void)SchedulerSpec::parse("NOPE"), "unknown scheduler");
}

TEST(SchedulerSpec, BadParametersDie) {
  EXPECT_DEATH((void)SchedulerSpec::parse("QOA[zero]"), "bad scheduler parameter");
  EXPECT_DEATH((void)SchedulerSpec::parse("QOA[0.5"), "expected trailing");
  EXPECT_DEATH((void)SchedulerSpec::parse("QOA[]"), "empty scheduler parameter");
  EXPECT_DEATH((void)SchedulerSpec::parse("QOA[0.5,0.6]"), "expects between");
  EXPECT_DEATH((void)SchedulerSpec::parse("QOA[-1]"), "must be positive");
  EXPECT_DEATH((void)SchedulerSpec::parse("GE[1]"), "expects between");
}

TEST(SchedulerSpec, EffectiveBudgetScalesForBeP) {
  const ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  SchedulerSpec spec = SchedulerSpec::parse("BE-P");
  spec.budget_scale = 0.5;
  EXPECT_DOUBLE_EQ(effective_budget(spec, cfg), 160.0);
  EXPECT_DOUBLE_EQ(effective_budget(SchedulerSpec::parse("GE"), cfg), 320.0);
}

TEST(Runner, DeterministicForSeed) {
  const ExperimentConfig cfg = small_config();
  const RunResult a = run_simulation(cfg, SchedulerSpec{});
  const RunResult b = run_simulation(cfg, SchedulerSpec{});
  EXPECT_DOUBLE_EQ(a.quality, b.quality);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_EQ(a.released, b.released);
  EXPECT_EQ(a.completed, b.completed);
}

TEST(Runner, DifferentSeedsDiffer) {
  ExperimentConfig cfg = small_config();
  const RunResult a = run_simulation(cfg, SchedulerSpec{});
  cfg.seed = 43;
  const RunResult b = run_simulation(cfg, SchedulerSpec{});
  EXPECT_NE(a.energy, b.energy);
}

TEST(Runner, AllJobsAccounted) {
  const RunResult r = run_simulation(small_config(), SchedulerSpec{});
  EXPECT_GT(r.released, 0u);
  EXPECT_EQ(r.released, r.completed + r.partial + r.dropped);
}

TEST(Runner, PowerBudgetNeverExceeded) {
  ExperimentConfig cfg = small_config(220.0, 3.0);  // overload stresses caps
  cfg.verify_power = true;  // samples total power and GE_CHECKs the budget
  const RunResult r = run_simulation(cfg, SchedulerSpec{});
  EXPECT_GT(r.released, 0u);
}

TEST(Runner, PowerBudgetNeverExceededDiscrete) {
  ExperimentConfig cfg = small_config(220.0, 3.0);
  cfg.verify_power = true;
  cfg.discrete_speeds = true;
  const RunResult r = run_simulation(cfg, SchedulerSpec{});
  EXPECT_GT(r.released, 0u);
}

TEST(Runner, BeAchievesFullQualityAtLightLoad) {
  const RunResult r =
      run_simulation(small_config(60.0, 4.0), SchedulerSpec::parse("BE"));
  EXPECT_GT(r.quality, 0.99);
}

TEST(Runner, GeHoldsQualityNearTarget) {
  const RunResult r = run_simulation(small_config(120.0, 8.0), SchedulerSpec{});
  EXPECT_GT(r.quality, 0.85);
  EXPECT_LT(r.quality, 0.97);  // and it does exploit the slack
}

TEST(Runner, GeSavesEnergyVersusBe) {
  const ExperimentConfig cfg = small_config(150.0, 8.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult ge = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult be = run_simulation(cfg, SchedulerSpec::parse("BE"), trace);
  EXPECT_LT(ge.energy, be.energy);
  EXPECT_GE(be.quality, ge.quality - 1e-9);
}

TEST(Runner, AesFractionWithinBounds) {
  const RunResult r = run_simulation(small_config(), SchedulerSpec{});
  EXPECT_GE(r.aes_fraction, 0.0);
  EXPECT_LE(r.aes_fraction, 1.0);
  // BE never enters AES.
  const RunResult be = run_simulation(small_config(), SchedulerSpec::parse("BE"));
  EXPECT_DOUBLE_EQ(be.aes_fraction, 0.0);
}

TEST(Runner, SharedTraceMakesComparisonsPaired) {
  const ExperimentConfig cfg = small_config();
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult a = run_simulation(cfg, SchedulerSpec{}, trace);
  const RunResult b = run_simulation(cfg, SchedulerSpec{}, trace);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_EQ(a.released, trace.size());
}

TEST(Runner, QueuePoliciesRun) {
  for (const char* name : {"FCFS", "FDFS", "LJF", "SJF"}) {
    const RunResult r = run_simulation(small_config(), SchedulerSpec::parse(name));
    EXPECT_GT(r.released, 0u) << name;
    EXPECT_GT(r.quality, 0.0) << name;
    EXPECT_GT(r.energy, 0.0) << name;
  }
}

TEST(Runner, DiscreteSpeedsCloseToContinuous) {
  ExperimentConfig cfg = small_config(120.0, 6.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult cont = run_simulation(cfg, SchedulerSpec{}, trace);
  cfg.discrete_speeds = true;
  const RunResult disc = run_simulation(cfg, SchedulerSpec{}, trace);
  EXPECT_NEAR(disc.quality, cont.quality, 0.05);
  EXPECT_NEAR(disc.energy / cont.energy, 1.0, 0.25);
}

TEST(Sweep, SharedTraceAcrossSchedulersAtEachPoint) {
  const ExperimentConfig cfg = small_config(100.0, 2.0);
  const auto points = sweep_arrival_rates(
      cfg, {SchedulerSpec::parse("GE"), SchedulerSpec::parse("BE")}, {80.0, 120.0});
  ASSERT_EQ(points.size(), 2u);
  for (const auto& point : points) {
    ASSERT_EQ(point.results.size(), 2u);
    EXPECT_EQ(point.results[0].released, point.results[1].released);
  }
}

TEST(Sweep, SeriesTableShape) {
  const ExperimentConfig cfg = small_config(100.0, 2.0);
  const auto points =
      sweep_arrival_rates(cfg, {SchedulerSpec::parse("GE")}, {80.0, 120.0});
  const util::Table table =
      series_table(points, "rate", [](const RunResult& r) { return r.quality; });
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 2u);
}

TEST(Calibrate, BudgetScaleReachesTargetQuality) {
  ExperimentConfig cfg = small_config(100.0, 4.0);
  const CalibrationResult cal = calibrate_budget_scale(cfg, 0.05, 1.0, 8);
  EXPECT_GT(cal.value, 0.05);
  EXPECT_LE(cal.value, 1.0);
  EXPECT_GE(cal.quality, cfg.q_ge - 0.02);
  EXPECT_GT(cal.evaluations, 1);
}

TEST(Calibrate, SpeedCapReachesTargetQuality) {
  ExperimentConfig cfg = small_config(100.0, 4.0);
  const CalibrationResult cal = calibrate_speed_cap(cfg, 0.2, 4.0, 8);
  EXPECT_GT(cal.value, 0.2);
  EXPECT_GE(cal.quality, cfg.q_ge - 0.02);
}

}  // namespace
}  // namespace ge::exp

// -- latency metrics, static power, replication, burstiness -----------------

#include "exp/replicate.h"

namespace ge::exp {
namespace {

TEST(Runner, ResponseTimesBoundedByDeadlineWindow) {
  const RunResult r = run_simulation(small_config(), SchedulerSpec{});
  EXPECT_GT(r.mean_response_ms, 0.0);
  EXPECT_LE(r.p99_response_ms, 150.0 + 1e-6);
  EXPECT_LE(r.p50_response_ms, r.p95_response_ms + 1e-9);
  EXPECT_LE(r.p95_response_ms, r.p99_response_ms + 1e-9);
}

TEST(Runner, GeRespondsNoLaterThanBeOnAverage) {
  const ExperimentConfig cfg = small_config(140.0, 6.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult ge = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult be = run_simulation(cfg, SchedulerSpec::parse("BE"), trace);
  EXPECT_LE(ge.mean_response_ms, be.mean_response_ms + 1.0);
}

TEST(Runner, StaticEnergyIsAConstantOffset) {
  ExperimentConfig cfg = small_config();
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult without = run_simulation(cfg, SchedulerSpec{}, trace);
  cfg.static_power_per_core = 2.0;
  const RunResult with = run_simulation(cfg, SchedulerSpec{}, trace);
  EXPECT_DOUBLE_EQ(without.static_energy, 0.0);
  EXPECT_GT(with.static_energy, 0.0);
  // Dynamic energy is unaffected: static power is a pure offset (the paper's
  // justification for ignoring it).
  EXPECT_DOUBLE_EQ(with.energy, without.energy);
}

TEST(Runner, CrrDominatesPlainRr) {
  // Plain RR restarts every distribution cycle at core 0; with the frequent
  // single-job batches of idle-core triggering that degenerates to piling
  // all work on the first core.  C-RR (the paper's choice) must dominate.
  const ExperimentConfig cfg = small_config(150.0, 6.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult crr = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult rr = run_simulation(cfg, SchedulerSpec::parse("GE-RR"), trace);
  EXPECT_EQ(rr.scheduler, "GE-RR");
  EXPECT_GT(crr.quality, rr.quality);
}

TEST(Runner, BurstyWorkloadRunsAndDegradesGracefully) {
  ExperimentConfig cfg = small_config(130.0, 8.0);
  const RunResult plain = run_simulation(cfg, SchedulerSpec{});
  cfg.burst_peak_to_mean = 3.0;
  cfg.verify_power = true;  // caps must hold under bursts too
  const RunResult bursty = run_simulation(cfg, SchedulerSpec{});
  EXPECT_GT(bursty.released, 0u);
  EXPECT_LE(bursty.quality, plain.quality + 0.02);
}

TEST(Replicate, SummarisesAcrossSeeds) {
  const ExperimentConfig cfg = small_config(120.0, 2.0);
  const ReplicationSummary summary = replicate(cfg, SchedulerSpec{}, 3);
  EXPECT_EQ(summary.replicas, 3);
  EXPECT_EQ(summary.quality.count(), 3u);
  EXPECT_GT(summary.energy.mean(), 0.0);
  // Different seeds: energies differ, so a positive spread.
  EXPECT_GT(summary.energy.stddev(), 0.0);
}

TEST(Replicate, QualityStableAcrossSeeds) {
  const ExperimentConfig cfg = small_config(120.0, 4.0);
  const ReplicationSummary summary = replicate(cfg, SchedulerSpec{}, 4);
  EXPECT_NEAR(summary.quality.mean(), 0.9, 0.03);
  EXPECT_LT(summary.quality.stddev(), 0.02);
}

}  // namespace
}  // namespace ge::exp
