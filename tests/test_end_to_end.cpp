// End-to-end invariants: short simulations reproducing the *shape* of the
// paper's headline claims.  These are the integration tests that tie every
// module together; the bench/ binaries regenerate the full figures.
#include <gtest/gtest.h>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/sweep.h"

namespace ge::exp {
namespace {

ExperimentConfig cfg_at(double rate, double seconds = 10.0, std::uint64_t seed = 7) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.arrival_rate = rate;
  cfg.duration = seconds;
  cfg.seed = seed;
  return cfg;
}

RunResult run_at(const char* algo, double rate, double seconds = 10.0) {
  return run_simulation(cfg_at(rate, seconds), SchedulerSpec::parse(algo));
}

// --- Fig. 3a shape: quality ordering below the overload point -------------

TEST(EndToEnd, GeHoldsQgeAcrossModerateRates) {
  for (double rate : {100.0, 130.0, 160.0}) {
    const RunResult r = run_at("GE", rate);
    EXPECT_GT(r.quality, 0.87) << "rate " << rate;
  }
}

TEST(EndToEnd, BeQualityIsHighestBelowOverload) {
  const ExperimentConfig cfg = cfg_at(130.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult be = run_simulation(cfg, SchedulerSpec::parse("BE"), trace);
  for (const char* algo : {"GE", "OQ", "FCFS", "LJF", "SJF"}) {
    const RunResult r = run_simulation(cfg, SchedulerSpec::parse(algo), trace);
    EXPECT_GE(be.quality, r.quality - 1e-9) << algo;
  }
}

TEST(EndToEnd, DemandOrderPoliciesHaveWorstQuality) {
  // LJF and SJF perturb the deadline order and discard urgent jobs.
  const ExperimentConfig cfg = cfg_at(170.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult ge = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult sjf = run_simulation(cfg, SchedulerSpec::parse("SJF"), trace);
  const RunResult ljf = run_simulation(cfg, SchedulerSpec::parse("LJF"), trace);
  EXPECT_LT(sjf.quality, ge.quality);
  EXPECT_LT(ljf.quality, ge.quality);
}

// --- Fig. 3b shape: GE saves energy versus BE ------------------------------

TEST(EndToEnd, GeSavesSubstantialEnergyVersusBe) {
  double best_saving = 0.0;
  for (double rate : {100.0, 130.0, 160.0, 190.0}) {
    const ExperimentConfig cfg = cfg_at(rate);
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    const RunResult ge = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
    const RunResult be = run_simulation(cfg, SchedulerSpec::parse("BE"), trace);
    EXPECT_LT(ge.energy, be.energy) << "rate " << rate;
    best_saving = std::max(best_saving, 1.0 - ge.energy / be.energy);
  }
  // The paper reports up to 23.9% savings; demand shape and horizon differ,
  // but double-digit savings must be visible somewhere in the sweep.
  EXPECT_GT(best_saving, 0.10);
}

TEST(EndToEnd, EnergyGrowsWithLoadUntilSaturation) {
  const RunResult lo = run_at("GE", 100.0);
  const RunResult hi = run_at("GE", 180.0);
  EXPECT_GT(hi.energy, lo.energy);
}

// --- Fig. 1 shape: AES-mode fraction falls with load ----------------------

TEST(EndToEnd, AesFractionHighWhenLight) {
  const RunResult r = run_at("GE", 100.0);
  EXPECT_GT(r.aes_fraction, 0.5);
}

TEST(EndToEnd, AesFractionDropsWhenOverloaded) {
  const RunResult light = run_at("GE", 100.0);
  const RunResult heavy = run_at("GE", 230.0);
  EXPECT_LT(heavy.aes_fraction, light.aes_fraction);
}

// --- Fig. 5 shape: compensation trades energy for quality -----------------

TEST(EndToEnd, CompensationLiftsQualityAtHeavyLoad) {
  const ExperimentConfig cfg = cfg_at(200.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult with = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult without =
      run_simulation(cfg, SchedulerSpec::parse("GE-NoComp"), trace);
  EXPECT_GE(with.quality, without.quality - 1e-9);
  EXPECT_GE(with.energy, without.energy * 0.98);  // compensation costs energy
}

// --- Fig. 6/7 shape: ES vs WF ----------------------------------------------

TEST(EndToEnd, WfHasHigherSpeedVarianceUnderLightLoad) {
  const ExperimentConfig cfg = cfg_at(110.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult es = run_simulation(cfg, SchedulerSpec::parse("GE-ES"), trace);
  const RunResult wf = run_simulation(cfg, SchedulerSpec::parse("GE-WF"), trace);
  EXPECT_GE(wf.speed_variance, es.speed_variance * 0.9);
  EXPECT_NEAR(es.quality, wf.quality, 0.03);  // same quality when light
}

TEST(EndToEnd, WfBeatsEsQualityUnderHeavyLoad) {
  const ExperimentConfig cfg = cfg_at(215.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult es = run_simulation(cfg, SchedulerSpec::parse("GE-ES"), trace);
  const RunResult wf = run_simulation(cfg, SchedulerSpec::parse("GE-WF"), trace);
  EXPECT_GE(wf.quality, es.quality - 0.005);
}

TEST(EndToEnd, HybridUsesWfOnlyAboveCriticalLoad) {
  const RunResult light = run_at("GE", 100.0);
  EXPECT_EQ(light.wf_rounds, 0u);
  EXPECT_GT(light.es_rounds, 0u);
  const RunResult heavy = run_at("GE", 220.0);
  EXPECT_GT(heavy.wf_rounds, 0u);
}

// --- Fig. 9 shape: concavity helps -----------------------------------------

TEST(EndToEnd, HigherConcavityYieldsHigherQualityUnderOverload) {
  ExperimentConfig lo = cfg_at(215.0);
  lo.quality_c = 0.0005;
  ExperimentConfig hi = cfg_at(215.0);
  hi.quality_c = 0.009;
  const RunResult rlo = run_simulation(lo, SchedulerSpec::parse("GE"));
  const RunResult rhi = run_simulation(hi, SchedulerSpec::parse("GE"));
  EXPECT_GT(rhi.quality, rlo.quality);
}

// --- Fig. 10 shape: power budget -------------------------------------------

TEST(EndToEnd, LargerBudgetImprovesQualityUnderHeavyLoad) {
  ExperimentConfig small = cfg_at(200.0);
  small.power_budget = 80.0;
  ExperimentConfig large = cfg_at(200.0);
  large.power_budget = 480.0;
  const RunResult rs = run_simulation(small, SchedulerSpec::parse("GE"));
  const RunResult rl = run_simulation(large, SchedulerSpec::parse("GE"));
  EXPECT_GT(rl.quality, rs.quality);
}

TEST(EndToEnd, BudgetIrrelevantWhenLight) {
  ExperimentConfig small = cfg_at(100.0);
  small.power_budget = 160.0;
  ExperimentConfig large = cfg_at(100.0);
  large.power_budget = 480.0;
  const RunResult rs = run_simulation(small, SchedulerSpec::parse("GE"));
  const RunResult rl = run_simulation(large, SchedulerSpec::parse("GE"));
  EXPECT_NEAR(rs.quality, rl.quality, 0.03);
}

// --- Fig. 11 shape: core count ----------------------------------------------

TEST(EndToEnd, MoreCoresImproveQualityAndEnergy) {
  ExperimentConfig few = cfg_at(150.0);
  few.cores = 2;
  ExperimentConfig many = cfg_at(150.0);
  many.cores = 32;
  const RunResult rf = run_simulation(few, SchedulerSpec::parse("GE"));
  const RunResult rm = run_simulation(many, SchedulerSpec::parse("GE"));
  EXPECT_GT(rm.quality, rf.quality);
  EXPECT_LT(rm.energy, rf.energy);
}

// --- Fig. 4 shape: random deadline windows ----------------------------------

TEST(EndToEnd, RandomDeadlinesFdfsBeatsFcfs) {
  ExperimentConfig cfg = cfg_at(170.0);
  cfg.deadline_interval_max = 0.500;
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult fdfs = run_simulation(cfg, SchedulerSpec::parse("FDFS"), trace);
  const RunResult fcfs = run_simulation(cfg, SchedulerSpec::parse("FCFS"), trace);
  EXPECT_GT(fdfs.quality, fcfs.quality);
}

TEST(EndToEnd, RandomDeadlinesGeStillHoldsQuality) {
  ExperimentConfig cfg = cfg_at(130.0);
  cfg.deadline_interval_max = 0.500;
  const RunResult r = run_simulation(cfg, SchedulerSpec::parse("GE"));
  EXPECT_GT(r.quality, 0.87);
}

}  // namespace
}  // namespace ge::exp

// -- additional cross-checks appended during hardening -----------------------

namespace ge::exp {
namespace {

TEST(EndToEnd, OqSitsSlightlyAboveGeAtLightLoad) {
  const ExperimentConfig cfg = cfg_at(110.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult ge = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult oq = run_simulation(cfg, SchedulerSpec::parse("OQ"), trace);
  // OQ cuts to Q_GE + 2%: a touch more quality, a touch more energy.
  EXPECT_GT(oq.quality, ge.quality - 0.002);
  EXPECT_LT(oq.quality, ge.quality + 0.05);
}

TEST(EndToEnd, OqLacksCompensationUnderLoad) {
  const ExperimentConfig cfg = cfg_at(185.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult ge = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult oq = run_simulation(cfg, SchedulerSpec::parse("OQ"), trace);
  // Without compensation OQ drifts below GE when discards accumulate.
  EXPECT_LT(oq.quality, ge.quality + 1e-9);
}

TEST(EndToEnd, BusyFractionTracksCutWorkloadAtLightLoad) {
  // Sanity anchor against queueing intuition: at light load the server's
  // busy fraction approximates (cut workload rate) / (nominal capacity),
  // within the slack Energy-OPT uses to run slower-but-longer.
  const ExperimentConfig cfg = cfg_at(100.0, 15.0);
  const RunResult r = run_simulation(cfg, SchedulerSpec::parse("BE"));
  const double offered = cfg.arrival_rate * cfg.mean_demand();
  const double utilisation = offered / cfg.nominal_capacity();
  // BE does all the work; busy fraction must be at least the utilisation
  // (running below nominal speed stretches busy time) and bounded by 1.
  EXPECT_GE(r.busy_fraction, utilisation * 0.9);
  EXPECT_LE(r.busy_fraction, 1.0);
}

TEST(EndToEnd, DeadlineSettlementFreesCoreForWaitingWork) {
  // At deep overload with tiny counter, jobs wait while all cores are busy;
  // the deadline of a running job must open the core for the queue without
  // waiting for the 500 ms quantum -- otherwise quality would collapse far
  // below what Fig. 3a shows at 250 req/s.
  const RunResult r = run_at("GE", 250.0, 6.0);
  EXPECT_GT(r.quality, 0.65);
  EXPECT_LT(r.p99_response_ms, 150.0 + 1e-6);
}

TEST(EndToEnd, DiscreteHeavyLoadStaysWithinBudget) {
  ExperimentConfig cfg = cfg_at(230.0, 5.0);
  cfg.discrete_speeds = true;
  cfg.verify_power = true;  // asserts the cap on a 10 ms grid
  const RunResult r = run_simulation(cfg, SchedulerSpec::parse("GE"));
  EXPECT_GT(r.released, 0u);
}

}  // namespace
}  // namespace ge::exp
