// Tests for the ExperimentEngine: the determinism contract (bit-identical
// results for any worker count), trace sharing across a plan point, the
// plan-builder sweeps, and the replicate() statistics pinned against the
// pre-engine serial implementation.
#include <gtest/gtest.h>

#include <vector>

#include "exp/config.h"
#include "exp/experiment_engine.h"
#include "exp/replicate.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "exp/sweep.h"

namespace ge::exp {
namespace {

ExperimentConfig small_config(double rate = 120.0, double seconds = 2.0) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.arrival_rate = rate;
  cfg.duration = seconds;
  cfg.seed = 42;
  return cfg;
}

// Bit-identical comparison of every RunResult field (EXPECT_EQ on doubles
// is exact, which is the point: parallel execution must not perturb even
// the last ulp).
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_EQ(a.arrival_rate, b.arrival_rate);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.static_energy, b.static_energy);
  EXPECT_EQ(a.avg_power, b.avg_power);
  EXPECT_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.p50_response_ms, b.p50_response_ms);
  EXPECT_EQ(a.p95_response_ms, b.p95_response_ms);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.aes_fraction, b.aes_fraction);
  EXPECT_EQ(a.avg_speed_ghz, b.avg_speed_ghz);
  EXPECT_EQ(a.speed_variance, b.speed_variance);
  EXPECT_EQ(a.released, b.released);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.partial, b.partial);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.wf_rounds, b.wf_rounds);
  EXPECT_EQ(a.es_rounds, b.es_rounds);
  EXPECT_EQ(a.busy_fraction, b.busy_fraction);
  EXPECT_EQ(a.energy_cov, b.energy_cov);
}

ExperimentPlan mixed_plan() {
  // Two points x three schedulers, plus an isolated run with its own seed:
  // exercises trace sharing, config variation and point isolation at once.
  ExperimentPlan plan;
  for (std::size_t p = 0; p < 2; ++p) {
    const double rate = p == 0 ? 110.0 : 170.0;
    for (const char* name : {"GE", "BE", "FCFS"}) {
      plan.add(small_config(rate), SchedulerSpec::parse(name), p);
    }
  }
  ExperimentConfig lone = small_config(140.0);
  lone.seed = 7;
  plan.add_isolated(lone, SchedulerSpec::parse("GE"));
  return plan;
}

TEST(ExperimentEngine, OneWorkerAndFourWorkersAreBitIdentical) {
  const ExperimentPlan plan = mixed_plan();
  ExecutionOptions serial;
  serial.jobs = 1;
  ExecutionOptions parallel;
  parallel.jobs = 4;
  const std::vector<RunResult> a = run_plan(plan, serial);
  const std::vector<RunResult> b = run_plan(plan, parallel);
  ASSERT_EQ(a.size(), plan.size());
  ASSERT_EQ(b.size(), plan.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
  }
}

TEST(ExperimentEngine, RepeatedParallelRunsAreBitIdentical) {
  const ExperimentPlan plan = mixed_plan();
  ExecutionOptions parallel;
  parallel.jobs = 3;
  const std::vector<RunResult> a = run_plan(plan, parallel);
  const std::vector<RunResult> b = run_plan(plan, parallel);
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
  }
}

TEST(ExperimentEngine, EmptyPlanYieldsEmptyResults) {
  EXPECT_TRUE(run_plan(ExperimentPlan{}).empty());
}

TEST(ExperimentEngine, TasksAtAPointShareOneTrace) {
  ExperimentPlan plan;
  plan.add(small_config(), SchedulerSpec::parse("GE"), 0);
  plan.add(small_config(), SchedulerSpec::parse("BE"), 0);
  const std::vector<RunResult> results = run_plan(plan);
  // Same trace => same released-job count for every scheduler at the point.
  EXPECT_EQ(results[0].released, results[1].released);
}

TEST(ExperimentEngine, EffectiveJobsClampsToPlanAndFloorsAtOne) {
  ExecutionOptions opts;
  opts.jobs = 8;
  const ExperimentEngine engine(opts);
  EXPECT_EQ(engine.effective_jobs(3), 3u);
  EXPECT_EQ(engine.effective_jobs(100), 8u);
  ExecutionOptions auto_opts;  // jobs = 0 -> hardware_concurrency
  EXPECT_GE(ExperimentEngine(auto_opts).effective_jobs(100), 1u);
}

TEST(ExperimentEngineDeathTest, MismatchedWorkloadAtSharedPointDies) {
  ExperimentPlan plan;
  plan.add(small_config(110.0), SchedulerSpec::parse("GE"), 0);
  plan.add(small_config(170.0), SchedulerSpec::parse("BE"), 0);
  EXPECT_DEATH((void)run_plan(plan), "share the workload");
}

TEST(Sweep, ParallelSweepMatchesSerialSweep) {
  const std::vector<SchedulerSpec> specs{SchedulerSpec::parse("GE"),
                                         SchedulerSpec::parse("BE")};
  ExecutionOptions serial;
  serial.jobs = 1;
  ExecutionOptions parallel;
  parallel.jobs = 4;
  const auto a = sweep_arrival_rates(small_config(), specs, {100.0, 150.0}, serial);
  const auto b = sweep_arrival_rates(small_config(), specs, {100.0, 150.0}, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].results.size(), b[p].results.size());
    for (std::size_t s = 0; s < a[p].results.size(); ++s) {
      SCOPED_TRACE(testing::Message() << "point " << p << " spec " << s);
      expect_identical(a[p].results[s], b[p].results[s]);
    }
  }
}

TEST(Sweep, VariantSweepLabelsSeriesAndSharesTraces) {
  std::vector<RunVariant> variants;
  variants.push_back({"budget-lo", SchedulerSpec::parse("GE"),
                      [](ExperimentConfig cfg) {
                        cfg.power_budget = 160.0;
                        return cfg;
                      }});
  variants.push_back({"budget-hi", SchedulerSpec::parse("GE"), nullptr});
  const auto points = sweep_variants(small_config(), variants, {120.0},
                                     configure_arrival_rate);
  ASSERT_EQ(points.size(), 1u);
  ASSERT_EQ(points[0].results.size(), 2u);
  EXPECT_EQ(points[0].results[0].scheduler, "budget-lo");
  EXPECT_EQ(points[0].results[1].scheduler, "budget-hi");
  // Shared trace: both variants saw the same jobs.
  EXPECT_EQ(points[0].results[0].released, points[0].results[1].released);

  const util::Table table = series_table(
      points, "rate", [](const RunResult& r) { return r.quality; });
  EXPECT_EQ(table.columns(), 3u);
}

TEST(Sweep, EmptySeriesTableKeepsXColumnHeader) {
  const util::Table table = series_table(
      {}, "arrival_rate", [](const RunResult& r) { return r.quality; });
  EXPECT_EQ(table.columns(), 1u);
  EXPECT_EQ(table.rows(), 0u);
}

// Statistics pinned against the pre-engine serial replicate() (captured at
// the commit introducing the engine): paper defaults, 150 req/s, 2 s
// horizon, seed 7, GE, 4 replicas.  Guards both the refactor and any later
// change that would silently alter replication results.
TEST(Replicate, MatchesPreEngineSerialValues) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.arrival_rate = 150.0;
  cfg.duration = 2.0;
  cfg.seed = 7;
  const ReplicationSummary s =
      replicate(cfg, SchedulerSpec::parse("GE"), 4);
  EXPECT_DOUBLE_EQ(s.quality.mean(), 0.90099869843882752);
  EXPECT_DOUBLE_EQ(s.quality.stddev(), 0.0027970569599472307);
  EXPECT_DOUBLE_EQ(s.energy.mean(), 390.31597684823714);
  EXPECT_DOUBLE_EQ(s.energy.stddev(), 34.812405858722613);
  EXPECT_DOUBLE_EQ(s.aes_fraction.mean(), 0.60518978504522292);
  EXPECT_DOUBLE_EQ(s.aes_fraction.stddev(), 0.11982312402337592);
  EXPECT_DOUBLE_EQ(s.p99_response_ms.mean(), 150.00000000000011);
}

TEST(Replicate, ParallelReplicationMatchesSerial) {
  const ExperimentConfig cfg = small_config(130.0);
  ExecutionOptions serial;
  serial.jobs = 1;
  ExecutionOptions parallel;
  parallel.jobs = 4;
  const ReplicationSummary a = replicate(cfg, SchedulerSpec::parse("GE"), 4, serial);
  const ReplicationSummary b =
      replicate(cfg, SchedulerSpec::parse("GE"), 4, parallel);
  EXPECT_EQ(a.quality.mean(), b.quality.mean());
  EXPECT_EQ(a.quality.stddev(), b.quality.stddev());
  EXPECT_EQ(a.energy.mean(), b.energy.mean());
  EXPECT_EQ(a.energy.stddev(), b.energy.stddev());
  EXPECT_EQ(a.p99_response_ms.mean(), b.p99_response_ms.mean());
}

}  // namespace
}  // namespace ge::exp
