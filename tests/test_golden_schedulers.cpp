// Golden bit-identity for every pre-registry scheduler.
//
// The values below were captured from the enum+switch implementation of
// scheduler_spec.cpp immediately before the plugin-registry refactor
// (PR 7), with %.17g precision; EXPECT_EQ on doubles therefore pins the
// registry port to *bit-identical* RunResults.  Three configs exercise the
// main code paths: A = paper defaults, B = discrete DVFS on a smaller
// server, C = a 3-server cluster with JSQ dispatch.
//
// If one of these ever changes on purpose (an intentional behaviour
// change), re-capture the table with a %.17g dump from the commit *before*
// the change -- never hand-edit individual values.
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.h"
#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"

namespace ge::exp {
namespace {

enum class Cfg { kA, kB, kC };

struct GoldenRow {
  Cfg cfg;
  const char* spec;        // parse() input ("#" rows are built by hand below)
  const char* scheduler;   // RunResult::scheduler (instance name)
  double quality;
  double energy;
  double mean_response_ms;
  double p99_response_ms;
  double avg_speed_ghz;
  std::uint64_t released;
  std::uint64_t completed;
  std::uint64_t partial;
  std::uint64_t dropped;
  std::uint64_t rounds;
};

// Captured pre-refactor at d9ad3c1 (see file comment).
const GoldenRow kGoldens[] = {
    {Cfg::kA, "GE", "GE", 0.89654675174064802, 442.36338634853411, 145.08829789709802, 150.00000000000014, 1.5800326994163181, 322, 56, 266, 0, 79},
    {Cfg::kA, "GE-NoComp", "GE-NoComp", 0.88649642149091512, 432.24222397485977, 145.0555002639976, 150.00000000000014, 1.5581556044995, 322, 39, 283, 0, 79},
    {Cfg::kA, "GE-ES", "GE-ES", 0.88968415735590345, 412.81622813754882, 145.20855839683404, 150.00000000000014, 1.5551798306966875, 322, 91, 231, 0, 79},
    {Cfg::kA, "GE-WF", "GE-WF", 0.89724763720565315, 448.87011995924627, 145.09882054168597, 150.00000000000014, 1.5839320744568675, 322, 61, 261, 0, 79},
    {Cfg::kA, "GE-RR", "GE-RR", 0.27693530105247144, 493.524706749904, 131.06610729888069, 149.99999999999997, 6.213880678751285, 322, 0, 322, 0, 328},
    {Cfg::kA, "OQ", "OQ", 0.90254130433675261, 450.7144661858722, 145.15583928741853, 150.00000000000014, 1.5950822943157392, 322, 48, 274, 0, 79},
    {Cfg::kA, "BE", "BE", 0.96179773651984202, 532.62829649782702, 145.36008316934115, 150.00000000000014, 1.7448242522309061, 322, 259, 63, 0, 79},
    {Cfg::kA, "FCFS", "FCFS", 0.91737906809956238, 444.4371610019918, 150, 150.00000000000014, 1.6222704065209097, 322, 196, 126, 0, 0},
    {Cfg::kA, "FDFS", "FDFS", 0.91737906809956238, 444.4371610019918, 150, 150.00000000000014, 1.6222704065209097, 322, 196, 126, 0, 0},
    {Cfg::kA, "LJF", "LJF", 0.78933584424626224, 354.46265792255679, 150, 150.00000000000014, 1.4473768781748915, 322, 204, 57, 61, 0},
    {Cfg::kA, "SJF", "SJF", 0.69387110186462697, 253.79446475318051, 150, 150.00000000000014, 1.2123324307087793, 322, 215, 46, 61, 0},
    {Cfg::kA, "BE-P#", "BE-P(x0.800)", 0.9256756210555398, 466.03285225762983, 145.27328583574382, 150.00000000000014, 1.6522653431192886, 322, 201, 121, 0, 79},
    {Cfg::kA, "BE-S#", "BE-S(2.400GHz)", 0.93445683854330197, 461.87028787977255, 145.45565757976422, 150.00000000000014, 1.6586334850292896, 322, 221, 101, 0, 79},
    {Cfg::kB, "GE", "GE", 0.47130968473002255, 254.1891629425958, 136.51381152200463, 150.00000000000003, 1.987698036485585, 335, 0, 335, 0, 53},
    {Cfg::kB, "GE-NoComp", "GE-NoComp", 0.47130968473002255, 254.1891629425958, 136.51381152200463, 150.00000000000003, 1.987698036485585, 335, 0, 335, 0, 53},
    {Cfg::kB, "GE-ES", "GE-ES", 0.4706621112840762, 252.99853482412962, 136.20014468939064, 150.00000000000003, 1.9840854300373583, 335, 0, 335, 0, 53},
    {Cfg::kB, "GE-WF", "GE-WF", 0.47150148725012114, 254.50990994656993, 136.80038574377767, 150.00000000000003, 1.9888390094460475, 335, 0, 335, 0, 53},
    {Cfg::kB, "GE-RR", "GE-RR", 0.1046360314152133, 82.802951734960814, 145.42282001460973, 150.00000000000003, 3.1736191035881411, 335, 0, 335, 0, 340},
    {Cfg::kB, "OQ", "OQ", 0.47146381858658204, 254.30335500272233, 136.49270517795227, 150.00000000000003, 1.9884198962372348, 335, 0, 335, 0, 53},
    {Cfg::kB, "BE", "BE", 0.47219553228547961, 255.71167331095381, 136.43408437739382, 150.00000000000003, 1.9926709709308799, 335, 0, 335, 0, 53},
    {Cfg::kB, "FCFS", "FCFS", 0.45703767643625853, 247.86345026038018, 149.82817998080461, 150.00000000000003, 1.9586997449999455, 335, 6, 329, 0, 0},
    {Cfg::kB, "FDFS", "FDFS", 0.45703767643625853, 247.86345026038018, 149.82817998080461, 150.00000000000003, 1.9586997449999455, 335, 6, 329, 0, 0},
    {Cfg::kB, "LJF", "LJF", 0.36618783636037744, 228.94236415635828, 149.29299011497011, 150.00000000000003, 1.8752731051647338, 335, 38, 87, 210, 0},
    {Cfg::kB, "SJF", "SJF", 0.26803814188283831, 104.91965549735932, 147.19716505430989, 150.00000000000003, 1.2407253043866791, 335, 97, 28, 210, 0},
    {Cfg::kB, "BE-P#", "BE-P(x0.800)", 0.3874008227773727, 165.40194157738875, 141.87495285689909, 150.00000000000003, 1.6022035142275708, 335, 0, 335, 0, 53},
    {Cfg::kB, "BE-S#", "BE-S(2.400GHz)", 0.47145232666722675, 253.72963691776525, 136.08367467589883, 150.00000000000003, 1.9880169378664394, 335, 0, 335, 0, 53},
    {Cfg::kC, "GE", "GE", 0.89837820053689177, 168.2512154158008, 149.82850392165327, 150.00000000000003, 1.0461473667488019, 188, 14, 174, 0, 200},
    {Cfg::kC, "GE-NoComp", "GE-NoComp", 0.8901800978781127, 163.13129155791734, 150, 150.00000000000003, 1.0329350115291922, 188, 0, 188, 0, 200},
    {Cfg::kC, "GE-ES", "GE-ES", 0.89837820053689177, 168.2512154158008, 149.82850392165327, 150.00000000000003, 1.0461473667488019, 188, 14, 174, 0, 200},
    {Cfg::kC, "GE-WF", "GE-WF", 0.89999999999999947, 182.72550972449943, 150, 150.00000000000003, 1.0604800942478716, 188, 0, 188, 0, 200},
    {Cfg::kC, "GE-RR", "GE-RR", 0.24866291727604478, 67.827604101009001, 132.76786527996299, 150.00000000000003, 1.9956777584486802, 188, 0, 188, 0, 200},
    {Cfg::kC, "OQ", "OQ", 0.90846133639717541, 171.17693344588412, 150, 150.00000000000003, 1.059750205385138, 188, 0, 188, 0, 200},
    {Cfg::kC, "BE", "BE", 1, 255.16745942885996, 150, 150.00000000000003, 1.2299223581149776, 188, 188, 0, 0, 200},
    {Cfg::kC, "FCFS", "FCFS", 0.9809539022844791, 206.21683653641429, 150, 150.00000000000003, 1.1693862934858608, 188, 177, 11, 0, 0},
    {Cfg::kC, "FDFS", "FDFS", 0.9809539022844791, 206.21683653641429, 150, 150.00000000000003, 1.1693862934858608, 188, 177, 11, 0, 0},
    {Cfg::kC, "LJF", "LJF", 0.9809539022844791, 206.21683653641429, 150, 150.00000000000003, 1.1693862934858608, 188, 177, 11, 0, 0},
    {Cfg::kC, "SJF", "SJF", 0.9809539022844791, 206.21683653641429, 150, 150.00000000000003, 1.1693862934858608, 188, 177, 11, 0, 0},
    {Cfg::kC, "BE-P#", "BE-P(x0.800)", 1, 255.16745942885996, 150, 150.00000000000003, 1.2299223581149776, 188, 188, 0, 0, 200},
    {Cfg::kC, "BE-S#", "BE-S(2.400GHz)", 0.98095390228447887, 206.21683653641429, 150, 150.00000000000003, 1.1693862934858614, 188, 177, 11, 0, 200},
};

ExperimentConfig make_config(Cfg which) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  switch (which) {
    case Cfg::kA:
      cfg.duration = 2.0;
      cfg.arrival_rate = 150.0;
      cfg.seed = 7;
      break;
    case Cfg::kB:
      cfg.duration = 1.5;
      cfg.arrival_rate = 220.0;
      cfg.cores = 8;
      cfg.power_budget = 160.0;
      cfg.discrete_speeds = true;
      cfg.seed = 11;
      break;
    case Cfg::kC:
      cfg.duration = 1.0;
      cfg.arrival_rate = 180.0;
      cfg.num_servers = 3;
      cfg.dispatch = cluster::DispatchPolicy::kJsq;
      cfg.seed = 3;
      break;
  }
  return cfg;
}

SchedulerSpec make_spec(const std::string& label) {
  // The two calibrated variants were captured with programmatically-set
  // fields (how calibrate.cpp builds them), not bracket parameters.
  if (label == "BE-P#") {
    SchedulerSpec spec = SchedulerSpec::parse("BE-P");
    spec.budget_scale = 0.8;
    return spec;
  }
  if (label == "BE-S#") {
    SchedulerSpec spec = SchedulerSpec::parse("BE-S");
    spec.speed_cap_ghz = 2.4;
    return spec;
  }
  return SchedulerSpec::parse(label);
}

TEST(GoldenSchedulers, BitIdenticalThroughRegistry) {
  for (const GoldenRow& row : kGoldens) {
    const ExperimentConfig cfg = make_config(row.cfg);
    const RunResult r = run_simulation(cfg, make_spec(row.spec));
    SCOPED_TRACE(std::string(row.spec) + " on config " +
                 std::to_string(static_cast<int>(row.cfg)));
    EXPECT_EQ(r.scheduler, row.scheduler);
    EXPECT_EQ(r.quality, row.quality);
    EXPECT_EQ(r.energy, row.energy);
    EXPECT_EQ(r.mean_response_ms, row.mean_response_ms);
    EXPECT_EQ(r.p99_response_ms, row.p99_response_ms);
    EXPECT_EQ(r.avg_speed_ghz, row.avg_speed_ghz);
    EXPECT_EQ(r.released, row.released);
    EXPECT_EQ(r.completed, row.completed);
    EXPECT_EQ(r.partial, row.partial);
    EXPECT_EQ(r.dropped, row.dropped);
    EXPECT_EQ(r.rounds, row.rounds);
  }
}

}  // namespace
}  // namespace ge::exp
