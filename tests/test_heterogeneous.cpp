// Tests for heterogeneous-core servers (per-core power models).
#include <gtest/gtest.h>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "server/multicore_server.h"

namespace ge::server {
namespace {

TEST(Heterogeneous, PerCoreModelsExposed) {
  sim::Simulator sim;
  std::vector<power::PowerModel> models;
  models.emplace_back(5.0, 2.0, 1000.0);
  models.emplace_back(10.0, 2.0, 1000.0);
  MulticoreServer server(std::move(models), 40.0, sim);
  EXPECT_TRUE(server.heterogeneous());
  EXPECT_EQ(server.core_count(), 2u);
  // Same speed costs twice the power on the inefficient core.
  EXPECT_NEAR(server.power_model(1).power(1000.0),
              2.0 * server.power_model(0).power(1000.0), 1e-9);
  EXPECT_NEAR(server.core(1).power_model().power(1000.0), 10.0, 1e-9);
}

TEST(Heterogeneous, HomogeneousConstructorIsNotHeterogeneous) {
  sim::Simulator sim;
  power::PowerModel pm;
  MulticoreServer server(4, 80.0, pm, sim);
  EXPECT_FALSE(server.heterogeneous());
  EXPECT_NEAR(server.power_model(3).power(1000.0), server.power_model().power(1000.0),
              1e-12);
}

}  // namespace
}  // namespace ge::server

namespace ge::exp {
namespace {

ExperimentConfig hetero_config(double spread, double rate = 150.0) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.arrival_rate = rate;
  cfg.duration = 5.0;
  cfg.seed = 37;
  cfg.hetero_spread = spread;
  return cfg;
}

TEST(Heterogeneous, ConfigBuildsLinearSpread) {
  const ExperimentConfig cfg = hetero_config(3.0);
  const auto models = cfg.core_power_models();
  ASSERT_EQ(models.size(), 16u);
  EXPECT_NEAR(models.front().a(), 5.0, 1e-12);
  EXPECT_NEAR(models.back().a(), 15.0, 1e-12);
  EXPECT_GT(models[8].a(), models[7].a());
}

TEST(Heterogeneous, SpreadOneIsHomogeneous) {
  const auto models = hetero_config(1.0).core_power_models();
  for (const auto& m : models) {
    EXPECT_DOUBLE_EQ(m.a(), 5.0);
  }
}

TEST(Heterogeneous, GeRunsWithinBudget) {
  ExperimentConfig cfg = hetero_config(2.5, 180.0);
  cfg.verify_power = true;
  const RunResult r = run_simulation(cfg, SchedulerSpec{});
  EXPECT_GT(r.released, 0u);
  EXPECT_EQ(r.released, r.completed + r.partial + r.dropped);
}

TEST(Heterogeneous, InefficientSiliconCostsEnergyOrQuality) {
  const ExperimentConfig homo = hetero_config(1.0);
  const workload::Trace trace =
      workload::Trace::generate(homo.workload_spec(), homo.duration);
  const RunResult base = run_simulation(homo, SchedulerSpec{}, trace);
  const RunResult spread = run_simulation(hetero_config(3.0), SchedulerSpec{}, trace);
  // With part of the silicon less efficient, the same promise costs more
  // energy (or, at the cap, some quality).
  EXPECT_GT(spread.energy + 1e-6, base.energy);
  EXPECT_LE(spread.quality, base.quality + 0.01);
}

TEST(Heterogeneous, InvalidSpreadDies) {
  ExperimentConfig cfg = hetero_config(0.5);
  EXPECT_DEATH(cfg.validate(), "hetero");
}

TEST(Heterogeneous, AllSchedulersComplete) {
  for (const char* algo : {"GE", "BE", "FCFS", "SJF"}) {
    const RunResult r = run_simulation(hetero_config(2.0), SchedulerSpec::parse(algo));
    EXPECT_GT(r.quality, 0.0) << algo;
    EXPECT_EQ(r.released, r.completed + r.partial + r.dropped) << algo;
  }
}

}  // namespace
}  // namespace ge::exp
