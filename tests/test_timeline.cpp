// Tests for the run-timeline recorder and the quality-family config.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "exp/timeline.h"

namespace ge::exp {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.arrival_rate = 150.0;
  cfg.duration = 4.0;
  cfg.seed = 13;
  return cfg;
}

TEST(Timeline, SamplesAtRequestedInterval) {
  const ExperimentConfig cfg = small_config();
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  Timeline timeline;
  timeline.interval = 0.1;
  (void)run_simulation(cfg, SchedulerSpec::parse("GE"), trace, &timeline);
  ASSERT_FALSE(timeline.empty());
  // horizon = duration + deadline window + 2 quanta ~ 5.15 s -> ~51 samples.
  EXPECT_NEAR(static_cast<double>(timeline.points.size()), 51.0, 3.0);
  for (std::size_t i = 1; i < timeline.points.size(); ++i) {
    EXPECT_NEAR(timeline.points[i].time - timeline.points[i - 1].time, 0.1, 1e-9);
  }
}

TEST(Timeline, PowerNeverExceedsBudget) {
  const ExperimentConfig cfg = small_config();
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  Timeline timeline;
  timeline.interval = 0.02;
  (void)run_simulation(cfg, SchedulerSpec::parse("GE"), trace, &timeline);
  EXPECT_LE(timeline.peak_power(), cfg.power_budget * (1.0 + 1e-6));
  EXPECT_GT(timeline.peak_power(), 0.0);
}

TEST(Timeline, GeRunsRecordMode) {
  const ExperimentConfig cfg = small_config();
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  Timeline timeline;
  timeline.interval = 0.05;
  (void)run_simulation(cfg, SchedulerSpec::parse("GE"), trace, &timeline);
  for (const TimelinePoint& p : timeline.points) {
    EXPECT_TRUE(p.mode == 0 || p.mode == 1);
    EXPECT_GE(p.busy_cores, 0);
    EXPECT_LE(p.busy_cores, 16);
    EXPECT_GE(p.quality, 0.0);
    EXPECT_LE(p.quality, 1.0);
  }
}

TEST(Timeline, QueuePolicyRunsHaveNoMode) {
  const ExperimentConfig cfg = small_config();
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  Timeline timeline;
  timeline.interval = 0.1;
  (void)run_simulation(cfg, SchedulerSpec::parse("FCFS"), trace, &timeline);
  for (const TimelinePoint& p : timeline.points) {
    EXPECT_EQ(p.mode, -1);
  }
  EXPECT_DOUBLE_EQ(timeline.bq_share(), 0.0);
}

TEST(Timeline, CsvExport) {
  Timeline timeline;
  timeline.interval = 0.1;
  timeline.points.push_back(TimelinePoint{0.1, 120.5, 0.95, 10, 3, 0});
  const std::string csv = timeline.to_csv();
  EXPECT_NE(csv.find("time,total_power_w,quality,busy_cores,backlog,mode"),
            std::string::npos);
  EXPECT_NE(csv.find("120.5"), std::string::npos);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ge_timeline_test.csv").string();
  timeline.save_csv(path);
  std::remove(path.c_str());
}

TEST(Timeline, RecordingDoesNotPerturbResults) {
  const ExperimentConfig cfg = small_config();
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult plain = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  Timeline timeline;
  timeline.interval = 0.03;
  const RunResult recorded =
      run_simulation(cfg, SchedulerSpec::parse("GE"), trace, &timeline);
  EXPECT_DOUBLE_EQ(plain.quality, recorded.quality);
  EXPECT_DOUBLE_EQ(plain.energy, recorded.energy);
}

TEST(QualityFamily, Names) {
  EXPECT_STREQ(to_string(QualityFamily::kExponential), "exponential");
  EXPECT_STREQ(to_string(QualityFamily::kLinear), "linear");
  EXPECT_STREQ(to_string(QualityFamily::kPowerLaw), "power-law");
}

TEST(QualityFamily, FactoryBuildsRequestedFamily) {
  ExperimentConfig cfg = small_config();
  EXPECT_NE(cfg.make_quality_function()->name().find("exp"), std::string::npos);
  cfg.quality_family = QualityFamily::kLinear;
  EXPECT_EQ(cfg.make_quality_function()->name(), "linear");
  cfg.quality_family = QualityFamily::kPowerLaw;
  cfg.quality_c = 0.5;
  EXPECT_NE(cfg.make_quality_function()->name().find("powerlaw"), std::string::npos);
}

TEST(QualityFamily, LinearQualityRemovesCuttingAdvantage) {
  // With a linear quality function there are no diminishing returns: GE's
  // energy saving relative to BE must shrink compared to the concave case.
  ExperimentConfig cfg = small_config();
  cfg.duration = 6.0;
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const RunResult ge_exp = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult be_exp = run_simulation(cfg, SchedulerSpec::parse("BE"), trace);
  cfg.quality_family = QualityFamily::kLinear;
  const RunResult ge_lin = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
  const RunResult be_lin = run_simulation(cfg, SchedulerSpec::parse("BE"), trace);
  const double saving_exp = 1.0 - ge_exp.energy / be_exp.energy;
  const double saving_lin = 1.0 - ge_lin.energy / be_lin.energy;
  EXPECT_GT(saving_exp, 0.0);
  // Linear still saves (cutting 10% of work saves energy) but strictly less
  // than the concave case, where the cut tails are quality-cheap.
  EXPECT_LT(saving_lin, saving_exp);
}

TEST(QualityFamily, PowerLawRunsEndToEnd) {
  ExperimentConfig cfg = small_config();
  cfg.quality_family = QualityFamily::kPowerLaw;
  cfg.quality_c = 0.4;
  const RunResult r = run_simulation(cfg, SchedulerSpec::parse("GE"));
  EXPECT_GT(r.released, 0u);
  EXPECT_GT(r.quality, 0.5);
}

}  // namespace
}  // namespace ge::exp
