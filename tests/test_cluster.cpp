// Tests for the cluster layer: dispatch policies against a fake view,
// cross-server aggregation, and the bit-identity contract that the
// num_servers == 1 cluster path reproduces the pre-cluster single-server
// runner exactly (goldens captured from the last single-server build at
// full double precision).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "core/queue_policy.h"
#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "obs/telemetry.h"
#include "quality/quality_function.h"
#include "util/quantiles.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace ge::cluster {
namespace {

// ---------------------------------------------------------------------------
// Dispatch policies against a fake view.

struct FakeView final : public DispatchView {
  std::vector<std::size_t> flight;
  std::vector<double> energy;
  std::vector<std::size_t> cores;

  std::size_t num_servers() const override { return flight.size(); }
  std::size_t in_flight(std::size_t s) const override { return flight[s]; }
  double consumed_energy(std::size_t s) const override { return energy[s]; }
  std::size_t online_cores(std::size_t s) const override { return cores[s]; }
};

FakeView uniform_view(std::size_t n) {
  FakeView view;
  view.flight.assign(n, 0);
  view.energy.assign(n, 0.0);
  view.cores.assign(n, 4);
  return view;
}

TEST(DispatchPolicy, NamesRoundTrip) {
  for (DispatchPolicy policy :
       {DispatchPolicy::kSingle, DispatchPolicy::kRandom,
        DispatchPolicy::kRoundRobin, DispatchPolicy::kJsq,
        DispatchPolicy::kLeastEnergy}) {
    EXPECT_EQ(parse_dispatch_policy(to_string(policy)), policy);
  }
  EXPECT_EQ(parse_dispatch_policy("round-robin"), DispatchPolicy::kRoundRobin);
  EXPECT_EQ(parse_dispatch_policy("power"), DispatchPolicy::kLeastEnergy);
  EXPECT_EQ(parse_dispatch_policy("JSQ"), DispatchPolicy::kJsq);
  EXPECT_EQ(parse_dispatch_policy("Least-Energy"), DispatchPolicy::kLeastEnergy);
}

TEST(DispatchPolicy, UnknownNameDies) {
  EXPECT_DEATH((void)parse_dispatch_policy("fastest"), "unknown dispatch policy");
}

TEST(DispatchPolicy, SingleAlwaysPicksServerZero) {
  FakeView view = uniform_view(3);
  view.flight = {9, 0, 0};
  auto d = make_dispatcher(DispatchPolicy::kSingle, view, 1);
  const workload::Job job;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(d->pick(job), 0u);
  }
}

TEST(DispatchPolicy, RoundRobinCycles) {
  FakeView view = uniform_view(3);
  auto d = make_dispatcher(DispatchPolicy::kRoundRobin, view, 1);
  const workload::Job job;
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(d->pick(job), i % 3);
  }
}

TEST(DispatchPolicy, JsqPicksFewestInFlightPerOnlineCore) {
  FakeView view = uniform_view(3);
  view.flight = {4, 1, 4};
  auto d = make_dispatcher(DispatchPolicy::kJsq, view, 1);
  const workload::Job job;
  EXPECT_EQ(d->pick(job), 1u);
  // Equal in-flight counts, unequal capacity: the bigger server wins
  // (2 jobs over 8 cores is lighter than 2 jobs over 2 cores).
  view.flight = {2, 2};
  view.cores = {2, 8};
  view.energy = {0.0, 0.0};
  auto d2 = make_dispatcher(DispatchPolicy::kJsq, view, 1);
  EXPECT_EQ(d2->pick(job), 1u);
}

TEST(DispatchPolicy, JsqTiesBreakToLowestIndex) {
  FakeView view = uniform_view(4);
  view.flight = {3, 2, 2, 5};
  auto d = make_dispatcher(DispatchPolicy::kJsq, view, 1);
  EXPECT_EQ(d->pick(workload::Job{}), 1u);
}

TEST(DispatchPolicy, LeastEnergyPicksArgmin) {
  FakeView view = uniform_view(3);
  view.energy = {120.0, 80.0, 200.0};
  auto d = make_dispatcher(DispatchPolicy::kLeastEnergy, view, 1);
  EXPECT_EQ(d->pick(workload::Job{}), 1u);
  view.energy = {50.0, 50.0, 90.0};
  auto d2 = make_dispatcher(DispatchPolicy::kLeastEnergy, view, 1);
  EXPECT_EQ(d2->pick(workload::Job{}), 0u);
}

TEST(DispatchPolicy, RandomIsSeededAndInRange) {
  FakeView view = uniform_view(8);
  auto a = make_dispatcher(DispatchPolicy::kRandom, view, 42);
  auto b = make_dispatcher(DispatchPolicy::kRandom, view, 42);
  auto c = make_dispatcher(DispatchPolicy::kRandom, view, 43);
  const workload::Job job;
  bool differs = false;
  for (int i = 0; i < 200; ++i) {
    const std::size_t sa = a->pick(job);
    EXPECT_LT(sa, 8u);
    EXPECT_EQ(sa, b->pick(job));  // same seed, same stream
    differs = differs || sa != c->pick(job);
  }
  EXPECT_TRUE(differs);  // distinct seeds decorrelate (200 draws over 8 bins)
}

// ---------------------------------------------------------------------------
// QuantileCollector::merge -- per-server collectors must pool exactly.

TEST(QuantileMerge, MergedCollectorsMatchPooledSamples) {
  util::Rng rng(7);
  util::QuantileCollector pooled;
  util::QuantileCollector parts[3];
  for (int i = 0; i < 999; ++i) {
    const double sample = rng.uniform(0.0, 250.0);
    pooled.add(sample);
    parts[i % 3].add(sample);
  }
  util::QuantileCollector merged;
  for (const auto& part : parts) {
    merged.merge(part);
  }
  ASSERT_EQ(merged.count(), pooled.count());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    // Same multiset of samples, so the sorted order statistics are
    // identical bit for bit.
    EXPECT_EQ(merged.quantile(q), pooled.quantile(q)) << q;
  }
  EXPECT_NEAR(merged.mean(), pooled.mean(), 1e-9);
  EXPECT_EQ(merged.min(), pooled.min());
  EXPECT_EQ(merged.max(), pooled.max());
}

// ---------------------------------------------------------------------------
// Cluster assembled directly (no exp layer): dispatch accounting.

std::unique_ptr<sched::Scheduler> fcfs_factory(
    const sched::SchedulerEnv& env, const power::DiscreteSpeedTable* table) {
  sched::QueuePolicyOptions opts;
  opts.order = sched::QueueOrder::kFcfs;
  opts.speed_table = table;
  return std::make_unique<sched::QueuePolicyScheduler>(env, opts);
}

TEST(Cluster, RoundRobinDispatchCountsSumToReleased) {
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.arrival_rate = 200.0;
  cfg.duration = 2.0;
  cfg.seed = 11;
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);

  sim::Simulator sim;
  quality::ExponentialQuality f(cfg.quality_c, cfg.demand_max);
  std::vector<NodeSpec> nodes(3);
  for (NodeSpec& node : nodes) {
    node.core_models.assign(4, power::PowerModel(5.0, 2.0, 1000.0));
    node.power_budget = 80.0;
  }
  Cluster cluster(nodes, f, fcfs_factory, DispatchPolicy::kRoundRobin, cfg.seed,
                  sim);
  EXPECT_EQ(cluster.size(), 3u);
  EXPECT_EQ(cluster.total_cores(), 12u);
  EXPECT_EQ(cluster.dispatcher().policy(), DispatchPolicy::kRoundRobin);

  std::vector<workload::Job> jobs = trace.jobs();
  for (workload::Job& job : jobs) {
    sim.schedule_at(job.arrival, [&cluster, &job] { cluster.on_job_arrival(&job); });
    sim.schedule_at(job.deadline, [&cluster, &job] { cluster.on_deadline(&job); });
  }
  cluster.start();
  sim.run_until(cfg.duration + cfg.deadline_interval_max + 1.0);
  cluster.finish();

  std::uint64_t dispatched = 0;
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    dispatched += cluster.node(s).dispatched();
  }
  EXPECT_EQ(dispatched, jobs.size());
  // Round-robin: per-node counts differ by at most one.
  const std::uint64_t lo =
      std::min({cluster.node(0).dispatched(), cluster.node(1).dispatched(),
                cluster.node(2).dispatched()});
  const std::uint64_t hi =
      std::max({cluster.node(0).dispatched(), cluster.node(1).dispatched(),
                cluster.node(2).dispatched()});
  EXPECT_LE(hi - lo, 1u);
  // Every job routed is findable, and energy was burnt on every node.
  EXPECT_EQ(cluster.server_of(jobs.front()), 0u);
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    EXPECT_GT(cluster.node(s).server().total_energy(), 0.0) << s;
  }
  // Aggregates equal the per-node sums.
  double energy = 0.0;
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    energy += cluster.node(s).server().total_energy();
  }
  EXPECT_DOUBLE_EQ(cluster.total_energy(), energy);
}

TEST(Cluster, SingleNodeForcesPassthroughDispatcher) {
  sim::Simulator sim;
  quality::ExponentialQuality f(0.003, 1000.0);
  std::vector<NodeSpec> nodes(1);
  nodes[0].core_models.assign(2, power::PowerModel(5.0, 2.0, 1000.0));
  nodes[0].power_budget = 40.0;
  Cluster cluster(nodes, f, fcfs_factory, DispatchPolicy::kJsq, 1, sim);
  EXPECT_EQ(cluster.dispatcher().policy(), DispatchPolicy::kSingle);
}

// ---------------------------------------------------------------------------
// exp::run_simulation on the cluster path.

TEST(ClusterRun, ConfigValidation) {
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.num_servers = 0;
  EXPECT_DEATH(cfg.validate(), "at least one server");
  cfg.num_servers = 2;
  cfg.server_cores = {8, 8, 8};
  EXPECT_DEATH(cfg.validate(), "one entry per server");
  cfg.server_cores = {8, 4};
  cfg.validate();
  EXPECT_EQ(cfg.server_core_count(0), 8u);
  EXPECT_EQ(cfg.server_core_count(1), 4u);
  EXPECT_EQ(cfg.total_cores(), 12u);
  // Failures land on the last server; 6 > 4 cores must be rejected.
  cfg.failure_cores = 6;
  EXPECT_DEATH(cfg.validate(), "cannot fail more cores");
}

TEST(ClusterRun, NodeSpecsScaleBudgetByCoreCount) {
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.num_servers = 2;
  cfg.server_cores = {16, 8};
  const std::vector<NodeSpec> specs = cfg.cluster_node_specs(320.0);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].core_models.size(), 16u);
  EXPECT_DOUBLE_EQ(specs[0].power_budget, 320.0);
  EXPECT_EQ(specs[1].core_models.size(), 8u);
  EXPECT_DOUBLE_EQ(specs[1].power_budget, 160.0);
}

TEST(ClusterRun, AggregatesAcrossServers) {
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.arrival_rate = 300.0;
  cfg.duration = 2.0;
  cfg.seed = 9;
  cfg.num_servers = 3;
  cfg.dispatch = DispatchPolicy::kRoundRobin;
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  obs::RunTelemetry telemetry;
  const exp::RunResult r = exp::run_simulation(
      cfg, exp::SchedulerSpec::parse("GE"), trace, nullptr, &telemetry);

  EXPECT_EQ(r.num_servers, 3u);
  EXPECT_EQ(r.dispatch, "rr");
  EXPECT_EQ(r.released, trace.jobs().size());

  obs::MetricsRegistry& reg = telemetry.metrics;
  EXPECT_EQ(
      reg.gauge("cluster.servers", "servers", obs::Gauge::Merge::kMax).value(),
      3.0);
  // Energy and dispatch counts: the cluster totals are the per-server sums.
  double energy = 0.0;
  double dispatched = 0.0;
  for (const char* s : {"s0.", "s1.", "s2."}) {
    const std::string prefix(s);
    energy += reg.counter(prefix + "server.energy_j", "J").value();
    const double d = reg.counter(prefix + "dispatched_jobs", "jobs").value();
    EXPECT_GT(d, 0.0) << prefix;
    dispatched += d;
  }
  EXPECT_DOUBLE_EQ(r.energy, energy);
  EXPECT_EQ(dispatched, static_cast<double>(r.released));
  // Round-robin balances, so the cross-server load CoV is tiny and the
  // energy CoV reflects only workload noise.
  EXPECT_GE(r.server_load_cov, 0.0);
  EXPECT_LT(r.server_load_cov, 0.01);
  EXPECT_GE(r.server_energy_cov, 0.0);
  EXPECT_LT(r.server_energy_cov, 0.5);
}

TEST(ClusterRun, SingleServerReportsSingleShape) {
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.arrival_rate = 120.0;
  cfg.duration = 2.0;
  cfg.seed = 5;
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  // --dispatch is irrelevant at num_servers == 1: any policy gives the
  // passthrough run, bit for bit.
  cfg.dispatch = DispatchPolicy::kJsq;
  const exp::RunResult a =
      exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
  cfg.dispatch = DispatchPolicy::kRandom;
  const exp::RunResult b =
      exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
  EXPECT_EQ(a.num_servers, 1u);
  EXPECT_EQ(a.dispatch, "single");
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.server_energy_cov, 0.0);
  EXPECT_EQ(a.server_load_cov, 0.0);
}

// ---------------------------------------------------------------------------
// The bit-identity contract: num_servers == 1 reproduces the pre-cluster
// single-server runner exactly.  Goldens were captured at %.17g from the
// last build before the cluster refactor (paper defaults, duration 4 s,
// plus the listed overrides); every comparison below is exact.

struct GoldenCase {
  const char* sched;
  double rate;
  std::uint64_t seed;
  bool discrete;
  double hetero;
  double failure_time;
  std::size_t failure_cores;
  double quality, energy, static_energy, avg_power;
  double mean_ms, p50_ms, p95_ms, p99_ms;
  double aes_fraction, avg_speed_ghz, speed_variance, busy_fraction, energy_cov;
  std::uint64_t released, completed, partial, dropped;
  std::uint64_t rounds, wf_rounds, es_rounds;
};

constexpr GoldenCase kGoldens[] = {
    {"GE", 150, 21ULL, false, 1, -1, 0,
     0.90063595804832031, 901.19149384643129, 0, 225.29787346160782,
     145.00167260683284, 148.7803362759208, 150.00000000000003, 150.00000000000014,
     0.76107237215655665, 1.5983116294329094, 0.25347871351602624, 0.77895179140943793, 0.092250419845740506,
     625ULL, 186ULL, 439ULL, 0ULL, 140ULL, 58ULL, 82ULL},
    {"GE", 230, 22ULL, true, 1, -1, 0,
     0.77362559522280194, 1248.0027560004185, 0, 312.00068900010461,
     142.65903935618894, 145.72738449932433, 150.00000000000003, 150.00000000000023,
     0.039463963336364698, 1.9453194551508561, 0.034743129551452118, 0.79317209942622224, 0.016541750065012611,
     955ULL, 108ULL, 847ULL, 0ULL, 140ULL, 132ULL, 8ULL},
    {"BE", 150, 23ULL, false, 1, -1, 0,
     0.98247880674093091, 988.8065303456533, 0, 247.20163258641333,
     146.29167958536266, 149.99999999999991, 150.00000000000003, 150.00000000000034,
     0, 1.6559279910648081, 0.37445955489932931, 0.77008564231283505, 0.16102896149941365,
     566ULL, 511ULL, 55ULL, 0ULL, 163ULL, 163ULL, 0ULL},
    {"BE-P", 180, 24ULL, false, 1, -1, 0,
     0.84246896556008732, 1006.4850070342123, 0, 251.62125175855309,
     143.34154009767701, 148.28746987541962, 150.00000000000003, 150.00000000000023,
     0, 1.7524944116797128, 0.046543012732836418, 0.78354631451154688, 0.03434029562719474,
     762ULL, 235ULL, 527ULL, 0ULL, 124ULL, 124ULL, 0ULL},
    {"BE-S", 180, 25ULL, false, 1, -1, 0,
     0.91106801115660963, 1001.7041366135697, 0, 250.42603415339244,
     145.39206655613538, 149.14763204371883, 150.00000000000003, 150.00000000000034,
     0, 1.7328651032654312, 0.09386173883105442, 0.78513705116895049, 0.050482087893704869,
     697ULL, 438ULL, 259ULL, 0ULL, 121ULL, 0ULL, 121ULL},
    {"GE-RR", 200, 26ULL, false, 1, -1, 0,
     0.27314665340429028, 1317.679402095376, 0, 329.41985052384399,
     133.07729078888971, 135.1703633795629, 149.34388980262113, 149.99999999999991,
     0.0061096923121842436, 7.9601202777501596, 0.23755152475738525, 0.05028612189937285, 3.8729833462074175,
     807ULL, 0ULL, 807ULL, 0ULL, 817ULL, 808ULL, 9ULL},
    {"FDFS", 120, 27ULL, false, 2, -1, 0,
     0.9047384761961369, 855.70408766216747, 0, 213.92602191554187,
     150, 149.99999999999991, 150.00000000000003, 150.00000000000034,
     0, 1.3496519693323128, 0.07749664694930869, 0.74626437553205105, 0.10808483820929946,
     516ULL, 329ULL, 187ULL, 0ULL, 0ULL, 0ULL, 0ULL},
    {"GE", 160, 28ULL, false, 1, 1.5, 4,
     0.89924147692410628, 985.49508905379105, 0, 246.37377226344776,
     143.61897127998796, 147.19079988423255, 150.00000000000003, 150.00000000000031,
     0.32789861535385939, 1.8279118932589831, 0.28910038681140959, 0.65888145298504608, 0.45989594050198873,
     610ULL, 249ULL, 361ULL, 0ULL, 126ULL, 40ULL, 86ULL},
};

TEST(ClusterRun, SingleServerGoldenBitIdentity) {
  for (const GoldenCase& c : kGoldens) {
    exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
    cfg.arrival_rate = c.rate;
    cfg.duration = 4.0;
    cfg.seed = c.seed;
    cfg.discrete_speeds = c.discrete;
    cfg.hetero_spread = c.hetero;
    cfg.failure_time = c.failure_time;
    cfg.failure_cores = c.failure_cores;
    exp::SchedulerSpec spec = exp::SchedulerSpec::parse(c.sched);
    if (spec.is("BE-P")) {
      spec.budget_scale = 0.8;
    }
    if (spec.is("BE-S")) {
      spec.speed_cap_ghz = 2.2;
    }
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    const exp::RunResult r = exp::run_simulation(cfg, spec, trace);

    SCOPED_TRACE(std::string(c.sched) + " @ " + std::to_string(c.rate));
    EXPECT_EQ(r.num_servers, 1u);
    EXPECT_EQ(r.quality, c.quality);
    EXPECT_EQ(r.energy, c.energy);
    EXPECT_EQ(r.static_energy, c.static_energy);
    EXPECT_EQ(r.avg_power, c.avg_power);
    EXPECT_EQ(r.mean_response_ms, c.mean_ms);
    EXPECT_EQ(r.p50_response_ms, c.p50_ms);
    EXPECT_EQ(r.p95_response_ms, c.p95_ms);
    EXPECT_EQ(r.p99_response_ms, c.p99_ms);
    EXPECT_EQ(r.aes_fraction, c.aes_fraction);
    EXPECT_EQ(r.avg_speed_ghz, c.avg_speed_ghz);
    EXPECT_EQ(r.speed_variance, c.speed_variance);
    EXPECT_EQ(r.busy_fraction, c.busy_fraction);
    EXPECT_EQ(r.energy_cov, c.energy_cov);
    EXPECT_EQ(r.released, c.released);
    EXPECT_EQ(r.completed, c.completed);
    EXPECT_EQ(r.partial, c.partial);
    EXPECT_EQ(r.dropped, c.dropped);
    EXPECT_EQ(r.rounds, c.rounds);
    EXPECT_EQ(r.wf_rounds, c.wf_rounds);
    EXPECT_EQ(r.es_rounds, c.es_rounds);
  }
}

TEST(ClusterRun, HeterogeneousFleetRuns) {
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.arrival_rate = 250.0;
  cfg.duration = 2.0;
  cfg.seed = 13;
  cfg.num_servers = 2;
  cfg.dispatch = DispatchPolicy::kJsq;
  cfg.server_cores = {16, 8};
  cfg.server_power_scale = {1.0, 1.5};
  const exp::RunResult r =
      exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"));
  EXPECT_EQ(r.num_servers, 2u);
  EXPECT_EQ(r.dispatch, "jsq");
  EXPECT_GT(r.released, 0u);
  EXPECT_GT(r.energy, 0.0);
  EXPECT_GT(r.quality, 0.5);
}

}  // namespace
}  // namespace ge::cluster
