// Unit and property tests for the power model, the discrete speed table,
// and the ES / WF power-distribution policies.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "power/discrete_speed.h"
#include "power/distribution.h"
#include "power/power_model.h"
#include "util/rng.h"

namespace ge::power {
namespace {

TEST(PowerModel, PaperAnchor) {
  // Sec. IV-B: a=5, beta=2; 20 W per core sustains 2 GHz (2000 units/s).
  PowerModel pm(5.0, 2.0, 1000.0);
  EXPECT_NEAR(pm.power(2000.0), 20.0, 1e-9);
  EXPECT_NEAR(pm.speed_for_power(20.0), 2000.0, 1e-9);
}

TEST(PowerModel, ZeroSpeedZeroPower) {
  PowerModel pm;
  EXPECT_DOUBLE_EQ(pm.power(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pm.speed_for_power(0.0), 0.0);
}

TEST(PowerModel, RoundTrip) {
  PowerModel pm(5.0, 2.0, 1000.0);
  for (double s : {100.0, 500.0, 1500.0, 3000.0}) {
    EXPECT_NEAR(pm.speed_for_power(pm.power(s)), s, 1e-6);
  }
}

TEST(PowerModel, ConvexityInSpeed) {
  // P(s) convex: average of powers exceeds power of the average speed.
  // This is the physical root of "core speed thrashing" (Sec. III-D).
  PowerModel pm(5.0, 2.0, 1000.0);
  const double lo = 1000.0;
  const double hi = 3000.0;
  EXPECT_GT(0.5 * (pm.power(lo) + pm.power(hi)), pm.power(0.5 * (lo + hi)));
}

TEST(PowerModel, EnergyIsPowerTimesTime) {
  PowerModel pm(5.0, 2.0, 1000.0);
  EXPECT_NEAR(pm.energy(2000.0, 3.0), 60.0, 1e-9);
}

TEST(PowerModel, GhzConversions) {
  PowerModel pm(5.0, 2.0, 1000.0);
  EXPECT_DOUBLE_EQ(pm.ghz(2500.0), 2.5);
  EXPECT_DOUBLE_EQ(pm.speed_units(1.2), 1200.0);
}

class PowerModelBetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerModelBetaSweep, RoundTripForVariousExponents) {
  PowerModel pm(3.0, GetParam(), 1000.0);
  for (double w : {1.0, 10.0, 100.0}) {
    EXPECT_NEAR(pm.power(pm.speed_for_power(w)), w, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, PowerModelBetaSweep,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0));

TEST(DiscreteSpeedTable, UniformLadder) {
  const auto table = DiscreteSpeedTable::uniform_ghz(0.2, 3.2);
  EXPECT_EQ(table.levels().size(), 16u);
  EXPECT_DOUBLE_EQ(table.min_level(), 200.0);
  EXPECT_DOUBLE_EQ(table.max_level(), 3200.0);
}

TEST(DiscreteSpeedTable, CeilBehaviour) {
  const auto table = DiscreteSpeedTable::uniform_ghz(0.2, 3.2);
  EXPECT_DOUBLE_EQ(table.ceil(1300.0), 1400.0);
  EXPECT_DOUBLE_EQ(table.ceil(1400.0), 1400.0);  // exact level stays
  EXPECT_DOUBLE_EQ(table.ceil(50.0), 200.0);
  EXPECT_DOUBLE_EQ(table.ceil(9999.0), 3200.0);  // clamped at the top
}

TEST(DiscreteSpeedTable, FloorBehaviour) {
  const auto table = DiscreteSpeedTable::uniform_ghz(0.2, 3.2);
  EXPECT_DOUBLE_EQ(table.floor(1300.0), 1200.0);
  EXPECT_DOUBLE_EQ(table.floor(1400.0), 1400.0);
  EXPECT_DOUBLE_EQ(table.floor(50.0), 0.0);  // below the ladder: idle
  EXPECT_DOUBLE_EQ(table.floor(9999.0), 3200.0);
}

TEST(DiscreteSpeedTable, IsLevel) {
  const auto table = DiscreteSpeedTable::uniform_ghz(0.2, 3.2);
  EXPECT_TRUE(table.is_level(1400.0));
  EXPECT_FALSE(table.is_level(1300.0));
}

TEST(DiscreteSpeedTable, DeduplicatesAndSorts) {
  DiscreteSpeedTable table({300.0, 100.0, 300.0, 200.0});
  ASSERT_EQ(table.levels().size(), 3u);
  EXPECT_DOUBLE_EQ(table.levels()[0], 100.0);
  EXPECT_DOUBLE_EQ(table.levels()[2], 300.0);
}

// A one-level ladder is the degenerate-but-legal DVFS configuration (a core
// that can only be on at one speed): ceil, floor and is_level must all
// collapse onto that single operating point.
TEST(DiscreteSpeedTable, SingleLevelLadder) {
  const DiscreteSpeedTable table({1500.0});
  EXPECT_EQ(table.levels().size(), 1u);
  EXPECT_DOUBLE_EQ(table.min_level(), 1500.0);
  EXPECT_DOUBLE_EQ(table.max_level(), 1500.0);
  // ceil: everything at or below the level snaps up to it; above it the
  // ladder tops out at the level.
  EXPECT_DOUBLE_EQ(table.ceil(0.0), 1500.0);
  EXPECT_DOUBLE_EQ(table.ceil(900.0), 1500.0);
  EXPECT_DOUBLE_EQ(table.ceil(1500.0), 1500.0);
  EXPECT_DOUBLE_EQ(table.ceil(9999.0), 1500.0);
  // floor: at or above the level returns it; below has nothing to run at.
  EXPECT_DOUBLE_EQ(table.floor(1500.0), 1500.0);
  EXPECT_DOUBLE_EQ(table.floor(2000.0), 1500.0);
  EXPECT_LE(table.floor(900.0), 0.0);
  EXPECT_TRUE(table.is_level(1500.0));
  EXPECT_FALSE(table.is_level(1400.0));
}

TEST(DiscreteSpeedTable, EmptyLadderRefused) {
  EXPECT_DEATH(DiscreteSpeedTable({}), "level");
}

TEST(EqualSharing, SplitsEvenly) {
  const auto caps = equal_sharing(320.0, 16);
  ASSERT_EQ(caps.size(), 16u);
  for (double cap : caps) {
    EXPECT_DOUBLE_EQ(cap, 20.0);
  }
}

TEST(WaterFilling, AllDemandsMetWhenBudgetSuffices) {
  const std::vector<double> demands{5.0, 10.0, 15.0};
  const auto caps = water_filling(100.0, demands);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_DOUBLE_EQ(caps[i], demands[i]);
  }
}

TEST(WaterFilling, LevelCapsHighDemands) {
  // Budget 30 over demands {5, 20, 20}: level L solves 5 + 2L = 30 -> 12.5.
  const std::vector<double> demands{5.0, 20.0, 20.0};
  const auto caps = water_filling(30.0, demands);
  EXPECT_DOUBLE_EQ(caps[0], 5.0);
  EXPECT_NEAR(caps[1], 12.5, 1e-9);
  EXPECT_NEAR(caps[2], 12.5, 1e-9);
}

TEST(WaterFilling, BudgetConservedWhenBinding) {
  const std::vector<double> demands{12.0, 7.0, 30.0, 1.0, 25.0};
  const auto caps = water_filling(40.0, demands);
  const double total = std::accumulate(caps.begin(), caps.end(), 0.0);
  EXPECT_NEAR(total, 40.0, 1e-9);
}

TEST(WaterFilling, CapsNeverExceedDemands) {
  const std::vector<double> demands{12.0, 7.0, 30.0, 1.0, 25.0};
  const auto caps = water_filling(40.0, demands);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_LE(caps[i], demands[i] + 1e-12);
  }
}

TEST(WaterFilling, SatisfiesLowDemandsFirst) {
  const std::vector<double> demands{2.0, 50.0};
  const auto caps = water_filling(10.0, demands);
  EXPECT_DOUBLE_EQ(caps[0], 2.0);  // low demand fully met
  EXPECT_NEAR(caps[1], 8.0, 1e-9);
}

TEST(WaterFilling, ZeroBudget) {
  const std::vector<double> demands{5.0, 10.0};
  const auto caps = water_filling(0.0, demands);
  EXPECT_DOUBLE_EQ(caps[0], 0.0);
  EXPECT_DOUBLE_EQ(caps[1], 0.0);
}

TEST(WaterFilling, AllZeroDemands) {
  const std::vector<double> demands{0.0, 0.0, 0.0};
  const auto caps = water_filling(100.0, demands);
  for (double cap : caps) {
    EXPECT_DOUBLE_EQ(cap, 0.0);
  }
}

TEST(WaterLevel, InfiniteWhenBudgetCoversAll) {
  const std::vector<double> demands{1.0, 2.0};
  EXPECT_TRUE(std::isinf(water_level(10.0, demands)));
}

// Randomised property sweep: the water-filling invariants hold for any
// demand vector.
class WaterFillingProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaterFillingProperties, Invariants) {
  util::Rng rng(GetParam());
  const std::size_t n = 1 + rng.uniform_index(20);
  std::vector<double> demands(n);
  for (double& d : demands) {
    d = rng.uniform(0.0, 50.0);
  }
  const double total_demand = std::accumulate(demands.begin(), demands.end(), 0.0);
  const double budget = rng.uniform(0.0, 1.2 * total_demand + 1.0);
  const auto caps = water_filling(budget, demands);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_GE(caps[i], -1e-12);
    ASSERT_LE(caps[i], demands[i] + 1e-9);
    total += caps[i];
  }
  ASSERT_LE(total, budget + 1e-6);
  // Budget fully used whenever demand exceeds it.
  if (total_demand > budget) {
    ASSERT_NEAR(total, budget, 1e-6);
    // Level property: all capped cores sit at a common level.
    const double level = water_level(budget, demands);
    for (std::size_t i = 0; i < n; ++i) {
      if (demands[i] > level + 1e-9) {
        ASSERT_NEAR(caps[i], level, 1e-9);
      }
    }
  } else {
    ASSERT_NEAR(total, total_demand, 1e-9);
  }
}

TEST_P(WaterFillingProperties, MonotoneInBudget) {
  util::Rng rng(GetParam() + 1000);
  const std::size_t n = 1 + rng.uniform_index(10);
  std::vector<double> demands(n);
  for (double& d : demands) {
    d = rng.uniform(0.0, 50.0);
  }
  const double b1 = rng.uniform(0.0, 100.0);
  const double b2 = b1 + rng.uniform(0.0, 50.0);
  const auto caps1 = water_filling(b1, demands);
  const auto caps2 = water_filling(b2, demands);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_GE(caps2[i], caps1[i] - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, WaterFillingProperties,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(HybridResolve, SwitchesAtCriticalLoad) {
  EXPECT_EQ(resolve_hybrid(DistributionPolicy::kHybrid, 100.0, 154.0),
            DistributionPolicy::kEqualSharing);
  EXPECT_EQ(resolve_hybrid(DistributionPolicy::kHybrid, 200.0, 154.0),
            DistributionPolicy::kWaterFilling);
  EXPECT_EQ(resolve_hybrid(DistributionPolicy::kHybrid, 154.0, 154.0),
            DistributionPolicy::kEqualSharing);  // boundary: not above
}

TEST(HybridResolve, NonHybridPassesThrough) {
  EXPECT_EQ(resolve_hybrid(DistributionPolicy::kEqualSharing, 500.0, 154.0),
            DistributionPolicy::kEqualSharing);
  EXPECT_EQ(resolve_hybrid(DistributionPolicy::kWaterFilling, 0.0, 154.0),
            DistributionPolicy::kWaterFilling);
}

TEST(DistributionPolicy, Names) {
  EXPECT_STREQ(to_string(DistributionPolicy::kEqualSharing), "equal-sharing");
  EXPECT_STREQ(to_string(DistributionPolicy::kWaterFilling), "water-filling");
  EXPECT_STREQ(to_string(DistributionPolicy::kHybrid), "hybrid");
}

}  // namespace
}  // namespace ge::power
