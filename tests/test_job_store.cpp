// JobStore (the streaming-replay arena): pointer stability across slab
// growth, time-based quarantine before slot reuse, LIFO recycling, and the
// bookkeeping the streaming runner's memory gauges report.  A randomized
// property sweep drives acquire/retire/reclaim in arbitrary interleavings
// and checks the arena's conservation invariants after every step.
#include "workload/job_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/rng.h"
#include "workload/job.h"

namespace ge::workload {
namespace {

Job make_job(std::uint64_t id, double arrival) {
  Job job;
  job.id = id;
  job.arrival = arrival;
  job.deadline = arrival + 0.150;
  job.demand = 200.0;
  job.target = job.demand;
  return job;
}

TEST(JobStore, AcquireCopiesTheProtoIntoAStableSlot) {
  JobStore store;
  Job proto = make_job(7, 1.25);
  proto.demand = 431.5;
  Job* job = store.acquire(proto);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->id, 7u);
  EXPECT_EQ(job->arrival, 1.25);
  EXPECT_EQ(job->demand, 431.5);
  EXPECT_FALSE(job->settled);
  EXPECT_EQ(store.in_flight(), 1u);
  EXPECT_EQ(store.total_acquired(), 1u);
}

TEST(JobStore, PointersStayValidAcrossSlabGrowth) {
  // 3 slabs' worth of jobs: earlier pointers must survive later slab
  // allocations (slabs are never moved or freed while the store lives).
  JobStore store;
  constexpr std::size_t kJobs = 3 * 4096 + 17;
  std::vector<Job*> jobs;
  jobs.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.push_back(store.acquire(make_job(i + 1, static_cast<double>(i))));
  }
  EXPECT_EQ(store.in_flight(), kJobs);
  EXPECT_GE(store.capacity(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(jobs[i]->id, i + 1) << "slot " << i << " was moved or clobbered";
  }
  // Live slots are distinct storage.
  std::unordered_set<const Job*> distinct(jobs.begin(), jobs.end());
  EXPECT_EQ(distinct.size(), kJobs);
}

TEST(JobStore, QuarantineDelaysReuseUntilTheDelayLapses) {
  JobStore store(/*quarantine_delay=*/1.0);
  Job* a = store.acquire(make_job(1, 0.0));
  a->settled = true;
  store.retire(a, /*now=*/10.0);
  EXPECT_EQ(store.in_flight(), 0u);
  EXPECT_EQ(store.quarantined(), 1u);

  // Before 11.0 the slot is still parked: a fresh acquire must not reuse it.
  store.reclaim(10.5);
  EXPECT_EQ(store.quarantined(), 1u);
  Job* b = store.acquire(make_job(2, 10.5));
  EXPECT_NE(b, a) << "slot reused while still quarantined";

  // After the delay the slot returns to the free list and is reused (LIFO).
  store.reclaim(11.0);
  EXPECT_EQ(store.quarantined(), 0u);
  Job* c = store.acquire(make_job(3, 11.0));
  EXPECT_EQ(c, a) << "lapsed slot should be recycled before new slab slots";
  EXPECT_EQ(c->id, 3u) << "recycled slot must carry the new job, not the old";
}

TEST(JobStore, ZeroDelayRecyclesImmediately) {
  JobStore store;  // quarantine_delay = 0
  Job* a = store.acquire(make_job(1, 0.0));
  a->settled = true;
  store.retire(a, 5.0);
  store.reclaim(5.0);
  Job* b = store.acquire(make_job(2, 5.0));
  EXPECT_EQ(b, a);
  EXPECT_EQ(store.capacity(), 4096u) << "recycling must not grow the arena";
}

TEST(JobStore, RetireRequiresASettledJob) {
  JobStore store;
  Job* job = store.acquire(make_job(1, 0.0));
  EXPECT_DEATH(store.retire(job, 1.0), "settled");
}

TEST(JobStore, PropertyRandomInterleavingsKeepTheArenaConsistent) {
  // Random walk over acquire/retire/reclaim at increasing simulated time.
  // Invariants checked continuously:
  //   in_flight == acquired - retired          (conservation)
  //   live pointers are distinct and unclobbered (stability)
  //   reused slots only come from lapsed quarantine (delay respected)
  //   capacity is a whole number of slabs and >= peak in flight
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 5);
    const double delay = seed % 2 == 0 ? 0.25 : 0.0;
    JobStore store(delay);
    std::unordered_map<Job*, std::uint64_t> live;   // slot -> expected id
    std::vector<Job*> live_order;                   // retire victims
    std::uint64_t next_id = 1;
    std::uint64_t retired = 0;
    double now = 0.0;
    for (int step = 0; step < 4000; ++step) {
      now += rng.uniform(0.0, 0.02);
      const std::size_t kind = rng.uniform_index(10);
      if (kind < 6 || live.empty()) {
        Job* job = store.acquire(make_job(next_id, now));
        // The slot must not still be live under another id.
        ASSERT_EQ(live.count(job), 0u) << "live slot handed out twice";
        live[job] = next_id;
        live_order.push_back(job);
        ++next_id;
      } else if (kind < 9) {
        const std::size_t pick = rng.uniform_index(live_order.size());
        Job* job = live_order[pick];
        ASSERT_EQ(job->id, live[job]) << "live slot clobbered";
        job->settled = true;
        store.retire(job, now);
        ++retired;
        live.erase(job);
        live_order[pick] = live_order.back();
        live_order.pop_back();
      } else {
        store.reclaim(now);
      }
      ASSERT_EQ(store.in_flight(), live.size());
      ASSERT_EQ(store.total_acquired(), next_id - 1);
      ASSERT_EQ(store.in_flight(), store.total_acquired() - retired);
      ASSERT_EQ(store.capacity() % 4096, 0u);
      ASSERT_GE(store.capacity(), store.peak_in_flight());
      ASSERT_GE(store.peak_in_flight(), store.in_flight());
    }
    // Every live job still carries its own payload at the end.
    for (const auto& [job, id] : live) {
      EXPECT_EQ(job->id, id);
    }
    // With recycling on, the footprint is bounded by the peak in flight plus
    // the quarantine backlog -- a few hundred jobs here, well inside one
    // slab -- never by the ~2400 jobs the walk pushed through the store.
    EXPECT_EQ(store.capacity(), 4096u)
        << "arena grew with total jobs instead of jobs in flight";
  }
}

}  // namespace
}  // namespace ge::workload
