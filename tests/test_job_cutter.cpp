// Tests for Longest-First job cutting (Sec. III-B).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "opt/job_cutter.h"
#include "quality/quality_function.h"
#include "util/rng.h"

namespace ge::opt {
namespace {

using quality::ExponentialQuality;

const ExponentialQuality& paper_f() {
  static const ExponentialQuality f(0.003, 1000.0);
  return f;
}

TEST(JobCutter, NoCutWhenTargetIsOne) {
  const std::vector<double> demands{900.0, 500.0, 200.0};
  const CutResult cut = cut_longest_first(demands, paper_f(), 1.0);
  EXPECT_TRUE(cut.uncut);
  EXPECT_EQ(cut.targets, demands);
  EXPECT_DOUBLE_EQ(cut.quality, 1.0);
}

TEST(JobCutter, EmptyBatch) {
  const CutResult cut = cut_longest_first({}, paper_f(), 0.9);
  EXPECT_TRUE(cut.uncut);
  EXPECT_TRUE(cut.targets.empty());
}

TEST(JobCutter, AchievesTargetQuality) {
  const std::vector<double> demands{1000.0, 700.0, 400.0, 150.0};
  const CutResult cut = cut_longest_first(demands, paper_f(), 0.9);
  EXPECT_NEAR(cut.quality, 0.9, 1e-6);
}

TEST(JobCutter, TargetsNeverExceedDemands) {
  const std::vector<double> demands{1000.0, 700.0, 400.0, 150.0};
  const CutResult cut = cut_longest_first(demands, paper_f(), 0.8);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_LE(cut.targets[i], demands[i] + 1e-9);
    EXPECT_GE(cut.targets[i], 0.0);
  }
}

TEST(JobCutter, CutsLongestJobsFirst) {
  // With a mild target only the longest job should lose work.
  const std::vector<double> demands{1000.0, 400.0, 150.0};
  const CutResult cut = cut_longest_first(demands, paper_f(), 0.97);
  EXPECT_LT(cut.targets[0], 1000.0);
  EXPECT_DOUBLE_EQ(cut.targets[1], 400.0);
  EXPECT_DOUBLE_EQ(cut.targets[2], 150.0);
}

TEST(JobCutter, CutJobsShareACommonLevel) {
  const std::vector<double> demands{1000.0, 900.0, 800.0, 100.0};
  const CutResult cut = cut_longest_first(demands, paper_f(), 0.7);
  // All cut jobs end at the same level (the paper's step-5 closed form).
  EXPECT_NEAR(cut.targets[0], cut.level, 1e-9);
  EXPECT_NEAR(cut.targets[1], cut.level, 1e-9);
  EXPECT_NEAR(cut.targets[2], cut.level, 1e-9);
  EXPECT_DOUBLE_EQ(cut.targets[3], 100.0);  // below the level: untouched
}

TEST(JobCutter, SingleJobClosedForm) {
  const std::vector<double> demands{800.0};
  const CutResult cut = cut_longest_first(demands, paper_f(), 0.9);
  // f(c) = 0.9 * f(800).
  const double expected = paper_f().inverse(0.9 * paper_f().value(800.0));
  EXPECT_NEAR(cut.targets[0], expected, 1e-6);
  EXPECT_NEAR(cut.quality, 0.9, 1e-9);
}

TEST(JobCutter, AllEqualDemands) {
  const std::vector<double> demands{500.0, 500.0, 500.0};
  const CutResult cut = cut_longest_first(demands, paper_f(), 0.9);
  EXPECT_NEAR(cut.quality, 0.9, 1e-6);
  for (double t : cut.targets) {
    EXPECT_NEAR(t, cut.targets[0], 1e-9);
    EXPECT_LT(t, 500.0);
  }
}

TEST(JobCutter, ZeroTargetCutsEverything) {
  const std::vector<double> demands{500.0, 300.0};
  const CutResult cut = cut_longest_first(demands, paper_f(), 0.0);
  EXPECT_NEAR(cut.quality, 0.0, 1e-6);
  for (double t : cut.targets) {
    EXPECT_NEAR(t, 0.0, 1e-6);
  }
}

TEST(JobCutter, MatchesBisectionSolver) {
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(12);
    std::vector<double> demands(n);
    for (double& d : demands) {
      d = rng.uniform(130.0, 1000.0);
    }
    const double target = rng.uniform(0.5, 0.99);
    const CutResult cut = cut_longest_first(demands, paper_f(), target);
    const double level = cut_level_for_quality(demands, paper_f(), target);
    EXPECT_NEAR(cut.quality, target, 1e-6)
        << "n=" << n << " target=" << target;
    EXPECT_NEAR(cut.level, level, 1.0);  // both hit the same quality level
  }
}

TEST(JobCutter, SavedWorkIsPositiveForConcaveF) {
  // Cutting to 0.9 quality must remove strictly more than 10% of the work:
  // that asymmetry is the whole point of exploiting diminishing returns.
  const std::vector<double> demands{1000.0, 800.0, 600.0, 400.0, 200.0};
  const CutResult cut = cut_longest_first(demands, paper_f(), 0.9);
  double total = 0.0;
  double kept = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    total += demands[i];
    kept += cut.targets[i];
  }
  EXPECT_LT(kept / total, 0.9);
}

TEST(JobCutter, IterationsBoundedByDistinctLevels) {
  const std::vector<double> demands{1000.0, 900.0, 800.0, 700.0};
  const CutResult cut = cut_longest_first(demands, paper_f(), 0.5);
  EXPECT_LE(cut.iterations, 4);
  EXPECT_GE(cut.iterations, 1);
}

TEST(BatchQuality, Formula) {
  const std::vector<double> demands{400.0, 600.0};
  const std::vector<double> targets{200.0, 600.0};
  const double expected = (paper_f().value(200.0) + paper_f().value(600.0)) /
                          (paper_f().value(400.0) + paper_f().value(600.0));
  EXPECT_NEAR(batch_quality(targets, demands, paper_f()), expected, 1e-12);
}

// Property sweep across quality targets: the cut always achieves the target
// (within tolerance) and is order-independent.
class CutterTargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(CutterTargetSweep, AchievesTarget) {
  util::Rng rng(7);
  std::vector<double> demands(20);
  for (double& d : demands) {
    d = rng.uniform(130.0, 1000.0);
  }
  const CutResult cut = cut_longest_first(demands, paper_f(), GetParam());
  EXPECT_NEAR(cut.quality, GetParam(), 1e-6);
}

TEST_P(CutterTargetSweep, OrderInvariant) {
  util::Rng rng(8);
  std::vector<double> demands(15);
  for (double& d : demands) {
    d = rng.uniform(130.0, 1000.0);
  }
  const CutResult sorted_cut = cut_longest_first(demands, paper_f(), GetParam());
  std::vector<double> shuffled = demands;
  std::reverse(shuffled.begin(), shuffled.end());
  const CutResult reversed_cut = cut_longest_first(shuffled, paper_f(), GetParam());
  EXPECT_NEAR(sorted_cut.level, reversed_cut.level, 1e-6);
  EXPECT_NEAR(sorted_cut.quality, reversed_cut.quality, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, CutterTargetSweep,
                         ::testing::Values(0.5, 0.7, 0.8, 0.9, 0.95, 0.99));

TEST(CutLevelForQuality, EdgeCases) {
  const std::vector<double> demands{500.0, 300.0};
  EXPECT_DOUBLE_EQ(cut_level_for_quality(demands, paper_f(), 1.0), 500.0);
  EXPECT_DOUBLE_EQ(cut_level_for_quality(demands, paper_f(), 0.0), 0.0);
  EXPECT_DOUBLE_EQ(cut_level_for_quality({}, paper_f(), 0.9), 0.0);
}

}  // namespace
}  // namespace ge::opt
