// Tests for the trace-analytics subsystem (src/obs/analysis): golden report
// rendering, the residency-vs-reported energy identity, the trace-file
// round-trip, the online invariant watchdog, the wall-clock profiler, and
// the report determinism contract (byte-identical for any --jobs value).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "exp/config.h"
#include "exp/experiment_engine.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "obs/analysis/analysis.h"
#include "obs/analysis/report.h"
#include "obs/analysis/trace_reader.h"
#include "obs/analysis/watchdog.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "workload/trace.h"

namespace ge::obs::analysis {
namespace {

// A fully hand-checkable one-job task: job 1 arrives at 0.25 (demand 150,
// deadline 0.4), is admitted to core 0, runs one slice 0.25 -> 0.35 at
// 1500 units/s, and completes.  With the paper model P = 5 * (s/1000)^2,
// the slice draws 11.25 W for 0.1 s: energy 1.125 J at 1.5 GHz.
TraceBuffer tiny_buffer() {
  TraceBuffer buf;
  TraceEvent ev;
  ev.type = TraceEventType::kArrival;
  ev.t = 0.25;
  ev.job = 1;
  ev.a = 150.0;  // demand
  ev.b = 0.4;    // deadline
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kRound;
  ev.t = 0.25;
  ev.mode = kModeAes;
  ev.a = 1;
  ev.b = 4.0;
  ev.c = 1;
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kAssign;
  ev.t = 0.25;
  ev.job = 1;
  ev.core = 0;
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kExec;
  ev.t = 0.25;
  ev.t2 = 0.35;
  ev.core = 0;
  ev.job = 1;
  ev.a = 1500.0;  // speed
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kCompletion;
  ev.t = 0.35;
  ev.core = 0;
  ev.job = 1;
  ev.a = 150.0;  // executed
  ev.b = 150.0;  // demand
  ev.c = 1.0;    // monitored quality
  buf.push(ev);
  return buf;
}

TraceTaskInfo tiny_info() {
  TraceTaskInfo info;
  info.task = 0;
  info.scheduler = "GE";
  info.arrival_rate = 4.0;
  info.cores = 1;
  info.power_budget = 20.0;
  info.power_model_json = "{\"a\": 5, \"beta\": 2, \"units_per_ghz\": 1000}";
  return info;
}

TEST(Analysis, TinyTaskDerivesTheHandComputedSpans) {
  const TraceBuffer buf = tiny_buffer();
  TaskInput input;
  input.info = tiny_info();
  input.buffer = &buf;
  input.models = {{power::PowerModel(5.0, 2.0, 1000.0)}};
  const double slice_energy =
      power::PowerModel(5.0, 2.0, 1000.0).power(1500.0) * (0.35 - 0.25);
  input.reported_energy_j = slice_energy;

  const TaskAnalysis task = analyze_task(input);
  EXPECT_EQ(task.released, 1u);
  EXPECT_EQ(task.completed, 1u);
  EXPECT_EQ(task.missed, 0u);
  EXPECT_EQ(task.rounds, 1u);
  ASSERT_EQ(task.jobs.size(), 1u);
  const JobSpan& job = task.jobs[0];
  EXPECT_EQ(job.arrival, 0.25);
  EXPECT_EQ(job.assigned, 0.25);
  EXPECT_EQ(job.first_exec, 0.25);
  EXPECT_EQ(job.settled, 0.35);
  EXPECT_EQ(job.core, 0);
  EXPECT_EQ(job.energy_j, slice_energy);
  // One core, one 1.5 GHz bin.
  ASSERT_EQ(task.residency.size(), 1u);
  ASSERT_EQ(task.residency[0].bins.size(), 1u);
  EXPECT_EQ(task.residency[0].bins[0].bin, 7);  // [1.4, 1.6) GHz
  EXPECT_EQ(task.integrated_energy_j, slice_energy);
  EXPECT_EQ(task.energy_rel_err, 0.0);
  // Single server: everything counts as dispatched to server 0.
  ASSERT_EQ(task.dispatched.size(), 1u);
  EXPECT_EQ(task.dispatched[0], 1u);
}

// The golden strings pin the ge-report-v1 CSV schema byte for byte; any
// change here is a schema change and must bump docs/OBSERVABILITY.md.
TEST(Report, GoldenCsvsForTinyTask) {
  const TraceBuffer buf = tiny_buffer();
  TaskInput input;
  input.info = tiny_info();
  input.buffer = &buf;
  input.models = {{power::PowerModel(5.0, 2.0, 1000.0)}};
  input.reported_energy_j =
      power::PowerModel(5.0, 2.0, 1000.0).power(1500.0) * (0.35 - 0.25);

  ReportWriter writer;
  writer.add_task(input);

  std::ostringstream summary;
  writer.write_summary_csv(summary);
  EXPECT_EQ(summary.str(),
            "task,scheduler,arrival_rate,servers,cores,released,completed,"
            "partial,dropped,missed,rounds,mode_switches,cuts,violations,"
            "integrated_energy_j,reported_energy_j,energy_rel_err,"
            "mean_response_ms,p99_response_ms\n"
            "0,GE,4,1,1,1,1,0,0,0,1,0,0,0,1.125,1.125,0,100,100\n");

  std::ostringstream jobs;
  writer.write_jobs_csv(jobs);
  EXPECT_EQ(jobs.str(),
            "task,job,server,core,arrival_s,assigned_s,first_exec_s,"
            "settled_s,deadline_s,demand_units,executed_units,energy_j,"
            "wait_ms,service_ms,response_ms,slack_ms,outcome,missed\n"
            "0,1,0,0,0.25,0.25,0.25,0.35,0.4,150,150,1.125,0,100,100,50,"
            "completed,0\n");

  std::ostringstream residency;
  writer.write_residency_csv(residency);
  EXPECT_EQ(residency.str(),
            "task,server,core,ghz_lo,ghz_hi,busy_s,energy_j\n"
            "0,0,0,1.4,1.6,0.1,1.125\n");

  std::ostringstream md;
  writer.write_markdown(md);
  EXPECT_NE(md.str().find("schema: ge-report-v1 | tasks: 1"), std::string::npos);
  EXPECT_NE(md.str().find("(rel err 0) — OK"), std::string::npos);
  EXPECT_NE(md.str().find("no violations recorded"), std::string::npos);
}

TEST(TraceReader, RoundTripsEveryEventKind) {
  TraceBuffer buf = tiny_buffer();
  TraceEvent ev;
  ev.type = TraceEventType::kModeSwitch;
  ev.t = 0.5;
  ev.mode = kModeBq;
  ev.a = 0.875;
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kCut;
  ev.t = 0.5;
  ev.core = 0;
  ev.a = 2.0;
  ev.b = 130.0;
  ev.c = 260.0;
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kCap;
  ev.t = 0.5;
  ev.core = 0;
  ev.a = 12.5;
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kDeadlineMiss;
  ev.t = 0.625;
  ev.core = -1;
  ev.job = 2;
  ev.a = 0.0;
  ev.b = 150.0;
  ev.c = 0.5;
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kCoreOffline;
  ev.t = 0.75;
  ev.core = 1;
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kDispatch;
  ev.t = 0.75;
  ev.job = 3;
  ev.core = 1;  // server index
  ev.a = 2.0;   // in flight
  buf.push(ev);
  ev = TraceEvent{};
  ev.type = TraceEventType::kViolation;
  ev.t = 0.875;
  ev.mode = static_cast<std::int32_t>(ViolationCheck::kEnergyIdentity);
  ev.a = 1.5;
  ev.b = 1.25;
  buf.push(ev);

  std::ostringstream out;
  TraceWriter writer(out, TraceFormat::kJsonl);
  writer.append_task(tiny_info(), buf);
  writer.close();

  std::istringstream in(out.str());
  const std::vector<ParsedTask> parsed = read_trace_jsonl(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].info.scheduler, "GE");
  EXPECT_EQ(parsed[0].info.cores, 1u);
  EXPECT_EQ(parsed[0].info.power_budget, 20.0);
  EXPECT_EQ(parsed[0].model.a(), 5.0);
  EXPECT_EQ(parsed[0].model.beta(), 2.0);
  EXPECT_EQ(parsed[0].model.units_per_ghz(), 1000.0);

  const std::vector<TraceEvent>& original = buf.events();
  const std::vector<TraceEvent>& round_tripped = parsed[0].buffer.events();
  ASSERT_EQ(round_tripped.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(round_tripped[i].type, original[i].type);
    EXPECT_EQ(round_tripped[i].t, original[i].t);
    EXPECT_EQ(round_tripped[i].t2, original[i].t2);
    EXPECT_EQ(round_tripped[i].job, original[i].job);
    EXPECT_EQ(round_tripped[i].core, original[i].core);
    EXPECT_EQ(round_tripped[i].mode, original[i].mode);
    EXPECT_EQ(round_tripped[i].a, original[i].a);
    EXPECT_EQ(round_tripped[i].b, original[i].b);
    EXPECT_EQ(round_tripped[i].c, original[i].c);
  }
}

TEST(Watchdog, CleanBufferRecordsNoViolations) {
  TraceBuffer buf;
  WatchdogOptions options;
  options.models = {{power::PowerModel()}};
  options.server_budgets_w = {20.0};
  MetricsRegistry reg;
  Watchdog dog(buf, options, &reg);
  buf.set_observer(&dog);
  const TraceBuffer clean = tiny_buffer();
  for (const TraceEvent& ev : clean.events()) {
    buf.push(ev);
  }
  Watchdog::Totals totals;
  totals.released = 1;
  totals.server_energy_j = {power::PowerModel().power(1500.0) * (0.35 - 0.25)};
  dog.finish(0.4, totals);
  buf.set_observer(nullptr);
  EXPECT_EQ(dog.violations(), 0u);
  EXPECT_EQ(reg.counter("watchdog.violations", "violations").value(), 0.0);
  EXPECT_GT(reg.counter("watchdog.checks", "events").value(), 0.0);
}

TEST(Watchdog, CorruptedEventsFireTheMatchingChecks) {
  TraceBuffer buf;
  WatchdogOptions options;
  options.models = {{power::PowerModel()}};
  options.server_budgets_w = {20.0};
  Watchdog dog(buf, options, nullptr);
  buf.set_observer(&dog);

  TraceEvent ev;
  ev.type = TraceEventType::kRound;
  ev.t = 1.0;
  ev.mode = kModeAes;
  buf.push(ev);
  ev = TraceEvent{};  // clock runs backwards for an instantaneous event
  ev.type = TraceEventType::kRound;
  ev.t = 0.5;
  ev.mode = kModeAes;
  buf.push(ev);
  ev = TraceEvent{};  // exec slice that ends before it starts
  ev.type = TraceEventType::kExec;
  ev.t = 1.0;
  ev.t2 = 0.9;
  ev.core = 0;
  ev.job = 1;
  ev.a = 1000.0;
  buf.push(ev);
  ev = TraceEvent{};  // settlement reporting more work than was demanded
  ev.type = TraceEventType::kCompletion;
  ev.t = 1.0;
  ev.core = 0;
  ev.job = 1;
  ev.a = 200.0;  // executed
  ev.b = 150.0;  // demand
  buf.push(ev);

  Watchdog::Totals totals;
  totals.released = 3;          // only 1 settlement seen -> conservation fails
  totals.server_energy_j = {1e6};  // nowhere near the integrated energy
  dog.finish(1.0, totals);
  buf.set_observer(nullptr);

  std::vector<std::int32_t> fired;
  for (const TraceEvent& v : buf.events()) {
    if (v.type == TraceEventType::kViolation) {
      fired.push_back(v.mode);
    }
  }
  EXPECT_EQ(dog.violations(), fired.size());
  auto fired_check = [&](ViolationCheck check) {
    return std::count(fired.begin(), fired.end(),
                      static_cast<std::int32_t>(check)) > 0;
  };
  EXPECT_TRUE(fired_check(ViolationCheck::kMonotoneClock));
  EXPECT_TRUE(fired_check(ViolationCheck::kExecSpan));
  EXPECT_TRUE(fired_check(ViolationCheck::kJobOverrun));
  EXPECT_TRUE(fired_check(ViolationCheck::kSettlementConservation));
  EXPECT_TRUE(fired_check(ViolationCheck::kEnergyIdentity));
}

}  // namespace
}  // namespace ge::obs::analysis

namespace ge::exp {
namespace {

ExperimentConfig small_config(double rate) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.arrival_rate = rate;
  cfg.duration = 1.0;
  cfg.seed = 7;
  return cfg;
}

// The residency integration must reproduce the run's reported dynamic
// energy *bit for bit*: exec events carry the exact accrual terms and the
// analysis adds them in the same order the cores did.
TEST(AnalysisIdentity, IntegratedEnergyMatchesRunResultExactly) {
  const ExperimentConfig cfg = small_config(150.0);
  const SchedulerSpec spec = SchedulerSpec::parse("GE");
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  obs::RunTelemetry telemetry;
  const RunResult result =
      run_simulation(cfg, spec, trace, nullptr, &telemetry);

  obs::analysis::TaskInput input;
  input.buffer = &telemetry.trace;
  for (const cluster::NodeSpec& node :
       cfg.cluster_node_specs(effective_budget(spec, cfg))) {
    input.models.push_back(node.core_models);
  }
  input.reported_energy_j = result.energy;
  const obs::analysis::TaskAnalysis task = obs::analysis::analyze_task(input);

  EXPECT_EQ(task.integrated_energy_j, result.energy);
  EXPECT_EQ(task.energy_rel_err, 0.0);
  EXPECT_EQ(task.released, result.released);
  EXPECT_EQ(task.completed, result.completed);
  EXPECT_EQ(task.partial, result.partial);
  EXPECT_EQ(task.dropped, result.dropped);
}

TEST(AnalysisIdentity, HoldsOnClusterRunsWithDispatchAttribution) {
  ExperimentConfig cfg = small_config(180.0);
  cfg.num_servers = 2;
  const SchedulerSpec spec = SchedulerSpec::parse("GE");
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  obs::RunTelemetry telemetry;
  const RunResult result =
      run_simulation(cfg, spec, trace, nullptr, &telemetry);

  obs::analysis::TaskInput input;
  input.buffer = &telemetry.trace;
  for (const cluster::NodeSpec& node :
       cfg.cluster_node_specs(effective_budget(spec, cfg))) {
    input.models.push_back(node.core_models);
  }
  input.reported_energy_j = result.energy;
  const obs::analysis::TaskAnalysis task = obs::analysis::analyze_task(input);

  EXPECT_EQ(task.num_servers, 2u);
  EXPECT_EQ(task.integrated_energy_j, result.energy);
  EXPECT_EQ(task.energy_rel_err, 0.0);
  // Dispatch conservation: the per-server tallies partition the jobs.
  ASSERT_EQ(task.dispatched.size(), 2u);
  EXPECT_EQ(task.dispatched[0] + task.dispatched[1], task.released);
}

TEST(RunnerWatchdog, RealRunIsViolationFree) {
  obs::RunTelemetry telemetry;
  telemetry.want_watchdog = true;
  const ExperimentConfig cfg = small_config(150.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  (void)run_simulation(cfg, SchedulerSpec::parse("GE"), trace, nullptr,
                       &telemetry);
  EXPECT_EQ(
      telemetry.metrics.counter("watchdog.violations", "violations").value(),
      0.0);
  EXPECT_GT(telemetry.metrics.counter("watchdog.checks", "events").value(), 0.0);
  for (const obs::TraceEvent& ev : telemetry.trace.events()) {
    EXPECT_NE(ev.type, obs::TraceEventType::kViolation);
  }
}

TEST(RunnerProfiler, SpansRecordOnlyWhenEnabled) {
  const ExperimentConfig cfg = small_config(120.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);

  obs::RunTelemetry off;
  (void)run_simulation(cfg, SchedulerSpec::parse("GE"), trace, nullptr, &off);
  EXPECT_EQ(off.profiler, nullptr);

  obs::RunTelemetry on;
  on.enable_profiling();
  (void)run_simulation(cfg, SchedulerSpec::parse("GE"), trace, nullptr, &on);
  EXPECT_EQ(on.metrics.counter("prof.sim_run_calls", "calls").value(), 1.0);
  EXPECT_GT(on.metrics.counter("prof.sim_run_ns", "ns").value(), 0.0);
  EXPECT_GE(on.metrics.counter("prof.ge_round_calls", "calls").value(), 1.0);
  EXPECT_GE(on.metrics.counter("prof.cut_calls", "calls").value(), 1.0);
  EXPECT_GE(on.metrics.counter("prof.power_dist_calls", "calls").value(), 1.0);
  EXPECT_GE(on.metrics.counter("prof.plan_calls", "calls").value(), 1.0);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(EngineReport, DirectoryIsByteIdenticalForAnyWorkerCount) {
  ExperimentPlan plan;
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.duration = 1.0;
  cfg.seed = 42;
  for (std::size_t p = 0; p < 2; ++p) {
    cfg.arrival_rate = p == 0 ? 110.0 : 170.0;
    for (const char* name : {"GE", "BE"}) {
      plan.add(cfg, SchedulerSpec::parse(name), p);
    }
  }

  const std::string dir = ::testing::TempDir();
  auto run_with = [&](std::size_t jobs, const std::string& tag) {
    ExecutionOptions exec;
    exec.jobs = jobs;
    exec.telemetry.report_dir = dir + "/report" + tag;
    exec.telemetry.watchdog = true;
    (void)run_plan(plan, exec);
  };
  run_with(1, "1");
  run_with(4, "4");
  for (const char* name : {"report.md", "summary.csv", "jobs.csv",
                           "residency.csv", "timeline.csv"}) {
    const std::string a = dir + "/report1/" + name;
    const std::string b = dir + "/report4/" + name;
    EXPECT_EQ(slurp(a), slurp(b)) << name;
    std::remove(a.c_str());
    std::remove(b.c_str());
  }
}

}  // namespace
}  // namespace ge::exp
