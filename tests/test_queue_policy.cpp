// Behavioural tests for the FCFS/FDFS/LJF/SJF baselines.
#include <gtest/gtest.h>

#include <memory>

#include "core/queue_policy.h"
#include "quality/quality_function.h"
#include "quality/quality_monitor.h"

namespace ge::sched {
namespace {

struct Harness {
  sim::Simulator sim;
  power::PowerModel pm{5.0, 2.0, 1000.0};
  server::MulticoreServer server;
  quality::ExponentialQuality f{0.003, 1000.0};
  quality::QualityMonitor monitor{f};
  std::unique_ptr<QueuePolicyScheduler> scheduler;
  std::vector<std::unique_ptr<workload::Job>> jobs;

  explicit Harness(QueueOrder order, std::size_t cores = 1, double budget = 20.0)
      : server(cores, budget, pm, sim) {
    QueuePolicyOptions options;
    options.order = order;
    SchedulerEnv env{&sim, &server, &f, &monitor};
    scheduler = std::make_unique<QueuePolicyScheduler>(env, options);
    for (std::size_t i = 0; i < cores; ++i) {
      server.core(i).set_job_finished_callback(
          [this](workload::Job* j) { scheduler->on_job_finished(j); });
      server.core(i).set_idle_callback(
          [this](int id) { scheduler->on_core_idle(id); });
    }
    scheduler->start();
  }

  workload::Job* add_job(double arrival, double window, double demand) {
    auto job = std::make_unique<workload::Job>();
    job->id = jobs.size() + 1;
    job->arrival = arrival;
    job->deadline = arrival + window;
    job->demand = demand;
    job->target = demand;
    workload::Job* ptr = job.get();
    jobs.push_back(std::move(job));
    sim.schedule_at(arrival, [this, ptr] { scheduler->on_job_arrival(ptr); });
    sim.schedule_at(ptr->deadline, [this, ptr] { scheduler->on_deadline(ptr); });
    return ptr;
  }

  void run() {
    sim.run_until(5.0);
    scheduler->finish();
  }
};

TEST(QueuePolicy, SingleJobRunsAtSlowestFeasibleSpeed) {
  Harness h(QueueOrder::kFcfs);
  workload::Job* job = h.add_job(0.0, 0.2, 200.0);
  h.run();
  EXPECT_NEAR(job->executed, 200.0, 1e-6);
  // Slowest feasible speed: 200 units / 0.2 s = 1000 u/s -> 5 W * 0.2 s = 1 J.
  EXPECT_NEAR(h.server.total_energy(), 1.0, 1e-6);
}

TEST(QueuePolicy, CapBindsPartialExecution) {
  Harness h(QueueOrder::kFcfs);
  // 600 units in 0.15 s needs 4 GHz; the 20 W cap allows 2 GHz -> 300 units.
  workload::Job* job = h.add_job(0.0, 0.15, 600.0);
  h.run();
  EXPECT_NEAR(job->executed, 300.0, 1e-6);
  EXPECT_LT(h.monitor.quality(), 1.0);
}

TEST(QueuePolicy, FcfsPicksEarliestArrival) {
  Harness h(QueueOrder::kFcfs);
  workload::Job* blocker = h.add_job(0.0, 1.0, 1000.0);  // occupies the core
  workload::Job* early = h.add_job(0.01, 2.0, 100.0);
  workload::Job* late = h.add_job(0.02, 0.5, 100.0);
  h.run();
  (void)blocker;
  // Both waiting jobs eventually run, but FCFS starts `early` first.  Verify
  // by checking `early` completed (it always can) and that when deadlines
  // conflict FCFS ignores them: give `late` the earlier deadline yet later
  // arrival -- it still runs second.
  EXPECT_NEAR(early->executed, 100.0, 1e-6);
  EXPECT_GE(early->executed, late->executed);
}

TEST(QueuePolicy, FdfsPicksEarliestDeadline) {
  Harness h(QueueOrder::kFdfs);
  h.add_job(0.0, 1.0, 1000.0);  // blocker until t=1
  workload::Job* urgent = h.add_job(0.01, 1.15, 200.0);   // deadline 1.16
  workload::Job* relaxed = h.add_job(0.005, 3.0, 200.0);  // deadline 3.005
  h.run();
  // FDFS must run `urgent` first even though `relaxed` arrived earlier.
  EXPECT_NEAR(urgent->executed, 200.0, 1e-6);
  EXPECT_NEAR(relaxed->executed, 200.0, 1e-6);
}

TEST(QueuePolicy, SjfPrefersShortJob) {
  Harness h(QueueOrder::kSjf);
  h.add_job(0.0, 0.5, 900.0);  // blocker
  workload::Job* long_job = h.add_job(0.01, 0.46, 800.0);
  workload::Job* short_job = h.add_job(0.02, 0.47, 140.0);
  h.run();
  // One slot frees at ~0.45 s (blocker cut at deadline 0.5? blocker runs to
  // 0.5); by then both candidates are close to their deadlines; SJF runs the
  // short one.
  EXPECT_GE(short_job->executed, long_job->executed);
}

TEST(QueuePolicy, LjfPrefersLongJob) {
  Harness h(QueueOrder::kLjf);
  h.add_job(0.0, 0.2, 400.0);  // blocker until 0.2
  workload::Job* long_job = h.add_job(0.01, 0.5, 800.0);
  workload::Job* short_job = h.add_job(0.02, 0.25, 140.0);
  h.run();
  // LJF dispatches the long job when the core frees at 0.2; the short job
  // expires at 0.27 while waiting.
  EXPECT_GT(long_job->executed, 0.0);
  EXPECT_NEAR(short_job->executed, 0.0, 1e-9);
}

TEST(QueuePolicy, ExpiredQueueJobsDiscarded) {
  Harness h(QueueOrder::kFcfs);
  h.add_job(0.0, 1.0, 1000.0);                        // blocker until 1.0
  workload::Job* doomed = h.add_job(0.01, 0.1, 500.0);  // expires at 0.11
  h.run();
  EXPECT_TRUE(doomed->settled);
  EXPECT_NEAR(doomed->executed, 0.0, 1e-9);
}

TEST(QueuePolicy, MultipleCoresRunInParallel) {
  Harness h(QueueOrder::kFcfs, 2, 40.0);
  workload::Job* a = h.add_job(0.0, 0.2, 200.0);
  workload::Job* b = h.add_job(0.0, 0.2, 200.0);
  h.run();
  EXPECT_NEAR(a->executed, 200.0, 1e-6);
  EXPECT_NEAR(b->executed, 200.0, 1e-6);
}

TEST(QueuePolicy, SchedulerNames) {
  EXPECT_EQ(Harness(QueueOrder::kFcfs).scheduler->name(), "FCFS");
  EXPECT_EQ(Harness(QueueOrder::kFdfs).scheduler->name(), "FDFS");
  EXPECT_EQ(Harness(QueueOrder::kLjf).scheduler->name(), "LJF");
  EXPECT_EQ(Harness(QueueOrder::kSjf).scheduler->name(), "SJF");
}

TEST(QueuePolicy, FinishSettlesEverything) {
  Harness h(QueueOrder::kFcfs);
  h.add_job(0.0, 10.0, 1000.0);
  h.add_job(0.0, 10.0, 1000.0);
  h.sim.run_until(0.01);  // nothing finished yet
  h.scheduler->finish();
  for (const auto& job : h.jobs) {
    EXPECT_TRUE(job->settled);
  }
}

}  // namespace
}  // namespace ge::sched
