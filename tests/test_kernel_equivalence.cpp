// Bit-identity guards for the hot-path kernel optimisations.
//
// The optimised kernels (scratch-reuse LF cutter, beta==2 power fast path,
// flat-state event queue, EDF sort-once GE round) are only admissible if
// they produce *bit-identical* results to the originals -- the repo's
// determinism contract (docs/DETERMINISM.md) pins figures to seeds, so even
// a last-ulp drift would silently invalidate every pinned artefact.  Three
// layers of defence:
//
//  1. GoldenPinnedSeeds: end-to-end RunResults for eight pinned
//     (scheduler, rate, seed, ladder) points, captured from the
//     pre-optimisation build and compared with EXPECT_EQ (exact).
//  2. Reference-implementation sweeps: the optimised cutter and power model
//     against verbatim copies of the pre-optimisation code across thousands
//     of random instances, field-by-field bitwise.
//  3. Model-based event-queue check: random push/cancel/pop interleavings
//     against an obviously-correct reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <span>
#include <vector>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "opt/job_cutter.h"
#include "power/power_model.h"
#include "quality/quality_function.h"
#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "workload/trace.h"

namespace ge {
namespace {

// ---------------------------------------------------------------------------
// 1. End-to-end golden results, captured from the pre-optimisation build
//    (commit e3d9eef) with %.17g precision -- enough to round-trip a double
//    exactly.  Any change in summation order, sort order or math library
//    call on the simulation path shows up here.
// ---------------------------------------------------------------------------

struct GoldenRun {
  const char* scheduler;
  double rate;
  std::uint64_t seed;
  bool discrete;
  double quality;
  double energy;
  double mean_response_ms;
  double aes_fraction;
  double avg_speed_ghz;
  std::uint64_t released;
  std::uint64_t completed;
  std::uint64_t partial;
  std::uint64_t dropped;
  std::uint64_t rounds;
};

constexpr GoldenRun kGoldenRuns[] = {
    {"GE", 100, 11ULL, false, 0.90008764233722216, 430.32237279687791,
     148.54488186790354, 0.83401342970200809, 1.1852589280302941, 398, 75, 323, 0,
     312},
    {"GE", 220, 12ULL, false, 0.85601718414018235, 1239.1789690915582,
     142.48396268602281, 0.046697214226062371, 1.9243801383697192, 836, 285, 551,
     0, 130},
    {"GE", 180, 13ULL, true, 0.89167080675069632, 1120.9449139316621,
     144.89482603354918, 0.064212170081530157, 1.8288911621817325, 740, 194, 546,
     0, 115},
    {"BE", 220, 14ULL, false, 0.8257523892559151, 1273.7288651532717,
     142.7814956959979, 0, 1.9617000687016277, 890, 261, 629, 0, 134},
    {"OQ", 150, 15ULL, false, 0.89590113488017564, 742.39511924111775,
     145.66464365623207, 1, 1.4554880041800737, 580, 68, 512, 0, 195},
    {"FCFS", 150, 16ULL, false, 0.91827324950069977, 890.26675004175115, 150, 0,
     1.620920858671796, 646, 428, 218, 0, 0},
    {"GE-NoComp", 200, 17ULL, false, 0.84686863380378674, 1144.4842843261008,
     143.83918795583165, 1, 1.8020785197346274, 758, 112, 646, 0, 125},
    {"SJF", 150, 18ULL, true, 0.78376760874465978, 583.80449533284411,
     142.40554424137781, 0, 1.3235555631310858, 582, 428, 85, 69, 0},
};

TEST(KernelEquivalence, GoldenPinnedSeeds) {
  for (const GoldenRun& g : kGoldenRuns) {
    exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
    cfg.arrival_rate = g.rate;
    cfg.duration = 4.0;
    cfg.seed = g.seed;
    cfg.discrete_speeds = g.discrete;
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    const exp::RunResult r =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse(g.scheduler), trace);
    SCOPED_TRACE(std::string(g.scheduler) + " rate=" + std::to_string(g.rate) +
                 " seed=" + std::to_string(g.seed));
    EXPECT_EQ(r.quality, g.quality);
    EXPECT_EQ(r.energy, g.energy);
    EXPECT_EQ(r.mean_response_ms, g.mean_response_ms);
    EXPECT_EQ(r.aes_fraction, g.aes_fraction);
    EXPECT_EQ(r.avg_speed_ghz, g.avg_speed_ghz);
    EXPECT_EQ(r.released, g.released);
    EXPECT_EQ(r.completed, g.completed);
    EXPECT_EQ(r.partial, g.partial);
    EXPECT_EQ(r.dropped, g.dropped);
    EXPECT_EQ(r.rounds, g.rounds);
  }
}

// ---------------------------------------------------------------------------
// 2a. PowerModel beta==2 fast path vs std::pow.  glibc's pow is correctly
//     rounded for integer y=2, so a*(g*g) must agree bitwise; the sweep
//     covers the full speed range the simulator uses plus random draws.
// ---------------------------------------------------------------------------

TEST(KernelEquivalence, PowerModelBetaTwoBitIdenticalToPow) {
  const power::PowerModel fast(5.0, 2.0, 1000.0);
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> speed(0.0, 4000.0);
  for (int i = 0; i < 200000; ++i) {
    const double s = i < 4001 ? static_cast<double>(i) : speed(rng);
    const double ghz = s / 1000.0;
    EXPECT_EQ(fast.power(s), 5.0 * std::pow(ghz, 2.0)) << "speed=" << s;
  }
}

TEST(KernelEquivalence, PowerModelGenericBetaStillUsesPow) {
  const power::PowerModel cubic(5.0, 3.0, 1000.0);
  std::mt19937_64 rng(2025);
  std::uniform_real_distribution<double> speed(0.0, 4000.0);
  for (int i = 0; i < 50000; ++i) {
    const double s = speed(rng);
    EXPECT_EQ(cubic.power(s), 5.0 * std::pow(s / 1000.0, 3.0));
  }
}

TEST(KernelEquivalence, PowerModelRoundTripUnchanged) {
  // speed_for_power deliberately keeps std::pow(., 1/beta): pow(x, 0.5) and
  // sqrt(x) differ in the last ulp on this libm, so no fast path there.
  const power::PowerModel pm(5.0, 2.0, 1000.0);
  for (double w : {0.0, 1.0, 5.0, 7.3, 20.0, 45.0, 80.0}) {
    EXPECT_NEAR(pm.power(pm.speed_for_power(w)), w, 1e-9 * std::max(w, 1.0));
  }
}

// ---------------------------------------------------------------------------
// 2b. LF cutter: optimised prefix-sum implementation vs a verbatim copy of
//     the pre-optimisation algorithm (quadratic re-evaluation per rung).
// ---------------------------------------------------------------------------

constexpr double kQualityTol = 1e-9;

double reference_batch_quality(std::span<const double> targets,
                               std::span<const double> demands,
                               const quality::QualityFunction& f) {
  double achieved = 0.0;
  double potential = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    achieved += f.value(targets[i]);
    potential += f.value(demands[i]);
  }
  return potential > 0.0 ? achieved / potential : 1.0;
}

// Verbatim pre-optimisation cut_longest_first (commit e3d9eef).
opt::CutResult reference_cut_longest_first(std::span<const double> demands,
                                           const quality::QualityFunction& f,
                                           double q_target) {
  opt::CutResult result;
  result.targets.assign(demands.begin(), demands.end());
  const std::size_t n = demands.size();
  if (n == 0 || q_target >= 1.0 - kQualityTol) {
    result.uncut = true;
    result.level = n == 0 ? 0.0 : *std::max_element(demands.begin(), demands.end());
    result.quality = 1.0;
    return result;
  }
  q_target = std::max(q_target, 0.0);

  std::vector<double> levels(demands.begin(), demands.end());
  std::sort(levels.begin(), levels.end(), std::greater<>());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

  double potential = 0.0;
  for (double p : demands) {
    potential += f.value(p);
  }

  std::vector<double> sorted(demands.begin(), demands.end());
  std::sort(sorted.begin(), sorted.end());

  auto quality_at_level = [&](double level) {
    double achieved = 0.0;
    for (double p : sorted) {
      achieved += f.value(std::min(p, level));
    }
    return achieved / potential;
  };

  double level = levels.front();
  double quality = 1.0;
  int iterations = 0;
  std::size_t next_rung = 1;
  bool overshoot = false;
  while (quality > q_target + kQualityTol) {
    ++iterations;
    const double next_level = next_rung < levels.size() ? levels[next_rung] : 0.0;
    ++next_rung;
    level = next_level;
    quality = quality_at_level(level);
    if (level <= 0.0 && quality > q_target + kQualityTol) {
      break;
    }
    if (quality < q_target - kQualityTol) {
      overshoot = true;
      break;
    }
  }

  if (overshoot) {
    double f_uncut = 0.0;
    std::size_t cut_count = 0;
    for (double p : sorted) {
      if (p <= level + kQualityTol) {
        f_uncut += f.value(p);
      } else {
        ++cut_count;
      }
    }
    const double desired =
        (q_target * potential - f_uncut) / static_cast<double>(cut_count);
    const double clamped = std::clamp(desired, 0.0, 1.0);
    level = f.inverse(clamped);
  }

  result.level = level;
  result.iterations = iterations;
  for (std::size_t i = 0; i < n; ++i) {
    result.targets[i] = std::min(demands[i], level);
  }
  result.quality = reference_batch_quality(result.targets, demands, f);
  return result;
}

void expect_cut_identical(const opt::CutResult& got, const opt::CutResult& want) {
  EXPECT_EQ(got.level, want.level);
  EXPECT_EQ(got.quality, want.quality);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.uncut, want.uncut);
  ASSERT_EQ(got.targets.size(), want.targets.size());
  for (std::size_t i = 0; i < want.targets.size(); ++i) {
    EXPECT_EQ(got.targets[i], want.targets[i]) << "target " << i;
  }
}

TEST(KernelEquivalence, CutterBitIdenticalToReference) {
  const quality::ExponentialQuality expq(0.003, 1000.0);
  const quality::PowerLawQuality plq(0.5, 1000.0);
  const quality::LinearQuality linq(1000.0);
  const quality::QualityFunction* fams[] = {&expq, &plq, &linq};

  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> demand(1.0, 1400.0);
  std::uniform_int_distribution<int> size_dist(1, 40);
  const double q_targets[] = {0.0, 0.2, 0.5, 0.8, 0.85, 0.9, 0.95, 0.99, 1.0};

  opt::CutScratch scratch;  // one scratch across every case: catches stale state
  for (int trial = 0; trial < 400; ++trial) {
    const int n = size_dist(rng);
    std::vector<double> demands(static_cast<std::size_t>(n));
    for (double& d : demands) {
      d = demand(rng);
    }
    if (trial % 5 == 0 && n > 2) {
      // Duplicate demand levels: exercises the rung-dedup path.
      demands[1] = demands[0];
      demands[2] = demands[0];
    }
    for (const quality::QualityFunction* f : fams) {
      for (double q : q_targets) {
        SCOPED_TRACE(f->name() + " q=" + std::to_string(q) +
                     " trial=" + std::to_string(trial));
        const opt::CutResult want = reference_cut_longest_first(demands, *f, q);
        const opt::CutResult got = opt::cut_longest_first(demands, *f, q);
        expect_cut_identical(got, want);
        opt::cut_longest_first(demands, *f, q, scratch);
        expect_cut_identical(scratch.result, want);
      }
    }
  }
  // Empty batch.
  const opt::CutResult empty = opt::cut_longest_first({}, expq, 0.9);
  EXPECT_TRUE(empty.uncut);
  EXPECT_EQ(empty.level, 0.0);
}

TEST(KernelEquivalence, CutLevelBisectionStillMeetsTarget) {
  // cut_level_for_quality changed summation order (prefix sums); it is a
  // test-only cross-check path, so the contract is mathematical, not
  // bitwise: the returned level must achieve >= q_target.
  const quality::ExponentialQuality f(0.003, 1000.0);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> demand(1.0, 1400.0);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> demands(12);
    for (double& d : demands) {
      d = demand(rng);
    }
    for (double q : {0.3, 0.7, 0.9, 0.97}) {
      const double level = opt::cut_level_for_quality(demands, f, q);
      std::vector<double> targets(demands.size());
      for (std::size_t i = 0; i < demands.size(); ++i) {
        targets[i] = std::min(demands[i], level);
      }
      EXPECT_GE(opt::batch_quality(targets, demands, f), q - 1e-6);
    }
  }
}

// ---------------------------------------------------------------------------
// 3. EventQueue implementations (generational slot table) vs a reference
//    model (ordered map keyed by (time, push order)) under random
//    push/cancel/pop interleavings, including cancels of invalid, executed,
//    already-cancelled and stale (recycled-slot) ids.  Runs against both the
//    heap and the calendar queue.
// ---------------------------------------------------------------------------

template <typename Queue>
void event_queue_matches_reference_model() {
  Queue queue;
  // Continuous random times make key collisions measure-zero, so ordering
  // by (time, push order) matches the queue's (time, seq) contract.
  std::map<std::pair<double, std::uint64_t>, sim::EventId> model;
  std::vector<sim::EventId> issued;
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> time_dist(0.0, 100.0);
  std::uniform_int_distribution<int> op_dist(0, 9);
  std::uint64_t pushes = 0;

  auto model_cancel = [&](sim::EventId id) {
    for (auto it = model.begin(); it != model.end(); ++it) {
      if (it->second == id) {
        model.erase(it);
        return true;
      }
    }
    return false;
  };

  for (int step = 0; step < 20000; ++step) {
    const int op = op_dist(rng);
    if (op < 5 || model.empty()) {
      const double t = time_dist(rng);
      const sim::EventId id = queue.push(t, [] {});
      EXPECT_TRUE(queue.is_pending(id));
      issued.push_back(id);
      model.emplace(std::make_pair(t, ++pushes), id);
    } else if (op < 7) {
      // Cancel a random id ever issued -- possibly done, cancelled, or a
      // stale handle whose slot was recycled -- or a never-issued one.
      sim::EventId id;
      if (op == 5 && !issued.empty()) {
        id = issued[std::uniform_int_distribution<std::size_t>(
            0, issued.size() - 1)(rng)];
      } else {
        id = (std::uint64_t{1} << 48) + 1000;  // never issued
      }
      EXPECT_EQ(queue.cancel(id), model_cancel(id)) << "id=" << id;
      EXPECT_FALSE(queue.cancel(0));  // kInvalidEventId is never pending
    } else {
      ASSERT_FALSE(queue.empty());
      const auto expected = model.begin();
      EXPECT_EQ(queue.next_time(), expected->first.first);
      const sim::Event ev = queue.pop();
      EXPECT_EQ(ev.time, expected->first.first);
      EXPECT_EQ(ev.id, expected->second);
      model.erase(expected);
      EXPECT_FALSE(queue.is_pending(ev.id));
      EXPECT_FALSE(queue.cancel(ev.id));  // done events cannot be cancelled
    }
    EXPECT_EQ(queue.size(), model.size());
    EXPECT_EQ(queue.empty(), model.empty());
  }

  // Drain: pop order must equal the model's (time, push order) order.
  while (!model.empty()) {
    const auto expected = model.begin();
    const sim::Event ev = queue.pop();
    EXPECT_EQ(ev.time, expected->first.first);
    EXPECT_EQ(ev.id, expected->second);
    model.erase(expected);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(KernelEquivalence, HeapEventQueueMatchesReferenceModel) {
  event_queue_matches_reference_model<sim::HeapEventQueue>();
}

TEST(KernelEquivalence, CalendarEventQueueMatchesReferenceModel) {
  event_queue_matches_reference_model<sim::CalendarEventQueue>();
}

template <typename Queue>
void event_queue_is_pending_tracks_lifecycle() {
  Queue queue;
  EXPECT_FALSE(queue.is_pending(sim::kInvalidEventId));
  EXPECT_FALSE(queue.is_pending(1));  // not yet issued
  const sim::EventId a = queue.push(1.0, [] {});
  const sim::EventId b = queue.push(2.0, [] {});
  EXPECT_TRUE(queue.is_pending(a));
  EXPECT_TRUE(queue.is_pending(b));
  EXPECT_TRUE(queue.cancel(b));
  EXPECT_FALSE(queue.is_pending(b));
  EXPECT_FALSE(queue.cancel(b));  // double-cancel refused
  EXPECT_EQ(queue.size(), 1u);
  const sim::Event ev = queue.pop();
  EXPECT_EQ(ev.id, a);
  EXPECT_FALSE(queue.is_pending(a));
  EXPECT_TRUE(queue.empty());
}

TEST(KernelEquivalence, HeapEventQueueIsPendingTracksLifecycle) {
  event_queue_is_pending_tracks_lifecycle<sim::HeapEventQueue>();
}

TEST(KernelEquivalence, CalendarEventQueueIsPendingTracksLifecycle) {
  event_queue_is_pending_tracks_lifecycle<sim::CalendarEventQueue>();
}

}  // namespace
}  // namespace ge
