// Tests for the simulated Core and MulticoreServer.
#include <gtest/gtest.h>

#include <vector>

#include "opt/energy_opt.h"
#include "server/multicore_server.h"

namespace ge::server {
namespace {

struct Fixture {
  sim::Simulator sim;
  power::PowerModel pm{5.0, 2.0, 1000.0};
  MulticoreServer server{4, 80.0, pm, sim};  // 20 W per core under ES

  workload::Job make_job(double arrival, double deadline, double demand) {
    workload::Job job;
    job.id = ++next_id;
    job.arrival = arrival;
    job.deadline = deadline;
    job.demand = demand;
    job.target = demand;
    return job;
  }
  std::uint64_t next_id = 0;

  opt::ExecutionPlan single_segment(workload::Job* job, double start, double speed) {
    opt::ExecutionPlan plan;
    const double duration = job->remaining_target() / speed;
    plan.segments.push_back(
        opt::PlanSegment{job, start, start + duration, speed, job->remaining_target()});
    return plan;
  }
};

TEST(Core, ExecutesPlanAndCreditsWork) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 200.0);
  Core& core = fx.server.core(0);
  job.core = 0;
  core.queue().push_back(&job);
  core.install_plan(fx.single_segment(&job, 0.0, 1000.0), 20.0);
  fx.sim.run_until(0.1);
  core.advance_to(0.1);
  EXPECT_NEAR(job.executed, 100.0, 1e-9);
  fx.sim.run_until(0.3);
  EXPECT_NEAR(job.executed, 200.0, 1e-9);
}

TEST(Core, EnergyIntegration) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 200.0);
  Core& core = fx.server.core(0);
  job.core = 0;
  core.queue().push_back(&job);
  // 1000 u/s = 1 GHz -> 5 W for 0.2 s -> 1 J.
  core.install_plan(fx.single_segment(&job, 0.0, 1000.0), 20.0);
  fx.sim.run_until(0.5);
  EXPECT_NEAR(core.energy(), 1.0, 1e-9);
  EXPECT_NEAR(core.busy_time(), 0.2, 1e-12);
}

TEST(Core, JobFinishedCallbackFires) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 100.0);
  Core& core = fx.server.core(0);
  std::vector<std::uint64_t> finished;
  core.set_job_finished_callback(
      [&](workload::Job* j) { finished.push_back(j->id); });
  job.core = 0;
  core.queue().push_back(&job);
  core.install_plan(fx.single_segment(&job, 0.0, 1000.0), 20.0);
  fx.sim.run_until(1.0);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0], job.id);
}

TEST(Core, IdleCallbackAfterLastSegment) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 100.0);
  Core& core = fx.server.core(0);
  int idle_calls = 0;
  core.set_idle_callback([&](int) { ++idle_calls; });
  job.core = 0;
  core.queue().push_back(&job);
  core.install_plan(fx.single_segment(&job, 0.0, 1000.0), 20.0);
  fx.sim.run_until(1.0);
  EXPECT_EQ(idle_calls, 1);
}

TEST(Core, PlanReplacementMidSegmentKeepsAccounting) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 400.0);
  Core& core = fx.server.core(0);
  job.core = 0;
  core.queue().push_back(&job);
  core.install_plan(fx.single_segment(&job, 0.0, 1000.0), 20.0);
  fx.sim.run_until(0.1);
  core.advance_to(0.1);  // credit the first 100 units before re-planning
  // Replace with a faster plan for the remainder.
  core.install_plan(fx.single_segment(&job, 0.1, 2000.0), 20.0);
  EXPECT_NEAR(job.executed, 100.0, 1e-9);
  fx.sim.run_until(1.0);
  EXPECT_NEAR(job.executed, 400.0, 1e-6);
  // Energy: 5 W * 0.1 s + 20 W * 0.15 s = 3.5 J.
  EXPECT_NEAR(core.energy(), 3.5, 1e-9);
}

TEST(Core, RemoveJobDropsFutureSegments) {
  Fixture fx;
  workload::Job a = fx.make_job(0.0, 1.0, 100.0);
  workload::Job b = fx.make_job(0.0, 2.0, 100.0);
  Core& core = fx.server.core(0);
  a.core = b.core = 0;
  core.queue().push_back(&a);
  core.queue().push_back(&b);
  opt::ExecutionPlan plan;
  plan.segments.push_back(opt::PlanSegment{&a, 0.0, 0.1, 1000.0, 100.0});
  plan.segments.push_back(opt::PlanSegment{&b, 0.1, 0.2, 1000.0, 100.0});
  core.install_plan(std::move(plan), 20.0);
  fx.sim.run_until(0.05);
  core.remove_job(&b, 0.05);
  fx.sim.run_until(1.0);
  EXPECT_NEAR(a.executed, 100.0, 1e-9);
  EXPECT_NEAR(b.executed, 0.0, 1e-9);
  EXPECT_TRUE(core.queue().size() == 1 && core.queue()[0] == &a);
}

TEST(Core, RemoveRunningJobStopsIt) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 400.0);
  Core& core = fx.server.core(0);
  job.core = 0;
  core.queue().push_back(&job);
  core.install_plan(fx.single_segment(&job, 0.0, 1000.0), 20.0);
  fx.sim.run_until(0.1);
  core.remove_job(&job, 0.1);
  fx.sim.run_until(1.0);
  EXPECT_NEAR(job.executed, 100.0, 1e-9);  // partial credit only
  EXPECT_FALSE(core.busy(1.0));
}

TEST(Core, CurrentSpeedTracksPlan) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 100.0);
  Core& core = fx.server.core(0);
  job.core = 0;
  core.queue().push_back(&job);
  core.install_plan(fx.single_segment(&job, 0.0, 1000.0), 20.0);
  EXPECT_NEAR(core.current_speed(0.05), 1000.0, 1e-9);
  EXPECT_NEAR(core.current_speed(0.5), 0.0, 1e-9);
}

TEST(Core, SpeedStatsTimeWeighted) {
  Fixture fx;
  workload::Job a = fx.make_job(0.0, 1.0, 100.0);
  workload::Job b = fx.make_job(0.0, 2.0, 300.0);
  Core& core = fx.server.core(0);
  a.core = b.core = 0;
  core.queue().push_back(&a);
  core.queue().push_back(&b);
  opt::ExecutionPlan plan;
  plan.segments.push_back(opt::PlanSegment{&a, 0.0, 0.1, 1000.0, 100.0});
  plan.segments.push_back(opt::PlanSegment{&b, 0.1, 0.25, 2000.0, 300.0});
  core.install_plan(std::move(plan), 20.0);
  fx.sim.run_until(1.0);
  // Mean speed = (1000*0.1 + 2000*0.15) / 0.25 = 1600.
  EXPECT_NEAR(core.speed_stats().mean(), 1600.0, 1e-9);
  EXPECT_GT(core.speed_stats().variance(), 0.0);
}

TEST(Core, RejectsPlanAbovePowerCap) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 100.0);
  Core& core = fx.server.core(0);
  job.core = 0;
  core.queue().push_back(&job);
  // 3000 u/s = 3 GHz -> 45 W > 20 W cap.
  EXPECT_DEATH(core.install_plan(fx.single_segment(&job, 0.0, 3000.0), 20.0), "cap");
}

TEST(Core, RejectsPlanForForeignJob) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 100.0);
  Core& core = fx.server.core(0);
  // Job never queued on this core.
  EXPECT_DEATH(core.install_plan(fx.single_segment(&job, 0.0, 1000.0), 20.0),
               "not pinned");
}

TEST(MulticoreServer, TotalPowerSumsCores) {
  Fixture fx;
  workload::Job a = fx.make_job(0.0, 1.0, 100.0);
  workload::Job b = fx.make_job(0.0, 1.0, 100.0);
  a.core = 0;
  b.core = 1;
  fx.server.core(0).queue().push_back(&a);
  fx.server.core(1).queue().push_back(&b);
  fx.server.core(0).install_plan(fx.single_segment(&a, 0.0, 1000.0), 20.0);
  fx.server.core(1).install_plan(fx.single_segment(&b, 0.0, 2000.0), 20.0);
  // 5 W + 20 W = 25 W while both run.
  EXPECT_NEAR(fx.server.total_power(0.01), 25.0, 1e-9);
}

TEST(MulticoreServer, CapValidation) {
  Fixture fx;
  fx.server.check_caps({20.0, 20.0, 20.0, 20.0});
  EXPECT_DEATH(fx.server.check_caps({40.0, 40.0, 40.0, 40.0}), "exceed");
  EXPECT_DEATH(fx.server.check_caps({20.0, 20.0}), "per core");
}

TEST(MulticoreServer, FindIdleCore) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 100.0);
  job.core = 0;
  fx.server.core(0).queue().push_back(&job);
  fx.server.core(0).install_plan(fx.single_segment(&job, 0.0, 1000.0), 20.0);
  EXPECT_EQ(fx.server.find_idle_core(0.0), 1);  // core 0 busy, core 1 free
  fx.sim.run_until(0.5);
  EXPECT_EQ(fx.server.find_idle_core(0.5), 0);
}

TEST(MulticoreServer, AggregatesEnergyAndSpeed) {
  Fixture fx;
  workload::Job a = fx.make_job(0.0, 1.0, 100.0);
  workload::Job b = fx.make_job(0.0, 1.0, 200.0);
  a.core = 0;
  b.core = 1;
  fx.server.core(0).queue().push_back(&a);
  fx.server.core(1).queue().push_back(&b);
  fx.server.core(0).install_plan(fx.single_segment(&a, 0.0, 1000.0), 20.0);
  fx.server.core(1).install_plan(fx.single_segment(&b, 0.0, 1000.0), 20.0);
  fx.sim.run_until(1.0);
  EXPECT_NEAR(fx.server.total_energy(), 5.0 * 0.1 + 5.0 * 0.2, 1e-9);
  EXPECT_NEAR(fx.server.total_busy_time(), 0.3, 1e-12);
  EXPECT_NEAR(fx.server.aggregate_speed_stats().mean(), 1000.0, 1e-9);
}

TEST(MulticoreServer, ConstructorValidation) {
  sim::Simulator sim;
  power::PowerModel pm;
  EXPECT_DEATH(MulticoreServer(0, 100.0, pm, sim), "at least one core");
  EXPECT_DEATH(MulticoreServer(4, 0.0, pm, sim), "positive");
}

}  // namespace
}  // namespace ge::server

// -- additional hardening: replacement, gaps and accounting -------------------

namespace ge::server {
namespace {

TEST(Core, ManyReplacementsAccumulateExactEnergy) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 10.0, 10000.0);
  Core& core = fx.server.core(0);
  job.core = 0;
  core.queue().push_back(&job);
  // Replace the plan every 0.1 s with a fresh single-segment plan at 1 GHz;
  // total energy must equal 5 W * elapsed regardless of replacement count.
  double expected_energy = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double t = 0.1 * i;
    fx.sim.run_until(t);
    core.advance_to(t);
    if (job.remaining_target() <= 0.0) {
      break;
    }
    core.install_plan(fx.single_segment(&job, t, 1000.0), 20.0);
  }
  fx.sim.run_until(2.0);
  core.advance_to(2.0);  // integrate the tail of the last plan
  expected_energy = 5.0 * 2.0;  // 1 GHz for the whole 2 s
  EXPECT_NEAR(core.energy(), expected_energy, 1e-6);
  EXPECT_NEAR(job.executed, 2000.0, 1e-6);
}

TEST(Core, IdleGapAfterRemovalLeavesSpeedZero) {
  Fixture fx;
  workload::Job a = fx.make_job(0.0, 1.0, 100.0);
  workload::Job b = fx.make_job(0.0, 2.0, 100.0);
  Core& core = fx.server.core(0);
  a.core = b.core = 0;
  core.queue().push_back(&a);
  core.queue().push_back(&b);
  opt::ExecutionPlan plan;
  plan.segments.push_back(opt::PlanSegment{&a, 0.0, 0.1, 1000.0, 100.0});
  plan.segments.push_back(opt::PlanSegment{&b, 0.5, 0.6, 1000.0, 100.0});
  core.install_plan(std::move(plan), 20.0);
  fx.sim.run_until(0.2);
  // Inside the gap: idle.
  EXPECT_NEAR(core.current_speed(0.3), 0.0, 1e-12);
  EXPECT_TRUE(core.busy(0.3));  // future segment still pending
  fx.sim.run_until(1.0);
  EXPECT_NEAR(b.executed, 100.0, 1e-9);
  // Energy excludes the idle gap.
  EXPECT_NEAR(core.energy(), 5.0 * 0.2, 1e-9);
}

TEST(Core, RemoveLastJobCancelsBoundaryEvent) {
  Fixture fx;
  workload::Job job = fx.make_job(0.0, 1.0, 100.0);
  Core& core = fx.server.core(0);
  int finished_calls = 0;
  core.set_job_finished_callback([&](workload::Job*) { ++finished_calls; });
  job.core = 0;
  core.queue().push_back(&job);
  core.install_plan(fx.single_segment(&job, 0.0, 1000.0), 20.0);
  fx.sim.run_until(0.05);
  core.remove_job(&job, 0.05);
  fx.sim.run_until(1.0);
  EXPECT_EQ(finished_calls, 0);  // removed before completion: no callback
  EXPECT_FALSE(core.busy(1.0));
}

TEST(Core, EmptyPlanInstallIsIdle) {
  Fixture fx;
  Core& core = fx.server.core(0);
  core.install_plan(opt::ExecutionPlan{}, 20.0);
  EXPECT_FALSE(core.busy(0.0));
  EXPECT_NEAR(core.current_speed(0.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace ge::server
