// Tests for the Energy-OPT (YDS) per-core speed planner.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "opt/energy_opt.h"
#include "power/power_model.h"
#include "util/rng.h"
#include "workload/job.h"

namespace ge::opt {
namespace {

constexpr double kInf = 1e18;

struct Fixture {
  std::vector<workload::Job> jobs;
  std::vector<PlanJob> plan_jobs;

  void add(double remaining, double deadline) {
    workload::Job job;
    job.id = jobs.size() + 1;
    job.arrival = 0.0;
    job.deadline = deadline;
    job.demand = remaining;
    job.target = remaining;
    jobs.push_back(job);
  }
  std::span<const PlanJob> span() {
    plan_jobs.clear();
    for (workload::Job& job : jobs) {
      plan_jobs.push_back(PlanJob{&job, job.target, job.deadline});
    }
    return plan_jobs;
  }
};

TEST(RequiredSpeed, EmptyQueueIsZero) {
  EXPECT_DOUBLE_EQ(required_speed(0.0, {}), 0.0);
}

TEST(RequiredSpeed, SingleJob) {
  Fixture fx;
  fx.add(300.0, 0.15);
  EXPECT_NEAR(required_speed(0.0, fx.span()), 2000.0, 1e-9);
}

TEST(RequiredSpeed, MaxPrefixIntensity) {
  Fixture fx;
  fx.add(100.0, 0.1);  // prefix 1: 1000 u/s
  fx.add(500.0, 0.2);  // prefix 2: 3000 u/s  <- critical
  fx.add(100.0, 1.0);  // prefix 3: 700 u/s
  EXPECT_NEAR(required_speed(0.0, fx.span()), 3000.0, 1e-9);
}

TEST(EnergyOpt, EmptyPlanForNoJobs) {
  const ExecutionPlan plan = plan_min_energy(0.0, {}, 2000.0);
  EXPECT_TRUE(plan.empty());
}

TEST(EnergyOpt, SingleJobRunsAtExactIntensity) {
  Fixture fx;
  fx.add(300.0, 0.15);
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), kInf);
  ASSERT_EQ(plan.segments.size(), 1u);
  EXPECT_NEAR(plan.segments[0].speed, 2000.0, 1e-9);
  EXPECT_NEAR(plan.segments[0].end, 0.15, 1e-12);
  EXPECT_NEAR(plan.segments[0].units, 300.0, 1e-9);
}

TEST(EnergyOpt, CompletesAllWorkWhenUncapped) {
  Fixture fx;
  fx.add(100.0, 0.10);
  fx.add(400.0, 0.20);
  fx.add(250.0, 0.50);
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), kInf);
  EXPECT_NEAR(plan.total_units(), 750.0, 1e-6);
  plan.validate(0.0);
}

TEST(EnergyOpt, MeetsEveryDeadlineWhenUncapped) {
  Fixture fx;
  fx.add(100.0, 0.10);
  fx.add(400.0, 0.20);
  fx.add(250.0, 0.50);
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), kInf);
  double done0 = 0.0;
  for (const PlanSegment& seg : plan.segments) {
    EXPECT_LE(seg.end, seg.job->deadline + 1e-9);
    done0 += seg.units;
  }
  (void)done0;
}

TEST(EnergyOpt, BlockSpeedsNonIncreasing) {
  Fixture fx;
  fx.add(300.0, 0.10);  // intense head
  fx.add(100.0, 0.50);
  fx.add(100.0, 1.00);
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), kInf);
  for (std::size_t i = 1; i < plan.segments.size(); ++i) {
    EXPECT_LE(plan.segments[i].speed, plan.segments[i - 1].speed + 1e-9);
  }
}

TEST(EnergyOpt, EdfOrderPreserved) {
  Fixture fx;
  fx.add(100.0, 0.10);
  fx.add(100.0, 0.20);
  fx.add(100.0, 0.30);
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), kInf);
  ASSERT_EQ(plan.segments.size(), 3u);
  EXPECT_EQ(plan.segments[0].job->id, 1u);
  EXPECT_EQ(plan.segments[1].job->id, 2u);
  EXPECT_EQ(plan.segments[2].job->id, 3u);
}

TEST(EnergyOpt, CapTruncatesAtDeadline) {
  Fixture fx;
  fx.add(1000.0, 0.25);  // needs 4000 u/s, cap is 2000
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), 2000.0);
  ASSERT_EQ(plan.segments.size(), 1u);
  EXPECT_NEAR(plan.segments[0].speed, 2000.0, 1e-9);
  EXPECT_NEAR(plan.segments[0].end, 0.25, 1e-12);
  EXPECT_NEAR(plan.segments[0].units, 500.0, 1e-9);
}

TEST(EnergyOpt, ZeroCapYieldsEmptyPlan) {
  Fixture fx;
  fx.add(100.0, 0.5);
  EXPECT_TRUE(plan_min_energy(0.0, fx.span(), 0.0).empty());
}

TEST(EnergyOpt, SkipsZeroRemainingJobs) {
  Fixture fx;
  fx.add(0.0, 0.10);
  fx.add(100.0, 0.20);
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), kInf);
  ASSERT_EQ(plan.segments.size(), 1u);
  EXPECT_EQ(plan.segments[0].job->id, 2u);
}

TEST(EnergyOpt, StartsFromNow) {
  Fixture fx;
  fx.add(100.0, 2.0);
  const ExecutionPlan plan = plan_min_energy(1.5, fx.span(), kInf);
  ASSERT_EQ(plan.segments.size(), 1u);
  EXPECT_NEAR(plan.segments[0].start, 1.5, 1e-12);
  EXPECT_NEAR(plan.segments[0].speed, 200.0, 1e-9);
}

// Optimality cross-check: for two jobs with agreeable deadlines the optimal
// energy can be found by brute force over the single free parameter (the
// speed of the first block).
TEST(EnergyOpt, MatchesBruteForceTwoJobs) {
  const power::PowerModel pm(5.0, 2.0, 1000.0);
  util::Rng rng(1234);
  for (int trial = 0; trial < 100; ++trial) {
    Fixture fx;
    const double w1 = rng.uniform(50.0, 500.0);
    const double w2 = rng.uniform(50.0, 500.0);
    const double d1 = rng.uniform(0.05, 0.3);
    const double d2 = d1 + rng.uniform(0.01, 0.3);
    fx.add(w1, d1);
    fx.add(w2, d2);
    const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), kInf);
    const double plan_energy = plan.total_energy(pm);

    // Brute force: job 1 finishes at time t1 in (w1/huge, d1]; job 1 runs at
    // w1/t1, job 2 at w2/(d2-t1) (running slower than necessary never helps
    // with convex power).
    double best = 1e18;
    for (int i = 1; i <= 20000; ++i) {
      const double t1 = d1 * static_cast<double>(i) / 20000.0;
      const double s1 = w1 / t1;
      const double s2 = w2 / (d2 - t1);
      const double energy = pm.power(s1) * t1 + pm.power(s2) * (d2 - t1);
      best = std::min(best, energy);
    }
    EXPECT_LE(plan_energy, best * 1.001)
        << "w1=" << w1 << " w2=" << w2 << " d1=" << d1 << " d2=" << d2;
  }
}

// Random feasibility property: with an uncapped plan every job completes by
// its deadline, and with any cap the plan never exceeds it.
class EnergyOptRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnergyOptRandom, FeasibleAndCapRespected) {
  util::Rng rng(GetParam());
  Fixture fx;
  const std::size_t n = 1 + rng.uniform_index(10);
  double deadline = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    deadline += rng.uniform(0.01, 0.2);
    fx.add(rng.uniform(10.0, 800.0), deadline);
  }
  const double cap = rng.uniform(500.0, 6000.0);
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), cap);
  plan.validate(0.0);
  double total_remaining = 0.0;
  for (const auto& pj : fx.plan_jobs) {
    total_remaining += pj.remaining;
  }
  for (const PlanSegment& seg : plan.segments) {
    ASSERT_LE(seg.speed, cap * (1.0 + 1e-9));
    ASSERT_LE(seg.end, seg.job->deadline + 1e-9);
  }
  ASSERT_LE(plan.total_units(), total_remaining + 1e-6);
  if (required_speed(0.0, fx.span()) <= cap) {
    ASSERT_NEAR(plan.total_units(), total_remaining, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EnergyOptRandom,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(ExecutionPlan, MaxPowerAndEnergy) {
  const power::PowerModel pm(5.0, 2.0, 1000.0);
  Fixture fx;
  fx.add(200.0, 0.1);
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), kInf);
  EXPECT_NEAR(plan.max_power(pm), 20.0, 1e-9);  // 2 GHz -> 20 W
  EXPECT_NEAR(plan.total_energy(pm), 2.0, 1e-9);  // 20 W for 0.1 s
}

TEST(ExecutionPlan, ValidateRejectsOverlap) {
  workload::Job job;
  job.demand = job.target = 100.0;
  job.deadline = 1.0;
  ExecutionPlan plan;
  plan.segments.push_back(PlanSegment{&job, 0.0, 0.5, 100.0, 50.0});
  plan.segments.push_back(PlanSegment{&job, 0.4, 0.9, 100.0, 50.0});
  EXPECT_DEATH(plan.validate(0.0), "overlap");
}

TEST(ExecutionPlan, ValidateRejectsDeadlineOverrun) {
  workload::Job job;
  job.demand = job.target = 100.0;
  job.deadline = 0.3;
  ExecutionPlan plan;
  plan.segments.push_back(PlanSegment{&job, 0.0, 0.5, 200.0, 100.0});
  EXPECT_DEATH(plan.validate(0.0), "deadline");
}

}  // namespace
}  // namespace ge::opt

// -- additional hardening: 3-job brute force and boundary cases --------------

namespace ge::opt {
namespace {

TEST(EnergyOpt, MatchesBruteForceThreeJobs) {
  const power::PowerModel pm(5.0, 2.0, 1000.0);
  util::Rng rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    Fixture fx;
    const double w1 = rng.uniform(50.0, 400.0);
    const double w2 = rng.uniform(50.0, 400.0);
    const double w3 = rng.uniform(50.0, 400.0);
    const double d1 = rng.uniform(0.05, 0.2);
    const double d2 = d1 + rng.uniform(0.02, 0.2);
    const double d3 = d2 + rng.uniform(0.02, 0.2);
    fx.add(w1, d1);
    fx.add(w2, d2);
    fx.add(w3, d3);
    const double plan_energy = plan_min_energy(0.0, fx.span(), kInf).total_energy(pm);

    // Brute force over the two free finish times t1 in (0, d1], t2 in
    // (t1, d2] on a grid; job 3 then runs at w3/(d3-t2).
    double best = 1e18;
    const int steps = 300;
    for (int i = 1; i <= steps; ++i) {
      const double t1 = d1 * i / steps;
      const double e1 = pm.power(w1 / t1) * t1;
      for (int j = 1; j <= steps; ++j) {
        const double t2 = t1 + (d2 - t1) * j / steps;
        if (t2 >= d3) {
          continue;
        }
        const double e2 = pm.power(w2 / (t2 - t1)) * (t2 - t1);
        const double e3 = pm.power(w3 / (d3 - t2)) * (d3 - t2);
        best = std::min(best, e1 + e2 + e3);
      }
    }
    EXPECT_LE(plan_energy, best * 1.002) << "trial " << trial;
  }
}

TEST(EnergyOpt, CapExactlyAtRequiredSpeedCompletesEverything) {
  Fixture fx;
  fx.add(200.0, 0.1);
  fx.add(100.0, 0.2);
  const double required = required_speed(0.0, fx.span());
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), required);
  EXPECT_NEAR(plan.total_units(), 300.0, 1e-6);
  plan.validate(0.0);
}

TEST(EnergyOpt, EqualDeadlinesMergeIntoOneBlock) {
  Fixture fx;
  fx.add(100.0, 0.2);
  fx.add(300.0, 0.2);
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), kInf);
  ASSERT_EQ(plan.segments.size(), 2u);
  EXPECT_NEAR(plan.segments[0].speed, 2000.0, 1e-9);
  EXPECT_NEAR(plan.segments[1].speed, 2000.0, 1e-9);
  EXPECT_NEAR(plan.segments[1].end, 0.2, 1e-12);
}

TEST(EnergyOpt, TinyRemainingWorkIsStable) {
  Fixture fx;
  fx.add(1e-7, 0.1);
  fx.add(100.0, 0.2);
  const ExecutionPlan plan = plan_min_energy(0.0, fx.span(), kInf);
  plan.validate(0.0);
  EXPECT_NEAR(plan.total_units(), 100.0 + 1e-7, 1e-6);
}

}  // namespace
}  // namespace ge::opt
