// Tests for the full preemptive YDS scheduler and the offline reference.
#include <gtest/gtest.h>

#include <cmath>

#include "exp/config.h"
#include "exp/offline_reference.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "opt/energy_opt.h"
#include "opt/yds.h"
#include "power/power_model.h"
#include "util/rng.h"
#include "workload/job.h"

namespace ge::opt {
namespace {

const power::PowerModel& pm() {
  static const power::PowerModel model(5.0, 2.0, 1000.0);
  return model;
}

TEST(Yds, EmptyInstance) {
  const YdsSchedule s = yds_schedule({});
  EXPECT_TRUE(s.blocks.empty());
  EXPECT_DOUBLE_EQ(s.total_work(), 0.0);
  EXPECT_DOUBLE_EQ(s.energy(pm()), 0.0);
}

TEST(Yds, SingleJobRunsAtItsIntensity) {
  const YdsJob job{0.0, 0.5, 1000.0};
  const YdsSchedule s = yds_schedule({{job}});
  ASSERT_EQ(s.blocks.size(), 1u);
  EXPECT_NEAR(s.blocks[0].speed, 2000.0, 1e-9);
  EXPECT_NEAR(s.blocks[0].duration, 0.5, 1e-12);
  EXPECT_NEAR(s.total_work(), 1000.0, 1e-9);
}

TEST(Yds, ZeroWorkJobsIgnored) {
  const std::vector<YdsJob> jobs{{0.0, 1.0, 0.0}, {0.0, 1.0, 500.0}};
  const YdsSchedule s = yds_schedule(jobs);
  EXPECT_NEAR(s.total_work(), 500.0, 1e-9);
}

TEST(Yds, TextbookTwoJobInstance) {
  // Job A: [0, 1], 100 units; job B: [0, 2], 100 units.
  // Critical interval [0,1] has intensity (A only? both?): jobs contained in
  // [0,1]: A -> 100/1 = 100.  Interval [0,2]: 200/2 = 100.  Equal; the
  // optimum runs at a constant 100 units/s throughout.
  const std::vector<YdsJob> jobs{{0.0, 1.0, 100.0}, {0.0, 2.0, 100.0}};
  const YdsSchedule s = yds_schedule(jobs);
  EXPECT_NEAR(s.total_work(), 200.0, 1e-9);
  EXPECT_NEAR(s.max_speed(), 100.0, 1e-6);
  EXPECT_NEAR(s.energy(pm()), pm().power(100.0) * 2.0, 1e-9);
}

TEST(Yds, LateReleaseForcesFasterBlock) {
  // Job A: [0, 2], 100 units.  Job B: [1.5, 2.0], 200 units -> the interval
  // [1.5, 2] has intensity 400, dominating; A spreads over the rest.
  const std::vector<YdsJob> jobs{{0.0, 2.0, 100.0}, {1.5, 2.0, 200.0}};
  const YdsSchedule s = yds_schedule(jobs);
  ASSERT_EQ(s.blocks.size(), 2u);
  EXPECT_NEAR(s.blocks[0].speed, 400.0, 1e-6);
  EXPECT_NEAR(s.blocks[0].duration, 0.5, 1e-9);
  // A runs over the remaining 1.5 s of timeline at 100/1.5.
  EXPECT_NEAR(s.blocks[1].speed, 100.0 / 1.5, 1e-6);
}

TEST(Yds, BlockSpeedsNonIncreasing) {
  util::Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<YdsJob> jobs;
    const std::size_t n = 2 + rng.uniform_index(15);
    for (std::size_t i = 0; i < n; ++i) {
      const double release = rng.uniform(0.0, 2.0);
      jobs.push_back(YdsJob{release, release + rng.uniform(0.05, 1.0),
                            rng.uniform(10.0, 500.0)});
    }
    const YdsSchedule s = yds_schedule(jobs);
    for (std::size_t i = 1; i < s.blocks.size(); ++i) {
      ASSERT_LE(s.blocks[i].speed, s.blocks[i - 1].speed + 1e-6);
    }
    double work = 0.0;
    for (const YdsJob& job : jobs) {
      work += job.work;
    }
    ASSERT_NEAR(s.total_work(), work, 1e-6);
  }
}

TEST(Yds, MatchesRestrictedPlannerWhenAllReleased) {
  // With every job released at time 0 and agreeable deadlines, the full YDS
  // optimum coincides with the restricted max-prefix-intensity planner.
  util::Rng rng(66);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(10);
    std::vector<workload::Job> jobs(n);
    std::vector<PlanJob> plan_jobs;
    std::vector<YdsJob> yds_jobs;
    double deadline = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      deadline += rng.uniform(0.02, 0.3);
      const double work = rng.uniform(10.0, 600.0);
      jobs[i].id = i + 1;
      jobs[i].deadline = deadline;
      jobs[i].demand = jobs[i].target = work;
      plan_jobs.push_back(PlanJob{&jobs[i], work, deadline});
      yds_jobs.push_back(YdsJob{0.0, deadline, work});
    }
    const ExecutionPlan plan = plan_min_energy(0.0, plan_jobs, 1e12);
    const YdsSchedule yds = yds_schedule(yds_jobs);
    ASSERT_NEAR(plan.total_energy(pm()), yds.energy(pm()),
                1e-6 * (1.0 + yds.energy(pm())))
        << "trial " << trial;
  }
}

TEST(Yds, EnergyNeverAboveConstantSpeedSchedule) {
  // Running everything at the max prefix... simplest competitor: constant
  // speed = total work / horizon whenever that is feasible; YDS must not be
  // worse than any feasible schedule it can be compared with here.
  const std::vector<YdsJob> jobs{{0.0, 1.0, 300.0}, {0.5, 2.0, 300.0}};
  const YdsSchedule s = yds_schedule(jobs);
  // Feasible competitor: 300 units in [0,1] at 300 u/s, 300 in [1,2] at 300.
  const double competitor = pm().power(300.0) * 2.0;
  EXPECT_LE(s.energy(pm()), competitor + 1e-9);
}

TEST(Yds, RejectsEmptyWindow) {
  const std::vector<YdsJob> jobs{{1.0, 1.0, 10.0}};
  EXPECT_DEATH((void)yds_schedule(jobs), "window");
}

}  // namespace
}  // namespace ge::opt

namespace ge::exp {
namespace {

ExperimentConfig gap_config(double rate) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.arrival_rate = rate;
  cfg.duration = 2.0;
  cfg.seed = 17;
  return cfg;
}

TEST(OfflineReference, EmptyTrace) {
  const OfflineReference ref =
      offline_reference(workload::Trace{}, 0.9, gap_config(100.0));
  EXPECT_DOUBLE_EQ(ref.energy, 0.0);
  EXPECT_TRUE(ref.within_budget);
}

TEST(OfflineReference, QualityMatchesTarget) {
  const ExperimentConfig cfg = gap_config(150.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const OfflineReference ref = offline_reference(trace, 0.9, cfg);
  EXPECT_NEAR(ref.quality, 0.9, 1e-5);
  EXPECT_GT(ref.total_work, 0.0);
  EXPECT_GT(ref.energy, 0.0);
}

TEST(OfflineReference, LowerEnergyThanGeAtSameQuality) {
  // The reference relaxes onlineness, partitioning, preemption and the
  // budget, so it must not cost more than GE's actual schedule.
  for (double rate : {100.0, 150.0}) {
    const ExperimentConfig cfg = gap_config(rate);
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    const RunResult ge = run_simulation(cfg, SchedulerSpec::parse("GE"), trace);
    const OfflineReference ref = offline_reference(trace, cfg.q_ge, cfg);
    EXPECT_LE(ref.energy, ge.energy * 1.001) << "rate " << rate;
  }
}

TEST(OfflineReference, FullQualityCostsMoreThanCutQuality) {
  const ExperimentConfig cfg = gap_config(150.0);
  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const OfflineReference cut = offline_reference(trace, 0.9, cfg);
  const OfflineReference full = offline_reference(trace, 1.0, cfg);
  EXPECT_GT(full.energy, cut.energy);
  EXPECT_NEAR(full.quality, 1.0, 1e-9);
}

}  // namespace
}  // namespace ge::exp
