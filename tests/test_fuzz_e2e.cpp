// Seeded end-to-end fuzzing of the full simulation stack.
//
// 200 random small configurations (scheduler, cores, budget, rate, DVFS
// mode, quality family, burstiness) are each run through run_simulation
// under three pairings that the architecture promises are equivalent:
//
//  * telemetry on vs off -- the observability layer is read-only, so
//    attaching a RunTelemetry (with or without trace recording) must not
//    perturb a single bit of the results (docs/OBSERVABILITY.md);
//  * ExperimentEngine --jobs 1 vs --jobs 4 -- parallel execution is
//    indexed by task order and must be byte-identical to serial
//    (docs/DETERMINISM.md);
//
// plus sanity invariants on every result: finite metrics, non-negative
// energy, quality in [0, 1], and outcome counts that add up.  A second
// batch of cases randomizes the cluster layer too (1-8 servers, every
// dispatch policy, occasional heterogeneous fleets) and additionally
// checks that the released total equals the sum of per-server dispatch
// counters.  Seeds are fixed, so any failure reproduces exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/dispatcher.h"
#include "exp/config.h"
#include "exp/experiment_engine.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "obs/telemetry.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace ge::exp {
namespace {

constexpr int kFuzzCases = 200;

const char* const kSchedulers[] = {
    "GE",    "BE",    "OQ",  "FCFS",     "FDFS", "SJF", "LJF",
    "GE-NoComp", "GE-WF", "GE-ES",
    // Speed-scaling zoo: bit-identity across stream/queue/telemetry paths
    // must hold for the registry newcomers too (incl. a parameterized one).
    "OA",    "QOA[1.5]", "AVR", "BKP"};

struct FuzzCase {
  ExperimentConfig cfg;
  SchedulerSpec spec;
};

FuzzCase make_fuzz_case(std::uint64_t seed) {
  util::Rng rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.seed = seed;
  cfg.duration = 0.3 + rng.uniform(0.0, 1.0);
  cfg.cores = 1 + rng.uniform_index(8);
  cfg.power_budget = rng.uniform(20.0, 300.0);
  cfg.arrival_rate = rng.uniform(10.0, 240.0);
  cfg.q_ge = rng.uniform(0.5, 0.99);
  cfg.quantum = rng.uniform(0.05, 0.6);
  cfg.counter_threshold = 1 + static_cast<int>(rng.uniform_index(10));
  cfg.critical_load = rng.uniform(50.0, 250.0);
  cfg.discrete_speeds = rng.uniform_index(3) == 0;
  cfg.monitor_window = rng.uniform_index(4) == 0 ? 200 : 0;
  if (rng.uniform_index(3) == 0) {
    cfg.deadline_interval_max = 0.4;
  }
  if (rng.uniform_index(4) == 0) {
    cfg.burst_peak_to_mean = rng.uniform(1.5, 3.0);
  }
  switch (rng.uniform_index(3)) {
    case 0:
      cfg.quality_family = QualityFamily::kExponential;
      cfg.quality_c = rng.uniform(0.001, 0.008);
      break;
    case 1:
      cfg.quality_family = QualityFamily::kLinear;
      break;
    default:
      cfg.quality_family = QualityFamily::kPowerLaw;
      cfg.quality_c = rng.uniform(0.3, 0.9);  // gamma for the power-law family
      break;
  }
  const char* sched = kSchedulers[rng.uniform_index(std::size(kSchedulers))];
  return FuzzCase{cfg, SchedulerSpec::parse(sched)};
}

// Cluster variant: the same random single-server shape plus a random fleet
// size and dispatch policy (servers == 1 exercises the forced-passthrough
// path).  Occasionally the fleet is heterogeneous in cores and efficiency.
FuzzCase make_cluster_fuzz_case(std::uint64_t seed) {
  FuzzCase fc = make_fuzz_case(seed);
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  const std::size_t server_choices[] = {1, 2, 4, 8};
  fc.cfg.num_servers = server_choices[rng.uniform_index(4)];
  const cluster::DispatchPolicy policies[] = {
      cluster::DispatchPolicy::kRandom, cluster::DispatchPolicy::kRoundRobin,
      cluster::DispatchPolicy::kJsq, cluster::DispatchPolicy::kLeastEnergy};
  fc.cfg.dispatch = policies[rng.uniform_index(4)];
  if (fc.cfg.num_servers > 1 && rng.uniform_index(3) == 0) {
    for (std::size_t s = 0; s < fc.cfg.num_servers; ++s) {
      fc.cfg.server_cores.push_back(1 + rng.uniform_index(4));
      fc.cfg.server_power_scale.push_back(rng.uniform(1.0, 2.0));
    }
  }
  return fc;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_EQ(a.num_servers, b.num_servers);
  EXPECT_EQ(a.dispatch, b.dispatch);
  EXPECT_EQ(a.server_energy_cov, b.server_energy_cov);
  EXPECT_EQ(a.server_load_cov, b.server_load_cov);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.static_energy, b.static_energy);
  EXPECT_EQ(a.avg_power, b.avg_power);
  EXPECT_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.p50_response_ms, b.p50_response_ms);
  EXPECT_EQ(a.p95_response_ms, b.p95_response_ms);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.aes_fraction, b.aes_fraction);
  EXPECT_EQ(a.avg_speed_ghz, b.avg_speed_ghz);
  EXPECT_EQ(a.speed_variance, b.speed_variance);
  EXPECT_EQ(a.released, b.released);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.partial, b.partial);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.wf_rounds, b.wf_rounds);
  EXPECT_EQ(a.es_rounds, b.es_rounds);
  EXPECT_EQ(a.busy_fraction, b.busy_fraction);
  EXPECT_EQ(a.energy_cov, b.energy_cov);
}

void expect_sane(const RunResult& r, const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_TRUE(std::isfinite(r.quality));
  EXPECT_TRUE(std::isfinite(r.energy));
  EXPECT_TRUE(std::isfinite(r.mean_response_ms));
  EXPECT_TRUE(std::isfinite(r.avg_speed_ghz));
  EXPECT_GE(r.energy, 0.0) << "energy can never be negative";
  EXPECT_GE(r.quality, 0.0);
  EXPECT_LE(r.quality, 1.0 + 1e-9);
  EXPECT_GE(r.aes_fraction, 0.0);
  EXPECT_LE(r.aes_fraction, 1.0 + 1e-9);
  EXPECT_GE(r.avg_speed_ghz, 0.0);
  EXPECT_EQ(r.completed + r.partial + r.dropped, r.released)
      << "every released job must be accounted for exactly once";
}

TEST(FuzzEndToEnd, TelemetryOnOffBitIdenticalAcross200Configs) {
  for (std::uint64_t seed = 1; seed <= kFuzzCases; ++seed) {
    const FuzzCase fc = make_fuzz_case(seed);
    const workload::Trace trace =
        workload::Trace::generate(fc.cfg.workload_spec(), fc.cfg.duration);
    const RunResult plain = run_simulation(fc.cfg, fc.spec, trace);

    obs::RunTelemetry telemetry;
    telemetry.want_trace = seed % 2 == 0;  // alternate metrics-only / full
    const RunResult instrumented =
        run_simulation(fc.cfg, fc.spec, trace, nullptr, &telemetry);

    const std::string what = "seed=" + std::to_string(seed) + " sched=" +
                             plain.scheduler + " rate=" +
                             std::to_string(fc.cfg.arrival_rate);
    expect_sane(plain, what);
    expect_identical(plain, instrumented, what);
  }
}

TEST(FuzzEndToEnd, EngineParallelismBitIdenticalAcross200Configs) {
  ExperimentPlan plan;
  for (std::uint64_t seed = 1; seed <= kFuzzCases; ++seed) {
    const FuzzCase fc = make_fuzz_case(seed);
    plan.add_isolated(fc.cfg, fc.spec);
  }
  const std::vector<RunResult> serial =
      run_plan(plan, ExecutionOptions{1, false, {}});
  const std::vector<RunResult> parallel =
      run_plan(plan, ExecutionOptions{4, false, {}});
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(kFuzzCases));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const std::string what =
        "task " + std::to_string(i) + " sched=" + serial[i].scheduler;
    expect_sane(serial[i], what);
    expect_identical(serial[i], parallel[i], what);
  }
}

// Streaming replay (--stream) must be bit-identical to the materialised
// path: same generator stream, same event tie order, same id-ordered
// accounting arithmetic (docs/DESIGN.md, "Streaming core").  Every third
// case also caps the workload with max_jobs, exercising the capped-prefix
// contract on both paths at once.
TEST(FuzzEndToEnd, StreamingReplayBitIdenticalAcross60Configs) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    FuzzCase fc = make_fuzz_case(seed);
    if (seed % 3 == 0) {
      fc.cfg.max_jobs = 1 + 5 * seed;  // bites well before the horizon
    }
    const RunResult materialised = run_simulation(fc.cfg, fc.spec);

    ExperimentConfig streamed_cfg = fc.cfg;
    streamed_cfg.stream = true;
    const RunResult streamed = run_simulation(streamed_cfg, fc.spec);

    const std::string what = "seed=" + std::to_string(seed) + " sched=" +
                             materialised.scheduler + " max_jobs=" +
                             std::to_string(fc.cfg.max_jobs);
    expect_sane(materialised, what);
    expect_identical(materialised, streamed, what);
    if (fc.cfg.max_jobs > 0) {
      SCOPED_TRACE(what);
      EXPECT_LE(streamed.released, fc.cfg.max_jobs);
    }
  }
}

// The calendar queue must replay the exact heap event order end to end, with
// and without streaming (the per-queue differential test in test_sim.cpp
// covers the raw pop order; this pins the full stack).
TEST(FuzzEndToEnd, CalendarQueueBitIdenticalAcross60Configs) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    FuzzCase fc = make_fuzz_case(seed);
    fc.cfg.stream = seed % 2 == 0;  // alternate materialised / streaming
    const RunResult heap = run_simulation(fc.cfg, fc.spec);

    ExperimentConfig cal_cfg = fc.cfg;
    cal_cfg.event_queue = sim::EventQueueKind::kCalendar;
    const RunResult calendar = run_simulation(cal_cfg, fc.spec);

    const std::string what = "seed=" + std::to_string(seed) + " sched=" +
                             heap.scheduler +
                             (fc.cfg.stream ? " stream" : " materialised");
    expect_sane(heap, what);
    expect_identical(heap, calendar, what);
  }
}

constexpr int kClusterFuzzCases = 100;

TEST(FuzzEndToEnd, ClusterTelemetryOnOffBitIdenticalAcross100Configs) {
  for (std::uint64_t seed = 1; seed <= kClusterFuzzCases; ++seed) {
    const FuzzCase fc = make_cluster_fuzz_case(seed);
    const workload::Trace trace =
        workload::Trace::generate(fc.cfg.workload_spec(), fc.cfg.duration);
    const RunResult plain = run_simulation(fc.cfg, fc.spec, trace);

    obs::RunTelemetry telemetry;
    telemetry.want_trace = seed % 2 == 0;  // alternate metrics-only / full
    const RunResult instrumented =
        run_simulation(fc.cfg, fc.spec, trace, nullptr, &telemetry);

    const std::string what = "seed=" + std::to_string(seed) + " sched=" +
                             plain.scheduler + " servers=" +
                             std::to_string(fc.cfg.num_servers) + " dispatch=" +
                             plain.dispatch;
    expect_sane(plain, what);
    expect_identical(plain, instrumented, what);

    // Conservation across the dispatch tier: every released job lands on
    // exactly one server, so the per-server dispatch counters sum to the
    // released total (single-server runs keep the flat metric namespace
    // and skip the per-server counters entirely).
    SCOPED_TRACE(what);
    EXPECT_EQ(instrumented.num_servers, fc.cfg.num_servers);
    if (fc.cfg.num_servers > 1) {
      double dispatched = 0.0;
      for (std::size_t s = 0; s < fc.cfg.num_servers; ++s) {
        const std::string prefix = "s" + std::to_string(s) + ".";
        dispatched +=
            telemetry.metrics.counter(prefix + "dispatched_jobs", "jobs")
                .value();
      }
      EXPECT_EQ(dispatched, static_cast<double>(instrumented.released));
    } else {
      EXPECT_EQ(instrumented.dispatch, "single")
          << "one-node clusters must force the passthrough dispatcher";
    }
  }
}

TEST(FuzzEndToEnd, ClusterEngineParallelismBitIdenticalAcross100Configs) {
  ExperimentPlan plan;
  for (std::uint64_t seed = 1; seed <= kClusterFuzzCases; ++seed) {
    const FuzzCase fc = make_cluster_fuzz_case(seed);
    plan.add_isolated(fc.cfg, fc.spec);
  }
  const std::vector<RunResult> serial =
      run_plan(plan, ExecutionOptions{1, false, {}});
  const std::vector<RunResult> parallel =
      run_plan(plan, ExecutionOptions{4, false, {}});
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(kClusterFuzzCases));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const std::string what = "task " + std::to_string(i) + " sched=" +
                             serial[i].scheduler + " servers=" +
                             std::to_string(serial[i].num_servers);
    expect_sane(serial[i], what);
    expect_identical(serial[i], parallel[i], what);
  }
}

}  // namespace
}  // namespace ge::exp
