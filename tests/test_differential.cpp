// Differential tests: the closed-form optimisers against brute force.
//
// The Energy-OPT planner and the Quality-OPT allocator are the two pieces of
// nontrivial optimisation theory in the scheduler; both have compact
// implementations whose correctness is easy to break silently (a wrong
// prefix bound still produces *a* plan).  On instances small enough to
// enumerate, brute force is an oracle:
//
//  * plan_min_energy: the optimal all-released schedule is a partition of
//    the EDF sequence into consecutive blocks, each run at the constant
//    speed that finishes it exactly at its last job's deadline.  With
//    n <= 7 jobs all 2^(n-1) partitions can be enumerated, infeasible ones
//    discarded, and the cheapest compared against the planner's energy.
//  * maximize_quality: the feasible set is the polymatroid of nested prefix
//    constraints; a fine grid over extra allocations (n <= 4) bounds the
//    optimum from below, and the analytic solution must match or beat every
//    feasible grid point.
//  * the full YDS scheduler is an independent implementation of the same
//    optimisation (critical intervals over arbitrary releases); with all
//    releases at zero its minimal energy must agree with plan_min_energy.
//
// Every sweep uses fixed seeds so failures reproduce exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "opt/energy_opt.h"
#include "opt/plan.h"
#include "opt/quality_opt.h"
#include "opt/yds.h"
#include "power/power_model.h"
#include "quality/quality_function.h"
#include "workload/job.h"

namespace ge::opt {
namespace {

constexpr double kTol = 1e-6;

// Builds an EDF-sorted PlanJob instance over `jobs` storage.
std::vector<PlanJob> make_instance(std::vector<workload::Job>& storage,
                                   const std::vector<double>& work,
                                   const std::vector<double>& deadlines) {
  storage.clear();
  storage.resize(work.size());
  std::vector<PlanJob> plan(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    storage[i].id = i + 1;
    storage[i].deadline = deadlines[i];
    storage[i].demand = work[i];
    storage[i].target = work[i];
    plan[i] = PlanJob{&storage[i], work[i], deadlines[i]};
  }
  std::sort(plan.begin(), plan.end(), [](const PlanJob& a, const PlanJob& b) {
    if (a.deadline != b.deadline) {
      return a.deadline < b.deadline;
    }
    return a.job->id < b.job->id;
  });
  return plan;
}

// Brute-force minimal energy over all consecutive-block partitions of the
// EDF sequence.  A block [i, j] starts when the previous block ends and runs
// at the constant speed finishing exactly at deadline[j]; it is feasible
// when every intermediate job still meets its own deadline at that speed.
double brute_force_min_energy(double now, const std::vector<PlanJob>& jobs,
                              const power::PowerModel& pm) {
  const std::size_t n = jobs.size();
  double best = std::numeric_limits<double>::infinity();
  const std::uint32_t masks = 1u << (n - 1);  // bit k set = block break after k
  for (std::uint32_t mask = 0; mask < masks; ++mask) {
    double t = now;
    double energy = 0.0;
    bool feasible = true;
    std::size_t i = 0;
    while (i < n && feasible) {
      std::size_t j = i;
      while (j + 1 < n && ((mask >> j) & 1u) == 0) {
        ++j;
      }
      double block_work = 0.0;
      for (std::size_t k = i; k <= j; ++k) {
        block_work += jobs[k].remaining;
      }
      const double horizon = jobs[j].deadline - t;
      if (horizon <= 0.0) {
        feasible = false;
        break;
      }
      const double speed = block_work / horizon;
      // Intermediate deadlines within the block at this constant speed.
      double done = 0.0;
      for (std::size_t k = i; k <= j; ++k) {
        done += jobs[k].remaining;
        if (t + done / speed > jobs[k].deadline + kTol) {
          feasible = false;
          break;
        }
      }
      energy += pm.power(speed) * horizon;
      t = jobs[j].deadline;
      i = j + 1;
    }
    if (feasible) {
      best = std::min(best, energy);
    }
  }
  return best;
}

TEST(Differential, EnergyOptMatchesBruteForcePartitions) {
  const power::PowerModel pm(5.0, 2.0, 1000.0);
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> work_dist(50.0, 1200.0);
  std::uniform_real_distribution<double> slack_dist(0.05, 1.5);
  std::uniform_int_distribution<int> n_dist(1, 7);

  int optimal_hits = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const int n = n_dist(rng);
    std::vector<double> work(static_cast<std::size_t>(n));
    std::vector<double> deadlines(static_cast<std::size_t>(n));
    double d = 0.0;
    for (int i = 0; i < n; ++i) {
      work[static_cast<std::size_t>(i)] = work_dist(rng);
      d += slack_dist(rng);
      deadlines[static_cast<std::size_t>(i)] = d;
    }
    std::vector<workload::Job> storage;
    const std::vector<PlanJob> jobs = make_instance(storage, work, deadlines);

    const ExecutionPlan plan =
        plan_min_energy(0.0, jobs, std::numeric_limits<double>::infinity());
    plan.validate(0.0);
    double total_work = 0.0;
    for (const PlanJob& j : jobs) {
      total_work += j.remaining;
    }
    EXPECT_NEAR(plan.total_units(), total_work, kTol * total_work)
        << "plan must complete every job when uncapped";

    const double oracle = brute_force_min_energy(0.0, jobs, pm);
    const double planned = plan.total_energy(pm);
    ASSERT_TRUE(std::isfinite(oracle)) << "instance has a feasible partition";
    // The planner must be optimal: no cheaper feasible partition exists, and
    // the planner's own energy is achieved by some partition.
    EXPECT_LE(planned, oracle * (1.0 + 1e-9)) << "trial " << trial;
    EXPECT_GE(planned, oracle * (1.0 - 1e-9)) << "trial " << trial;
    ++optimal_hits;
  }
  EXPECT_EQ(optimal_hits, 300);
}

TEST(Differential, EnergyOptAgreesWithFullYds) {
  // Independent-implementation cross-check: with every release at plan time
  // the full YDS critical-interval scheduler solves the same instance.
  const power::PowerModel pm(5.0, 2.0, 1000.0);
  std::mt19937_64 rng(32);
  std::uniform_real_distribution<double> work_dist(50.0, 1500.0);
  std::uniform_real_distribution<double> slack_dist(0.05, 2.0);
  std::uniform_int_distribution<int> n_dist(1, 12);

  for (int trial = 0; trial < 200; ++trial) {
    const int n = n_dist(rng);
    std::vector<double> work(static_cast<std::size_t>(n));
    std::vector<double> deadlines(static_cast<std::size_t>(n));
    std::vector<YdsJob> yds(static_cast<std::size_t>(n));
    double d = 0.0;
    for (int i = 0; i < n; ++i) {
      const auto k = static_cast<std::size_t>(i);
      work[k] = work_dist(rng);
      d += slack_dist(rng);
      deadlines[k] = d;
      yds[k] = YdsJob{0.0, d, work[k]};
    }
    std::vector<workload::Job> storage;
    const std::vector<PlanJob> jobs = make_instance(storage, work, deadlines);
    const ExecutionPlan plan =
        plan_min_energy(0.0, jobs, std::numeric_limits<double>::infinity());
    const double planned = plan.total_energy(pm);
    const double reference = yds_min_energy(yds, pm);
    EXPECT_NEAR(planned, reference, 1e-9 * std::max(planned, 1.0))
        << "trial " << trial << " n=" << n;
  }
}

// Feasibility of an extra-allocation vector under the nested prefix
// constraints sum_{j<=k} x_j <= cap * (d_k - now).
bool allocation_feasible(double now, const std::vector<AllocJob>& jobs,
                         const std::vector<double>& extra, double cap) {
  double prefix = 0.0;
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    if (extra[k] < -kTol || extra[k] > jobs[k].max_extra + kTol) {
      return false;
    }
    prefix += extra[k];
    if (prefix > cap * (jobs[k].deadline - now) + kTol) {
      return false;
    }
  }
  return true;
}

TEST(Differential, QualityOptBeatsEveryGridAllocation) {
  const quality::ExponentialQuality f(0.003, 1000.0);
  std::mt19937_64 rng(33);
  std::uniform_real_distribution<double> extra_dist(50.0, 900.0);
  std::uniform_real_distribution<double> exec_dist(0.0, 300.0);
  std::uniform_real_distribution<double> slack_dist(0.1, 0.8);
  std::uniform_real_distribution<double> cap_dist(200.0, 1500.0);
  std::uniform_int_distribution<int> n_dist(1, 4);

  for (int trial = 0; trial < 120; ++trial) {
    const int n = n_dist(rng);
    std::vector<AllocJob> jobs(static_cast<std::size_t>(n));
    double d = 0.0;
    for (auto& j : jobs) {
      d += slack_dist(rng);
      j = AllocJob{exec_dist(rng), extra_dist(rng), d};
    }
    const double cap = cap_dist(rng);

    const std::vector<double> extra = maximize_quality(0.0, jobs, cap, f);
    ASSERT_EQ(extra.size(), jobs.size());
    EXPECT_TRUE(allocation_feasible(0.0, jobs, extra, cap)) << "trial " << trial;
    const double analytic = allocation_quality(jobs, extra, f);

    // Exhaustive grid over x_j in [0, max_extra], 12 steps per axis
    // (12^4 = 20736 points max).  Every feasible grid point must not beat
    // the analytic optimum.
    constexpr int kSteps = 12;
    std::vector<int> idx(static_cast<std::size_t>(n), 0);
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    double grid_best = -1.0;
    bool done = false;
    while (!done) {
      for (int i = 0; i < n; ++i) {
        const auto k = static_cast<std::size_t>(i);
        x[k] = jobs[k].max_extra * idx[k] / kSteps;
      }
      if (allocation_feasible(0.0, jobs, x, cap)) {
        grid_best = std::max(grid_best, allocation_quality(jobs, x, f));
      }
      int i = 0;
      while (i < n && ++idx[static_cast<std::size_t>(i)] > kSteps) {
        idx[static_cast<std::size_t>(i)] = 0;
        ++i;
      }
      done = i == n;
    }
    EXPECT_GE(analytic, grid_best - 1e-9) << "trial " << trial << " n=" << n;
  }
}

TEST(Differential, QualityOptUncappedTakesEverything) {
  // With capacity far above the total extra work the allocator must saturate
  // every job (f is strictly increasing below xmax).
  const quality::ExponentialQuality f(0.003, 1000.0);
  std::vector<AllocJob> jobs = {
      AllocJob{100.0, 400.0, 1.0},
      AllocJob{0.0, 700.0, 2.0},
      AllocJob{250.0, 300.0, 3.0},
  };
  const std::vector<double> extra = maximize_quality(0.0, jobs, 1e7, f);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NEAR(extra[i], jobs[i].max_extra, 1e-6) << "job " << i;
  }
}

TEST(Differential, QualityOptZeroCapAllocatesNothing) {
  const quality::ExponentialQuality f(0.003, 1000.0);
  std::vector<AllocJob> jobs = {AllocJob{0.0, 500.0, 1.0}};
  for (double cap : {0.0, -5.0}) {
    const std::vector<double> extra = maximize_quality(0.0, jobs, cap, f);
    ASSERT_EQ(extra.size(), 1u);
    EXPECT_EQ(extra[0], 0.0);
  }
}

}  // namespace
}  // namespace ge::opt
