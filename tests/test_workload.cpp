// Unit and statistical tests for the workload model.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/rng.h"
#include "workload/distributions.h"
#include "workload/generator.h"
#include "workload/job.h"
#include "workload/trace.h"

namespace ge::workload {
namespace {

WorkloadSpec paper_spec(double rate = 150.0, std::uint64_t seed = 1) {
  WorkloadSpec spec;
  spec.arrival_rate = rate;
  spec.seed = seed;
  return spec;
}

TEST(BoundedPareto, SamplesWithinBounds) {
  BoundedParetoDistribution dist(3.0, 130.0, 1000.0);
  util::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 130.0);
    ASSERT_LE(x, 1000.0);
  }
}

TEST(BoundedPareto, PaperMeanIs192) {
  // Sec. IV-B: alpha=3, xmin=130, xmax=1000 gives mean demand ~192 units.
  BoundedParetoDistribution dist(3.0, 130.0, 1000.0);
  EXPECT_NEAR(dist.mean(), 192.1, 0.5);
}

TEST(BoundedPareto, EmpiricalMeanMatchesClosedForm) {
  BoundedParetoDistribution dist(3.0, 130.0, 1000.0);
  util::Rng rng(2);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    sum += dist.sample(rng);
  }
  EXPECT_NEAR(sum / n, dist.mean(), 1.0);
}

class BoundedParetoSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(BoundedParetoSweep, EmpiricalMeanMatchesClosedForm) {
  const auto [alpha, xmin, xmax] = GetParam();
  BoundedParetoDistribution dist(alpha, xmin, xmax);
  util::Rng rng(3);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += dist.sample(rng);
  }
  EXPECT_NEAR(sum / n, dist.mean(), dist.mean() * 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, BoundedParetoSweep,
    ::testing::Values(std::make_tuple(1.5, 50.0, 500.0),
                      std::make_tuple(2.0, 100.0, 2000.0),
                      std::make_tuple(3.0, 130.0, 1000.0),
                      std::make_tuple(1.0, 10.0, 100.0)));

TEST(BoundedPareto, SkewedTowardsSmallValues) {
  BoundedParetoDistribution dist(3.0, 130.0, 1000.0);
  util::Rng rng(4);
  int below_mean = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (dist.sample(rng) < dist.mean()) {
      ++below_mean;
    }
  }
  EXPECT_GT(below_mean, n / 2);  // heavy tail => median < mean
}

TEST(PoissonProcess, InterarrivalMeanMatchesRate) {
  PoissonProcess proc(200.0, util::Rng(5));
  double prev = 0.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double t = proc.next();
    ASSERT_GT(t, prev);
    sum += t - prev;
    prev = t;
  }
  EXPECT_NEAR(sum / n, 1.0 / 200.0, 2e-4);
}

TEST(Generator, ArrivalsAreIncreasingAndJobsValid) {
  WorkloadGenerator gen(paper_spec());
  double prev = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Job job = gen.next();
    ASSERT_GT(job.arrival, prev);
    ASSERT_TRUE(job_invariants_hold(job));
    ASSERT_NEAR(job.deadline - job.arrival, 0.150, 1e-12);
    ASSERT_GE(job.demand, 130.0);
    ASSERT_LE(job.demand, 1000.0);
    prev = job.arrival;
  }
}

TEST(Generator, SeedDeterminism) {
  WorkloadGenerator a(paper_spec(150.0, 7));
  WorkloadGenerator b(paper_spec(150.0, 7));
  for (int i = 0; i < 1000; ++i) {
    const Job ja = a.next();
    const Job jb = b.next();
    EXPECT_DOUBLE_EQ(ja.arrival, jb.arrival);
    EXPECT_DOUBLE_EQ(ja.demand, jb.demand);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  WorkloadGenerator a(paper_spec(150.0, 1));
  WorkloadGenerator b(paper_spec(150.0, 2));
  EXPECT_NE(a.next().arrival, b.next().arrival);
}

TEST(Generator, RandomDeadlineWindows) {
  WorkloadSpec spec = paper_spec();
  spec.deadline_interval = 0.150;
  spec.deadline_interval_max = 0.500;
  WorkloadGenerator gen(spec);
  double min_window = 1.0;
  double max_window = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Job job = gen.next();
    const double window = job.window();
    ASSERT_GE(window, 0.150 - 1e-12);
    ASSERT_LE(window, 0.500 + 1e-12);
    min_window = std::min(min_window, window);
    max_window = std::max(max_window, window);
  }
  EXPECT_LT(min_window, 0.2);  // both ends of the range are exercised
  EXPECT_GT(max_window, 0.45);
}

TEST(Generator, GenerateUntilHorizon) {
  WorkloadGenerator gen(paper_spec(100.0));
  const auto jobs = gen.generate_until(10.0);
  ASSERT_FALSE(jobs.empty());
  EXPECT_LT(jobs.back().arrival, 10.0);
  // ~100 req/s for 10 s -> about 1000 jobs.
  EXPECT_NEAR(static_cast<double>(jobs.size()), 1000.0, 150.0);
}

TEST(Generator, OfferedLoadMatchesRateTimesMean) {
  WorkloadGenerator gen(paper_spec(154.0));
  EXPECT_NEAR(gen.offered_load(), 154.0 * gen.demand_distribution().mean(), 1e-6);
}

TEST(Job, RemainingAccessors) {
  Job job;
  job.demand = 100.0;
  job.target = 80.0;
  job.executed = 30.0;
  EXPECT_DOUBLE_EQ(job.remaining_target(), 50.0);
  EXPECT_DOUBLE_EQ(job.remaining_demand(), 70.0);
  job.executed = 90.0;
  EXPECT_DOUBLE_EQ(job.remaining_target(), 0.0);
}

TEST(Job, InvariantViolationsDetected) {
  Job job;
  job.demand = 100.0;
  job.target = 100.0;
  job.deadline = 1.0;
  EXPECT_TRUE(job_invariants_hold(job));
  job.target = 150.0;  // target above demand
  EXPECT_FALSE(job_invariants_hold(job));
  job.target = 100.0;
  job.deadline = -1.0;  // deadline before arrival
  EXPECT_FALSE(job_invariants_hold(job));
}

TEST(Trace, GenerateIsDeterministic) {
  const Trace a = Trace::generate(paper_spec(150.0, 11), 5.0);
  const Trace b = Trace::generate(paper_spec(150.0, 11), 5.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs()[i].arrival, b.jobs()[i].arrival);
    EXPECT_DOUBLE_EQ(a.jobs()[i].demand, b.jobs()[i].demand);
  }
}

TEST(Trace, CsvRoundTripInMemory) {
  const Trace original = Trace::generate(paper_spec(), 2.0);
  const Trace restored = Trace::from_csv(original.to_csv());
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored.jobs()[i].id, original.jobs()[i].id);
    EXPECT_NEAR(restored.jobs()[i].arrival, original.jobs()[i].arrival, 1e-8);
    EXPECT_NEAR(restored.jobs()[i].deadline, original.jobs()[i].deadline, 1e-8);
    EXPECT_NEAR(restored.jobs()[i].demand, original.jobs()[i].demand, 1e-8);
  }
}

TEST(Trace, CsvRoundTripOnDisk) {
  const Trace original = Trace::generate(paper_spec(), 1.0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ge_trace_test.csv").string();
  original.save_csv(path);
  const Trace restored = Trace::load_csv(path);
  EXPECT_EQ(restored.size(), original.size());
  std::remove(path.c_str());
}

TEST(Trace, TotalDemandAndHorizon) {
  std::vector<Job> jobs(2);
  jobs[0] = Job{1, 0.5, 0.65, 100.0, 100.0, 0.0, kUnassigned, false};
  jobs[1] = Job{2, 1.5, 1.65, 200.0, 200.0, 0.0, kUnassigned, false};
  const Trace trace(jobs);
  EXPECT_DOUBLE_EQ(trace.total_demand(), 300.0);
  EXPECT_DOUBLE_EQ(trace.horizon(), 1.5);
}

TEST(Trace, RejectsMalformedCsv) {
  EXPECT_DEATH((void)Trace::from_csv("bogus header\n1,2,3,4\n"), "header");
}

TEST(Trace, RejectsUnsortedJobs) {
  std::vector<Job> jobs(2);
  jobs[0] = Job{1, 2.0, 2.15, 100.0, 100.0, 0.0, kUnassigned, false};
  jobs[1] = Job{2, 1.0, 1.15, 100.0, 100.0, 0.0, kUnassigned, false};
  EXPECT_DEATH(Trace{jobs}, "sorted");
}

}  // namespace
}  // namespace ge::workload

// -- bursty (on-off modulated) arrivals -------------------------------------

#include "util/stats.h"

namespace ge::workload {
namespace {

TEST(OnOffPoisson, MeanRatePreserved) {
  OnOffPoissonProcess proc(150.0, 3.0, 0.2, 1.0, util::Rng(21));
  double t = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    t = proc.next();
  }
  EXPECT_NEAR(n / t, 150.0, 5.0);
}

TEST(OnOffPoisson, RatesDerivedFromParameters) {
  OnOffPoissonProcess proc(100.0, 2.0, 0.25, 1.0, util::Rng(22));
  EXPECT_NEAR(proc.burst_rate(), 200.0, 1e-9);
  // calm = 100 * (1 - 0.25*2) / 0.75 = 66.67.
  EXPECT_NEAR(proc.calm_rate(), 100.0 * 0.5 / 0.75, 1e-9);
}

TEST(OnOffPoisson, ArrivalsStrictlyIncreasing) {
  OnOffPoissonProcess proc(200.0, 4.0, 0.1, 0.5, util::Rng(23));
  double prev = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double t = proc.next();
    ASSERT_GT(t, prev);
    prev = t;
  }
}

TEST(OnOffPoisson, BurstierThanPoisson) {
  // Count arrivals in 100 ms windows; the on-off process must have a
  // higher window-count variance than a Poisson process of the same mean.
  auto window_variance = [](auto&& next_arrival, double horizon) {
    std::vector<int> counts(static_cast<std::size_t>(horizon / 0.1), 0);
    for (;;) {
      const double t = next_arrival();
      if (t >= horizon) {
        break;
      }
      counts[static_cast<std::size_t>(t / 0.1)]++;
    }
    util::RunningStats stats;
    for (int c : counts) {
      stats.add(c);
    }
    return stats.variance();
  };
  PoissonProcess plain(150.0, util::Rng(24));
  OnOffPoissonProcess bursty(150.0, 3.0, 0.2, 1.0, util::Rng(24));
  const double var_plain = window_variance([&] { return plain.next(); }, 200.0);
  const double var_bursty = window_variance([&] { return bursty.next(); }, 200.0);
  EXPECT_GT(var_bursty, var_plain * 1.5);
}

TEST(OnOffPoisson, InvalidParametersDie) {
  EXPECT_DEATH({ OnOffPoissonProcess p(100.0, 0.5, 0.2, 1.0, util::Rng(1)); }, ">= 1");
  EXPECT_DEATH({ OnOffPoissonProcess p(100.0, 6.0, 0.2, 1.0, util::Rng(1)); }, "calm");
}

TEST(Generator, BurstySpecProducesValidJobs) {
  WorkloadSpec spec;
  spec.arrival_rate = 150.0;
  spec.burst_peak_to_mean = 2.5;
  spec.seed = 31;
  WorkloadGenerator gen(spec);
  double prev = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const Job job = gen.next();
    ASSERT_GT(job.arrival, prev);
    ASSERT_TRUE(job_invariants_hold(job));
    prev = job.arrival;
  }
}

TEST(Generator, BurstyDeterministicPerSeed) {
  WorkloadSpec spec;
  spec.arrival_rate = 150.0;
  spec.burst_peak_to_mean = 2.5;
  spec.seed = 33;
  WorkloadGenerator a(spec);
  WorkloadGenerator b(spec);
  for (int i = 0; i < 500; ++i) {
    EXPECT_DOUBLE_EQ(a.next().arrival, b.next().arrival);
  }
}

}  // namespace
}  // namespace ge::workload
