// Unit tests for the scheduler building blocks: load estimation, C-RR
// assignment, and discrete-plan rectification.
#include <gtest/gtest.h>

#include "core/assignment.h"
#include "core/load_estimator.h"
#include "core/plan_rectifier.h"
#include "power/power_model.h"
#include "workload/job.h"

namespace ge::sched {
namespace {

TEST(LoadEstimator, SteadyRate) {
  LoadEstimator est(2.0);
  for (int i = 0; i < 1000; ++i) {
    est.record_arrival(static_cast<double>(i) * 0.01);  // 100 req/s
  }
  EXPECT_NEAR(est.rate(10.0), 100.0, 5.0);
}

TEST(LoadEstimator, EarlyRunUsesElapsedWindow) {
  LoadEstimator est(2.0);
  for (int i = 0; i < 50; ++i) {
    est.record_arrival(static_cast<double>(i) * 0.01);  // 100 req/s for 0.5 s
  }
  // Only 0.5 s elapsed; a naive 2 s window would report ~25 req/s.
  EXPECT_NEAR(est.rate(0.5), 100.0, 10.0);
}

TEST(LoadEstimator, OldArrivalsExpire) {
  LoadEstimator est(1.0);
  for (int i = 0; i < 100; ++i) {
    est.record_arrival(static_cast<double>(i) * 0.01);  // burst in [0, 1)
  }
  EXPECT_NEAR(est.rate(10.0), 0.0, 1e-9);
}

TEST(LoadEstimator, TinyWindowIsSafe) {
  // Windows below the 50 ms floor must not trip UB in the early-run clamp.
  LoadEstimator est(0.01);
  est.record_arrival(0.001);
  est.record_arrival(0.002);
  EXPECT_GT(est.rate(0.005), 0.0);
  EXPECT_NEAR(est.rate(10.0), 0.0, 1e-9);  // both arrivals expired
}

TEST(LoadEstimator, RateTracksChanges) {
  LoadEstimator est(1.0);
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {  // 100 req/s
    est.record_arrival(t += 0.01);
  }
  for (int i = 0; i < 400; ++i) {  // then 200 req/s
    est.record_arrival(t += 0.005);
  }
  EXPECT_NEAR(est.rate(t), 200.0, 10.0);
}

TEST(LoadEstimator, EmptyWindowReportsZero) {
  LoadEstimator est(2.0);
  EXPECT_DOUBLE_EQ(est.rate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(est.rate(10.0), 0.0);
  // Arrivals that have aged out of the window leave an empty estimator too.
  est.record_arrival(0.5);
  EXPECT_DOUBLE_EQ(est.rate(100.0), 0.0);
}

TEST(LoadEstimator, FiftyMillisecondFloorBoundsEarlyRates) {
  // The very first arrival must not read as a 1/epsilon rate spike: the
  // effective window never shrinks below 50 ms.
  LoadEstimator est(2.0);
  est.record_arrival(0.001);
  EXPECT_DOUBLE_EQ(est.rate(0.001), 1.0 / 0.05);
  EXPECT_DOUBLE_EQ(est.rate(0.0), 1.0 / 0.05);
  // Past the floor the elapsed time takes over ...
  est.record_arrival(0.1);
  EXPECT_DOUBLE_EQ(est.rate(0.1), 2.0 / 0.1);
  // ... and past the window the window takes over.
  EXPECT_DOUBLE_EQ(est.rate(2.0), 2.0 / 2.0);
}

TEST(LoadEstimator, NonPositiveWindowRefused) {
  EXPECT_DEATH(LoadEstimator(0.0), "window");
  EXPECT_DEATH(LoadEstimator(-1.0), "window");
}

TEST(LoadEstimator, OutOfOrderArrivalRefused) {
  LoadEstimator est(1.0);
  est.record_arrival(1.0);
  EXPECT_DEATH(est.record_arrival(0.5), "order");
}

TEST(CumulativeRoundRobin, CyclesThroughCores) {
  CumulativeRoundRobin rr(3);
  EXPECT_EQ(rr.next(), 0u);
  EXPECT_EQ(rr.next(), 1u);
  EXPECT_EQ(rr.next(), 2u);
  EXPECT_EQ(rr.next(), 0u);
}

TEST(CumulativeRoundRobin, ContinuesAcrossBatches) {
  CumulativeRoundRobin rr(4);
  rr.begin_batch();
  rr.next();  // 0
  rr.next();  // 1
  rr.begin_batch();
  EXPECT_EQ(rr.next(), 2u);  // cumulative: picks up where it stopped
}

TEST(CumulativeRoundRobin, PlainRrRestartsEachBatch) {
  CumulativeRoundRobin rr(4, /*cumulative=*/false);
  rr.begin_batch();
  rr.next();
  rr.next();
  rr.begin_batch();
  EXPECT_EQ(rr.next(), 0u);  // plain RR restarts
}

TEST(CumulativeRoundRobin, BalancedOverManyBatches) {
  CumulativeRoundRobin rr(4);
  std::array<int, 4> counts{};
  // Ragged batches of 3 against 4 cores: C-RR stays balanced.
  for (int batch = 0; batch < 100; ++batch) {
    rr.begin_batch();
    for (int j = 0; j < 3; ++j) {
      counts[rr.next()]++;
    }
  }
  for (int c : counts) {
    EXPECT_EQ(c, 75);
  }
}

struct RectifierFixture {
  power::DiscreteSpeedTable table = power::DiscreteSpeedTable::uniform_ghz(0.2, 3.2);
  workload::Job job;

  RectifierFixture() {
    job.id = 1;
    job.demand = job.target = 1000.0;
    job.deadline = 10.0;
  }

  opt::ExecutionPlan make_plan(double speed, double units, double start = 0.0) {
    opt::ExecutionPlan plan;
    plan.segments.push_back(
        opt::PlanSegment{&job, start, start + units / speed, speed, units});
    return plan;
  }
};

TEST(PlanRectifier, RoundsUpWithinLimit) {
  RectifierFixture fx;
  const auto plan = fx.make_plan(1300.0, 130.0);
  const auto out = rectify_plan(plan, fx.table, 2000.0);
  ASSERT_EQ(out.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(out.segments[0].speed, 1400.0);
  EXPECT_NEAR(out.segments[0].units, 130.0, 1e-9);  // same work, done sooner
  EXPECT_LT(out.segments[0].end, plan.segments[0].end);
}

TEST(PlanRectifier, RoundsDownWhenCeilExceedsLimit) {
  RectifierFixture fx;
  const auto plan = fx.make_plan(1900.0, 190.0);
  const auto out = rectify_plan(plan, fx.table, 1950.0);  // 2000 not allowed
  ASSERT_EQ(out.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(out.segments[0].speed, 1800.0);
}

TEST(PlanRectifier, ExactLevelUnchanged) {
  RectifierFixture fx;
  const auto plan = fx.make_plan(1400.0, 140.0);
  const auto out = rectify_plan(plan, fx.table, 2000.0);
  ASSERT_EQ(out.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(out.segments[0].speed, 1400.0);
  EXPECT_NEAR(out.segments[0].end, plan.segments[0].end, 1e-9);
}

TEST(PlanRectifier, RoundingDownClipsAtDeadline) {
  RectifierFixture fx;
  fx.job.deadline = 0.1;
  // Needs 1900 u/s for the full 190 units; forced down to 1800 -> loses work.
  const auto plan = fx.make_plan(1900.0, 190.0);
  const auto out = rectify_plan(plan, fx.table, 1850.0);
  ASSERT_EQ(out.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(out.segments[0].speed, 1800.0);
  EXPECT_NEAR(out.segments[0].end, 0.1, 1e-12);
  EXPECT_NEAR(out.segments[0].units, 180.0, 1e-9);  // 10 units lost
}

TEST(PlanRectifier, DropsWorkBelowLowestLevel) {
  RectifierFixture fx;
  const auto plan = fx.make_plan(100.0, 10.0);  // below the 200 u/s floor
  const auto out = rectify_plan(plan, fx.table, 150.0);  // ceil(100)=200 > 150
  EXPECT_TRUE(out.segments.empty());
}

TEST(PlanRectifier, RepacksMultiSegmentTimeline) {
  RectifierFixture fx;
  workload::Job job2;
  job2.id = 2;
  job2.demand = job2.target = 1000.0;
  job2.deadline = 10.0;
  opt::ExecutionPlan plan;
  plan.segments.push_back(opt::PlanSegment{&fx.job, 0.0, 0.1, 1300.0, 130.0});
  plan.segments.push_back(opt::PlanSegment{&job2, 0.1, 0.2, 1300.0, 130.0});
  const auto out = rectify_plan(plan, fx.table, 2000.0);
  ASSERT_EQ(out.segments.size(), 2u);
  // Sped-up first segment pulls the second one earlier: no gaps.
  EXPECT_NEAR(out.segments[0].end, out.segments[1].start, 1e-12);
  EXPECT_DOUBLE_EQ(out.segments[1].speed, 1400.0);
  out.validate(0.0);
}

TEST(PlanRectifier, EmptyPlanPassesThrough) {
  RectifierFixture fx;
  EXPECT_TRUE(rectify_plan(opt::ExecutionPlan{}, fx.table, 2000.0).empty());
}

TEST(PlanRectifier, AllSpeedsOnLadder) {
  RectifierFixture fx;
  workload::Job job2;
  job2.id = 2;
  job2.demand = job2.target = 500.0;
  job2.deadline = 5.0;
  opt::ExecutionPlan plan;
  plan.segments.push_back(opt::PlanSegment{&fx.job, 0.0, 0.3, 777.0, 233.1});
  plan.segments.push_back(opt::PlanSegment{&job2, 0.3, 0.5, 1111.0, 222.2});
  const auto out = rectify_plan(plan, fx.table, 3200.0);
  for (const auto& seg : out.segments) {
    EXPECT_TRUE(fx.table.is_level(seg.speed)) << seg.speed;
  }
}

}  // namespace
}  // namespace ge::sched
