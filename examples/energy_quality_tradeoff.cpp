// Domain scenario: negotiating the quality promise.  Sweeps the promised
// Q_GE and shows the energy each promise costs, with an ASCII frontier --
// the business-facing view of "good enough computing": every percent of
// quality you do not need is energy you do not pay for.
//
//   ./energy_quality_tradeoff [--rate 150] [--seconds 20]
#include <cstdio>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.arrival_rate = flags.get_double("rate", 150.0);
  cfg.duration = flags.get_double("seconds", 20.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 9));

  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  const exp::RunResult be =
      exp::run_simulation(cfg, exp::SchedulerSpec::parse("BE"), trace);

  std::printf("Energy-quality frontier at %.0f req/s (best effort: quality %.4f, "
              "%.1f J)\n\n",
              cfg.arrival_rate, be.quality, be.energy);
  std::printf("%6s %9s %10s %9s   %s\n", "Q_GE", "quality", "energy_J", "saving",
              "energy bar");
  for (double target : {0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.99}) {
    cfg.q_ge = target;
    const exp::RunResult r =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
    const double saving = 1.0 - r.energy / be.energy;
    const int bar = static_cast<int>(40.0 * r.energy / be.energy + 0.5);
    std::printf("%6.2f %9.4f %10.1f %8.1f%%   %s\n", target, r.quality, r.energy,
                saving * 100.0, std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  std::printf("\n(bar = GE energy relative to best effort; the concave quality "
              "function\nmakes the first relaxation percents the cheapest)\n");
  return 0;
}
