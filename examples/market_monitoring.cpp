// Domain scenario: financial market monitoring (one of the paper's
// motivating "good enough" services).  Risk dashboards re-aggregate
// positions on every tick batch; answers are useful only within a freshness
// window, partial aggregation is acceptable, and tick traffic is *bursty*
// around market events.  This example models that regime -- bursty on-off
// arrivals, heterogeneous freshness windows, a sharply concave quality
// function -- and compares GE against best effort through a calm -> volatile
// day.
//
//   ./market_monitoring [--seconds 20] [--qge 0.92]
#include <cstdio>
#include <iostream>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.duration = flags.get_double("seconds", 20.0);
  cfg.q_ge = flags.get_double("qge", 0.92);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));
  // Monitoring traits: freshness windows between 150 and 400 ms, strongly
  // diminishing returns (the largest positions dominate the risk number),
  // bursty tick traffic.
  cfg.deadline_interval = 0.150;
  cfg.deadline_interval_max = 0.400;
  cfg.quality_c = 0.006;
  cfg.burst_fraction = 0.15;
  cfg.burst_dwell = 0.5;

  struct Phase {
    const char* name;
    double rate;
    double peak_to_mean;
  };
  const Phase phases[] = {{"calm session", 110.0, 1.0},
                          {"news spike", 140.0, 2.5},
                          {"volatile close", 170.0, 4.0}};

  std::printf("Market-monitoring service: Q_GE = %.2f, freshness 150-400 ms, "
              "c = %.3f\n\n",
              cfg.q_ge, cfg.quality_c);
  for (const Phase& phase : phases) {
    cfg.arrival_rate = phase.rate;
    cfg.burst_peak_to_mean = phase.peak_to_mean;
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    const exp::RunResult ge =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"), trace);
    const exp::RunResult be =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse("BE"), trace);

    util::Table table({"scheduler", "quality", "energy_J", "avg_W", "p99_ms",
                       "dropped"});
    for (const exp::RunResult* r : {&ge, &be}) {
      table.begin_row();
      table.add(r->scheduler);
      table.add(r->quality, 4);
      table.add(r->energy, 1);
      table.add(r->avg_power, 1);
      table.add(r->p99_response_ms, 1);
      table.add(r->dropped);
    }
    std::printf("-- %s: %.0f updates/s mean, %.1fx burst peak --\n", phase.name,
                phase.rate, phase.peak_to_mean);
    table.print(std::cout);
    std::printf("GE meets the freshness-quality promise %s and saves %.1f%% "
                "energy\n\n",
                ge.quality >= cfg.q_ge - 0.01 ? "(yes)" : "(degraded burst)",
                100.0 * (1.0 - ge.energy / be.energy));
  }
  std::printf("Compensation note: during bursts GE switches to Best-Quality "
              "mode and\nthe energy gap narrows -- the promise costs watts "
              "exactly when it binds.\n");
  return 0;
}
