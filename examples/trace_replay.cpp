// Trace record / replay: materialise a workload trace, save it to CSV,
// reload it, and verify that replaying it gives bit-identical results --
// the mechanism the benchmark harness uses for paired scheduler comparisons.
//
//   ./trace_replay [--rate 150] [--seconds 10] [--file /tmp/ge_trace.csv]
#include <cstdio>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.arrival_rate = flags.get_double("rate", 150.0);
  cfg.duration = flags.get_double("seconds", 10.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const std::string path = flags.get_string("file", "/tmp/ge_trace.csv");

  // Record.
  const workload::Trace original =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  original.save_csv(path);
  std::printf("recorded %zu requests (%.0f units total) to %s\n", original.size(),
              original.total_demand(), path.c_str());

  // Replay from disk.
  const workload::Trace replayed = workload::Trace::load_csv(path);
  std::printf("reloaded %zu requests from disk\n\n", replayed.size());

  const exp::SchedulerSpec spec = exp::SchedulerSpec::parse("GE");
  const exp::RunResult a = exp::run_simulation(cfg, spec, original);
  const exp::RunResult b = exp::run_simulation(cfg, spec, replayed);

  std::printf("%-22s %14s %14s\n", "", "in-memory", "replayed");
  std::printf("%-22s %14.6f %14.6f\n", "quality", a.quality, b.quality);
  std::printf("%-22s %14.3f %14.3f\n", "energy (J)", a.energy, b.energy);
  std::printf("%-22s %14llu %14llu\n", "completed",
              static_cast<unsigned long long>(a.completed),
              static_cast<unsigned long long>(b.completed));
  std::printf("%-22s %14llu %14llu\n", "dropped",
              static_cast<unsigned long long>(a.dropped),
              static_cast<unsigned long long>(b.dropped));

  const bool identical = a.quality == b.quality && a.completed == b.completed &&
                         std::abs(a.energy - b.energy) < 1e-6;
  std::printf("\nreplay %s the original run (CSV stores round-trip-exact doubles).\n",
              identical ? "reproduces" : "DIVERGES FROM");
  return identical ? 0 : 1;
}
