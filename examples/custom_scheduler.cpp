// Tutorial: add your own scheduler in ONE file -- no core/ or exp/ edits.
//
// This example implements Least-Laxity-First (LLF), registers it with the
// scheduler plugin registry from this translation unit's static init, and
// then drives it through the stock simulator by name, exactly as if it were
// a built-in ("--scheduler LLF" works because parse() is a registry
// lookup).  The three pieces every scheduler needs:
//
//   1. a sched::Scheduler subclass (the policy itself);
//   2. a SchedulerPlugin describing its CLI contract;
//   3. GE_REGISTER_SCHEDULER(...) to hand 2 to the registry.
//
// docs/SCHEDULERS.md walks through this file section by section.
//
//   ./custom_scheduler [--rate 150] [--seconds 10] [--seed 1]
#include <cstdio>
#include <memory>
#include <vector>

#include "core/scheduler.h"
#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_registry.h"
#include "exp/scheduler_spec.h"
#include "opt/plan.h"
#include "server/multicore_server.h"
#include "util/check.h"
#include "util/flags.h"

namespace {

// ---------------------------------------------------------------------------
// 1. The policy.  LLF queues arrivals and, whenever a core is free, runs the
// job with the least laxity: slack = (deadline - now) - remaining/cap_speed,
// i.e. how long the job can still wait if we then run it flat out under the
// Equal-Sharing power cap.  Each dispatched job runs alone at the slowest
// deadline-meeting speed (the FCFS/FDFS family's semantics: cap-clipped
// jobs run to their deadline and settle partial).
// ---------------------------------------------------------------------------
class LeastLaxityScheduler : public ge::sched::Scheduler {
 public:
  explicit LeastLaxityScheduler(ge::sched::SchedulerEnv env)
      : Scheduler(env, "LLF"),
        core_cap_watts_(env.server->power_budget() /
                        static_cast<double>(env.server->core_count())) {}

  void on_job_arrival(ge::workload::Job* job) override {
    waiting_.push_back(job);
    dispatch();
  }

  void on_core_idle(int) override { dispatch(); }

  void on_deadline(ge::workload::Job* job) override {
    if (!job->settled) {
      std::erase(waiting_, job);
      settle(job);
    }
    dispatch();
  }

  void finish() override {
    for (ge::workload::Job* job : waiting_) {
      if (!job->settled) {
        settle(job);
      }
    }
    waiting_.clear();
    for (std::size_t i = 0; i < env_.server->core_count(); ++i) {
      auto queue = env_.server->core(i).queue();  // copy: settle() mutates it
      for (ge::workload::Job* job : queue) {
        if (!job->settled) {
          settle(job);
        }
      }
    }
  }

  std::size_t backlog() const override { return waiting_.size(); }

 private:
  double laxity(const ge::workload::Job* job, double t,
                double cap_speed) const {
    return (job->deadline - t) - job->remaining_demand() / cap_speed;
  }

  void dispatch() {
    const double t = now();
    for (;;) {
      for (ge::workload::Job* job : waiting_) {
        if (!job->settled && job->expired(t)) {
          settle(job);  // expired while queued: quality 0
        }
      }
      std::erase_if(waiting_,
                    [](const ge::workload::Job* j) { return j->settled; });
      if (waiting_.empty()) {
        return;
      }
      const int idle = env_.server->find_idle_core(t);
      if (idle < 0) {
        return;
      }
      ge::server::Core& core = env_.server->core(static_cast<std::size_t>(idle));
      const double cap_speed =
          core.power_model().speed_for_power(core_cap_watts_);
      std::size_t best = 0;
      for (std::size_t i = 1; i < waiting_.size(); ++i) {
        if (laxity(waiting_[i], t, cap_speed) <
            laxity(waiting_[best], t, cap_speed)) {
          best = i;
        }
      }
      ge::workload::Job* job = waiting_[best];
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(best));
      run_on_core(job, core, cap_speed);
    }
  }

  void run_on_core(ge::workload::Job* job, ge::server::Core& core,
                   double cap_speed) {
    const double t = now();
    job->core = core.id();
    core.queue().push_back(job);
    job->target = job->demand;
    const double window = job->deadline - t;
    GE_CHECK(window > 1e-9, "dispatching an expired job");
    // Slowest deadline-meeting speed; clip to the Equal-Sharing cap.
    double speed = job->remaining_demand() / window;
    double units = job->remaining_demand();
    if (speed > cap_speed) {
      speed = cap_speed;
      units = speed * window;
    }
    ge::opt::ExecutionPlan plan;
    if (units > 1e-6 && speed > 0.0) {
      plan.segments.push_back(
          ge::opt::PlanSegment{job, t, t + units / speed, speed, units});
    }
    core.install_plan(std::move(plan), core_cap_watts_);
  }

  std::vector<ge::workload::Job*> waiting_;
  double core_cap_watts_;  // H / m (Equal-Sharing)
};

// ---------------------------------------------------------------------------
// 2. The CLI contract: canonical name, aliases, parameter arity, factory.
// A parameterized scheduler would set min/max_params and read spec.params
// in the factory (see QOA in src/exp/schedulers/speed_scaling_family.cpp).
// ---------------------------------------------------------------------------
ge::exp::SchedulerPlugin make_llf() {
  ge::exp::SchedulerPlugin p;
  p.name = "LLF";
  p.aliases = {"LEAST-LAXITY"};
  p.summary = "tutorial plugin: least-laxity-first single-job queueing";
  p.factory = [](const ge::exp::SchedulerSpec&, const ge::sched::SchedulerEnv& env,
                 const ge::exp::ExperimentConfig&,
                 const ge::power::DiscreteSpeedTable*) {
    return std::make_unique<LeastLaxityScheduler>(env);
  };
  return p;
}

// ---------------------------------------------------------------------------
// 3. Registration.  Runs during static init, before main(); from here on
// "LLF" parses anywhere a scheduler name is accepted in this binary.
// ---------------------------------------------------------------------------
GE_REGISTER_SCHEDULER(make_llf);

}  // namespace

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.arrival_rate = flags.get_double("rate", 150.0);
  cfg.duration = flags.get_double("seconds", 10.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  // The new scheduler is a first-class citizen: parse by name (registry
  // lookup, case-insensitive) and compare against a built-in cousin.
  std::printf("%-6s %10s %10s %10s %10s\n", "sched", "quality", "energy_J",
              "completed", "partial");
  for (const char* name : {"LLF", "FDFS"}) {
    const exp::RunResult r =
        exp::run_simulation(cfg, exp::SchedulerSpec::parse(name));
    std::printf("%-6s %10.4f %10.1f %10llu %10llu\n", r.scheduler.c_str(),
                r.quality, r.energy,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.partial));
  }
  std::printf("\nLLF registered from examples/custom_scheduler.cpp -- no "
              "core/ or exp/ edits.\n");
  return 0;
}
