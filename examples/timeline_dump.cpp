// Observability: record a state timeline of one GE run -- total power,
// monitored quality, busy cores, backlog and execution mode -- save it as
// CSV and render an ASCII power/mode strip.  Great for *seeing* compensation
// episodes and the ES<->WF hybrid switch during a burst.
//
//   ./timeline_dump [--rate 170] [--seconds 20] [--burst 1.0]
//                   [--file /tmp/ge_timeline.csv]
#include <cstdio>
#include <string>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "exp/timeline.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.arrival_rate = flags.get_double("rate", 170.0);
  cfg.duration = flags.get_double("seconds", 20.0);
  cfg.burst_peak_to_mean = flags.get_double("burst", 1.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));
  const std::string path = flags.get_string("file", "/tmp/ge_timeline.csv");

  const workload::Trace trace =
      workload::Trace::generate(cfg.workload_spec(), cfg.duration);
  exp::Timeline timeline;
  timeline.interval = flags.get_double("interval", 0.05);
  const exp::RunResult r = exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"),
                                               trace, &timeline);
  timeline.save_csv(path);

  std::printf("GE run: %.0f req/s for %.0f s (burst ratio %.1f)\n", cfg.arrival_rate,
              cfg.duration, cfg.burst_peak_to_mean);
  std::printf("quality %.4f, energy %.1f J, peak sampled power %.1f W (budget %.0f)\n",
              r.quality, r.energy, timeline.peak_power(), cfg.power_budget);
  std::printf("%zu samples every %.0f ms -> %s (BQ share %.1f%%)\n\n",
              timeline.points.size(), timeline.interval * 1000.0, path.c_str(),
              timeline.bq_share() * 100.0);

  // ASCII strip: one character per ~0.5 s bucket.  Height = power decile;
  // lower-case = AES, upper-case = BQ.
  const std::size_t per_bucket =
      std::max<std::size_t>(1, static_cast<std::size_t>(0.5 / timeline.interval));
  std::string strip;
  for (std::size_t i = 0; i < timeline.points.size(); i += per_bucket) {
    double power = 0.0;
    bool bq = false;
    std::size_t n = 0;
    for (std::size_t j = i; j < std::min(i + per_bucket, timeline.points.size());
         ++j) {
      power += timeline.points[j].total_power;
      bq = bq || timeline.points[j].mode == 1;
      ++n;
    }
    power /= static_cast<double>(n);
    const int decile =
        std::min(9, static_cast<int>(10.0 * power / cfg.power_budget));
    strip.push_back(static_cast<char>((bq ? 'A' : 'a') + decile));
  }
  std::printf("power strip (a..j = 0-100%% of budget; upper-case = BQ episode):\n%s\n",
              strip.c_str());
  return 0;
}
