// Domain scenario: a web-search front-end deciding between scheduling
// policies.  Runs every algorithm on the *same* request trace across a
// light / nominal / heavy day profile and prints a decision table.
//
//   ./websearch_comparison [--seconds 20] [--seed 3]
#include <cstdio>
#include <iostream>
#include <vector>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "exp/sweep.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.duration = flags.get_double("seconds", 20.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  struct Profile {
    const char* name;
    double rate;
  };
  const std::vector<Profile> profiles{{"night (light)", 100.0},
                                      {"daytime (nominal)", 150.0},
                                      {"peak (heavy)", 210.0}};
  const std::vector<exp::SchedulerSpec> specs{
      exp::SchedulerSpec::parse("GE"),  exp::SchedulerSpec::parse("BE"),
      exp::SchedulerSpec::parse("OQ"),  exp::SchedulerSpec::parse("FCFS"),
      exp::SchedulerSpec::parse("FDFS")};

  std::printf("Web-search scheduling comparison (Q_GE = %.2f, %zu cores, %.0f W)\n\n",
              cfg.q_ge, cfg.cores, cfg.power_budget);

  for (const Profile& profile : profiles) {
    cfg.arrival_rate = profile.rate;
    const workload::Trace trace =
        workload::Trace::generate(cfg.workload_spec(), cfg.duration);
    util::Table table(
        {"scheduler", "quality", "energy_J", "avg_W", "completed", "dropped",
         "meets_QGE"});
    double be_energy = 0.0;
    double ge_energy = 0.0;
    for (const exp::SchedulerSpec& spec : specs) {
      const exp::RunResult r = exp::run_simulation(cfg, spec, trace);
      if (r.scheduler == "BE") {
        be_energy = r.energy;
      }
      if (r.scheduler == "GE") {
        ge_energy = r.energy;
      }
      table.begin_row();
      table.add(r.scheduler);
      table.add(r.quality, 4);
      table.add(r.energy, 1);
      table.add(r.avg_power, 1);
      table.add(r.completed);
      table.add(r.dropped);
      table.add(std::string(r.quality >= cfg.q_ge - 0.005 ? "yes" : "NO"));
    }
    std::printf("-- %s: %.0f req/s over %.0f s (%zu requests) --\n", profile.name,
                profile.rate, cfg.duration, trace.size());
    table.print(std::cout);
    if (be_energy > 0.0) {
      std::printf("GE saves %.1f%% energy vs BE at this load\n\n",
                  100.0 * (1.0 - ge_energy / be_energy));
    }
  }
  std::printf(
      "Reading: BE maximises quality but burns the most energy; GE pins the\n"
      "quality at the agreed Q_GE and pockets the difference as savings.\n");
  return 0;
}
