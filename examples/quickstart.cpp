// Quickstart: simulate a 16-core web-search server for 30 seconds under the
// Good Enough scheduler and print the headline metrics.
//
//   ./quickstart [--rate 150] [--seconds 30] [--qge 0.9] [--seed 1]
//                [--scheduler GE] [--json]
#include <cstdio>

#include "exp/config.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);

  // 1. Describe the experiment: the paper's Sec. IV-B defaults, overridable
  //    from the command line.
  exp::ExperimentConfig cfg = exp::ExperimentConfig::paper_defaults();
  cfg.arrival_rate = flags.get_double("rate", 150.0);
  cfg.duration = flags.get_double("seconds", 30.0);
  cfg.q_ge = flags.get_double("qge", 0.9);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  // 2. Pick a scheduler.  "GE" is the paper's contribution; try "BE",
  //    "FCFS", "SJF", ... for the baselines.
  const exp::SchedulerSpec spec =
      exp::SchedulerSpec::parse(flags.get_string("scheduler", "GE"));

  // 3. Run the simulation.
  const exp::RunResult r = exp::run_simulation(cfg, spec);

  // 4. Report: human-readable by default, one JSON record with --json.
  if (flags.get_bool("json", false)) {
    std::printf("%s\n", exp::to_json(r).c_str());
  } else {
    std::printf("%s", exp::summarize(r, cfg).c_str());
  }
  return 0;
}
