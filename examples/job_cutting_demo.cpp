// Fig. 2 as a runnable demo: Longest-First job cutting of four jobs.
//
// Prints the before/after demands, the quality of each job, and an ASCII
// rendition of the paper's figure.
#include <cstdio>
#include <string>
#include <vector>

#include "opt/job_cutter.h"
#include "quality/quality_function.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);
  const double q_ge = flags.get_double("qge", 0.9);
  const double c = flags.get_double("c", 0.003);

  const quality::ExponentialQuality f(c, 1000.0);
  const std::vector<double> demands{950.0, 700.0, 450.0, 200.0};

  const opt::CutResult cut = opt::cut_longest_first(demands, f, q_ge);

  std::printf("Longest-First job cutting (Fig. 2), Q_GE = %.2f, c = %g\n\n", q_ge, c);
  std::printf("%-6s %10s %10s %10s %10s %9s\n", "job", "demand", "cut", "kept%",
              "f(demand)", "f(cut)");
  double total = 0.0;
  double kept = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    std::printf("J%-5zu %10.1f %10.1f %9.1f%% %10.4f %9.4f\n", i + 1, demands[i],
                cut.targets[i], 100.0 * cut.targets[i] / demands[i],
                f.value(demands[i]), f.value(cut.targets[i]));
    total += demands[i];
    kept += cut.targets[i];
  }
  std::printf("\ncut level: %.1f units, iterations: %d\n", cut.level, cut.iterations);
  std::printf("batch quality: %.4f (target %.2f)\n", cut.quality, q_ge);
  std::printf("workload kept: %.1f / %.1f units (%.1f%%) -- quality %.0f%% costs "
              "only the least-efficient tails\n\n",
              kept, total, 100.0 * kept / total, cut.quality * 100.0);

  // ASCII picture: '#' = kept work, '.' = cut tail (1 char ~ 25 units).
  for (std::size_t i = 0; i < demands.size(); ++i) {
    std::string bar;
    const int kept_chars = static_cast<int>(cut.targets[i] / 25.0 + 0.5);
    const int cut_chars = static_cast<int>((demands[i] - cut.targets[i]) / 25.0 + 0.5);
    bar.append(static_cast<std::size_t>(kept_chars), '#');
    bar.append(static_cast<std::size_t>(cut_chars), '.');
    std::printf("J%zu |%s\n", i + 1, bar.c_str());
  }
  std::printf("    '#' executed head, '.' discarded tail\n");
  return 0;
}
