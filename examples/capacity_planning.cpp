// Domain scenario: capacity planning.  Given a target arrival rate and a
// quality promise, search the (core count, power budget) space for the
// cheapest server configuration that still honours Q_GE under GE.
//
//   ./capacity_planning [--rate 180] [--qge 0.9] [--seconds 15]
#include <cstdio>
#include <iostream>
#include <vector>

#include "exp/config.h"
#include "exp/runner.h"
#include "exp/scheduler_spec.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ge;
  const util::Flags flags(argc, argv);
  exp::ExperimentConfig base = exp::ExperimentConfig::paper_defaults();
  base.arrival_rate = flags.get_double("rate", 180.0);
  base.q_ge = flags.get_double("qge", 0.9);
  base.duration = flags.get_double("seconds", 15.0);
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));

  const std::vector<std::size_t> core_options{4, 8, 16, 32};
  const std::vector<double> budget_options{120.0, 200.0, 320.0, 480.0};

  std::printf("Capacity planning: %.0f req/s, promise Q_GE = %.2f\n\n",
              base.arrival_rate, base.q_ge);
  util::Table table({"cores", "budget_W", "quality", "avg_W", "meets_QGE"});
  double best_power = 1e18;
  std::size_t best_cores = 0;
  double best_budget = 0.0;
  for (std::size_t cores : core_options) {
    for (double budget : budget_options) {
      exp::ExperimentConfig cfg = base;
      cfg.cores = cores;
      cfg.power_budget = budget;
      // Keep the hybrid switch meaningful when capacity shrinks.
      const exp::RunResult r = exp::run_simulation(cfg, exp::SchedulerSpec::parse("GE"));
      const bool ok = r.quality >= cfg.q_ge - 0.005;
      table.begin_row();
      table.add(static_cast<std::uint64_t>(cores));
      table.add(budget, 0);
      table.add(r.quality, 4);
      table.add(r.avg_power, 1);
      table.add(std::string(ok ? "yes" : "no"));
      if (ok && r.avg_power < best_power) {
        best_power = r.avg_power;
        best_cores = cores;
        best_budget = budget;
      }
    }
  }
  table.print(std::cout);
  if (best_cores > 0) {
    std::printf(
        "\nCheapest feasible configuration: %zu cores with a %.0f W cap "
        "(%.1f W actually drawn).\n",
        best_cores, best_budget, best_power);
    std::printf("More cores at the same budget run slower-and-wider, which the "
                "convex power curve rewards.\n");
  } else {
    std::printf("\nNo sampled configuration meets the promise; raise the budget "
                "or relax Q_GE.\n");
  }
  return 0;
}
